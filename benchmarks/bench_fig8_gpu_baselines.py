"""Fig. 8 — single-GPU framework vs hand-written CUDA benchmarks.

Paper: framework Kmeans is 6% slower than the Rodinia kernel (10 M points);
framework Sobel is 15% slower than the texture-memory SDK kernel (8192^2).
"""

from __future__ import annotations

from repro.metrics import figures, format_table


def test_fig8_gpu_baselines(benchmark, scale, report):
    rows = benchmark.pedantic(figures.fig8_gpu_baselines, args=(scale,), rounds=1, iterations=1)
    table = format_table(rows, title=f"Fig. 8: framework vs hand-written CUDA [{scale}]")
    report("fig8_gpu_baselines", table)
    for r in rows:
        assert 1.0 <= r["fw_over_cuda"] < 1.35, (
            f"framework should be modestly slower than hand-tuned CUDA: {r}"
        )
