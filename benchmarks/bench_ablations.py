"""Ablations of the framework's design choices (DESIGN.md §5).

Not a paper figure — these quantify the optimizations the paper implements
but does not ablate individually: reduction localization, GPU stream
count, dynamic chunk granularity, adaptive device partitioning, and the
temporal-blocking factor sweep.
"""

from __future__ import annotations

from repro.metrics import figures, format_table


def test_ablations(benchmark, scale, report):
    rows = benchmark.pedantic(figures.ablations, args=(scale,), rounds=1, iterations=1)
    table = format_table(rows, title=f"Design ablations [{scale}]")
    report("ablations", table)

    by = {(r["ablation"], r["setting"]): r["time_s"] for r in rows}
    assert by[("reduction-localization", "on")] < by[("reduction-localization", "off")], (
        "shared-memory localization must pay off for a 40-key reduction"
    )
    assert by[("adaptive-partitioning", "on")] <= by[("adaptive-partitioning", "off(static-even)")] * 1.01
    assert by[("time-block", "k=4@latency")] < by[("time-block", "k=1@latency")], (
        "temporal blocking must win on the latency-dominated preset"
    )
