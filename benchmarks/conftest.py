"""Shared benchmark fixtures.

``REPRO_BENCH_SCALE=full`` switches the drivers to the paper-scale sweeps
(1..32 nodes, bigger functional arrays); the default ``quick`` keeps the
whole suite under a couple of minutes.  Every bench writes its table to
``benchmarks/out/`` and prints it, so the rows survive pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if value not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be quick|full, got {value!r}")
    return value


@pytest.fixture(scope="session")
def report():
    """Writer that persists each benchmark's table and echoes it."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return write
