"""Table II — perfect vs. actual intra-node speedups (CPU+1GPU, CPU+2GPU).

The *perfect* columns assume no scheduling/synchronization/communication
overheads (1 + n_gpus * gpu_ratio); the *actual* columns come from the
simulated heterogeneous execution.  Paper: actuals average ~89% (CPU+1GPU)
and ~88% (CPU+2GPU) of perfect.
"""

from __future__ import annotations

from repro.metrics import figures, format_table


def test_table2_intranode(benchmark, scale, report):
    rows = benchmark.pedantic(figures.table2_intranode, args=(scale,), rounds=1, iterations=1)
    table = format_table(rows, title=f"Table II: perfect vs actual intra-node speedup [{scale}]")
    efficiency_1 = [r["actual_1gpu"] / r["perfect_1gpu"] for r in rows]
    efficiency_2 = [r["actual_2gpu"] / r["perfect_2gpu"] for r in rows]
    summary = (
        f"mean actual/perfect: CPU+1GPU {sum(efficiency_1)/len(efficiency_1):.2%} "
        f"(paper ~89%), CPU+2GPU {sum(efficiency_2)/len(efficiency_2):.2%} (paper ~88%)"
    )
    report("table2_intranode", table + "\n" + summary)
    for r in rows:
        assert r["actual_1gpu"] <= r["perfect_1gpu"] * 1.02, r
        assert r["actual_2gpu"] <= r["perfect_2gpu"] * 1.02, r
