"""Fig. 5 — intra-node and inter-node scalability of all five applications.

Regenerates, per application: speedup over one CPU core for every device
mix (CPU, 1 GPU, 2 GPU, CPU+1GPU, CPU+2GPU) and node count, plus the
hand-written MPI comparator rows, plus the §IV-C summary (framework/MPI
ratio, 12->384-core scaling, best overall speedup).
"""

from __future__ import annotations

import pytest

from repro.metrics import figures, format_table


@pytest.mark.parametrize("app", ["kmeans", "moldyn", "minimd", "sobel", "heat3d"])
def test_fig5_app_scalability(benchmark, scale, report, app):
    rows = benchmark.pedantic(
        figures.fig5_scalability, args=(scale, [app]), rounds=1, iterations=1
    )
    table = format_table(
        rows,
        columns=["app", "nodes", "mix", "speedup", "makespan_s"],
        title=f"Fig. 5 ({app}): speedup over 1 CPU core [{scale}]",
    )
    summary = format_table(
        figures.fig5_summary(rows),
        title=f"S IV-C summary ({app})",
    )
    report(f"fig5_{app}", table + "\n\n" + summary)
    best = max(r["speedup"] for r in rows)
    assert best > 1.0, "parallel execution must beat one core"
