"""Fig. 7 — effect of overlap (Moldyn, Sobel) and tiling (Sobel) by nodes.

Paper: overlapped execution averages 37% faster for Moldyn and 11% for
Sobel; tiling improves Sobel by up to 20%.
"""

from __future__ import annotations

from repro.metrics import figures, format_table


def test_fig7_optimizations(benchmark, scale, report):
    rows = benchmark.pedantic(figures.fig7_optimizations, args=(scale,), rounds=1, iterations=1)
    table = format_table(rows, title=f"Fig. 7: optimization effects [{scale}]")

    def mean_gain(app, opt):
        vals = [r["gain"] for r in rows if r["app"] == app and r["optimization"] == opt]
        return sum(vals) / len(vals)

    summary = (
        f"mean overlap gain: moldyn {mean_gain('moldyn', 'overlap'):.2f}x (paper 1.37x), "
        f"sobel {mean_gain('sobel', 'overlap'):.2f}x (paper 1.11x); "
        f"tiling gain sobel {mean_gain('sobel', 'tiling'):.2f}x (paper up to 1.20x)"
    )
    report("fig7_optimizations", table + "\n" + summary)
    for r in rows:
        assert r["gain"] >= 0.99, f"optimization should never hurt: {r}"
