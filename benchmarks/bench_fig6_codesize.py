"""Fig. 6 — code-size comparison: framework user programs vs MPI baselines.

Counts logical lines (non-blank, non-comment, non-docstring) of the
user-level framework programs in ``examples/`` against the hand-written
per-core MPI implementations in ``repro.apps.baselines``.  Paper ratios:
0.53 / 0.37 / 0.40 / 0.28 (mean ~0.40).
"""

from __future__ import annotations

from repro.metrics import figures, format_table


def test_fig6_code_sizes(benchmark, report):
    rows = benchmark.pedantic(figures.fig6_code_sizes, rounds=1, iterations=1)
    mean_ratio = sum(r["ratio"] for r in rows) / len(rows)
    table = format_table(rows, title="Fig. 6: code sizes (framework vs hand-written MPI)")
    report("fig6_codesize", table + f"\nmean ratio: {mean_ratio:.2f} (paper mean ~0.40)")
    for r in rows:
        assert r["ratio"] < 1.0, f"framework {r['app']} should be smaller than MPI version"
