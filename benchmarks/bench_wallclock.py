#!/usr/bin/env python
"""Wall-clock performance harness for the functional layer.

Times how long the *host* (wall-clock seconds, ``time.perf_counter``)
takes to execute the five paper apps' functional runs — as opposed to the
virtual (simulated) time every other benchmark reports.  The two are
strictly separated: optimizations measured here must leave every virtual
makespan bit-for-bit unchanged (asserted by recording both).

Outputs a machine-readable JSON record (``BENCH_wallclock.json`` at the
repo root holds the committed trajectory) so per-PR regressions are
visible::

    PYTHONPATH=src python benchmarks/bench_wallclock.py --mode smoke
    PYTHONPATH=src python benchmarks/bench_wallclock.py --mode full --out BENCH_wallclock.json

Each timed case reports:

- ``wall_s``     — best-of-N wall seconds for the whole functional run
- ``makespan``   — the virtual makespan of the same run (regression canary)

plus micro-benchmarks isolating the paths this harness exists to watch:
the stencil step loop (Sobel/Heat3D), the fused stencil+reduce
convergence loop (Jacobi2D), the temporal-blocking A/B on the
latency-dominated preset (``stencil_timeblock``, monotonicity asserted),
the irregular-reduction step loop
(Moldyn/MiniMD), the Kmeans emit path, the comm-fabric ping-pong hot
path, the 384-rank per-core MPI baseline (``baseline_ranks``), and the
campaign engine A/B (``campaign_throughput``: batched sweep vs sequential
per-job execution, with a zero-execution warm-re-run gate).
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.apps import heat3d, kmeans, minimd, moldyn, sobel
from repro.apps.extra import jacobi2d
from repro.cluster.presets import ohio_cluster

REPO_ROOT = Path(__file__).resolve().parent.parent


def _configs(mode: str) -> dict:
    """Workload sizes per mode; smoke keeps CI latency low."""
    if mode == "smoke":
        return {
            "repeats": 2,
            "step_repeats": 3,
            "kmeans": kmeans.KmeansConfig(functional_points=60_000, iterations=1),
            "sobel": sobel.SobelConfig(functional_shape=(384, 384), simulated_steps=3),
            "heat3d": heat3d.Heat3DConfig(functional_shape=(36, 36, 36), simulated_steps=3),
            "minimd": minimd.MiniMDConfig(functional_cells=8, simulated_steps=3),
            "moldyn": moldyn.MoldynConfig(functional_nodes=4_000, simulated_steps=3),
            # Step-loop microbenches run more steps than the app defaults so
            # the signal dominates thread-scheduling jitter.
            "sobel_steps": sobel.SobelConfig(functional_shape=(384, 384), simulated_steps=8),
            "heat3d_steps": heat3d.Heat3DConfig(
                functional_shape=(36, 36, 36), simulated_steps=8
            ),
            # The IR step cases keep the apps' default mesh sizes even in
            # smoke mode: on the reduced meshes the loop is dominated by
            # the per-step rank rendezvous, not the reduction path this
            # case exists to watch (fewer repeats keep CI latency flat).
            "moldyn_steps": moldyn.MoldynConfig(simulated_steps=8),
            "minimd_steps": minimd.MiniMDConfig(simulated_steps=8),
            # Convergence loop: small grid + loose tol keeps the iteration
            # count (and CI latency) modest while still exercising the
            # fused-residual / speculative-halo path for dozens of steps.
            "stencil_converge": jacobi2d.Jacobi2DConfig(
                shape=(32, 32), tol=1e-3, max_iters=200
            ),
            # Temporal blocking: fixed sweep count (tol below reach) so
            # every k runs identical math; the latency-heavy preset makes
            # the per-message alpha the dominant term k amortizes.
            "stencil_timeblock": jacobi2d.Jacobi2DConfig(
                shape=(48, 48), tol=1e-12, max_iters=24
            ),
            "ir_step_repeats": 2,
            "nodes": 4,
            # Comm-fabric cases: a 2-rank ping-pong isolating the
            # send/match/wakeup hot path, and the paper-scale 384-rank
            # per-core MPI baseline that stresses sharded mailboxes, the
            # rank-thread pool, and dataset memoization together.
            "pingpong_msgs": 2_000,
            "baseline_ranks_nodes": 32,
            "baseline_ranks": kmeans.KmeansConfig(functional_points=96_000, iterations=2),
            # Campaign A/B: small per-point workloads — the case watches the
            # engine's dispatch/batching overhead, not the kernels.
            "campaign_heat3d": heat3d.Heat3DConfig(
                functional_shape=(24, 24, 24), simulated_steps=2
            ),
            "campaign_kmeans": kmeans.KmeansConfig(functional_points=20_000, iterations=1),
        }
    return {
        "repeats": 3,
        "step_repeats": 5,
        "ir_step_repeats": 3,
        "kmeans": kmeans.KmeansConfig(functional_points=200_000, iterations=1),
        "sobel": sobel.SobelConfig(),
        "heat3d": heat3d.Heat3DConfig(),
        "minimd": minimd.MiniMDConfig(),
        "moldyn": moldyn.MoldynConfig(),
        "sobel_steps": sobel.SobelConfig(simulated_steps=15),
        "heat3d_steps": heat3d.Heat3DConfig(simulated_steps=20),
        "moldyn_steps": moldyn.MoldynConfig(simulated_steps=10),
        "minimd_steps": minimd.MiniMDConfig(simulated_steps=10),
        "stencil_converge": jacobi2d.Jacobi2DConfig(),
        "stencil_timeblock": jacobi2d.Jacobi2DConfig(
            shape=(64, 64), tol=1e-12, max_iters=48
        ),
        "nodes": 4,
        "pingpong_msgs": 5_000,
        "baseline_ranks_nodes": 32,
        "baseline_ranks": kmeans.KmeansConfig(functional_points=96_000, iterations=3),
        "campaign_heat3d": heat3d.Heat3DConfig(
            functional_shape=(36, 36, 36), simulated_steps=3
        ),
        "campaign_kmeans": kmeans.KmeansConfig(functional_points=60_000, iterations=1),
    }


def _best_of(repeats: int, fn):
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_apps(cfg: dict) -> dict:
    """Time the five paper apps' full functional executions."""
    cluster = ohio_cluster(cfg["nodes"])
    cases = {}
    for name, mod in [
        ("kmeans", kmeans),
        ("sobel", sobel),
        ("heat3d", heat3d),
        ("minimd", minimd),
        ("moldyn", moldyn),
    ]:
        wall, run = _best_of(cfg["repeats"], lambda m=mod, n=name: m.run(cluster, cfg[n]))
        cases[name] = {"wall_s": round(wall, 4), "makespan": run.makespan}
    return cases


def bench_stencil_steps(cfg: dict) -> dict:
    """Isolate the stencil step loop: wall seconds per Sobel/Heat3D step."""
    from repro.core.env import RuntimeEnv
    from repro.sim.engine import spmd_run

    out = {}
    for name, mod, config in [
        ("sobel_steps", sobel, cfg["sobel_steps"]),
        ("heat3d_steps", heat3d, cfg["heat3d_steps"]),
    ]:
        def prog(ctx, mod=mod, config=config):
            env = RuntimeEnv(ctx, "cpu+2gpu")
            st = env.get_stencil()
            parameter = None if mod is sobel else heat3d.ALPHA
            st.configure(
                mod.make_kernel(ctx.node),
                config.functional_shape,
                model_shape=config.shape,
                parameter=parameter,
            )
            if mod is sobel:
                from repro.data.grids import synthetic_image

                st.set_global_grid(synthetic_image(config.functional_shape, seed=config.seed))
            else:
                from repro.data.grids import heat3d_initial

                st.set_global_grid(heat3d_initial(config.functional_shape, seed=config.seed))
            t0 = time.perf_counter()
            st.run(config.simulated_steps)
            return time.perf_counter() - t0, ctx.clock.now

        cluster = ohio_cluster(cfg["nodes"])
        step_wall = float("inf")
        makespan = None
        for _ in range(cfg["step_repeats"]):
            res = spmd_run(prog, cluster)
            step_wall = min(step_wall, max(v[0] for v in res.values))
            makespan = res.makespan
        out[name] = {
            "wall_s": round(step_wall, 4),
            "makespan": makespan,
        }
    return out


def bench_stencil_converge(cfg: dict) -> dict:
    """Isolate the fused stencil+reduce convergence loop (Jacobi2D).

    Watches the ``run_until`` hot path: the in-sweep residual, the
    speculative next-step halo exchange, and the coalesced per-neighbour
    messages.  The makespan pins the overlap accounting; the iteration
    count is recorded so a convergence change (different stop point) is
    distinguishable from a pure wall-clock regression.
    """
    cluster = ohio_cluster(cfg["nodes"])
    config = cfg["stencil_converge"]
    wall, run = _best_of(
        cfg["step_repeats"], lambda: jacobi2d.run(cluster, config, mix="cpu+2gpu")
    )
    return {
        "stencil_converge": {
            "wall_s": round(wall, 4),
            "makespan": run.makespan,
            "iterations": run.spmd.values[0]["iterations"],
        }
    }


def bench_stencil_timeblock(cfg: dict) -> dict:
    """Temporal-blocking A/B on the latency-dominated preset (Jacobi2D).

    Interleaved best-of repeats over k in {1, 2, 4} so machine noise hits
    every variant alike.  Asserts the virtual-makespan monotonicity the
    feature exists for — each doubling of k must strictly shrink the
    latency-preset makespan — and records the k=4 makespan as the
    bit-identity canary (``makespan``) with the k=1/k=2 spans alongside.
    """
    from repro.cluster.presets import latency_cluster

    cluster = latency_cluster(2)
    config = cfg["stencil_timeblock"]
    walls = {1: float("inf"), 2: float("inf"), 4: float("inf")}
    spans: dict[int, float] = {}
    for _ in range(cfg["step_repeats"]):
        for k in (1, 2, 4):
            t0 = time.perf_counter()
            run = jacobi2d.run(cluster, config, mix="cpu", time_block=k)
            walls[k] = min(walls[k], time.perf_counter() - t0)
            spans[k] = run.makespan
    if not spans[4] < spans[2] < spans[1]:
        raise AssertionError(
            f"temporal blocking must be monotone on the latency preset: "
            f"k=1 {spans[1]!r}, k=2 {spans[2]!r}, k=4 {spans[4]!r}"
        )
    return {
        "stencil_timeblock": {
            "wall_s": round(walls[4], 4),
            "makespan": spans[4],
            "makespan_k1": spans[1],
            "makespan_k2": spans[2],
        }
    }


def bench_ir_steps(cfg: dict) -> dict:
    """Isolate the irregular-reduction step loop (Moldyn/MiniMD).

    The MD rank programs time their own ``start`` / ``get_local_reduction``
    / ``update_nodedata`` loop (``wall_steps`` in their result dicts), so
    the number excludes mesh generation and runtime setup and moves only
    when the IR hot path changes.  Reports the slowest rank's loop, best
    over repeats, plus the run's virtual makespan as the regression canary.
    """
    cluster = ohio_cluster(cfg["nodes"])
    out = {}
    for name, mod in [("moldyn_steps", moldyn), ("minimd_steps", minimd)]:
        step_wall = float("inf")
        makespan = None
        for _ in range(cfg["ir_step_repeats"]):
            run = mod.run(cluster, cfg[name])
            step_wall = min(step_wall, max(v["wall_steps"] for v in run.result))
            makespan = run.makespan
        out[name] = {"wall_s": round(step_wall, 4), "makespan": makespan}
    return out


def bench_kmeans_emit(cfg: dict) -> dict:
    """Isolate the Kmeans emit path: the batched kernel over all chunks.

    Replays exactly the chunk sizes the GR runtime would schedule, without
    the SPMD machinery, so this number moves only when the emit math or the
    reduction-object insert path changes.
    """
    from repro.core.reduction_object import DenseReductionObject
    from repro.data.points import clustered_points

    config = cfg["kmeans"]
    points, _ = clustered_points(config.functional_points, config.k, config.dims, seed=config.seed)
    centers = points[: config.k].astype(np.float64)
    emit = kmeans.make_emit(config)
    n = len(points)
    chunk = max(16, n // 512)

    def run_emit():
        obj = DenseReductionObject(config.k, config.dims + 1, "sum", np.float64)
        for start in range(0, n, chunk):
            emit(obj, points[start : start + chunk], start, centers)
        return obj.as_array().copy()

    wall, values = _best_of(cfg["repeats"], run_emit)
    return {
        "kmeans_emit": {
            "wall_s": round(wall, 4),
            "checksum": float(np.sum(values)),
        }
    }


def bench_fabric_comm(cfg: dict) -> dict:
    """Comm-fabric hot-path cases.

    ``fabric_pingpong`` bounces ``pingpong_msgs`` round trips between two
    ranks on one node, so the number moves only with the per-message cost
    of ``transmit``/``match`` (shard lock, index probe, targeted wakeup)
    plus the unavoidable thread handoff per rendezvous.

    ``baseline_ranks`` runs the paper-scale hand-written MPI Kmeans —
    32 nodes x 12 ranks per node = 384 rank threads — end to end.  This is
    the case the sharded fabric exists for: per-rank mailbox locks, O(1)
    specific-source matching, pooled rank threads, and memoized input
    generation all land here.  Both report the virtual makespan as the
    bit-identity canary.
    """
    from repro.apps.baselines import mpi_kmeans
    from repro.sim.engine import spmd_run

    n_msgs = cfg["pingpong_msgs"]

    def pingpong(ctx, n=n_msgs):
        peer = 1 - ctx.rank
        t0 = time.perf_counter()
        if ctx.rank == 0:
            for i in range(n):
                ctx.comm.send(i, peer, tag=1)
                ctx.comm.recv(source=peer, tag=2)
        else:
            for _ in range(n):
                val = ctx.comm.recv(source=peer, tag=1)
                ctx.comm.send(val, peer, tag=2)
        return time.perf_counter() - t0

    cluster = ohio_cluster(1)
    wall = float("inf")
    makespan = None
    for _ in range(cfg["repeats"]):
        res = spmd_run(pingpong, cluster, ranks_per_node=2)
        wall = min(wall, max(res.values))
        makespan = res.makespan
    out = {"fabric_pingpong": {"wall_s": round(wall, 4), "makespan": makespan}}

    # Best-of-3 minimum: a ~1 s 384-thread run sees far more scheduler
    # noise than the sub-100 ms cases, and the CI gate compares walls.
    ranks_cluster = ohio_cluster(cfg["baseline_ranks_nodes"])
    b_wall, b_run = _best_of(
        max(cfg["repeats"], 3), lambda: mpi_kmeans.run(ranks_cluster, cfg["baseline_ranks"])
    )
    out["baseline_ranks"] = {
        "wall_s": round(b_wall, 4),
        "makespan": b_run.makespan,
        "ranks": ranks_cluster.num_nodes * ranks_cluster.node.cpu.cores,
    }
    return out


def bench_threads_vs_processes(cfg: dict) -> dict:
    """A/B the SPMD backends on the paper-scale 384-rank Kmeans baseline.

    Interleaved best-of-3 (t, p, t, p, t, p) so machine noise hits both
    backends alike, exactly like ``fabric_before_after`` did for the
    sharded fabric.  Virtual makespans must be bit-identical — that is the
    backend's contract — and are asserted here, not just recorded.

    The process backend is forced to at least two workers so the
    cross-process bridge is really measured; on a single-core host that
    honestly shows the bridge's overhead without the parallelism that pays
    for it, so the CI gate (:func:`compare`) only requires processes to
    beat threads when ``cores`` > 1.
    """
    import os

    from repro.apps.baselines import mpi_kmeans

    cluster = ohio_cluster(cfg["baseline_ranks_nodes"])
    config = cfg["baseline_ranks"]
    cores = os.cpu_count() or 1
    workers = max(2, cores)

    t_wall = p_wall = float("inf")
    t_span = p_span = None
    for _ in range(3):
        t0 = time.perf_counter()
        t_run = mpi_kmeans.run(cluster, config, backend="threads")
        t_wall = min(t_wall, time.perf_counter() - t0)
        t_span = t_run.makespan
        t0 = time.perf_counter()
        p_run = mpi_kmeans.run(cluster, config, backend="processes", workers=workers)
        p_wall = min(p_wall, time.perf_counter() - t0)
        p_span = p_run.makespan
    if repr(t_span) != repr(p_span):
        raise AssertionError(
            f"backends disagree on the virtual makespan: "
            f"threads {t_span!r} vs processes {p_span!r}"
        )
    return {
        "threads_vs_processes": {
            "threads_wall_s": round(t_wall, 4),
            "processes_wall_s": round(p_wall, 4),
            "speedup": round(t_wall / max(p_wall, 1e-9), 4),
            "makespan": t_span,
            "cores": cores,
            "workers": workers,
        }
    }


def bench_campaign_throughput(cfg: dict) -> dict:
    """A/B the campaign engine against sequential per-job execution.

    The batched arm runs the whole sweep through
    :class:`~repro.campaign.runner.CampaignRunner` (one ``submit_many``,
    widest-first ordering, dataset pre-warm, concurrent dispatch under the
    rank budget); the sequential arm executes the same specs one
    ``execute_job`` at a time — the pre-campaign workflow.  Interleaved
    best-of-3 so machine noise hits both arms alike.

    Two hard assertions, host-independent:

    - every per-point virtual makespan is bit-identical across arms (the
      campaign engine must never touch simulated physics), and
    - a warm re-run over a fresh persistent store executes **zero** jobs
      (``warm_rerun_executed``, gated at 0 in :func:`compare`).

    The speed gate (batched >= sequential) applies only on multi-core
    hosts, like ``threads_vs_processes``: with one core the concurrent arm
    honestly shows scheduling overhead without the parallelism that pays
    for it.
    """
    import os
    import tempfile

    from repro.campaign import CampaignRunner, CampaignSpec
    from repro.serve import execute_job

    campaign = CampaignSpec.from_dict(
        {
            "name": "bench",
            "axes": {
                "app": ["heat3d", "kmeans"],
                "preset": "laptop",
                "mix": "cpu",
                "nodes": [1, 2],
                "seed": [0, 1],
            },
            "app_params": {
                "heat3d": {
                    "functional_shape": list(cfg["campaign_heat3d"].functional_shape),
                    "simulated_steps": cfg["campaign_heat3d"].simulated_steps,
                },
                "kmeans": {
                    "functional_points": cfg["campaign_kmeans"].functional_points,
                    "iterations": cfg["campaign_kmeans"].iterations,
                },
            },
            "backend": None,  # identical engine path in both arms
        }
    )
    specs = campaign.expand()
    cores = os.cpu_count() or 1

    seq_wall = bat_wall = float("inf")
    seq_spans = bat_spans = None
    for _ in range(3):
        t0 = time.perf_counter()
        seq_results = [execute_job(spec) for spec in specs]
        seq_wall = min(seq_wall, time.perf_counter() - t0)
        seq_spans = [r["makespan"] for r in seq_results]
        t0 = time.perf_counter()
        run = CampaignRunner(campaign, store=None, rank_budget=64).run()
        bat_wall = min(bat_wall, time.perf_counter() - t0)
        if not run.ok:
            raise AssertionError(f"campaign arm failed: {run.failures()}")
        bat_spans = [row["makespan"] for row in run.rows]
    if repr(seq_spans) != repr(bat_spans):
        raise AssertionError(
            f"campaign makespans drifted from direct execution: "
            f"{seq_spans!r} vs {bat_spans!r}"
        )

    # Persistence phase: cold fill then warm re-run over one store.
    with tempfile.TemporaryDirectory() as store:
        cold = CampaignRunner(campaign, store=store, rank_budget=64).run()
        warm = CampaignRunner(campaign, store=store, rank_budget=64).run()
    if cold.stats["executed"] != len(specs):
        raise AssertionError(
            f"cold campaign executed {cold.stats['executed']} of {len(specs)}"
        )
    return {
        "campaign_throughput": {
            "batched_wall_s": round(bat_wall, 4),
            "sequential_wall_s": round(seq_wall, 4),
            "speedup": round(seq_wall / max(bat_wall, 1e-9), 4),
            "jobs": len(specs),
            "cores": cores,
            "warm_rerun_executed": warm.stats["executed"],
            "warm_store_hits": warm.stats["store_hits"],
            "makespan": bat_spans,
        }
    }


def bench_obs_overhead(cfg: dict) -> dict:
    """Instrumented vs uninstrumented wall clock for one functional run.

    The observability layer must be near-free: runs measure heat3d with and
    without per-rank :class:`repro.obs.Recorder` instances *interleaved*
    (so machine noise hits both alike), report best-of walls for each, and
    require the virtual makespans to be bit-identical.  CI gates
    ``overhead_ratio`` at 1 + _OBS_OVERHEAD_THRESHOLD.

    Runs a single rank (the engine's inline path) on a larger grid than the
    other smoke cases: multi-rank runs carry thread-rendezvous jitter far
    above 5%, and a sub-10ms run sits in the timer noise floor — either
    would make a 5% gate flaky no matter how the real overhead moved.
    """
    from repro.obs import Recorder

    cluster = ohio_cluster(1)
    config = heat3d.Heat3DConfig(functional_shape=(96, 96, 96), simulated_steps=8)
    plain_wall = inst_wall = float("inf")
    plain_run = inst_run = None
    for _ in range(max(cfg["repeats"], 7)):
        t0 = time.perf_counter()
        plain_run = heat3d.run(cluster, config)
        plain_wall = min(plain_wall, time.perf_counter() - t0)
        t0 = time.perf_counter()
        inst_run = heat3d.run(cluster, config, recorder_factory=Recorder)
        inst_wall = min(inst_wall, time.perf_counter() - t0)
    if inst_run.makespan != plain_run.makespan:
        raise AssertionError(
            f"instrumentation changed the virtual makespan: "
            f"{plain_run.makespan!r} -> {inst_run.makespan!r}"
        )
    return {
        "obs_overhead": {
            "wall_s": round(inst_wall, 4),
            "base_wall_s": round(plain_wall, 4),
            "overhead_ratio": round(inst_wall / max(plain_wall, 1e-9), 4),
            "makespan": inst_run.makespan,
        }
    }


def collect(mode: str) -> dict:
    cfg = _configs(mode)
    record = {
        "mode": mode,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "git": _git_rev(),
        "cases": {},
    }
    record["cases"].update(bench_apps(cfg))
    record["cases"].update(bench_stencil_steps(cfg))
    record["cases"].update(bench_stencil_converge(cfg))
    record["cases"].update(bench_stencil_timeblock(cfg))
    record["cases"].update(bench_ir_steps(cfg))
    record["cases"].update(bench_kmeans_emit(cfg))
    # The 5%-gated obs case runs before the 384-thread fabric cases so the
    # many-rank churn can't perturb its interleaved A/B measurement.
    record["cases"].update(bench_obs_overhead(cfg))
    record["cases"].update(bench_fabric_comm(cfg))
    record["cases"].update(bench_threads_vs_processes(cfg))
    record["cases"].update(bench_campaign_throughput(cfg))
    return record


def _git_rev() -> str:
    """Short HEAD revision, with a ``-dirty`` suffix for unclean trees.

    The committed baseline's ``git`` field is its provenance: it must name
    the commit whose code produced the numbers.  A record refreshed while
    the tree had uncommitted changes is stamped ``-dirty`` so the smoke
    check (:func:`compare`) rejects it as a baseline — refresh the JSON
    *after* committing the code change it measures.
    """
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        return f"{rev}-dirty" if status else rev
    except Exception:
        return "unknown"


#: Allowed instrumented-over-uninstrumented wall-clock ratio overhead.
_OBS_OVERHEAD_THRESHOLD = 0.05


def compare(record: dict, baseline_path: Path, threshold: float) -> int:
    """Fail (non-zero) on wall-clock regression beyond ``threshold``.

    Virtual makespans must match the baseline exactly — any drift means an
    optimization changed simulated physics, which is a bug regardless of
    wall-clock wins.  The ``obs_overhead`` case additionally gates the
    instrumented run at within 5% of the uninstrumented one (measured
    within this run, so the gate needs no baseline entry).
    """
    baseline = json.loads(baseline_path.read_text())
    base_cases = baseline["cases"]
    failures = []
    base_git = baseline.get("git", "unknown")
    if base_git == "unknown" or base_git.endswith("-dirty"):
        failures.append(
            f"baseline provenance: git field is {base_git!r} — the committed "
            "record must be stamped with the clean commit that produced it "
            "(refresh the JSON after committing the code change)"
        )
    over = record["cases"].get("obs_overhead")
    if over is not None and over["overhead_ratio"] > 1.0 + _OBS_OVERHEAD_THRESHOLD:
        failures.append(
            f"obs_overhead: instrumented run {over['wall_s']}s vs "
            f"{over['base_wall_s']}s uninstrumented "
            f"({over['overhead_ratio']:.3f}x, "
            f"threshold {1.0 + _OBS_OVERHEAD_THRESHOLD:.2f}x)"
        )
    ab = record["cases"].get("threads_vs_processes")
    if ab is not None:
        if ab["cores"] > 1 and ab["processes_wall_s"] > ab["threads_wall_s"]:
            failures.append(
                f"threads_vs_processes: process backend slower than threads on a "
                f"{ab['cores']}-core host ({ab['processes_wall_s']}s vs "
                f"{ab['threads_wall_s']}s, {ab['speedup']:.2f}x)"
            )
        elif ab["cores"] <= 1:
            print(
                "SKIP threads_vs_processes speed gate: single-core host "
                f"(speedup {ab['speedup']:.2f}x recorded, not gated)"
            )
    camp = record["cases"].get("campaign_throughput")
    if camp is not None:
        if camp["warm_rerun_executed"] != 0:
            failures.append(
                f"campaign_throughput: warm re-run executed "
                f"{camp['warm_rerun_executed']} job(s); the persistent store "
                "must answer every repeated point"
            )
        if camp["cores"] > 1 and camp["batched_wall_s"] > camp["sequential_wall_s"]:
            failures.append(
                f"campaign_throughput: batched campaign slower than sequential "
                f"execution on a {camp['cores']}-core host "
                f"({camp['batched_wall_s']}s vs {camp['sequential_wall_s']}s, "
                f"{camp['speedup']:.2f}x)"
            )
        elif camp["cores"] <= 1:
            print(
                "SKIP campaign_throughput speed gate: single-core host "
                f"(speedup {camp['speedup']:.2f}x recorded, not gated)"
            )
    for name, case in record["cases"].items():
        base = base_cases.get(name)
        if base is None:
            continue
        if "makespan" in case and "makespan" in base:
            if case["makespan"] != base["makespan"]:
                failures.append(
                    f"{name}: virtual makespan drifted "
                    f"{base['makespan']!r} -> {case['makespan']!r}"
                )
        if "wall_s" not in case or "wall_s" not in base:
            continue  # A/B cases carry per-variant walls, not a single wall_s
        ratio = case["wall_s"] / max(base["wall_s"], 1e-9)
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: wall-clock regression {base['wall_s']}s -> {case['wall_s']}s "
                f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
            )
    for f in failures:
        print(f"FAIL {f}")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", choices=["smoke", "full"], default="smoke")
    ap.add_argument("--out", type=Path, default=None, help="write the JSON record here")
    ap.add_argument(
        "--baseline", type=Path, default=None, help="compare against this record and fail on regression"
    )
    ap.add_argument(
        "--threshold", type=float, default=0.25, help="allowed fractional wall-clock regression"
    )
    args = ap.parse_args()

    record = collect(args.mode)
    print(json.dumps(record, indent=2))
    if args.out:
        args.out.write_text(json.dumps(record, indent=2) + "\n")
    if args.baseline:
        return compare(record, args.baseline, args.threshold)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
