"""Command-line interface: run apps and regenerate experiments.

Examples::

    python -m repro info
    python -m repro info --devices
    python -m repro run kmeans --nodes 4 --mix cpu+2gpu
    python -m repro run heat3d --nodes 8 --mix cpu --no-overlap
    python -m repro run heat3d --trace-out trace.json
    python -m repro profile heat3d --scale quick
    python -m repro figure table2 --scale quick
    python -m repro codesize
    python -m repro serve --port 8642 --store ~/.cache/repro/results
    python -m repro submit heat3d --nodes 4 --param simulated_steps=2
    python -m repro submit --batch jobs.json
    python -m repro jobs --stats
    python -m repro campaign run sweep.json --out run.json --report
    python -m repro campaign status sweep.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro import __version__
from repro.apps import heat3d, kmeans, minimd, moldyn, sobel
from repro.apps.extra import jacobi2d
from repro.cluster.presets import ohio_cluster
from repro.core.env import DEVICE_MIXES
from repro.metrics import fig5_chart, figures, format_table
from repro.util.units import fmt_seconds

_APPS: dict[str, Callable] = {
    "kmeans": kmeans.run,
    "moldyn": moldyn.run,
    "minimd": minimd.run,
    "sobel": sobel.run,
    "heat3d": heat3d.run,
    "jacobi2d": jacobi2d.run,
}

_FIGURES = {
    "fig5": lambda scale: _fig5_text(scale),
    "fig6": lambda scale: format_table(figures.fig6_code_sizes(), title="Fig. 6"),
    "table2": lambda scale: format_table(
        figures.table2_intranode(scale), title=f"Table II [{scale}]"
    ),
    "fig7": lambda scale: format_table(
        figures.fig7_optimizations(scale), title=f"Fig. 7 [{scale}]"
    ),
    "fig8": lambda scale: format_table(
        figures.fig8_gpu_baselines(scale), title=f"Fig. 8 [{scale}]"
    ),
    "ablations": lambda scale: format_table(
        figures.ablations(scale), title=f"Ablations [{scale}]"
    ),
}


def _fig5_text(scale: str) -> str:
    rows = figures.fig5_scalability(scale)
    parts = []
    if len({r["nodes"] for r in rows}) > 1:
        for app in sorted({r["app"] for r in rows}):
            parts.append(fig5_chart(rows, app))
    parts.append(
        format_table(
            rows,
            columns=["app", "nodes", "mix", "speedup", "makespan_s"],
            title=f"Fig. 5 [{scale}]",
        )
    )
    return "\n\n".join(parts)


def _time_block_arg(text: str):
    """argparse type for ``--time-block``: positive int or ``auto``."""
    from repro.apps.common import parse_time_block
    from repro.util.errors import ValidationError

    try:
        return parse_time_block(text)
    except ValidationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pattern framework for heterogeneous clusters (IPDPS'15 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    info_p = sub.add_parser("info", help="describe the simulated platform")
    info_p.add_argument(
        "--devices",
        action="store_true",
        help="print per-device roofline parameters and the timeline inventory",
    )
    info_p.add_argument(
        "--backends",
        action="store_true",
        help="print the SPMD execution backends and this host's defaults",
    )

    def add_backend_args(p: argparse.ArgumentParser) -> None:
        from repro.sim import BACKENDS

        p.add_argument(
            "--backend",
            choices=BACKENDS,
            default=None,
            help="SPMD execution backend: 'threads' (default) or 'processes' "
            "(rank blocks on worker processes — same virtual makespans, "
            "parallel wall clock on multi-core hosts); default also honours "
            "the REPRO_SPMD_BACKEND environment variable",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="process-backend worker count (default: REPRO_SPMD_WORKERS, "
            "else the CPU count)",
        )

    run_p = sub.add_parser("run", help="run one application on the simulated cluster")
    run_p.add_argument("app", choices=sorted(_APPS))
    run_p.add_argument("--nodes", type=int, default=4, help="cluster nodes (paper: 1..32)")
    run_p.add_argument(
        "--mix", choices=sorted(DEVICE_MIXES), default="cpu+2gpu", help="device mix per node"
    )
    add_backend_args(run_p)
    run_p.add_argument(
        "--no-overlap",
        action="store_true",
        help="disable communication/computation overlap (Moldyn/MiniMD/stencils)",
    )
    run_p.add_argument(
        "--until-tol",
        type=float,
        default=None,
        metavar="TOL",
        help="heat3d only: iterate until the L2 step-update norm drops to TOL "
        "(fused stencil+reduce loop) instead of a fixed step count",
    )
    run_p.add_argument(
        "--max-iters",
        type=int,
        default=None,
        metavar="N",
        help="iteration cap for --until-tol (default: the app's iteration count)",
    )
    run_p.add_argument(
        "--time-block",
        type=_time_block_arg,
        default=None,
        metavar="K",
        help="heat3d/jacobi2d/sobel: temporal blocking — K sweeps per deep "
        "halo exchange (grids stay bit-identical), or 'auto' to pick K from "
        "the link table's alpha/beta and the kernel's flop intensity",
    )
    def add_fault_args(p: argparse.ArgumentParser) -> None:
        flt = p.add_argument_group(
            "fault injection (heat3d and kmeans; runs over the reliable comm layer)"
        )
        flt.add_argument(
            "--fault-seed",
            type=int,
            default=None,
            metavar="N",
            help="enable a deterministic fault plan with this seed",
        )
        flt.add_argument("--drop", type=float, default=0.05, help="message drop probability")
        flt.add_argument(
            "--dup", type=float, default=0.02, help="message duplicate probability"
        )
        flt.add_argument(
            "--delay", type=float, default=0.05, help="message extra-delay probability"
        )
        flt.add_argument(
            "--max-delay", type=float, default=1e-4, help="max extra delay in virtual seconds"
        )
        flt.add_argument(
            "--crash-rank", type=int, default=None, metavar="R", help="rank to crash once"
        )
        flt.add_argument(
            "--crash-at", type=float, default=0.0, metavar="T", help="virtual crash time (s)"
        )
        flt.add_argument(
            "--restart-cost", type=float, default=1.0, help="virtual restart stall (s)"
        )
        flt.add_argument(
            "--checkpoint-every",
            type=int,
            default=None,
            metavar="K",
            help="snapshot every K iterations (required with --crash-rank)",
        )

    add_fault_args(run_p)
    run_p.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="record the run and write a Chrome-trace/Perfetto JSON here",
    )

    prof_p = sub.add_parser(
        "profile", help="run one application under observation and report on it"
    )
    prof_p.add_argument("app", choices=sorted(_APPS))
    prof_p.add_argument("--nodes", type=int, default=4, help="cluster nodes")
    prof_p.add_argument(
        "--mix", choices=sorted(DEVICE_MIXES), default="cpu+2gpu", help="device mix per node"
    )
    prof_p.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="quick: small CI-sized inputs; full: the app's paper-sized defaults",
    )
    prof_p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format on stdout (text report or machine-readable JSON)",
    )
    prof_p.add_argument(
        "--time-block",
        type=_time_block_arg,
        default=None,
        metavar="K",
        help="heat3d/jacobi2d/sobel: temporal blocking factor or 'auto'; the "
        "chosen K is reported alongside the profile",
    )
    prof_p.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="also write a Chrome-trace/Perfetto JSON of the run here",
    )
    add_backend_args(prof_p)

    fig_p = sub.add_parser("figure", help="regenerate one paper table/figure")
    fig_p.add_argument("which", choices=sorted(_FIGURES))
    fig_p.add_argument("--scale", choices=["quick", "full"], default="quick")

    sub.add_parser("codesize", help="print the Fig. 6 code-size comparison")

    def add_url_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url",
            default=None,
            metavar="URL",
            help="job-server address (default: REPRO_SERVE_URL, else "
            "http://127.0.0.1:8642)",
        )

    serve_p = sub.add_parser(
        "serve", help="run the multi-tenant job server (HTTP, foreground)"
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument("--port", type=int, default=8642, help="bind port (0 = ephemeral)")
    serve_p.add_argument(
        "--rank-budget",
        type=int,
        default=64,
        metavar="N",
        help="max simulated ranks in flight across all running jobs",
    )
    serve_p.add_argument(
        "--cache-size",
        type=int,
        default=128,
        metavar="N",
        help="content-addressed result cache entries",
    )
    serve_p.add_argument(
        "--max-queued", type=int, default=1024, metavar="N", help="admission queue bound"
    )
    serve_p.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve_p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent result store directory (survives restarts; "
        "'none' disables, default: in-memory cache only)",
    )

    sub_p = sub.add_parser("submit", help="submit job(s) to a running job server")
    sub_p.add_argument("app", nargs="?", choices=sorted(_APPS))
    sub_p.add_argument(
        "--batch",
        default=None,
        metavar="FILE.json",
        help="submit a JSON list of job specs in one round trip instead of "
        "a single app (one outcome per spec; a bad spec never fails the batch)",
    )
    sub_p.add_argument("--nodes", type=int, default=4, help="cluster nodes")
    sub_p.add_argument(
        "--mix", choices=sorted(DEVICE_MIXES), default="cpu+2gpu", help="device mix per node"
    )
    sub_p.add_argument(
        "--preset",
        choices=["ohio", "laptop", "latency"],
        default="ohio",
        help="cluster preset the server should build",
    )
    sub_p.add_argument(
        "--scale", choices=["quick", "full"], default="quick", help="config size baseline"
    )
    sub_p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="K=V",
        help="config override (repeatable), e.g. --param simulated_steps=2 "
        "--param 'functional_shape=[24,24,24]'; values parse as JSON, "
        "falling back to strings",
    )
    sub_p.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="K=V",
        help="run-function keyword (repeatable), e.g. --option overlap=false",
    )
    sub_p.add_argument(
        "--priority", type=int, default=0, help="scheduling priority (higher runs first)"
    )
    sub_p.add_argument(
        "--trace", action="store_true", help="record the run (fetch via the /trace endpoint)"
    )
    add_backend_args(sub_p)
    add_fault_args(sub_p)
    add_url_arg(sub_p)
    sub_p.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without polling for completion",
    )
    sub_p.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="S",
        help="max seconds to wait for completion (with waiting enabled)",
    )

    jobs_p = sub.add_parser("jobs", help="list a running job server's jobs")
    add_url_arg(jobs_p)
    jobs_p.add_argument(
        "--stats", action="store_true", help="print server/scheduler/cache statistics instead"
    )

    camp_p = sub.add_parser(
        "campaign", help="expand and run a declarative sweep (the campaign engine)"
    )
    camp_sub = camp_p.add_subparsers(dest="campaign_command", required=True)

    def add_store_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help="persistent result store (default: REPRO_STORE, else "
            "~/.cache/repro/results; 'none' disables persistence)",
        )

    camp_run = camp_sub.add_parser(
        "run", help="execute every point of a campaign spec at max throughput"
    )
    camp_run.add_argument("spec", metavar="SPEC.json", help="campaign spec file")
    add_store_arg(camp_run)
    add_url_arg(camp_run)
    camp_run.add_argument(
        "--rank-budget",
        type=int,
        default=64,
        metavar="N",
        help="in-process scheduler rank budget (ignored with --url)",
    )
    camp_run.add_argument(
        "--timeout", type=float, default=3600.0, metavar="S", help="sweep deadline"
    )
    camp_run.add_argument(
        "--out", default=None, metavar="FILE.json", help="write the run document here"
    )
    camp_run.add_argument(
        "--report",
        action="store_true",
        help="render the full report (speedup bars, scaling curves, fault tables)",
    )

    camp_status = camp_sub.add_parser(
        "status", help="expand a campaign and probe the store — no execution"
    )
    camp_status.add_argument("spec", metavar="SPEC.json", help="campaign spec file")
    add_store_arg(camp_status)

    camp_report = camp_sub.add_parser(
        "report", help="render the report from a saved run document"
    )
    camp_report.add_argument(
        "doc", metavar="RUN.json", help="document written by 'campaign run --out'"
    )
    return parser


def cmd_info(args: argparse.Namespace | None = None) -> str:
    cluster = ohio_cluster()
    node = cluster.node
    gpu = node.gpus[0]
    lines = [
        f"repro {__version__} — simulating the paper's evaluation platform:",
        f"  nodes:   {cluster.num_nodes} ({cluster.total_cores} cores, "
        f"{cluster.total_gpus} GPUs)",
        f"  cpu:     {node.cpu.name}, {node.cpu.cores} cores, "
        f"{node.cpu.total_flops / 1e9:.0f} GFLOP/s peak",
        f"  gpu:     {gpu.name} x{node.num_gpus}, {gpu.flops / 1e9:.0f} GFLOP/s, "
        f"{gpu.mem_bandwidth / 1e9:.0f} GB/s, {gpu.shared_mem_per_sm / 1024:.0f} KiB shared/SM",
        f"  network: {cluster.network.name}, {cluster.network.latency * 1e6:.1f} us, "
        f"{cluster.network.bandwidth / 1e9:.1f} GB/s",
        f"  apps:    {', '.join(sorted(_APPS))}",
        f"  mixes:   {', '.join(sorted(DEVICE_MIXES))}",
    ]
    if args is not None and getattr(args, "devices", False):
        lines.append("")
        lines.append(_device_details(cluster))
    if args is not None and getattr(args, "backends", False):
        lines.append("")
        lines.append(_backend_details())
    return "\n".join(lines)


def _backend_details() -> str:
    """The SPMD execution backends and this host's effective defaults."""
    import os

    from repro.sim import BACKENDS, resolve_backend
    from repro.sim.procpool import resolve_workers

    default = resolve_backend(None)
    workers = resolve_workers(None, nranks=1 << 30)
    lines = [
        "SPMD execution backends (--backend, or REPRO_SPMD_BACKEND):",
        "  threads   : every rank is a pooled thread in one process; cheapest",
        "              per run, but all ranks share one GIL",
        "  processes : rank blocks on a warm pool of worker processes with",
        "              shared-memory payloads; identical virtual makespans,",
        "              parallel wall clock on multi-core hosts",
        f"  default   : {default}"
        + (" (from REPRO_SPMD_BACKEND)" if os.environ.get("REPRO_SPMD_BACKEND") else ""),
        f"  workers   : {workers} (--workers, or REPRO_SPMD_WORKERS; host has "
        f"{os.cpu_count() or 1} CPU core(s))",
        f"  backends  : {', '.join(BACKENDS)}",
    ]
    if (os.cpu_count() or 1) <= 1:
        lines.append(
            "  note      : single-core host — the process backend falls back to"
        )
        lines.append("              threads unless --workers forces a worker count")
    return "\n".join(lines)


def _device_details(cluster) -> str:
    """Roofline parameters per device plus the per-rank timeline inventory."""
    from repro.device.cpu import CPUDevice
    from repro.device.gpu import GPUDevice

    node = cluster.node
    cpu, gpu = node.cpu, node.gpus[0]
    lines = [
        "Device roofline parameters (per node):",
        f"  {cpu.name}:",
        f"    cores            : {cpu.cores}",
        f"    flops/core       : {cpu.core_flops / 1e9:.1f} GFLOP/s "
        f"({cpu.total_flops / 1e9:.0f} GFLOP/s total)",
        f"    mem bandwidth    : {cpu.mem_bandwidth / 1e9:.1f} GB/s (shared by all cores)",
        f"    cache            : {cpu.cache_bytes / 2**20:.1f} MiB",
        f"  {gpu.name} (x{node.num_gpus}):",
        f"    SMs              : {gpu.sms}",
        f"    flops            : {gpu.flops / 1e9:.0f} GFLOP/s",
        f"    mem bandwidth    : {gpu.mem_bandwidth / 1e9:.0f} GB/s",
        f"    shared mem/SM    : {gpu.shared_mem_per_sm / 1024:.0f} KiB",
        f"    device memory    : {gpu.device_mem / 2**30:.1f} GiB",
        f"    PCIe             : {gpu.pcie_bandwidth / 1e9:.1f} GB/s, "
        f"{gpu.pcie_latency * 1e6:.1f} us latency",
        f"    kernel launch    : {gpu.kernel_launch_overhead * 1e6:.1f} us",
        f"    atomic insert    : {gpu.atomic_cost * 1e9:.1f} ns global, "
        f"{gpu.shared_atomic_cost * 1e9:.2f} ns shared/localized",
        "",
        "Timeline inventory (per rank; tracks in `repro profile --trace-out`):",
    ]
    names: list[str] = []
    dev_cpu = CPUDevice(cpu)
    names.extend(t.name for t in dev_cpu.timelines())
    for i in range(node.num_gpus):
        names.extend(t.name for t in GPUDevice(gpu, i).timelines())
    names.extend(("nic{rank}.egress", "nic{rank}.ingress"))
    lines.append("  " + ", ".join(names))
    return "\n".join(lines)


_FAULT_APPS = ("heat3d", "kmeans")

#: Apps whose stencil loop accepts the temporal-blocking knob.
_TIME_BLOCK_APPS = ("heat3d", "jacobi2d", "sobel")


def _fault_plan_from_args(args: argparse.Namespace):
    """Build the deterministic fault plan the ``run``/``submit`` flags describe."""
    if args.fault_seed is None:
        return None
    from repro.faults import FaultPlan, RankCrash

    if args.app not in _FAULT_APPS:
        raise SystemExit(
            f"fault injection supports {', '.join(_FAULT_APPS)}, not {args.app}"
        )
    crashes = []
    if args.crash_rank is not None:
        if args.checkpoint_every is None:
            raise SystemExit("--crash-rank requires --checkpoint-every")
        crashes.append(
            RankCrash(
                rank=args.crash_rank,
                at_time=args.crash_at,
                restart_cost=args.restart_cost,
            )
        )
    return FaultPlan.lossy(
        seed=args.fault_seed,
        drop=args.drop,
        dup=args.dup,
        delay=args.delay,
        max_delay=args.max_delay,
        crashes=crashes,
    )


def cmd_run(args: argparse.Namespace) -> str:
    cluster = ohio_cluster(args.nodes)
    kwargs = {}
    if args.backend is not None:
        kwargs["backend"] = args.backend
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if args.app in ("moldyn", "minimd", "sobel", "heat3d") and args.no_overlap:
        kwargs["overlap"] = False
    if args.until_tol is not None:
        if args.app != "heat3d":
            raise SystemExit("--until-tol is only supported for heat3d")
        kwargs["until_tol"] = args.until_tol
        if args.max_iters is not None:
            kwargs["max_iters"] = args.max_iters
    elif args.max_iters is not None:
        raise SystemExit("--max-iters requires --until-tol")
    if args.time_block is not None:
        if args.app not in _TIME_BLOCK_APPS:
            raise SystemExit(
                f"--time-block is only supported for {', '.join(_TIME_BLOCK_APPS)}"
            )
        kwargs["time_block"] = args.time_block
    plan = _fault_plan_from_args(args)
    if plan is not None:
        kwargs["reliable"] = True
        kwargs["fault_plan"] = plan
        if args.checkpoint_every is not None:
            kwargs["checkpoint_every"] = args.checkpoint_every
    if args.trace_out is not None:
        from repro.obs import Recorder

        kwargs["recorder_factory"] = Recorder
    run = _APPS[args.app](cluster, mix=args.mix, **kwargs)
    lines = [
        f"{args.app} on {args.nodes} node(s), {args.mix}:",
        f"  simulated time : {fmt_seconds(run.makespan)}",
        f"  sequential time: {fmt_seconds(run.seq_time)} (modeled, 1 core)",
        f"  speedup        : {run.speedup:.1f}x",
    ]
    if args.until_tol is not None:
        rank0 = run.spmd.values[0]
        final = rank0["residuals"][-1] if rank0["residuals"] else float("nan")
        lines.append(
            f"  convergence    : {rank0['iterations']} iteration(s), "
            f"residual {final:.3e} (tol {args.until_tol:.3e}, "
            f"{'converged' if rank0['converged'] else 'hit the iteration cap'})"
        )
    if args.time_block is not None:
        chosen = run.spmd.values[0]["time_block"]
        source = " (auto-tuned)" if args.time_block == "auto" else ""
        lines.append(f"  time block     : k={chosen}{source}")
    if plan is not None:
        s = plan.stats
        lines.append(
            f"  faults         : seed={args.fault_seed} drops={s.drops} "
            f"dups={s.duplicates} delays={s.delays} crashes={s.crashes_consumed}"
        )
    if args.trace_out is not None:
        from repro.obs import write_chrome_trace

        obj = write_chrome_trace(args.trace_out, run.spmd.traces, run.spmd.makespan)
        lines.append(
            f"  trace          : {args.trace_out} "
            f"({len(obj['traceEvents'])} events; open in ui.perfetto.dev)"
        )
    return "\n".join(lines)


def cmd_profile(args: argparse.Namespace) -> str:
    from repro.obs import profile_app, render_text_report, write_chrome_trace

    run_kwargs = {}
    if args.backend is not None:
        run_kwargs["backend"] = args.backend
    if args.workers is not None:
        run_kwargs["workers"] = args.workers
    if args.time_block is not None:
        if args.app not in _TIME_BLOCK_APPS:
            raise SystemExit(
                f"--time-block is only supported for {', '.join(_TIME_BLOCK_APPS)}"
            )
        run_kwargs["time_block"] = args.time_block
    apprun, report = profile_app(
        args.app, nodes=args.nodes, mix=args.mix, scale=args.scale, **run_kwargs
    )
    report.verify()
    extra = []
    if args.time_block is not None:
        chosen = apprun.spmd.values[0]["time_block"]
        source = " (auto-tuned)" if args.time_block == "auto" else ""
        extra.append(f"time block: k={chosen}{source}")
    if args.trace_out is not None:
        obj = write_chrome_trace(args.trace_out, apprun.spmd.traces, report.makespan)
        extra.append(
            f"trace written to {args.trace_out} "
            f"({len(obj['traceEvents'])} events; open in ui.perfetto.dev)"
        )
    if args.format == "json":
        import json

        return json.dumps(report.to_dict(), indent=2)
    head = f"{args.app} on {args.nodes} node(s), {args.mix} [{args.scale}]"
    return "\n".join([head, "", render_text_report(report)] + extra)


def _serve_url(args: argparse.Namespace) -> str:
    import os

    from repro.serve import DEFAULT_URL

    return args.url or os.environ.get("REPRO_SERVE_URL") or DEFAULT_URL


def _parse_kv_pairs(pairs: list[str], flag: str) -> dict:
    """Parse repeated ``K=V`` flags; values decode as JSON, else stay strings."""
    import json

    out = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"{flag} expects K=V, got {pair!r}")
        try:
            out[key] = json.loads(raw)
        except ValueError:
            out[key] = raw
    return out


def _resolve_store(arg: str | None, *, default_on: bool = False):
    """``--store`` flag -> ResultStore | None ('none' always disables)."""
    from repro.serve import ResultStore, default_store_root

    if arg is not None:
        if arg.lower() == "none":
            return None
        return ResultStore(arg)
    return ResultStore(default_store_root()) if default_on else None


def cmd_serve(args: argparse.Namespace) -> None:  # pragma: no cover - blocks forever
    from repro.serve import JobServer, served_app_names

    store = _resolve_store(args.store)
    server = JobServer(
        host=args.host,
        port=args.port,
        rank_budget=args.rank_budget,
        cache_size=args.cache_size,
        max_queued=args.max_queued,
        verbose=args.verbose,
        store_dir=None if store is None else store.root,
    )
    with server:
        print(f"repro job server listening on {server.url}")
        print(f"  apps        : {', '.join(served_app_names())}")
        print(f"  rank budget : {args.rank_budget} | cache: {args.cache_size} "
              f"| queue: {args.max_queued}")
        if store is not None:
            print(f"  store       : {store.root}")
        print("  submit with : python -m repro submit <app> "
              f"--url {server.url}  (Ctrl-C stops)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down")


def _cmd_submit_batch(args: argparse.Namespace) -> str:
    import json
    from pathlib import Path

    from repro.serve import ServeClient, ServeError

    try:
        data = json.loads(Path(args.batch).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read batch file {args.batch}: {exc}") from None
    if isinstance(data, dict):
        data = data.get("jobs")
    if not isinstance(data, list) or not data:
        raise SystemExit(
            f"{args.batch} must hold a non-empty JSON list of job specs "
            "(or {'jobs': [...]})"
        )
    client = ServeClient(_serve_url(args))
    try:
        entries = client.submit_many(data)
    except ServeError as exc:
        raise SystemExit(f"batch submit failed: {exc}") from None
    accepted = [e for e in entries if "id" in e]
    lines = [
        f"batch of {len(entries)} spec(s): {len(accepted)} accepted, "
        f"{len(entries) - len(accepted)} rejected"
    ]
    for e in entries:
        if "id" not in e:
            lines.append(f"  [{e['index']}] rejected: {e['error']}")
        else:
            cached = " (cached)" if e.get("cached") else ""
            lines.append(f"  [{e['index']}] {e['id']}  {e['state']}{cached}")
    pending = [e["id"] for e in accepted if e["state"] not in ("done", "failed", "cancelled")]
    if args.no_wait or not pending:
        if pending:
            lines.append(f"  poll with: python -m repro jobs --url {client.url}")
        return "\n".join(lines)
    done = client.wait_many(pending, timeout=args.timeout)
    states: dict[str, int] = {}
    for status in done.values():
        states[status["state"]] = states.get(status["state"], 0) + 1
    lines.append(
        "  finished: " + ", ".join(f"{n} {s}" for s, n in sorted(states.items()))
    )
    return "\n".join(lines)


def cmd_submit(args: argparse.Namespace) -> str:
    from repro.serve import JobSpec, ServeClient, ServeError

    if args.batch is not None and args.app is not None:
        raise SystemExit("give either an app or --batch FILE, not both")
    if args.batch is not None:
        return _cmd_submit_batch(args)
    if args.app is None:
        raise SystemExit("submit needs an app (or --batch FILE)")

    options = _parse_kv_pairs(args.option, "--option")
    plan = _fault_plan_from_args(args)
    if plan is not None:
        options["reliable"] = True
        if args.checkpoint_every is not None:
            options["checkpoint_every"] = args.checkpoint_every
    try:
        spec = JobSpec(
            app=args.app,
            nodes=args.nodes,
            mix=args.mix,
            preset=args.preset,
            scale=args.scale,
            params=_parse_kv_pairs(args.param, "--param"),
            options=options,
            fault_plan=plan.to_dict() if plan is not None else None,
            backend=args.backend,
            workers=args.workers,
            priority=args.priority,
            trace=args.trace,
        )
    except Exception as exc:
        raise SystemExit(f"invalid job spec: {exc}") from None
    client = ServeClient(_serve_url(args))
    try:
        job = client.submit(spec)
    except ServeError as exc:
        raise SystemExit(f"submit failed: {exc}") from None
    lines = [
        f"job {job['id']} [{spec.app} x{spec.nodes} {spec.mix}] "
        f"{'cache hit' if job.get('cached') else job['state']} "
        f"(spec {spec.content_hash()[:12]})"
    ]
    if args.no_wait and job["state"] not in ("done", "failed"):
        lines.append(f"  poll with      : python -m repro jobs --url {client.url}")
        return "\n".join(lines)
    done = client.wait(job["id"], timeout=args.timeout)
    if done["state"] != "done":
        detail = done.get("error") or done["state"]
        raise SystemExit(f"job {job['id']} {done['state']}: {detail}")
    result = client.result(job["id"])["result"]
    lines += [
        f"  simulated time : {fmt_seconds(result['makespan'])}",
        f"  sequential time: {fmt_seconds(result['seq_time'])} (modeled, 1 core)",
        f"  speedup        : {result['speedup']:.1f}x",
    ]
    if result.get("fault_stats"):
        s = result["fault_stats"]
        lines.append(
            f"  faults         : drops={s['drops']} dups={s['duplicates']} "
            f"delays={s['delays']} crashes={s['crashes_consumed']}"
        )
    if spec.trace:
        lines.append(f"  trace          : GET {client.url}/jobs/{job['id']}/trace")
    return "\n".join(lines)


def cmd_jobs(args: argparse.Namespace) -> str:
    import json

    from repro.serve import ServeClient, ServeError

    client = ServeClient(_serve_url(args))
    try:
        if args.stats:
            return json.dumps(client.stats(), indent=2, sort_keys=True)
        jobs = client.jobs()
    except ServeError as exc:
        raise SystemExit(f"cannot reach job server at {client.url}: {exc}") from None
    if not jobs:
        return f"no jobs on {client.url}"
    lines = [f"{len(jobs)} job(s) on {client.url}:"]
    for job in jobs:
        tag = f"{job['app']} x{job['ranks']}"
        cached = " (cached)" if job.get("cached") else ""
        lines.append(f"  {job['id']}  {job['state']:<9} {tag}{cached}")
    return "\n".join(lines)


def cmd_campaign(args: argparse.Namespace) -> str:
    import json
    from pathlib import Path

    from repro.campaign import CampaignRunner, CampaignSpec, render_report
    from repro.util.errors import ValidationError

    if args.campaign_command == "report":
        try:
            doc = json.loads(Path(args.doc).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read run document {args.doc}: {exc}") from None
        return render_report(doc)

    try:
        spec = CampaignSpec.load(args.spec)
    except ValidationError as exc:
        raise SystemExit(f"invalid campaign: {exc}") from None
    store = _resolve_store(args.store, default_on=True)

    if args.campaign_command == "status":
        status = CampaignRunner(spec, store=store).status()
        lines = [
            f"campaign {status['campaign']!r}: {status['points']} point(s), "
            f"{status['stored']} stored, {status['missing']} to run",
            f"  store: {status['store'] or '(none)'}",
        ]
        for row in status["rows"]:
            mark = "done " if row["stored"] else "todo "
            seed = "-" if row["seed"] is None else row["seed"]
            lines.append(
                f"  {mark} {row['app']}/{row['preset']} n{row['nodes']} "
                f"{row['mix']} {row['scale']} seed={seed}"
                f"{' +faults' if row['faulty'] else ''}  {row['spec_hash'][:12]}"
            )
        return "\n".join(lines)

    # campaign run
    client = None
    if args.url is not None:
        from repro.serve import ServeClient

        client = ServeClient(_serve_url(args))
    runner = CampaignRunner(
        spec,
        store=None if client is not None else store,
        client=client,
        rank_budget=args.rank_budget,
        timeout=args.timeout,
    )
    try:
        result = runner.run()
    except ValidationError as exc:
        raise SystemExit(f"campaign failed: {exc}") from None
    doc = result.to_dict()
    out_lines = []
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2), encoding="utf-8")
        out_lines.append(f"run document written to {args.out}")
    if args.report:
        out_lines.append(render_report(doc))
    else:
        from repro.campaign import run_table

        out_lines.append(
            run_table(doc["rows"], title=f"campaign {result.name!r}")
        )
        s = result.stats
        out_lines.append(
            f"points={s['points']} executed={s['executed']} "
            f"cache_hits={s['cache_hits']} store_hits={s['store_hits']} "
            f"wall={s['wall_s']}s"
        )
    if not result.ok:
        out_lines.append(f"WARNING: {len(result.failures())} point(s) did not complete")
    return "\n".join(out_lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        print(cmd_info(args))
    elif args.command == "run":
        print(cmd_run(args))
    elif args.command == "profile":
        print(cmd_profile(args))
    elif args.command == "figure":
        print(_FIGURES[args.which](args.scale))
    elif args.command == "codesize":
        print(format_table(figures.fig6_code_sizes(), title="Fig. 6 code sizes"))
    elif args.command == "serve":
        cmd_serve(args)
    elif args.command == "submit":
        print(cmd_submit(args))
    elif args.command == "jobs":
        print(cmd_jobs(args))
    elif args.command == "campaign":
        print(cmd_campaign(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
