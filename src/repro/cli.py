"""Command-line interface: run apps and regenerate experiments.

Examples::

    python -m repro info
    python -m repro run kmeans --nodes 4 --mix cpu+2gpu
    python -m repro run heat3d --nodes 8 --mix cpu --no-overlap
    python -m repro figure table2 --scale quick
    python -m repro codesize
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro import __version__
from repro.apps import heat3d, kmeans, minimd, moldyn, sobel
from repro.cluster.presets import ohio_cluster
from repro.core.env import DEVICE_MIXES
from repro.metrics import fig5_chart, figures, format_table
from repro.util.units import fmt_seconds

_APPS: dict[str, Callable] = {
    "kmeans": kmeans.run,
    "moldyn": moldyn.run,
    "minimd": minimd.run,
    "sobel": sobel.run,
    "heat3d": heat3d.run,
}

_FIGURES = {
    "fig5": lambda scale: _fig5_text(scale),
    "fig6": lambda scale: format_table(figures.fig6_code_sizes(), title="Fig. 6"),
    "table2": lambda scale: format_table(
        figures.table2_intranode(scale), title=f"Table II [{scale}]"
    ),
    "fig7": lambda scale: format_table(
        figures.fig7_optimizations(scale), title=f"Fig. 7 [{scale}]"
    ),
    "fig8": lambda scale: format_table(
        figures.fig8_gpu_baselines(scale), title=f"Fig. 8 [{scale}]"
    ),
    "ablations": lambda scale: format_table(
        figures.ablations(scale), title=f"Ablations [{scale}]"
    ),
}


def _fig5_text(scale: str) -> str:
    rows = figures.fig5_scalability(scale)
    parts = []
    if len({r["nodes"] for r in rows}) > 1:
        for app in sorted({r["app"] for r in rows}):
            parts.append(fig5_chart(rows, app))
    parts.append(
        format_table(
            rows,
            columns=["app", "nodes", "mix", "speedup", "makespan_s"],
            title=f"Fig. 5 [{scale}]",
        )
    )
    return "\n\n".join(parts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pattern framework for heterogeneous clusters (IPDPS'15 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="describe the simulated platform")

    run_p = sub.add_parser("run", help="run one application on the simulated cluster")
    run_p.add_argument("app", choices=sorted(_APPS))
    run_p.add_argument("--nodes", type=int, default=4, help="cluster nodes (paper: 1..32)")
    run_p.add_argument(
        "--mix", choices=sorted(DEVICE_MIXES), default="cpu+2gpu", help="device mix per node"
    )
    run_p.add_argument(
        "--no-overlap",
        action="store_true",
        help="disable communication/computation overlap (Moldyn/MiniMD/stencils)",
    )
    flt = run_p.add_argument_group(
        "fault injection (heat3d and kmeans; runs over the reliable comm layer)"
    )
    flt.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="N",
        help="enable a deterministic fault plan with this seed",
    )
    flt.add_argument("--drop", type=float, default=0.05, help="message drop probability")
    flt.add_argument("--dup", type=float, default=0.02, help="message duplicate probability")
    flt.add_argument("--delay", type=float, default=0.05, help="message extra-delay probability")
    flt.add_argument(
        "--max-delay", type=float, default=1e-4, help="max extra delay in virtual seconds"
    )
    flt.add_argument(
        "--crash-rank", type=int, default=None, metavar="R", help="rank to crash once"
    )
    flt.add_argument(
        "--crash-at", type=float, default=0.0, metavar="T", help="virtual crash time (s)"
    )
    flt.add_argument(
        "--restart-cost", type=float, default=1.0, help="virtual restart stall (s)"
    )
    flt.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="K",
        help="snapshot every K iterations (required with --crash-rank)",
    )

    fig_p = sub.add_parser("figure", help="regenerate one paper table/figure")
    fig_p.add_argument("which", choices=sorted(_FIGURES))
    fig_p.add_argument("--scale", choices=["quick", "full"], default="quick")

    sub.add_parser("codesize", help="print the Fig. 6 code-size comparison")
    return parser


def cmd_info() -> str:
    cluster = ohio_cluster()
    node = cluster.node
    gpu = node.gpus[0]
    lines = [
        f"repro {__version__} — simulating the paper's evaluation platform:",
        f"  nodes:   {cluster.num_nodes} ({cluster.total_cores} cores, "
        f"{cluster.total_gpus} GPUs)",
        f"  cpu:     {node.cpu.name}, {node.cpu.cores} cores, "
        f"{node.cpu.total_flops / 1e9:.0f} GFLOP/s peak",
        f"  gpu:     {gpu.name} x{node.num_gpus}, {gpu.flops / 1e9:.0f} GFLOP/s, "
        f"{gpu.mem_bandwidth / 1e9:.0f} GB/s, {gpu.shared_mem_per_sm / 1024:.0f} KiB shared/SM",
        f"  network: {cluster.network.name}, {cluster.network.latency * 1e6:.1f} us, "
        f"{cluster.network.bandwidth / 1e9:.1f} GB/s",
        f"  apps:    {', '.join(sorted(_APPS))}",
        f"  mixes:   {', '.join(sorted(DEVICE_MIXES))}",
    ]
    return "\n".join(lines)


_FAULT_APPS = ("heat3d", "kmeans")


def cmd_run(args: argparse.Namespace) -> str:
    cluster = ohio_cluster(args.nodes)
    kwargs = {}
    if args.app in ("moldyn", "minimd", "sobel", "heat3d") and args.no_overlap:
        kwargs["overlap"] = False
    plan = None
    if args.fault_seed is not None:
        from repro.faults import FaultPlan, RankCrash

        if args.app not in _FAULT_APPS:
            raise SystemExit(
                f"fault injection supports {', '.join(_FAULT_APPS)}, not {args.app}"
            )
        crashes = []
        if args.crash_rank is not None:
            if args.checkpoint_every is None:
                raise SystemExit("--crash-rank requires --checkpoint-every")
            crashes.append(
                RankCrash(
                    rank=args.crash_rank,
                    at_time=args.crash_at,
                    restart_cost=args.restart_cost,
                )
            )
        plan = FaultPlan.lossy(
            seed=args.fault_seed,
            drop=args.drop,
            dup=args.dup,
            delay=args.delay,
            max_delay=args.max_delay,
            crashes=crashes,
        )
        kwargs["reliable"] = True
        kwargs["fault_plan"] = plan
        if args.checkpoint_every is not None:
            kwargs["checkpoint_every"] = args.checkpoint_every
    run = _APPS[args.app](cluster, mix=args.mix, **kwargs)
    lines = [
        f"{args.app} on {args.nodes} node(s), {args.mix}:",
        f"  simulated time : {fmt_seconds(run.makespan)}",
        f"  sequential time: {fmt_seconds(run.seq_time)} (modeled, 1 core)",
        f"  speedup        : {run.speedup:.1f}x",
    ]
    if plan is not None:
        s = plan.stats
        lines.append(
            f"  faults         : seed={args.fault_seed} drops={s.drops} "
            f"dups={s.duplicates} delays={s.delays} crashes={s.crashes_consumed}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        print(cmd_info())
    elif args.command == "run":
        print(cmd_run(args))
    elif args.command == "figure":
        print(_FIGURES[args.which](args.scale))
    elif args.command == "codesize":
        print(format_table(figures.fig6_code_sizes(), title="Fig. 6 code sizes"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
