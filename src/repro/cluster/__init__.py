"""Hardware model: CPU/GPU/node/interconnect specifications.

The specs are *descriptions* only — execution and timing live in
:mod:`repro.device` and :mod:`repro.sim`.  The paper's evaluation platform
(32 nodes, each a 12-core Xeon 5650 with two NVIDIA M2070 GPUs, InfiniBand)
is available as :func:`repro.cluster.presets.ohio_cluster`.
"""

from repro.cluster.specs import (
    CPUSpec,
    GPUSpec,
    InterconnectSpec,
    NodeSpec,
    ClusterSpec,
)
from repro.cluster.presets import (
    ohio_cluster,
    xeon_5650,
    nvidia_m2070,
    qdr_infiniband,
    laptop_cluster,
)
from repro.cluster.topology import dims_create, coords_of, rank_of

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "InterconnectSpec",
    "NodeSpec",
    "ClusterSpec",
    "ohio_cluster",
    "xeon_5650",
    "nvidia_m2070",
    "qdr_infiniband",
    "laptop_cluster",
    "dims_create",
    "coords_of",
    "rank_of",
]
