"""Cartesian process-topology helpers (an ``MPI_Dims_create`` equivalent).

The stencil runtime asks the user for a virtual processor topology; when the
user passes ``None`` the runtime balances the factorization of the process
count over the grid dimensions, exactly like ``MPI_Dims_create``.
"""

from __future__ import annotations

from repro.util.errors import ValidationError


def _prime_factors(n: int) -> list[int]:
    """Prime factorization in descending order. ``12 -> [3, 2, 2]``."""
    factors: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    factors.sort(reverse=True)
    return factors


def dims_create(nprocs: int, ndims: int, dims: list[int] | None = None) -> tuple[int, ...]:
    """Choose a balanced ``ndims``-dimensional grid of ``nprocs`` processes.

    Mirrors ``MPI_Dims_create`` semantics: entries of ``dims`` that are
    nonzero are constraints that must be honoured; zero entries are filled
    in.  Larger extents are assigned to earlier dimensions, and prime
    factors are distributed largest-first onto the currently smallest
    dimension to keep the grid as cubic as possible.

    >>> dims_create(12, 2)
    (4, 3)
    >>> dims_create(12, 2, [0, 2])
    (6, 2)
    """
    if nprocs <= 0:
        raise ValidationError(f"nprocs must be > 0, got {nprocs}")
    if ndims <= 0:
        raise ValidationError(f"ndims must be > 0, got {ndims}")
    fixed = list(dims) if dims is not None else [0] * ndims
    if len(fixed) != ndims:
        raise ValidationError(f"dims has length {len(fixed)}, expected {ndims}")

    remaining = nprocs
    for extent in fixed:
        if extent < 0:
            raise ValidationError("dims entries must be >= 0")
        if extent > 0:
            if remaining % extent != 0:
                raise ValidationError(
                    f"cannot decompose {nprocs} processes with constraint {fixed}"
                )
            remaining //= extent

    free_axes = [i for i, extent in enumerate(fixed) if extent == 0]
    result = list(fixed)
    if not free_axes:
        if remaining != 1:
            raise ValidationError(f"constraints {fixed} do not use all {nprocs} processes")
        return tuple(result)

    extents = [1] * len(free_axes)
    for factor in _prime_factors(remaining):
        smallest = min(range(len(extents)), key=lambda i: extents[i])
        extents[smallest] *= factor
    extents.sort(reverse=True)
    for axis, extent in zip(free_axes, extents):
        result[axis] = extent
    return tuple(result)


def coords_of(rank: int, dims: tuple[int, ...]) -> tuple[int, ...]:
    """Row-major coordinates of ``rank`` in a grid of shape ``dims``.

    >>> coords_of(5, (2, 3))
    (1, 2)
    """
    total = 1
    for d in dims:
        total *= d
    if not 0 <= rank < total:
        raise ValidationError(f"rank {rank} out of range for dims {dims}")
    coords = []
    for extent in reversed(dims):
        coords.append(rank % extent)
        rank //= extent
    return tuple(reversed(coords))


def rank_of(coords: tuple[int, ...], dims: tuple[int, ...]) -> int:
    """Row-major rank of ``coords`` in a grid of shape ``dims``.

    Inverse of :func:`coords_of`.
    """
    if len(coords) != len(dims):
        raise ValidationError(f"coords {coords} do not match dims {dims}")
    rank = 0
    for c, extent in zip(coords, dims):
        if not 0 <= c < extent:
            raise ValidationError(f"coords {coords} out of range for dims {dims}")
        rank = rank * extent + c
    return rank
