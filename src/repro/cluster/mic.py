"""Intel MIC (Xeon Phi) coprocessor preset — the paper's stated future work.

The paper closes with: *"Our future work is to extend our framework to
cover more communication patterns, and exploiting other architectures such
as clusters involving Intel MIC coprocessors."*  This module provides that
extension for the simulator: a Knights Corner card is, from the runtime's
perspective, another PCIe *offload accelerator* — data ships over PCIe, a
wide-parallel kernel runs on it, results come back — so it slots into the
same device class as a GPU with different rates:

- much higher DP peak than the M2070 (~1 TFLOP/s vs 515 GFLOP/s),
- higher memory bandwidth (GDDR5, ~320 GB/s),
- large coherent L2 instead of per-SM scratchpads (reduction localization
  maps to core-private L2 slices: a big "shared memory" and cheap cached
  atomics, but a modest uncontended-vs-contended gap),
- the same PCIe Gen2 link.

Everything in :mod:`repro.core` works unchanged on MIC nodes; see
``examples/xeon_phi_extension.py`` and ``tests/cluster/test_mic.py``.
"""

from __future__ import annotations

from repro.cluster.presets import qdr_infiniband, xeon_5650
from repro.cluster.specs import ClusterSpec, GPUSpec, NodeSpec
from repro.util.units import GB, GFLOPS, KIB, US


def xeon_phi_5110p() -> GPUSpec:
    """Intel Xeon Phi 5110P (Knights Corner): 60 cores, 1.01 TFLOP/s DP.

    Modeled with the offload-accelerator device class (see module
    docstring); ``sms`` carries the core count and ``shared_mem_per_sm``
    the per-core L2 slice used for reduction localization.
    """
    return GPUSpec(
        name="Intel Xeon Phi 5110P",
        sms=60,
        flops=1011 * GFLOPS,
        mem_bandwidth=320 * GB,
        shared_mem_per_sm=512 * KIB,
        device_mem=8 * GB,
        pcie_bandwidth=8 * GB,
        pcie_latency=12 * US,
        kernel_launch_overhead=15 * US,  # offload-region spin-up
        atomic_cost=40e-9,  # coherent-L2 contended atomic
        shared_atomic_cost=8e-9,  # core-local cached atomic
    )


def mic_cluster(num_nodes: int = 8, mics_per_node: int = 1) -> ClusterSpec:
    """A cluster of Xeon 5650 hosts with Xeon Phi coprocessors."""
    phi = xeon_phi_5110p()
    node = NodeSpec(
        cpu=xeon_5650(),
        gpus=tuple(phi for _ in range(mics_per_node)),
        memory=47 * GB,
    )
    return ClusterSpec(
        name=f"mic-{num_nodes}n-{mics_per_node}phi",
        node=node,
        num_nodes=num_nodes,
        network=qdr_infiniband(),
    )
