"""Hardware presets, including the paper's evaluation platform.

The paper (§IV): *"a CPU-GPU cluster, which consists of 32 nodes, with each
node having a 12 core Intel Xeon 5650 CPU and 2 NVIDIA M2070 GPUs (thus, 64
GPUs in all). Each node has a system memory of 47 GB, and each GPU has a
device memory of 6 GB"*, connected by InfiniBand (MVAPICH2).

Peak numbers below come from vendor datasheets; the software-visible
efficiency factors live with each application's work model, not here.
"""

from __future__ import annotations

from repro.cluster.specs import (
    CPUSpec,
    GPUSpec,
    InterconnectSpec,
    NodeSpec,
    ClusterSpec,
)
from repro.util.units import GB, GFLOPS, KIB, US


def xeon_5650() -> CPUSpec:
    """Intel Xeon X5650 pair: 2 sockets x 6 cores @ 2.66 GHz.

    Per-core DP peak = 2.66 GHz * 4 FLOP/cycle (SSE 2-wide FMA-less: 2 add +
    2 mul) = 10.64 GFLOP/s.  Node memory bandwidth = 2 sockets * 32 GB/s.
    """
    return CPUSpec(
        name="Intel Xeon 5650 (2x6 cores)",
        cores=12,
        core_flops=10.64 * GFLOPS,
        mem_bandwidth=64 * GB,
        cache_bytes=2 * 12 * 1024 * KIB,  # 2 sockets x 12 MiB L3
    )


def nvidia_m2070() -> GPUSpec:
    """NVIDIA Tesla M2070 (Fermi): 14 SMs, 515 GFLOP/s DP, 150 GB/s.

    Atomic costs reflect Fermi's well-documented gap between global-memory
    atomics (~hundreds of ns under contention) and shared-memory atomics;
    the ratio is what makes the paper's reduction-localization optimization
    profitable.
    """
    return GPUSpec(
        name="NVIDIA Tesla M2070",
        sms=14,
        flops=515 * GFLOPS,
        mem_bandwidth=150 * GB,
        shared_mem_per_sm=48 * KIB,
        device_mem=6 * GB,
        pcie_bandwidth=8 * GB,
        pcie_latency=10 * US,
        kernel_launch_overhead=7 * US,
        atomic_cost=120e-9,
        shared_atomic_cost=6e-9,
    )


def qdr_infiniband() -> InterconnectSpec:
    """QDR InfiniBand as seen by MVAPICH2: ~2 us latency, ~3.2 GB/s."""
    return InterconnectSpec(
        name="QDR InfiniBand",
        latency=2 * US,
        bandwidth=3.2 * GB,
        send_overhead=0.5 * US,
        recv_overhead=0.5 * US,
    )


def ohio_cluster(num_nodes: int = 32, gpus_per_node: int = 2) -> ClusterSpec:
    """The paper's 32-node CPU-GPU cluster (§IV), scalable for sweeps.

    Args:
        num_nodes: Number of nodes (the paper sweeps 1..32).
        gpus_per_node: GPUs per node (the paper uses 0, 1, or 2).
    """
    gpu = nvidia_m2070()
    node = NodeSpec(
        cpu=xeon_5650(),
        gpus=tuple(gpu for _ in range(gpus_per_node)),
        memory=47 * GB,
    )
    return ClusterSpec(
        name=f"ohio-{num_nodes}n-{gpus_per_node}g",
        node=node,
        num_nodes=num_nodes,
        network=qdr_infiniband(),
    )


def laptop_cluster(num_nodes: int = 2, cores: int = 4, gpus_per_node: int = 1) -> ClusterSpec:
    """A small synthetic cluster for tests and quickstart examples.

    Deliberately modest and *not* calibrated to any real machine; tests use
    it when they care about protocol behaviour rather than paper numbers.
    """
    cpu = CPUSpec(
        name="test-cpu",
        cores=cores,
        core_flops=8 * GFLOPS,
        mem_bandwidth=20 * GB,
        cache_bytes=8 * 1024 * KIB,
    )
    gpu = GPUSpec(
        name="test-gpu",
        sms=8,
        flops=200 * GFLOPS,
        mem_bandwidth=80 * GB,
        shared_mem_per_sm=48 * KIB,
        device_mem=2 * GB,
        pcie_bandwidth=6 * GB,
        pcie_latency=10 * US,
        kernel_launch_overhead=5 * US,
        atomic_cost=100e-9,
        shared_atomic_cost=5e-9,
    )
    node = NodeSpec(cpu=cpu, gpus=tuple(gpu for _ in range(gpus_per_node)), memory=16 * GB)
    network = InterconnectSpec(name="test-net", latency=5 * US, bandwidth=1 * GB)
    return ClusterSpec(
        name=f"laptop-{num_nodes}n", node=node, num_nodes=num_nodes, network=network
    )


def latency_cluster(num_nodes: int = 2, cores: int = 4, gpus_per_node: int = 1) -> ClusterSpec:
    """A latency-dominated variant of :func:`laptop_cluster`.

    Same nodes, but the network has a high per-message constant (WAN-ish
    latency plus heavy send/recv overheads) and modest bandwidth — the
    regime where per-sweep halo rounds put a latency floor under stencil
    makespans and temporal blocking (``configure(time_block=...)``) pays
    off.  Used by the ``stencil_timeblock`` bench case and the
    time-block ablation.
    """
    base = laptop_cluster(num_nodes=num_nodes, cores=cores, gpus_per_node=gpus_per_node)
    network = InterconnectSpec(
        name="high-alpha-net",
        latency=150 * US,
        bandwidth=0.8 * GB,
        send_overhead=20 * US,
        recv_overhead=20 * US,
    )
    return ClusterSpec(
        name=f"latency-{num_nodes}n", node=base.node, num_nodes=num_nodes, network=network
    )
