"""Immutable hardware specifications.

All dataclasses here are frozen: a spec is a value, shared freely between
ranks and devices.  Rates are in base SI units (bytes/s, FLOP/s, seconds);
use the constants in :mod:`repro.util.units` when constructing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class CPUSpec:
    """A multi-core CPU socket group (all cores of one node).

    Attributes:
        name: Marketing name, for reports.
        cores: Number of physical cores usable by the runtime.
        core_flops: Peak double-precision FLOP/s of a single core.
        mem_bandwidth: Aggregate node memory bandwidth in bytes/s.
        cache_bytes: Last-level cache capacity in bytes (per node); used by
            the stencil cost model to decide when tiling pays off.
    """

    name: str
    cores: int
    core_flops: float
    mem_bandwidth: float
    cache_bytes: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValidationError(f"CPUSpec.cores must be > 0, got {self.cores}")
        for attr in ("core_flops", "mem_bandwidth", "cache_bytes"):
            if getattr(self, attr) <= 0:
                raise ValidationError(f"CPUSpec.{attr} must be > 0")

    @property
    def total_flops(self) -> float:
        """Peak FLOP/s across all cores."""
        return self.cores * self.core_flops


@dataclass(frozen=True)
class GPUSpec:
    """A discrete GPU accelerator.

    Attributes:
        name: Marketing name.
        sms: Number of streaming multiprocessors.
        flops: Peak double-precision FLOP/s for the whole device.
        mem_bandwidth: Device-memory bandwidth in bytes/s.
        shared_mem_per_sm: On-chip shared memory per SM in bytes (Fermi
            default split: 48 KiB shared + 16 KiB L1).
        device_mem: Device memory capacity in bytes.
        pcie_bandwidth: Host<->device transfer bandwidth in bytes/s.
        pcie_latency: Fixed cost of initiating one host<->device copy.
        kernel_launch_overhead: Fixed cost of one kernel launch in seconds.
        atomic_cost: Cost of one uncontended device-memory atomic (seconds).
        shared_atomic_cost: Cost of one shared-memory atomic (seconds) —
            much cheaper; this gap is what the paper's *reduction
            localization* optimization exploits.
    """

    name: str
    sms: int
    flops: float
    mem_bandwidth: float
    shared_mem_per_sm: float
    device_mem: float
    pcie_bandwidth: float
    pcie_latency: float
    kernel_launch_overhead: float
    atomic_cost: float
    shared_atomic_cost: float

    def __post_init__(self) -> None:
        for attr in (
            "sms",
            "flops",
            "mem_bandwidth",
            "shared_mem_per_sm",
            "device_mem",
            "pcie_bandwidth",
        ):
            if getattr(self, attr) <= 0:
                raise ValidationError(f"GPUSpec.{attr} must be > 0")
        for attr in ("pcie_latency", "kernel_launch_overhead", "atomic_cost", "shared_atomic_cost"):
            if getattr(self, attr) < 0:
                raise ValidationError(f"GPUSpec.{attr} must be >= 0")


@dataclass(frozen=True)
class InterconnectSpec:
    """A point-to-point link class (network fabric or intra-node memory bus).

    The LogGP-style message time used by :mod:`repro.comm` is
    ``latency + size / bandwidth`` plus per-end software overheads.
    """

    name: str
    latency: float
    bandwidth: float
    send_overhead: float = 0.0
    recv_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValidationError("InterconnectSpec.bandwidth must be > 0")
        for attr in ("latency", "send_overhead", "recv_overhead"):
            if getattr(self, attr) < 0:
                raise ValidationError(f"InterconnectSpec.{attr} must be >= 0")

    def transfer_time(self, nbytes: float) -> float:
        """Wire time for a message of ``nbytes`` (excluding CPU overheads)."""
        if nbytes < 0:
            raise ValidationError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class NodeSpec:
    """One cluster node: a CPU plus zero or more GPUs.

    ``intra_link`` models process-to-process transfers *within* a node (used
    when an experiment runs one MPI rank per core, as the paper's
    hand-written baselines do).
    """

    cpu: CPUSpec
    gpus: tuple[GPUSpec, ...] = ()
    memory: float = 48e9
    intra_link: InterconnectSpec = field(
        default_factory=lambda: InterconnectSpec(
            name="shared-memory", latency=0.4e-6, bandwidth=6e9
        )
    )

    def __post_init__(self) -> None:
        if self.memory <= 0:
            raise ValidationError("NodeSpec.memory must be > 0")

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``num_nodes`` identical nodes.

    The paper's platform is homogeneous; heterogeneity *within* a node
    (CPU vs. GPUs) is what the framework targets.
    """

    name: str
    node: NodeSpec
    num_nodes: int
    network: InterconnectSpec

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValidationError(f"ClusterSpec.num_nodes must be > 0, got {self.num_nodes}")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.cpu.cores

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node.num_gpus

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """Return a copy scaled to ``num_nodes`` (for node-count sweeps)."""
        return ClusterSpec(
            name=self.name, node=self.node, num_nodes=num_nodes, network=self.network
        )

    def link_between(self, node_a: int, node_b: int) -> InterconnectSpec:
        """The link class connecting two node indices (intra vs. network)."""
        if not (0 <= node_a < self.num_nodes and 0 <= node_b < self.num_nodes):
            raise ValidationError(
                f"node indices ({node_a}, {node_b}) out of range for {self.num_nodes} nodes"
            )
        return self.node.intra_link if node_a == node_b else self.network
