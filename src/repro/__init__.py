"""repro — pattern specification & optimizations framework for heterogeneous clusters.

A full Python reproduction of Chen, Huo & Agrawal, *"A Pattern
Specification and Optimizations Framework for Accelerating Scientific
Computations on Heterogeneous Clusters"* (IPDPS 2015): the three pattern
runtimes (generalized reductions, irregular reductions, stencils), the
simulated CPU-GPU cluster substrate they run on, the paper's five
evaluation applications with their hand-written MPI/CUDA baselines, and a
benchmark harness regenerating every table and figure.

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core`    — the framework: runtimes, reduction objects, scheduling
- :mod:`repro.comm`    — MPI-like message passing with virtual-time costs
- :mod:`repro.sim`     — SPMD engine, virtual clocks, timelines, tracing
- :mod:`repro.device`  — CPU/GPU execution + roofline cost models
- :mod:`repro.cluster` — hardware specs (incl. the paper's 32-node platform)
- :mod:`repro.apps`    — Kmeans, Moldyn, MiniMD, Sobel, Heat3D (+ baselines)
- :mod:`repro.data`    — synthetic workload generators
- :mod:`repro.metrics` — experiment drivers for every paper table/figure

Quickstart::

    from repro.cluster import ohio_cluster
    from repro.apps import kmeans

    run = kmeans.run(ohio_cluster(4), mix="cpu+2gpu")
    print(run.speedup)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
