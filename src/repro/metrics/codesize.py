"""Code-size measurement for the Fig. 6 comparison.

Counts *logical* lines: physical lines that are not blank, not comments,
and not part of a docstring — approximating the paper's lines-of-code
metric on C sources.  The comparison pairs the user-level framework
programs in ``examples/`` against the hand-written MPI baselines in
``repro.apps.baselines`` (which are deliberately explicit; see that
package's docstring).
"""

from __future__ import annotations

import io
import tokenize
from pathlib import Path

from repro.util.errors import ValidationError


def count_logical_lines(path: str | Path) -> int:
    """Count non-blank, non-comment, non-docstring lines of a Python file."""
    path = Path(path)
    if not path.is_file():
        raise ValidationError(f"no such file: {path}")
    source = path.read_text(encoding="utf-8")
    code_lines: set[int] = set()
    last_significant = tokenize.NEWLINE
    for tok in tokenize.generate_tokens(io.StringIO(source).readline):
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            if tok.type in (tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
                last_significant = tok.type
            continue
        if tok.type == tokenize.STRING and last_significant in (
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
        ):
            # A string statement at the start of a logical line = docstring.
            last_significant = tok.type
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(line)
        last_significant = tok.type
    return len(code_lines)


def code_size_table(pairs: dict[str, tuple[str | Path, str | Path]]) -> list[dict]:
    """Fig. 6 rows: ``{app: (framework_file, mpi_file)}`` → size ratios."""
    rows = []
    for app, (fw_path, mpi_path) in pairs.items():
        fw = count_logical_lines(fw_path)
        mpi = count_logical_lines(mpi_path)
        rows.append(
            {
                "app": app,
                "framework_loc": fw,
                "mpi_loc": mpi,
                "ratio": fw / mpi if mpi else float("nan"),
            }
        )
    return rows
