"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, Iterable


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Iterable[dict], columns: list[str] | None = None, title: str = "") -> str:
    """Render dict rows as an aligned monospace table (markdown-compatible)."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("| " + " | ".join(col.ljust(w) for col, w in zip(columns, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for r in rendered:
        lines.append("| " + " | ".join(v.ljust(w) for v, w in zip(r, widths)) + " |")
    return "\n".join(lines)
