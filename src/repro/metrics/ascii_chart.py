"""Terminal line charts for benchmark series (Fig. 5-style curves).

The environment this reproduction targets has no display; these render
log-log speedup curves as monospace charts so the figure *shapes* (who
wins, where curves cross, how scaling bends) are visible in CI output and
EXPERIMENTS.md.
"""

from __future__ import annotations

import math

from repro.util.errors import ValidationError

_MARKERS = "ox+*#@%&"


def render_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    logx: bool = True,
    logy: bool = True,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    >>> print(render_chart({"a": [(1, 1), (2, 2)]}, width=20, height=5,
    ...                    title="t"))  # doctest: +SKIP
    """
    if not series or all(not pts for pts in series.values()):
        raise ValidationError("render_chart needs at least one non-empty series")
    if width < 16 or height < 4:
        raise ValidationError("chart too small to be legible")

    def tx(v: float) -> float:
        if logx:
            if v <= 0:
                raise ValidationError("log-x chart requires positive x values")
            return math.log10(v)
        return v

    def ty(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValidationError("log-y chart requires positive y values")
            return math.log10(v)
        return v

    xs = [tx(x) for pts in series.values() for x, _ in pts]
    ys = [ty(y) for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            col = int(round((tx(x) - x_lo) / x_span * (width - 1)))
            row = int(round((ty(y) - y_lo) / y_span * (height - 1)))
            canvas[height - 1 - row][col] = marker

    raw_lo = 10**y_lo if logy else y_lo
    raw_hi = 10**y_hi if logy else y_hi
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(canvas):
        label = ""
        if i == 0:
            label = f"{raw_hi:.3g}"
        elif i == height - 1:
            label = f"{raw_lo:.3g}"
        lines.append(f"{label:>8} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    x_raw_lo = 10**x_lo if logx else x_lo
    x_raw_hi = 10**x_hi if logx else x_hi
    footer = f"{x_raw_lo:.3g}".ljust(width // 2) + f"{x_raw_hi:.3g}".rjust(width // 2)
    lines.append(" " * 10 + footer)
    if xlabel or ylabel:
        lines.append(" " * 10 + f"x: {xlabel}   y: {ylabel}".strip())
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def render_bars(
    items: list[tuple[str, float]],
    *,
    width: int = 40,
    max_value: float | None = None,
    fmt: str = "{:6.1%}",
    title: str = "",
) -> str:
    """Render labeled values as horizontal ASCII bars (e.g. utilization).

    ``max_value`` sets the full-bar scale (default: the largest value, or
    1.0 if everything is zero).  Values are clamped into [0, max_value].

    >>> print(render_bars([("gpu0", 0.75), ("cpu0", 0.5)], width=8, max_value=1.0))
    gpu0  75.0% |######  |
    cpu0  50.0% |####    |
    """
    if not items:
        raise ValidationError("render_bars needs at least one item")
    if width < 4:
        raise ValidationError("bars too narrow to be legible")
    scale = max_value if max_value is not None else (max(v for _, v in items) or 1.0)
    if scale <= 0:
        raise ValidationError(f"max_value must be > 0, got {scale}")
    label_w = max(len(name) for name, _ in items)
    lines = [title] if title else []
    for name, value in items:
        filled = int(round(min(max(value, 0.0), scale) / scale * width))
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"{name.ljust(label_w)} {fmt.format(value).strip():>6} |{bar}|")
    return "\n".join(lines)


def fig5_chart(rows: list[dict], app: str, *, width: int = 64, height: int = 16) -> str:
    """Fig. 5 sub-plot for one app: speedup-vs-nodes per device mix."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        if row["app"] != app:
            continue
        series.setdefault(row["mix"], []).append((row["nodes"], row["speedup"]))
    if not series:
        raise ValidationError(f"no rows for app {app!r}")
    for pts in series.values():
        pts.sort()
    return render_chart(
        series,
        width=width,
        height=height,
        title=f"Fig. 5 — {app}: speedup over 1 CPU core (log-log)",
        xlabel="nodes",
        ylabel="speedup",
    )
