"""Experiment drivers — one per table/figure in the paper's evaluation.

Every function returns a list of row dicts (ready for
:func:`repro.metrics.reporting.format_table`) and is used both by the
benchmark suite (``benchmarks/``) and by the EXPERIMENTS.md generator
(``examples/generate_experiments_md.py``).

Workload knobs: each driver takes a ``scale`` in {"quick", "full"}.
Both charge the cost model at the paper's workload sizes; they differ only
in the functional array sizes (math volume) and the node counts swept, so
"quick" fits in CI while "full" is what EXPERIMENTS.md reports.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.apps import heat3d, kmeans, minimd, moldyn, sobel
from repro.apps.baselines import (
    cuda_kmeans,
    cuda_sobel,
    mpi_heat3d,
    mpi_kmeans,
    mpi_minimd,
    mpi_sobel,
)
from repro.cluster.presets import ohio_cluster
from repro.metrics.codesize import code_size_table
from repro.util.errors import ValidationError

#: Device mixes plotted in Fig. 5 (per node).
FIG5_MIXES = ["cpu", "1gpu", "2gpu", "cpu+1gpu", "cpu+2gpu"]

#: Paper values quoted for EXPERIMENTS.md comparisons (from §IV and Table II).
PAPER = {
    "gpu_cpu_ratio": {"kmeans": 2.69, "moldyn": 1.5, "minimd": 1.7, "sobel": 2.24, "heat3d": 2.4},
    "table2_perfect": {
        "kmeans": (3.69, 6.38),
        "moldyn": (2.5, 4.0),
        "minimd": (2.7, 4.4),
        "sobel": (3.24, 5.48),
        "heat3d": (3.4, 5.8),
    },
    "table2_actual": {
        "kmeans": (3.23, 5.16),
        "moldyn": (2.31, 3.79),
        "minimd": (2.15, 3.89),
        "sobel": (2.94, 4.68),
        "heat3d": (3.2, 5.5),
    },
    "mpi_ratio": {"kmeans": 1.05, "minimd": 1.17, "sobel": 0.89, "heat3d": 1.08},
    "fig6_ratio": {"kmeans": 0.53, "minimd": 0.37, "sobel": 0.40, "heat3d": 0.28},
    "fig7_overlap": {"moldyn": 1.37, "sobel": 1.11},
    "fig7_tiling": {"sobel": 1.20},
    "fig8_ratio": {"kmeans": 1.06, "sobel": 1.15},
    "overall_speedup_range": (562, 1760),
}


def _node_counts(scale: str) -> list[int]:
    if scale == "quick":
        return [1, 4]
    if scale == "full":
        return [1, 2, 4, 8, 16, 32]
    raise ValidationError(f"scale must be 'quick' or 'full', got {scale!r}")


def _configs(scale: str) -> dict:
    """Per-app configs; functional sizes grow a little at full scale."""
    if scale == "quick":
        return {
            "kmeans": kmeans.KmeansConfig(functional_points=48_000),
            "moldyn": moldyn.MoldynConfig(functional_nodes=6_000, functional_degree=14),
            "minimd": minimd.MiniMDConfig(functional_cells=8),
            "sobel": sobel.SobelConfig(functional_shape=(384, 384)),
            "heat3d": heat3d.Heat3DConfig(functional_shape=(36, 36, 36)),
        }
    return {
        "kmeans": kmeans.KmeansConfig(functional_points=384_000),
        "moldyn": moldyn.MoldynConfig(),
        "minimd": minimd.MiniMDConfig(),
        "sobel": sobel.SobelConfig(functional_shape=(768, 768)),
        "heat3d": heat3d.Heat3DConfig(),
    }


_APP_RUNNERS: dict[str, Callable] = {
    "kmeans": kmeans.run,
    "moldyn": moldyn.run,
    "minimd": minimd.run,
    "sobel": sobel.run,
    "heat3d": heat3d.run,
}

_MPI_RUNNERS: dict[str, Callable] = {
    "kmeans": mpi_kmeans.run,
    "minimd": mpi_minimd.run,
    "sobel": mpi_sobel.run,
    "heat3d": mpi_heat3d.run,
}


def fig5_scalability(scale: str = "quick", apps: list[str] | None = None) -> list[dict]:
    """Fig. 5: speedup over one CPU core for every app/mix/node-count.

    Also emits the hand-written MPI rows (CPU-only comparator) for the
    four apps that have one, reproducing the §IV-C text comparisons.
    """
    apps = apps or list(_APP_RUNNERS)
    configs = _configs(scale)
    rows = []
    for app in apps:
        config = configs[app]
        for nodes in _node_counts(scale):
            cluster = ohio_cluster(nodes)
            for mix in FIG5_MIXES:
                run = _APP_RUNNERS[app](cluster, config, mix=mix)
                rows.append(
                    {
                        "app": app,
                        "nodes": nodes,
                        "mix": mix,
                        "speedup": run.speedup,
                        "makespan_s": run.makespan,
                    }
                )
            if app in _MPI_RUNNERS:
                run = _MPI_RUNNERS[app](cluster, config)
                rows.append(
                    {
                        "app": app,
                        "nodes": nodes,
                        "mix": "mpi-handwritten",
                        "speedup": run.speedup,
                        "makespan_s": run.makespan,
                    }
                )
    return rows


def fig5_summary(rows: list[dict]) -> list[dict]:
    """§IV-C derived numbers: framework-vs-MPI ratio and node scaling."""
    out = []
    apps = sorted({r["app"] for r in rows})
    for app in apps:
        mine = [r for r in rows if r["app"] == app]
        nodes = sorted({r["nodes"] for r in mine})
        first, last = nodes[0], nodes[-1]

        def val(mix, n):
            for r in mine:
                if r["mix"] == mix and r["nodes"] == n:
                    return r["speedup"]
            return None

        cpu_first, cpu_last = val("cpu", first), val("cpu", last)
        best_last = val("cpu+2gpu", last)
        mpi_last = val("mpi-handwritten", last)
        out.append(
            {
                "app": app,
                "nodes": f"{first}->{last}",
                "cpu_scaling": (cpu_last / cpu_first) if cpu_first and cpu_last else None,
                "fw_over_mpi": (cpu_last / mpi_last) if mpi_last and cpu_last else None,
                "best_speedup": best_last,
            }
        )
    return out


def table2_intranode(scale: str = "quick", apps: list[str] | None = None) -> list[dict]:
    """Table II: perfect vs. actual CPU+1GPU / CPU+2GPU speedups over CPU.

    *Perfect* uses the measured single-device ratios (as the paper does);
    *actual* is the simulated heterogeneous run — the gap is the scheduling
    /synchronization/communication overhead the table quantifies.
    """
    apps = apps or list(_APP_RUNNERS)
    configs = _configs(scale)
    cluster = ohio_cluster(1)
    rows = []
    for app in apps:
        config = configs[app]
        runs = {
            mix: _APP_RUNNERS[app](cluster, config, mix=mix)
            for mix in ("cpu", "1gpu", "cpu+1gpu", "cpu+2gpu")
        }
        gpu_ratio = runs["cpu"].makespan / runs["1gpu"].makespan
        rows.append(
            {
                "app": app,
                "gpu_vs_cpu": gpu_ratio,
                "perfect_1gpu": 1 + gpu_ratio,
                "actual_1gpu": runs["cpu"].makespan / runs["cpu+1gpu"].makespan,
                "perfect_2gpu": 1 + 2 * gpu_ratio,
                "actual_2gpu": runs["cpu"].makespan / runs["cpu+2gpu"].makespan,
                "paper_actual_1gpu": PAPER["table2_actual"][app][0],
                "paper_actual_2gpu": PAPER["table2_actual"][app][1],
            }
        )
    return rows


def fig6_code_sizes(repo_root: str | Path | None = None) -> list[dict]:
    """Fig. 6: code-size ratio of framework user programs vs MPI baselines."""
    root = Path(repo_root) if repo_root else Path(__file__).resolve().parents[3]
    baselines = root / "src" / "repro" / "apps" / "baselines"
    examples = root / "examples"
    pairs = {
        "kmeans": (examples / "kmeans_clustering.py", baselines / "mpi_kmeans.py"),
        "minimd": (examples / "minimd_atoms.py", baselines / "mpi_minimd.py"),
        "sobel": (examples / "sobel_edges.py", baselines / "mpi_sobel.py"),
        "heat3d": (examples / "heat_diffusion.py", baselines / "mpi_heat3d.py"),
    }
    rows = code_size_table(pairs)
    for row in rows:
        row["paper_ratio"] = PAPER["fig6_ratio"][row["app"]]
    return rows


def fig7_optimizations(scale: str = "quick") -> list[dict]:
    """Fig. 7: overlap (Moldyn, Sobel) and tiling (Sobel) effects by nodes."""
    configs = _configs(scale)
    rows = []
    for nodes in _node_counts(scale):
        cluster = ohio_cluster(nodes)
        base = moldyn.run(cluster, configs["moldyn"], mix="cpu+2gpu", overlap=True)
        nool = moldyn.run(cluster, configs["moldyn"], mix="cpu+2gpu", overlap=False)
        rows.append(
            {
                "app": "moldyn",
                "optimization": "overlap",
                "nodes": nodes,
                "with_opt_s": base.makespan,
                "without_opt_s": nool.makespan,
                "gain": nool.makespan / base.makespan,
            }
        )
        base = sobel.run(cluster, configs["sobel"], mix="cpu+2gpu", overlap=True, tiling=True)
        nool = sobel.run(cluster, configs["sobel"], mix="cpu+2gpu", overlap=False, tiling=True)
        noti = sobel.run(cluster, configs["sobel"], mix="cpu+2gpu", overlap=True, tiling=False)
        rows.append(
            {
                "app": "sobel",
                "optimization": "overlap",
                "nodes": nodes,
                "with_opt_s": base.makespan,
                "without_opt_s": nool.makespan,
                "gain": nool.makespan / base.makespan,
            }
        )
        rows.append(
            {
                "app": "sobel",
                "optimization": "tiling",
                "nodes": nodes,
                "with_opt_s": base.makespan,
                "without_opt_s": noti.makespan,
                "gain": noti.makespan / base.makespan,
            }
        )
    return rows


def fig8_gpu_baselines(scale: str = "quick") -> list[dict]:
    """Fig. 8: framework (single GPU) vs hand-written CUDA kernels."""
    if scale == "quick":
        kcfg = kmeans.KmeansConfig(n_points=10_000_000, functional_points=50_000)
        scfg = sobel.SobelConfig(shape=(8192, 8192), functional_shape=(256, 256))
    else:
        kcfg = kmeans.KmeansConfig(n_points=10_000_000, functional_points=200_000)
        scfg = sobel.SobelConfig(shape=(8192, 8192), functional_shape=(768, 768))
    cluster = ohio_cluster(1)
    rows = []
    fw = kmeans.run(cluster, kcfg, mix="1gpu")
    cu = cuda_kmeans.run(cluster, kcfg)
    rows.append(
        {
            "app": "kmeans (10M pts)",
            "framework_s": fw.makespan,
            "cuda_s": cu.makespan,
            "fw_over_cuda": fw.makespan / cu.makespan,
            "paper_fw_over_cuda": PAPER["fig8_ratio"]["kmeans"],
        }
    )
    fw = sobel.run(cluster, scfg, mix="1gpu")
    cu = cuda_sobel.run(cluster, scfg)
    rows.append(
        {
            "app": "sobel (8192^2)",
            "framework_s": fw.makespan,
            "cuda_s": cu.makespan,
            "fw_over_cuda": fw.makespan / cu.makespan,
            "paper_fw_over_cuda": PAPER["fig8_ratio"]["sobel"],
        }
    )
    return rows


def ablations(scale: str = "quick") -> list[dict]:
    """DESIGN.md §5 ablations: the design choices the paper motivates.

    - reduction localization on/off (Kmeans GPU),
    - two-stream pipelining on/off (Kmeans GPU),
    - adaptive vs static-even device partitioning (Moldyn heterogeneous),
    - dynamic chunk size sweep (Kmeans heterogeneous),
    - temporal-blocking factor sweep (Jacobi2D, per cluster preset).
    """
    configs = _configs(scale)
    cluster = ohio_cluster(1)
    rows = []

    from repro.sim.engine import spmd_run

    kcfg = configs["kmeans"]
    for localized in (True, False):
        res = spmd_run(
            lambda ctx: _kmeans_custom(ctx, kcfg, localized=localized, streams=2),
            cluster,
        )
        rows.append(
            {
                "ablation": "reduction-localization",
                "setting": "on" if localized else "off",
                "app": "kmeans/1gpu",
                "time_s": res.makespan,
            }
        )
    for streams in (1, 2, 4):
        res = spmd_run(
            lambda ctx: _kmeans_custom(ctx, kcfg, localized=True, streams=streams),
            cluster,
        )
        rows.append(
            {
                "ablation": "gpu-streams",
                "setting": str(streams),
                "app": "kmeans/1gpu",
                "time_s": res.makespan,
            }
        )
    for chunks in (32, 512, 4096):
        res = spmd_run(
            lambda ctx: _kmeans_custom(
                ctx, kcfg, localized=True, streams=2, mix="cpu+2gpu",
                chunk_elems=max(4, kcfg.functional_points // chunks),
            ),
            cluster,
        )
        rows.append(
            {
                "ablation": "chunk-count",
                "setting": str(chunks),
                "app": "kmeans/cpu+2gpu",
                "time_s": res.makespan,
            }
        )
    for adaptive in (True, False):
        res = moldyn.run(cluster, configs["moldyn"], mix="cpu+2gpu")
        if not adaptive:
            res = _moldyn_static(cluster, configs["moldyn"])
        rows.append(
            {
                "ablation": "adaptive-partitioning",
                "setting": "on" if adaptive else "off(static-even)",
                "app": "moldyn/cpu+2gpu",
                "time_s": res.makespan,
            }
        )
    rows.extend(_time_block_ablation())
    return rows


def _time_block_ablation() -> list[dict]:
    """Makespan vs temporal-blocking factor, per cluster preset.

    Fixed-iteration Jacobi2D (tol below reach, so every k runs the same 24
    sweeps): on the bandwidth-rich laptop preset blocking barely matters,
    on the latency-dominated preset the per-message alpha amortization
    shows up directly — the Fig. 7-style optimization trade.
    """
    from repro.apps.extra import jacobi2d
    from repro.cluster.presets import laptop_cluster, latency_cluster

    config = jacobi2d.Jacobi2DConfig(shape=(48, 48), tol=1e-12, max_iters=24)
    rows = []
    for preset, cl in (("laptop", laptop_cluster(2)), ("latency", latency_cluster(2))):
        for k in (1, 2, 4):
            res = jacobi2d.run(cl, config, mix="cpu", time_block=k)
            rows.append(
                {
                    "ablation": "time-block",
                    "setting": f"k={k}@{preset}",
                    "app": "jacobi2d/cpu",
                    "time_s": res.makespan,
                }
            )
    return rows


def _kmeans_custom(ctx, config, *, localized, streams, mix="1gpu", chunk_elems=None):
    """One Kmeans pass with explicit runtime knobs (ablation helper)."""
    from repro.core.env import RuntimeEnv
    from repro.core.partition import block_partition
    from repro.data.points import clustered_points

    points, _ = clustered_points(config.functional_points, config.k, config.dims, seed=config.seed)
    centers = points[: config.k].astype("float64")
    env = RuntimeEnv(ctx, mix)
    gr = env.get_GR(localized=localized, gpu_streams=streams, chunk_elems=chunk_elems)
    gr.set_kernel(kmeans.make_kernel(config, ctx.node))
    offs = block_partition(len(points), ctx.size)
    lo, hi = int(offs[ctx.rank]), int(offs[ctx.rank + 1])
    gr.set_input(
        points[lo:hi],
        global_start=lo,
        model_local_elems=config.n_points // ctx.size,
        parameter=centers,
    )
    gr.start()
    gr.get_global_reduction()
    return None


def _moldyn_static(cluster, config):
    """Moldyn with the adaptive repartitioning disabled (even split)."""
    from repro.sim.engine import spmd_run
    from repro.apps.common import AppRun, extrapolate_steps, sequential_time

    def program(ctx):
        from repro.core.env import RuntimeEnv

        node_data, edges = moldyn._functional_mesh(config)
        env = RuntimeEnv(ctx, "cpu+2gpu")
        ir = env.get_IR(adaptive=False)
        ir.set_kernel(moldyn.make_cf_kernel(ctx.node, config))
        ir.set_parameter(1.0)
        ir.set_mesh(
            edges,
            node_data,
            model_edges=config.n_edges,
            model_nodes=config.n_nodes,
            device_node_bytes=moldyn.DEVICE_NODE_BYTES,
        )
        times = []
        for _ in range(config.simulated_steps):
            t0 = ctx.clock.now
            ir.start()
            ir.update_nodedata(ir.get_local_nodes())
            times.append(ctx.clock.now - t0)
        return times

    result = spmd_run(program, cluster)
    makespan = max(extrapolate_steps(v, config.iterations) for v in result.values)
    seq = sequential_time(moldyn.base_cf_work(), config.n_edges, cluster.node, config.iterations)
    return AppRun(
        app="moldyn-static", mix="cpu+2gpu", nodes=cluster.num_nodes, makespan=makespan, seq_time=seq
    )
