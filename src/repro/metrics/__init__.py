"""Experiment harness: figure/table computation, code size, reporting.

:mod:`repro.metrics.figures` contains one driver per paper artifact
(Fig. 5, Fig. 6, Table II, Fig. 7, Fig. 8 plus the §IV-C text numbers);
each returns structured rows that the benchmark suite prints and that
``examples/generate_experiments_md.py`` renders into EXPERIMENTS.md.
"""

from repro.metrics.codesize import count_logical_lines, code_size_table
from repro.metrics.reporting import format_table
from repro.metrics.ascii_chart import fig5_chart, render_chart
from repro.metrics import figures

__all__ = [
    "count_logical_lines",
    "code_size_table",
    "format_table",
    "fig5_chart",
    "render_chart",
    "figures",
]
