"""Deterministic fault injection plans.

A :class:`FaultPlan` describes *what goes wrong, where, and when* — in
virtual time — for one SPMD run:

- **Message faults** (:class:`MessageFaultRule`): drop, duplicate, or
  extra-delay individual messages with given probabilities, restricted to a
  (src, dst) pair and a virtual-time window.
- **Link degradation** (:class:`LinkDegradation`): scale a link's effective
  bandwidth down (and/or add latency) over a virtual-time window, so every
  message crossing it during the window is charged more wire time.
- **Rank crashes** (:class:`RankCrash`): a rank fails at virtual time ``t``
  and must be recovered from a checkpoint (see
  :mod:`repro.core.checkpoint`).  Crashes are one-shot: once consumed by a
  recovery, the rank runs on.

Determinism: every per-message decision comes from a counter-based RNG
keyed on ``(plan seed, src, dst, per-pair message index)``.  The per-pair
index advances in the *sender's* program order (the fabric consults the
plan under its lock, from the sending thread), so a given plan + seed
always yields the same faults regardless of wall-clock thread scheduling —
which is what makes fault-tolerance tests repeatable.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.comm.constants import RELIABLE_ACK_BASE
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class FaultDecision:
    """The plan's verdict for one message transmission."""

    drop: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0
    bandwidth_factor: float = 1.0
    extra_latency: float = 0.0

    @property
    def clean(self) -> bool:
        """True when the message is unaffected by the plan."""
        return (
            not self.drop
            and not self.duplicate
            and self.extra_delay == 0.0
            and self.bandwidth_factor == 1.0
            and self.extra_latency == 0.0
        )


#: The all-clear decision, shared to keep the fault-free path allocation-free.
CLEAN_DECISION = FaultDecision()


def _check_prob(name: str, p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {p}")


@dataclass(frozen=True)
class MessageFaultRule:
    """Probabilistic message faults on a (src, dst) pair over a time window.

    ``src``/``dst`` of ``None`` match any rank; the window is half-open
    ``[t_start, t_end)`` in virtual send time.  Probabilities are evaluated
    independently per message (a message can be both delayed and
    duplicated; ``drop`` preempts both).
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    max_delay: float = 0.0
    src: int | None = None
    dst: int | None = None
    t_start: float = 0.0
    t_end: float = math.inf

    def __post_init__(self) -> None:
        _check_prob("drop_prob", self.drop_prob)
        _check_prob("dup_prob", self.dup_prob)
        _check_prob("delay_prob", self.delay_prob)
        if self.max_delay < 0:
            raise ValidationError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.delay_prob > 0 and self.max_delay == 0:
            raise ValidationError("delay_prob > 0 requires max_delay > 0")
        if self.t_end < self.t_start:
            raise ValidationError("t_end must be >= t_start")

    def matches(self, src: int, dst: int, t: float) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        return self.t_start <= t < self.t_end


@dataclass(frozen=True)
class LinkDegradation:
    """Degrade the (src, dst) link over ``[t_start, t_end)`` virtual time.

    ``bandwidth_factor`` scales effective bandwidth (0.25 = a quarter of
    nominal, so wire time quadruples); ``extra_latency`` adds fixed seconds
    to every affected message.  ``src``/``dst`` of ``None`` match any rank.
    """

    bandwidth_factor: float = 1.0
    extra_latency: float = 0.0
    src: int | None = None
    dst: int | None = None
    t_start: float = 0.0
    t_end: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValidationError(
                f"bandwidth_factor must be in (0, 1], got {self.bandwidth_factor}"
            )
        if self.extra_latency < 0:
            raise ValidationError(f"extra_latency must be >= 0, got {self.extra_latency}")
        if self.t_end < self.t_start:
            raise ValidationError("t_end must be >= t_start")

    def matches(self, src: int, dst: int, t: float) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        return self.t_start <= t < self.t_end


@dataclass
class RankCrash:
    """Rank ``rank`` fails at virtual time ``at_time`` (one-shot).

    The crash manifests at the first checkpoint-loop iteration boundary
    after the rank's clock passes ``at_time``; ``restart_cost`` virtual
    seconds of recovery are then charged on every rank (coordinated
    rollback to the last checkpoint).
    """

    rank: int
    at_time: float
    restart_cost: float = 1.0
    consumed: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValidationError(f"crash rank must be >= 0, got {self.rank}")
        if self.at_time < 0:
            raise ValidationError(f"crash at_time must be >= 0, got {self.at_time}")
        if self.restart_cost < 0:
            raise ValidationError(f"restart_cost must be >= 0, got {self.restart_cost}")


@dataclass
class FaultStats:
    """Counters of what the plan actually did (test/diagnostic hook)."""

    decisions: int = 0
    drops: int = 0
    duplicates: int = 0
    delays: int = 0
    degraded: int = 0
    crashes_consumed: int = 0


class FaultPlan:
    """A seeded, deterministic schedule of faults for one SPMD run.

    Install on a fabric with :meth:`repro.comm.fabric.Fabric.install_faults`
    (or pass ``fault_plan=`` to :func:`repro.sim.engine.spmd_run`); message
    rules and degradations then apply to every transmission, and crashes
    are consumed by :class:`repro.core.checkpoint.CheckpointManager`.
    """

    def __init__(
        self,
        seed: int = 0,
        rules: list[MessageFaultRule] | None = None,
        degradations: list[LinkDegradation] | None = None,
        crashes: list[RankCrash] | None = None,
    ) -> None:
        self.seed = int(seed)
        self.rules = list(rules or [])
        self.degradations = list(degradations or [])
        self.crashes = list(crashes or [])
        self.stats = FaultStats()
        self._lock = threading.Lock()
        # Per-(src, dst) message index: advances in sender program order.
        self._pair_index: dict[tuple[int, int], int] = {}
        # Sender's most recent decision (read back by ReliableComm, which
        # models its retransmission timer from the known message fate).
        self._last_by_src: dict[int, FaultDecision] = {}

    @classmethod
    def lossy(
        cls,
        seed: int = 0,
        *,
        drop: float = 0.0,
        dup: float = 0.0,
        delay: float = 0.0,
        max_delay: float = 0.0,
        crashes: list[RankCrash] | None = None,
    ) -> "FaultPlan":
        """A plan applying one uniform drop/dup/delay rule to all traffic."""
        rules = []
        if drop > 0 or dup > 0 or delay > 0:
            rules.append(
                MessageFaultRule(
                    drop_prob=drop, dup_prob=dup, delay_prob=delay, max_delay=max_delay
                )
            )
        return cls(seed=seed, rules=rules, crashes=crashes)

    # -- canonical serialization -----------------------------------------
    def canonical_key(self) -> str:
        """A stable, order-independent identity string for this plan.

        Two plans that inject the *same faults* — the same seed and the
        same sets of rules, degradations, and crashes, regardless of the
        order they were listed in — produce the same key; any semantic
        difference changes it.  Runtime state (``stats``, per-pair
        counters, consumed flags) is excluded: the key names what the plan
        *will do*, not what it has done.  The job service hashes this into
        its content-addressed result-cache key
        (:meth:`repro.serve.spec.JobSpec.content_hash`).
        """
        rules = sorted(
            (
                r.drop_prob,
                r.dup_prob,
                r.delay_prob,
                r.max_delay,
                -1 if r.src is None else r.src,
                -1 if r.dst is None else r.dst,
                r.t_start,
                r.t_end,
            )
            for r in self.rules
        )
        degs = sorted(
            (
                d.bandwidth_factor,
                d.extra_latency,
                -1 if d.src is None else d.src,
                -1 if d.dst is None else d.dst,
                d.t_start,
                d.t_end,
            )
            for d in self.degradations
        )
        crashes = sorted((c.rank, c.at_time, c.restart_cost) for c in self.crashes)
        return (
            f"FaultPlan(seed={self.seed!r}, rules={rules!r}, "
            f"degradations={degs!r}, crashes={crashes!r})"
        )

    def to_dict(self) -> dict:
        """JSON-able description (the job service's wire format).

        Round-trips through :meth:`from_dict`; infinite time windows are
        encoded as the string ``"inf"`` so the document survives strict
        JSON encoders too.
        """

        def _t(value: float) -> float | str:
            return "inf" if value == math.inf else value

        return {
            "seed": self.seed,
            "rules": [
                {
                    "drop_prob": r.drop_prob,
                    "dup_prob": r.dup_prob,
                    "delay_prob": r.delay_prob,
                    "max_delay": r.max_delay,
                    "src": r.src,
                    "dst": r.dst,
                    "t_start": r.t_start,
                    "t_end": _t(r.t_end),
                }
                for r in self.rules
            ],
            "degradations": [
                {
                    "bandwidth_factor": d.bandwidth_factor,
                    "extra_latency": d.extra_latency,
                    "src": d.src,
                    "dst": d.dst,
                    "t_start": d.t_start,
                    "t_end": _t(d.t_end),
                }
                for d in self.degradations
            ],
            "crashes": [
                {"rank": c.rank, "at_time": c.at_time, "restart_cost": c.restart_cost}
                for c in self.crashes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (validating fields)."""
        if not isinstance(data, dict):
            raise ValidationError(f"fault plan must be a dict, got {type(data).__name__}")
        known = {"seed", "rules", "degradations", "crashes"}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown fault-plan keys: {sorted(unknown)}")

        def _build(kind: type, entries: Any, name: str) -> list:
            if not isinstance(entries, (list, tuple)):
                raise ValidationError(f"fault-plan {name} must be a list")
            out = []
            for entry in entries:
                if not isinstance(entry, dict):
                    raise ValidationError(f"each {name} entry must be a dict")
                fields = dict(entry)
                if "t_end" in fields and fields["t_end"] == "inf":
                    fields["t_end"] = math.inf
                try:
                    out.append(kind(**fields))
                except TypeError as exc:
                    raise ValidationError(f"bad {name} entry: {exc}") from None
            return out

        return cls(
            seed=int(data.get("seed", 0)),
            rules=_build(MessageFaultRule, data.get("rules", []), "rules"),
            degradations=_build(
                LinkDegradation, data.get("degradations", []), "degradations"
            ),
            crashes=_build(RankCrash, data.get("crashes", []), "crashes"),
        )

    # -- cross-process support -----------------------------------------
    def __getstate__(self) -> dict:
        """Picklable state (the lock is dropped and rebuilt on restore).

        The process-parallel SPMD backend ships one plan copy to every
        worker.  Per-(src, dst) counters advance in the *sender's* program
        order and every rank's sends happen in exactly one worker, so the
        replicas never disagree: each (src, dst) stream is driven by a
        single process, with the same seed — decisions are bit-identical
        to the thread backend's single shared plan.
        """
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def stats_snapshot(self) -> dict[str, int]:
        """Counter values right now (used to compute per-worker deltas)."""
        with self._lock:
            return {
                "decisions": self.stats.decisions,
                "drops": self.stats.drops,
                "duplicates": self.stats.duplicates,
                "delays": self.stats.delays,
                "degraded": self.stats.degraded,
                "crashes_consumed": self.stats.crashes_consumed,
            }

    def absorb(self, stats_delta: dict[str, int], consumed_crashes: list[int]) -> None:
        """Merge one worker's activity back into this (parent) plan.

        ``stats_delta`` is the worker replica's counter increase over the
        snapshot it started from; ``consumed_crashes`` are indices into
        ``self.crashes`` the worker marked consumed.  Each decision and
        each crash happens in exactly one worker, so summing deltas
        reproduces the thread backend's totals.
        """
        with self._lock:
            for name, delta in stats_delta.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)
            for idx in consumed_crashes:
                self.crashes[idx].consumed = True

    # -- deterministic RNG ---------------------------------------------
    def _rng(self, src: int, dst: int, index: int) -> random.Random:
        h = (self.seed & 0xFFFFFFFF) or 0x9E3779B9
        for k in (src, dst, index):
            h = (h * 1_000_003) ^ (k & 0xFFFFFFFF)
            h &= 0xFFFFFFFFFFFFFFFF
        return random.Random(h)

    # -- the fabric hook -----------------------------------------------
    def decide(self, src: int, dst: int, tag: int, send_time: float) -> FaultDecision:
        """Verdict for one message; called by the fabric under its lock.

        Deterministic: keyed by the per-(src, dst) message index, which
        advances in the sender's program order, never by wall-clock state.

        Reliable-layer ACK tags (``>= RELIABLE_ACK_BASE``) are exempt from
        message-fault rules (see :data:`repro.comm.constants.RELIABLE_ACK_BASE`)
        but still subject to link degradation.
        """
        bw_factor = 1.0
        extra_latency = 0.0
        for deg in self.degradations:
            if deg.matches(src, dst, send_time):
                bw_factor *= deg.bandwidth_factor
                extra_latency += deg.extra_latency
        rule = None
        if tag < RELIABLE_ACK_BASE:
            for r in self.rules:
                if r.matches(src, dst, send_time):
                    rule = r
                    break
        with self._lock:
            index = self._pair_index.get((src, dst), 0)
            self._pair_index[(src, dst)] = index + 1
            self.stats.decisions += 1
            drop = duplicate = False
            extra_delay = 0.0
            if rule is not None:
                rng = self._rng(src, dst, index)
                drop = rng.random() < rule.drop_prob
                if not drop:
                    duplicate = rng.random() < rule.dup_prob
                    if rng.random() < rule.delay_prob:
                        extra_delay = rng.random() * rule.max_delay
                else:
                    # Keep the draw count fixed so rule probabilities stay
                    # independent of each other across seeds.
                    rng.random()
                    rng.random()
            if drop:
                self.stats.drops += 1
            if duplicate:
                self.stats.duplicates += 1
            if extra_delay > 0:
                self.stats.delays += 1
            if bw_factor != 1.0 or extra_latency != 0.0:
                self.stats.degraded += 1
            if (
                not drop
                and not duplicate
                and extra_delay == 0.0
                and bw_factor == 1.0
                and extra_latency == 0.0
            ):
                decision = CLEAN_DECISION
            else:
                decision = FaultDecision(
                    drop=drop,
                    duplicate=duplicate,
                    extra_delay=extra_delay,
                    bandwidth_factor=bw_factor,
                    extra_latency=extra_latency,
                )
            self._last_by_src[src] = decision
        return decision

    def last_decision(self, src: int) -> FaultDecision:
        """The most recent verdict for a message sent by ``src``.

        Only ``src``'s own thread transmits for ``src``, so reading this
        right after a send is race-free; :class:`ReliableComm` uses it to
        learn a message's fate (modelling its retransmission timeout in
        virtual time instead of wall-clock waiting).
        """
        with self._lock:
            return self._last_by_src.get(src, CLEAN_DECISION)

    # -- crashes --------------------------------------------------------
    def crash_pending(self, rank: int, now: float) -> RankCrash | None:
        """The first unconsumed crash of ``rank`` due at or before ``now``."""
        with self._lock:
            for crash in self.crashes:
                if crash.rank == rank and not crash.consumed and crash.at_time <= now:
                    return crash
        return None

    def consume_crash(self, crash: RankCrash) -> None:
        """Mark a crash handled (idempotent)."""
        with self._lock:
            if not crash.consumed:
                crash.consumed = True
                self.stats.crashes_consumed += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
            f"degradations={len(self.degradations)}, crashes={len(self.crashes)})"
        )
