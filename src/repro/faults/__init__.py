"""Deterministic fault injection for the simulated fabric.

The framework targets long-running iterative applications on clusters,
where deployments must survive lost or delayed messages and node failures.
Because the fabric is fully simulated, the *structure* of communication is
observable — so real fault-tolerance code paths (retransmit with backoff,
receive-side dedup, checkpoint/restart) can be exercised deterministically:
a given :class:`FaultPlan` seed always produces the same faults and the
same virtual makespan.

Pieces:

- :class:`FaultPlan` — the seeded schedule (message drop/duplicate/delay
  rules, link degradation windows, rank crashes), consulted by
  :meth:`repro.comm.fabric.Fabric.transmit`.
- :class:`repro.comm.reliable.ReliableComm` — delivers bit-identical
  results over a lossy plan (sequence numbers, acks, virtual-time
  retransmission with exponential backoff, dedup).
- :class:`repro.core.checkpoint.CheckpointManager` — periodic state
  snapshots and coordinated rollback when a planned crash fires.
"""

from repro.faults.plan import (
    CLEAN_DECISION,
    FaultDecision,
    FaultPlan,
    FaultStats,
    LinkDegradation,
    MessageFaultRule,
    RankCrash,
)

__all__ = [
    "CLEAN_DECISION",
    "FaultDecision",
    "FaultPlan",
    "FaultStats",
    "LinkDegradation",
    "MessageFaultRule",
    "RankCrash",
]
