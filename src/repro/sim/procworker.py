"""Worker-process side of the process-parallel SPMD backend.

Each worker process hosts one contiguous block of an SPMD run's ranks as
threads (reusing the engine's rank-thread pool — each worker has its own)
on a :class:`_BridgedFabric`: a :class:`~repro.comm.fabric.Fabric` whose
deliveries to ranks owned by *other* workers are encoded by
:mod:`repro.comm.wire` and shipped over a per-worker-pair socket.

Virtual-time equivalence with the thread backend rests on two facts:

- Every virtual-time decision for a message — sender egress scheduling,
  the fault verdict, the arrival time itself — is made **sender-side**
  inside ``Fabric.transmit``, exactly as in-process.  The wire record
  carries the finished numbers verbatim (pickle round-trips floats
  bit-exactly) and the receiving worker only appends to the destination
  mailbox via ``deliver_local``.
- Per-(src, tag) FIFO order survives the hop: each directed worker pair
  shares a single connection drained by a single reader thread, so the
  records of one sender rank are enqueued in its program order — the same
  guarantee its thread gives locally.  The wildcard-receive rule (minimum
  ``(arrival_time, src)`` among queued heads) already depends only on
  virtual time.

Control flow: the worker's main thread serves the parent's control pipe
(``run`` / ``abort`` / ``shutdown``); each run executes on a driver
thread, so an abort relayed by the parent (another worker's rank failed)
can interrupt a run in progress.  Records arriving before the local
``run`` command are buffered per run id and drained — atomically with the
run's registration, preserving per-source order — when the run starts.
"""

from __future__ import annotations

import pickle
import tempfile
import threading
import traceback
from multiprocessing.connection import Client, Connection, Listener
from typing import Any

from repro.comm.fabric import Fabric
from repro.comm.payload import Payload
from repro.comm.wire import ShmRegistry, decode_payload, discard_record, encode_payload
from repro.sim.engine import (
    _pool,
    _RankFailure,
    _RunGroup,
    record_rank_failure,
    run_one_rank,
)
from repro.sim.trace import Trace
from repro.util.errors import CommunicationError, DeadlockError


def _dumps(obj: Any) -> bytes:
    """Pickle with a cloudpickle fallback (closures, local classes)."""
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        import cloudpickle

        return cloudpickle.dumps(obj)


class _PeerRouter:
    """Outbound connections to sibling workers (one per directed pair).

    Connections are cached by *address*, not worker slot: a worker that is
    terminated and replaced between runs comes back with a fresh socket
    address, so a stale cached connection can never be reused for it.
    ``send`` serializes per connection, and all of this worker's traffic
    to a given peer shares that one connection — the receiving side's
    single reader thread then preserves per-sender record order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._addrs: dict[int, str] = {}
        self._conns: dict[str, tuple[Connection, threading.Lock]] = {}

    def set_peers(self, addrs: dict[int, str]) -> None:
        """Install this run's worker-slot → address map (replaces the old)."""
        with self._lock:
            self._addrs = dict(addrs)

    def send(self, worker_slot: int, record: tuple) -> None:
        with self._lock:
            addr = self._addrs[worker_slot]
            entry = self._conns.get(addr)
            if entry is None:
                entry = (Client(addr, family="AF_UNIX"), threading.Lock())
                self._conns[addr] = entry
        conn, send_lock = entry
        with send_lock:
            conn.send(record)


class _BridgedFabric(Fabric):
    """A fabric that ships remote-rank deliveries to their owning worker.

    Full-size (every rank has a shard), but only the local block's shards
    are ever matched here; a delivery whose destination lives elsewhere is
    encoded and routed instead of enqueued.  ``abort`` additionally
    notifies the parent once (unless the abort *came from* the parent), so
    sibling workers' blocked ranks are woken promptly instead of idling
    until their receive watchdogs fire.
    """

    def __init__(
        self,
        cluster: Any,
        ranks_per_node: int,
        *,
        local_ranks: Any,
        rank_worker: tuple[int, ...],
        router: _PeerRouter,
        run_id: int,
        on_abort: Any,
    ) -> None:
        super().__init__(cluster, ranks_per_node=ranks_per_node)
        self._local_ranks = frozenset(local_ranks)
        self._rank_worker = rank_worker
        self._router = router
        self._run_id = run_id
        self._on_abort = on_abort
        self._abort_notify_lock = threading.Lock()
        self._abort_notified = False
        self.suppress_abort_notify = False

    def _deliver(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: Payload,
        *,
        send_time: float,
        arrival: float,
        wire: float,
        duplicate: bool,
    ) -> None:
        if dst in self._local_ranks:
            self.deliver_local(
                src, dst, tag, payload, send_time=send_time, arrival=arrival,
                wire=wire, duplicate=duplicate,
            )
            return
        enc = encode_payload(payload)
        record = (
            "m", self._run_id, src, dst, tag, send_time, arrival, wire, duplicate, enc,
        )
        try:
            self._router.send(self._rank_worker[dst], record)
        except Exception as exc:
            discard_record(enc)
            raise CommunicationError(
                f"lost connection to the worker hosting rank {dst}"
            ) from exc

    def abort(self, exc: BaseException) -> None:
        super().abort(exc)
        fire = False
        with self._abort_notify_lock:
            if not self._abort_notified and not self.suppress_abort_notify:
                self._abort_notified = True
                fire = True
        if fire and self._on_abort is not None:
            self._on_abort(exc)


class _WorkerRun:
    """One in-flight run's receive-side state."""

    __slots__ = ("run_id", "fabric", "shm")

    def __init__(self, run_id: int, fabric: _BridgedFabric, shm: ShmRegistry) -> None:
        self.run_id = run_id
        self.fabric = fabric
        self.shm = shm


class _WorkerState:
    """Everything one worker process keeps alive across runs."""

    def __init__(self, slot: int, parent: Connection) -> None:
        self.slot = slot
        self.parent = parent
        self.parent_lock = threading.Lock()
        self.router = _PeerRouter()
        self.lock = threading.Lock()
        self.runs: dict[int, _WorkerRun] = {}
        self.finished: set[int] = set()
        self.orphans: dict[int, list[tuple]] = {}

    def send_parent(self, msg: tuple) -> None:
        with self.parent_lock:
            self.parent.send(msg)


def _deliver_record(run: _WorkerRun, rec: tuple) -> None:
    """Decode one shipped message and append it to the local mailbox."""
    _, _run_id, src, dst, tag, send_time, arrival, wire, duplicate, enc = rec
    try:
        payload = decode_payload(enc, run.shm)
    except Exception:
        discard_record(enc)
        return
    try:
        run.fabric.deliver_local(
            src, dst, tag, payload, send_time=send_time, arrival=arrival,
            wire=wire, duplicate=duplicate,
        )
    except CommunicationError:
        # The run aborted under us; the registry already owns any shared
        # memory the decode mapped, so the run's cleanup sweep frees it.
        pass


def _handle_record(state: _WorkerState, rec: tuple) -> None:
    run_id = rec[1]
    with state.lock:
        run = state.runs.get(run_id)
        if run is None:
            if run_id in state.finished:
                discard_record(rec[-1])
            else:
                # Arrived before our own RUN command: buffer in order.
                state.orphans.setdefault(run_id, []).append(rec)
            return
    # Deliver outside the registry lock: this connection's single reader
    # only reaches here after the run was published — which happens after
    # its own buffered records were drained — so per-sender order holds,
    # and deliveries from different peers proceed in parallel.
    _deliver_record(run, rec)


def _reader_loop(state: _WorkerState, conn: Connection) -> None:
    """Drain one inbound peer connection (order = peer's send order)."""
    while True:
        try:
            rec = conn.recv()
        except (EOFError, OSError):
            return
        if rec and rec[0] == "m":
            _handle_record(state, rec)


def _accept_loop(state: _WorkerState, listener: Listener) -> None:
    while True:
        try:
            conn = listener.accept()
        except OSError:  # pragma: no cover - listener closed at exit
            return
        threading.Thread(
            target=_reader_loop,
            args=(state, conn),
            daemon=True,
            name=f"spmd-peer-reader-{state.slot}",
        ).start()


def _run_driver(state: _WorkerState, run_id: int, blob: bytes) -> None:
    """Execute one run's local rank block and report back to the parent."""
    try:
        _run_driver_inner(state, run_id, blob)
    except BaseException as exc:  # noqa: BLE001 - worker must answer the parent
        try:
            state.send_parent(
                ("fail", run_id, _dumps((exc, traceback.format_exc())))
            )
        except Exception:  # pragma: no cover - parent gone; exit quietly
            pass


def _run_driver_inner(state: _WorkerState, run_id: int, blob: bytes) -> None:
    import cloudpickle

    spec = cloudpickle.loads(blob)
    cluster = spec["cluster"]
    ranks_per_node = spec["ranks_per_node"]
    nranks = cluster.num_nodes * ranks_per_node
    my_ranks: list[int] = list(spec["my_ranks"])
    fault_plan = spec["fault_plan"]

    state.router.set_peers(spec["peer_addrs"])

    def on_abort(_exc: BaseException) -> None:
        try:
            state.send_parent(("aborted", run_id))
        except Exception:  # pragma: no cover - parent gone
            pass

    fabric = _BridgedFabric(
        cluster,
        ranks_per_node,
        local_ranks=my_ranks,
        rank_worker=spec["rank_worker"],
        router=state.router,
        run_id=run_id,
        on_abort=on_abort,
    )
    if fault_plan is not None:
        fabric.install_faults(fault_plan)
        fault_base = fault_plan.stats_snapshot()
        consumed_base = {
            i for i, c in enumerate(fault_plan.crashes) if c.consumed
        }

    registry = ShmRegistry()
    run = _WorkerRun(run_id, fabric, registry)
    with state.lock:
        # Drain buffered early arrivals *then* publish, in one lock hold,
        # so a reader thread can never overtake its own buffered records.
        for rec in state.orphans.pop(run_id, []):
            _deliver_record(run, rec)
        state.runs[run_id] = run

    recorder_factory = spec["recorder_factory"]
    if recorder_factory is not None:
        traces = {r: recorder_factory(r) for r in my_ranks}
    else:
        traces = {r: Trace(r, enabled=spec["trace"]) for r in my_ranks}
    for tr in traces.values():
        tr.bind_fabric(fabric)

    values: dict[int, Any] = {}
    times: dict[int, float] = {}
    failures: list[_RankFailure] = []
    failure_lock = threading.Lock()

    def rank_main(rank: int) -> None:
        try:
            values[rank], times[rank] = run_one_rank(
                fabric,
                rank,
                nranks,
                cluster,
                spec["fn"],
                spec["args"],
                spec["kwargs"],
                traces[rank],
                spec["device_factory"],
                spec["recv_timeout"],
                fault_plan,
            )
        except BaseException as exc:  # noqa: BLE001
            record_rank_failure(fabric, rank, exc, failures, failure_lock)

    pending: list[int] = []
    if len(my_ranks) == 1:
        rank_main(my_ranks[0])
    else:
        group = _RunGroup(len(my_ranks))
        base = my_ranks[0]

        def make_task(rank: int) -> Any:
            def task() -> None:
                try:
                    rank_main(rank)
                finally:
                    group.task_done(rank - base)

            return task

        for r in my_ranks:
            _pool.submit(make_task(r))
        if not group.wait(spec["wall_timeout"]):
            fabric.abort(DeadlockError("wall timeout"))
            group.wait(5.0)
            pending = [base + i for i in group.pending_ranks()]
            if not failures:
                failures.append(
                    _RankFailure(
                        pending[0] if pending else base,
                        DeadlockError(
                            f"worker {state.slot} exceeded its wall timeout; "
                            f"still-running ranks: {pending}"
                        ),
                    )
                )

    if fault_plan is not None:
        end = fault_plan.stats_snapshot()
        fault_stats = {k: end[k] - fault_base[k] for k in end}
        consumed = [
            i
            for i, c in enumerate(fault_plan.crashes)
            if c.consumed and i not in consumed_base
        ]
    else:
        fault_stats = None
        consumed = []

    result = {
        "values": [values.get(r) for r in my_ranks],
        "times": [times.get(r, 0.0) for r in my_ranks],
        "traces": [traces[r] for r in my_ranks],
        "failures": [(f.rank, f.exc) for f in failures],
        "pending": pending,
        "fault_stats": fault_stats,
        "consumed_crashes": consumed,
        "rank_pool": _pool.stats(),
    }
    try:
        payload = _dumps(result)
    except Exception as exc:
        # A rank returned something even cloudpickle cannot ship; degrade
        # to a reported failure rather than wedging the whole run.
        result["values"] = [None for _ in my_ranks]
        result["traces"] = [Trace(r, enabled=False) for r in my_ranks]
        result["failures"] = [
            (my_ranks[0], RuntimeError(f"rank return value is not picklable: {exc}"))
        ]
        payload = _dumps(result)

    with state.lock:
        state.runs.pop(run_id, None)
        state.finished.add(run_id)
        leftovers = state.orphans.pop(run_id, [])
    for rec in leftovers:
        discard_record(rec[-1])
    registry.release_all()
    state.send_parent(("done", run_id, payload))


def worker_main(parent: Connection, slot: int) -> None:
    """Entry point of one worker process: serve the parent's control pipe."""
    state = _WorkerState(slot, parent)
    sock_dir = tempfile.mkdtemp(prefix="repro-spmd-")
    listener = Listener(f"{sock_dir}/w{slot}.sock", family="AF_UNIX")
    threading.Thread(
        target=_accept_loop,
        args=(state, listener),
        daemon=True,
        name=f"spmd-peer-accept-{slot}",
    ).start()
    state.send_parent(("hello", slot, listener.address))
    while True:
        try:
            msg = parent.recv()
        except (EOFError, OSError):
            return  # parent is gone; daemon process winds down
        kind = msg[0]
        if kind == "shutdown":
            return
        if kind == "run":
            _, run_id, blob = msg
            threading.Thread(
                target=_run_driver,
                args=(state, run_id, blob),
                daemon=True,
                name=f"spmd-run-{run_id}",
            ).start()
        elif kind == "abort":
            run_id = msg[1]
            with state.lock:
                run = state.runs.get(run_id)
            if run is not None:
                # The parent already knows; don't echo the abort back.
                run.fabric.suppress_abort_notify = True
                run.fabric.abort(
                    CommunicationError("aborted by a sibling worker")
                )
