"""Per-rank virtual clock.

Each simulated MPI process owns one :class:`VirtualClock`.  Local compute
*advances* it; receiving a message *synchronizes* it forward to the
message's arrival time (Lamport-style max).  Clocks never move backwards,
which is the invariant the property tests pin down.
"""

from __future__ import annotations

from repro.util.errors import ValidationError


class VirtualClock:
    """Monotonic simulated-time accumulator for one rank.

    Not thread-safe by design: exactly one rank thread owns each clock.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValidationError(f"clock start must be >= 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by a non-negative duration; returns the new time."""
        if dt < 0:
            raise ValidationError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to time ``t`` if it is in the future; returns now.

        Used when synchronizing with an event that happened elsewhere (a
        message arrival, a device finishing): if the rank is already past
        ``t`` the clock is unchanged.
        """
        if t > self._now:
            self._now = float(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.9f})"
