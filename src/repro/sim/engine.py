"""SPMD execution engine: pooled rank threads, or rank-packed worker processes.

:func:`spmd_run` launches ``fn(ctx)`` on every rank, where ``ctx`` is a
:class:`RankContext` carrying the rank's virtual clock, communicator, node
spec, and (optionally) devices built by a caller-supplied factory.  Rank
threads synchronize only through the message fabric, so virtual time is
deterministic for deterministic programs (no wildcard-source races).

Two execution backends share this entry point (``backend=`` or the
``REPRO_SPMD_BACKEND`` environment variable):

- ``"threads"`` (default): every rank is a pooled thread in this process.
  Cheapest per run, but all ranks serialize on one GIL — many-rank wall
  time is bounded by a single core.
- ``"processes"``: ranks are packed onto a warm pool of worker
  *processes* (:mod:`repro.sim.procpool`), each hosting its block of
  ranks as threads on a bridged fabric; numpy payloads cross the worker
  boundary in shared memory.  Virtual makespans are bit-identical to the
  thread backend — the backends differ only in wall-clock parallelism.

Rank threads come from a process-wide reusable pool
(:class:`_RankThreadPool`): figure sweeps run thousands of back-to-back
SPMD runs, and at the paper's baseline scale (32 nodes × 12 ranks/node =
384 rank threads) per-run thread spawn/teardown dominated the wall clock.
A worker is recycled only after its rank function returns, so a worker
wedged past the watchdog is simply abandoned (daemon thread) and the pool
spawns a replacement on demand.

Failure handling: the first rank to raise poisons the fabric, which wakes
every sibling blocked in a receive; the original exception is re-raised to
the caller with the failing rank attached.  A wall-clock watchdog converts
genuine deadlocks into :class:`~repro.util.errors.DeadlockError` instead of
hanging the test suite.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.cluster.specs import ClusterSpec, NodeSpec
from repro.sim.clock import VirtualClock
from repro.sim.trace import Trace
from repro.util.errors import CommunicationError, DeadlockError, ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.communicator import SimComm
    from repro.faults.plan import FaultPlan

DeviceFactory = Callable[["RankContext"], Sequence[Any]]

#: The SPMD execution backends selectable per run.
BACKENDS = ("threads", "processes")


def resolve_backend(backend: str | None) -> str:
    """Resolve an explicit/env/default backend name, validating it."""
    if backend is None:
        backend = os.environ.get("REPRO_SPMD_BACKEND", "threads")
    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown SPMD backend {backend!r}; choose from {list(BACKENDS)}"
        )
    return backend


@dataclass
class RankContext:
    """Everything one simulated process needs, bundled for ``fn(ctx)``."""

    rank: int
    size: int
    node_index: int
    node: NodeSpec
    cluster: ClusterSpec
    clock: VirtualClock
    comm: "SimComm"
    trace: Trace
    devices: list[Any] = field(default_factory=list)
    fault_plan: "FaultPlan | None" = None

    @property
    def now(self) -> float:
        """Current virtual time on this rank."""
        return self.clock.now


@dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    values: list[Any]
    times: list[float]
    traces: list[Trace]

    @property
    def makespan(self) -> float:
        """Virtual completion time of the slowest rank — *the* reported time."""
        return max(self.times) if self.times else 0.0

    @property
    def nranks(self) -> int:
        return len(self.values)


class _RankFailure(Exception):
    """Internal wrapper recording which rank raised."""

    def __init__(self, rank: int, exc: BaseException) -> None:
        super().__init__(f"rank {rank} raised {type(exc).__name__}: {exc}")
        self.rank = rank
        self.exc = exc


def run_one_rank(
    fabric: Any,
    rank: int,
    nranks: int,
    cluster: ClusterSpec,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    trace: Trace,
    device_factory: DeviceFactory | None,
    recv_timeout: float,
    fault_plan: "FaultPlan | None",
) -> tuple[Any, float]:
    """Wire up one rank's context and run its program.

    Returns ``(value, final virtual time)``.  Shared by the thread backend
    (below) and the process backend's workers
    (:mod:`repro.sim.procworker`), so both build bit-identical contexts.
    """
    from repro.comm.communicator import SimComm

    clock = VirtualClock()
    comm = SimComm(fabric, rank, clock, trace=trace, recv_timeout=recv_timeout)
    ctx = RankContext(
        rank=rank,
        size=nranks,
        node_index=fabric.node_of(rank),
        node=cluster.node,
        cluster=cluster,
        clock=clock,
        comm=comm,
        trace=trace,
        fault_plan=fault_plan,
    )
    if device_factory is not None:
        ctx.devices = list(device_factory(ctx))
    value = fn(ctx, *args, **kwargs)
    return value, clock.now


def record_rank_failure(
    fabric: Any,
    rank: int,
    exc: BaseException,
    failures: list[_RankFailure],
    failure_lock: threading.Lock,
) -> None:
    """Record one rank's exception and poison the fabric if it is genuine.

    A :class:`CommunicationError` raised *because* a sibling already
    aborted the fabric is only a wakeup echo: it becomes a low-priority
    "stuck" marker (and only if nothing else was recorded).  Everything
    else is a real failure and aborts the fabric to release siblings.
    """
    if isinstance(exc, CommunicationError):
        with failure_lock:
            if fabric._abort_exc is not None and fabric._abort_exc is not exc:
                if not failures:
                    failures.append(
                        _RankFailure(rank, DeadlockError(f"rank {rank} stuck"))
                    )
            else:
                failures.append(_RankFailure(rank, exc))
                fabric.abort(exc)
    else:
        with failure_lock:
            failures.append(_RankFailure(rank, exc))
        fabric.abort(exc)


def select_failure(failures: list[_RankFailure]) -> _RankFailure:
    """The failure to surface: prefer genuine errors over stuck markers,
    then the lowest rank — identical on both backends."""
    real = [f for f in failures if not isinstance(f.exc, DeadlockError)]
    return min(real or failures, key=lambda f: f.rank)


class _PoolWorker(threading.Thread):
    """One reusable rank thread: runs submitted tasks until shut down."""

    def __init__(self, pool: "_RankThreadPool", index: int) -> None:
        super().__init__(name=f"rank-pool-{index}", daemon=True)
        self._pool = pool
        self._task: Callable[[], None] | None = None
        self._wake = threading.Semaphore(0)
        self.tasks_run = 0

    def submit(self, task: Callable[[], None] | None) -> None:
        """Hand one task (or ``None`` to shut down) to this idle worker."""
        self._task = task
        self._wake.release()

    def run(self) -> None:  # pragma: no cover - exercised via spmd_run
        while True:
            self._wake.acquire()
            task, self._task = self._task, None
            if task is None:
                return
            try:
                task()
            finally:
                self.tasks_run += 1
                # Recycle only once the task has fully returned: a worker
                # stuck inside a task never re-enters the idle pool.
                self._pool._recycle(self)


class _RankThreadPool:
    """Process-wide pool of reusable rank threads.

    ``submit`` hands the task to an idle worker (LIFO, for cache warmth)
    or spawns a new daemon worker when none is idle, so the pool grows to
    the peak concurrent rank count and is reused by every subsequent
    :func:`spmd_run` in the process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idle: list[_PoolWorker] = []
        self.spawned = 0

    def submit(self, task: Callable[[], None]) -> None:
        with self._lock:
            worker = self._idle.pop() if self._idle else None
            if worker is None:
                self.spawned += 1
                worker = _PoolWorker(self, self.spawned)
                worker.start()
        worker.submit(task)

    def _recycle(self, worker: _PoolWorker) -> None:
        with self._lock:
            self._idle.append(worker)

    def stats(self) -> dict[str, int]:
        """Pool occupancy (test/diagnostic hook)."""
        with self._lock:
            return {"spawned": self.spawned, "idle": len(self._idle)}

    def drain(self) -> None:
        """Shut down every currently idle worker (test hook)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for worker in idle:
            worker.submit(None)
        for worker in idle:
            worker.join(timeout=5.0)


#: The process-wide rank-thread pool shared by every ``spmd_run``.
_pool = _RankThreadPool()


def rank_pool_stats() -> dict[str, int]:
    """Spawned/idle counts of the shared rank-thread pool."""
    return _pool.stats()


# -- multi-job accounting ------------------------------------------------
# ``spmd_run`` is re-entrant: every run builds its own fabric, clocks,
# result slots, and failure list, and rank threads of concurrent runs only
# ever synchronize through their *own* run's fabric — so virtual makespans
# are bit-identical whether runs execute back-to-back or interleaved.  The
# shared state (the rank-thread pool above, the process-backend worker
# pool, dataset memos) is either lock-protected or append-only.  The
# counters below track how many runs/ranks are in flight right now; the
# ``repro.serve`` job scheduler sizes its admission control against them.
_active_lock = threading.Lock()
_active_runs = 0
_active_ranks = 0


def _run_started(nranks: int) -> None:
    global _active_runs, _active_ranks
    with _active_lock:
        _active_runs += 1
        _active_ranks += nranks


def _run_finished(nranks: int) -> None:
    global _active_runs, _active_ranks
    with _active_lock:
        _active_runs -= 1
        _active_ranks -= nranks


def active_run_stats() -> dict[str, int]:
    """How many SPMD runs (and their ranks) are in flight right now.

    Covers both backends; a run is "active" from entry into
    :func:`spmd_run` until its results (or failure) are returned.
    """
    with _active_lock:
        return {"active_runs": _active_runs, "active_ranks": _active_ranks}


class _RunGroup:
    """Completion tracking for the rank tasks of one SPMD run."""

    def __init__(self, nranks: int) -> None:
        self._cond = threading.Condition()
        self._done = [False] * nranks
        self._remaining = nranks

    def task_done(self, rank: int) -> None:
        with self._cond:
            self._done[rank] = True
            self._remaining -= 1
            if self._remaining == 0:
                self._cond.notify_all()

    def wait(self, timeout: float) -> bool:
        """True when every rank finished within ``timeout`` seconds."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._remaining > 0:
                left = deadline - time.monotonic()
                if left <= 0 or not self._cond.wait(timeout=left):
                    return self._remaining == 0
            return True

    def pending_ranks(self) -> list[int]:
        with self._cond:
            return [r for r, done in enumerate(self._done) if not done]


def spmd_run(
    fn: Callable[..., Any],
    cluster: ClusterSpec,
    *,
    ranks_per_node: int = 1,
    args: tuple = (),
    kwargs: dict | None = None,
    trace: bool = False,
    recorder_factory: Callable[[int], Trace] | None = None,
    device_factory: DeviceFactory | None = None,
    recv_timeout: float = 120.0,
    wall_timeout: float = 600.0,
    fault_plan: "FaultPlan | None" = None,
    backend: str | None = None,
    workers: int | None = None,
) -> SpmdResult:
    """Run ``fn(ctx, *args, **kwargs)`` on every rank of ``cluster``.

    Args:
        fn: The per-rank program.  Its return value is collected per rank.
        cluster: Hardware description; rank count is
            ``cluster.num_nodes * ranks_per_node``.
        ranks_per_node: 1 for the framework's process-per-node model; the
            paper's hand-written MPI baselines use one rank per core.
        args, kwargs: Extra arguments forwarded to every rank.
        trace: Enable per-rank event tracing (small overhead).
        recorder_factory: Optional callable ``rank -> Trace`` building the
            per-rank trace objects; used by :mod:`repro.obs` to install
            :class:`~repro.obs.Recorder` instances (which also capture
            device/NIC timeline intervals).  Overrides ``trace``.
        device_factory: Optional callable building the rank's device list
            (used by :class:`repro.core.env.RuntimeEnv`); it runs inside the
            rank thread after clock/comm are wired.
        recv_timeout: Wall-clock seconds a single receive may block.
        wall_timeout: Wall-clock seconds for the whole run (a monotonic
            budget shared by all ranks, not a per-rank allowance).
        fault_plan: Optional :class:`~repro.faults.plan.FaultPlan`
            installed on the fabric before any rank starts; rank programs
            reach it via ``ctx.fault_plan`` (checkpoint/restart loops
            consume its crash events).
        backend: ``"threads"`` (default) or ``"processes"``; ``None``
            consults the ``REPRO_SPMD_BACKEND`` environment variable.
            Virtual makespans are bit-identical across backends.
            Single-rank runs execute inline on either backend.
        workers: Process-backend worker-process count (``None``: the
            ``REPRO_SPMD_WORKERS`` environment variable, else CPU count).
            Ignored by the thread backend.

    Returns:
        :class:`SpmdResult` with per-rank return values, final virtual
        clocks, and traces.

    Raises:
        The first per-rank exception (sibling ranks are woken and drained),
        or :class:`DeadlockError` if ranks block past the watchdog.
    """
    if kwargs is None:
        kwargs = {}
    backend = resolve_backend(backend)
    nranks = cluster.num_nodes * ranks_per_node
    if nranks <= 0:
        raise ValidationError("cluster must yield at least one rank")
    _run_started(nranks)
    try:
        if backend == "processes" and nranks > 1:
            from repro.sim.procpool import spmd_run_processes

            return spmd_run_processes(
                fn,
                cluster,
                ranks_per_node=ranks_per_node,
                args=args,
                kwargs=kwargs,
                trace=trace,
                recorder_factory=recorder_factory,
                device_factory=device_factory,
                recv_timeout=recv_timeout,
                wall_timeout=wall_timeout,
                fault_plan=fault_plan,
                workers=workers,
            )
        return _spmd_run_threads(
            fn,
            cluster,
            ranks_per_node=ranks_per_node,
            args=args,
            kwargs=kwargs,
            trace=trace,
            recorder_factory=recorder_factory,
            device_factory=device_factory,
            recv_timeout=recv_timeout,
            wall_timeout=wall_timeout,
            fault_plan=fault_plan,
        )
    finally:
        _run_finished(nranks)


def _spmd_run_threads(
    fn: Callable[..., Any],
    cluster: ClusterSpec,
    *,
    ranks_per_node: int,
    args: tuple,
    kwargs: dict,
    trace: bool,
    recorder_factory: Callable[[int], Trace] | None,
    device_factory: DeviceFactory | None,
    recv_timeout: float,
    wall_timeout: float,
    fault_plan: "FaultPlan | None",
) -> SpmdResult:
    """The thread backend's run body (see :func:`spmd_run`).

    Also the process backend's single-worker fallback, which enters here
    directly so a logical run is only counted once by
    :func:`active_run_stats`.
    """
    from repro.comm.fabric import Fabric

    nranks = cluster.num_nodes * ranks_per_node
    fabric = Fabric(cluster, ranks_per_node=ranks_per_node)
    if fault_plan is not None:
        fabric.install_faults(fault_plan)
    values: list[Any] = [None] * nranks
    times: list[float] = [0.0] * nranks
    if recorder_factory is not None:
        traces: list[Trace] = [recorder_factory(r) for r in range(nranks)]
    else:
        traces = [Trace(r, enabled=trace) for r in range(nranks)]
    for tr in traces:
        # No-op on plain Traces; obs Recorders attach NIC timeline sinks.
        tr.bind_fabric(fabric)
    failures: list[_RankFailure] = []
    failure_lock = threading.Lock()

    def rank_main(rank: int) -> None:
        try:
            values[rank], times[rank] = run_one_rank(
                fabric,
                rank,
                nranks,
                cluster,
                fn,
                args,
                kwargs,
                traces[rank],
                device_factory,
                recv_timeout,
                fault_plan,
            )
        except BaseException as exc:  # noqa: BLE001 - must not lose rank errors
            record_rank_failure(fabric, rank, exc, failures, failure_lock)

    if nranks == 1:
        # Fast path: run inline (keeps single-rank tests easy to debug).
        rank_main(0)
    else:
        group = _RunGroup(nranks)

        def make_task(rank: int) -> Callable[[], None]:
            def task() -> None:
                try:
                    rank_main(rank)
                finally:
                    group.task_done(rank)

            return task

        for r in range(nranks):
            _pool.submit(make_task(r))
        # One shared wall-clock budget for the whole run, not per rank.
        if not group.wait(wall_timeout):
            fabric.abort(DeadlockError("wall timeout"))
            # Grace period: aborted ranks wake out of their receives and
            # finish; anything still wedged after this is abandoned to its
            # (daemon) pool worker, which is never recycled.
            group.wait(5.0)
            raise DeadlockError(
                f"SPMD run exceeded wall timeout of {wall_timeout}s; "
                f"still-running ranks: {group.pending_ranks()}"
            )

    if failures:
        raise select_failure(failures).exc

    if traces and traces[0].enabled:
        stats = _pool.stats()
        traces[0].gauge("rank_pool.spawned", stats["spawned"])
        traces[0].gauge("rank_pool.idle", stats["idle"])

    return SpmdResult(values=values, times=times, traces=traces)
