"""Parent-side pool of SPMD worker processes (the ``processes`` backend).

:func:`spmd_run_processes` packs an SPMD run's ranks into contiguous
blocks over a warm pool of worker processes (:mod:`repro.sim.procworker`),
ships each worker its block plus the run spec (cloudpickle, so closures
and locally defined rank programs work), and merges the per-block results
back into one :class:`~repro.sim.engine.SpmdResult` — values, virtual
times, traces, fault-plan activity, and failures, exactly as the thread
backend reports them.

The pool is process-wide and persistent: figure sweeps run thousands of
back-to-back SPMD runs, and worker spawn cost (a fresh interpreter under
``forkserver``/``spawn`` — the fork start method is unsafe with the rank
threads this process runs) must be paid once, not per run.  Workers are
started lazily up to the requested count and reused; a worker that wedges
past the run watchdog is terminated and abandoned, and the pool spawns a
replacement for the next run.

Watchdog/abort semantics mirror the thread backend: the parent enforces
one shared wall-clock budget per run, relays the first worker's abort to
the siblings (so their blocked ranks wake immediately instead of waiting
out their receive timeouts), and surfaces the same winning exception the
thread backend would pick (:func:`~repro.sim.engine.select_failure`).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable

from repro.cluster.specs import ClusterSpec
from repro.sim.trace import Trace
from repro.util.errors import CommunicationError, DeadlockError, ValidationError

#: Wall-clock seconds allowed for a fresh worker's startup handshake.
_HELLO_TIMEOUT = 60.0

#: Grace period after an abort before wedged workers are abandoned.
_ABANDON_GRACE = 5.0


def resolve_workers(workers: int | None, nranks: int) -> int:
    """Worker-process count for a run: explicit > env > CPU count.

    Capped at the rank count — a worker with no ranks would only idle.
    """
    if workers is None:
        env = os.environ.get("REPRO_SPMD_WORKERS")
        workers = int(env) if env else (os.cpu_count() or 1)
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    return min(workers, nranks)


def partition_ranks(nranks: int, nworkers: int) -> list[range]:
    """Split ranks into ``nworkers`` contiguous, balanced blocks.

    Contiguity keeps node-mates (ranks of one simulated node) in the same
    worker whenever blocks are at least a node wide, so intra-node traffic
    stays in-process.
    """
    base, extra = divmod(nranks, nworkers)
    blocks: list[range] = []
    start = 0
    for i in range(nworkers):
        size = base + (1 if i < extra else 0)
        blocks.append(range(start, start + size))
        start += size
    return blocks


def _worker_entry(conn: Connection, slot: int) -> None:  # pragma: no cover
    """Top-level process target (picklable by reference under spawn)."""
    from repro.sim.procworker import worker_main

    worker_main(conn, slot)


class _WorkerHandle:
    """Parent-side view of one live worker process."""

    __slots__ = ("slot", "process", "conn", "address", "runs_completed")

    def __init__(self, slot: int, process: Any, conn: Connection, address: str) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.address = address
        self.runs_completed = 0

    def alive(self) -> bool:
        return self.process.is_alive()


class _ProcessWorkerPool:
    """Warm, process-wide pool of SPMD worker processes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._workers: list[_WorkerHandle] = []
        self._ctx: Any = None
        self._next_run_id = 1
        self._next_slot = 0
        self.spawned = 0
        self.abandoned = 0
        self.runs = 0

    # -- lifecycle -----------------------------------------------------
    def _context(self) -> Any:
        if self._ctx is None:
            # Never ``fork``: the parent runs rank threads, and forking a
            # multithreaded process can deadlock the child.  forkserver
            # (cheap, Linux) falls back to spawn elsewhere.
            methods = mp.get_all_start_methods()
            self._ctx = mp.get_context(
                "forkserver" if "forkserver" in methods else "spawn"
            )
        return self._ctx

    def _spawn(self) -> _WorkerHandle:
        ctx = self._context()
        parent_conn, child_conn = ctx.Pipe()
        slot = self._next_slot
        self._next_slot += 1
        proc = ctx.Process(
            target=_worker_entry,
            args=(child_conn, slot),
            daemon=True,
            name=f"spmd-worker-{slot}",
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(_HELLO_TIMEOUT):
            proc.terminate()
            raise CommunicationError(
                f"SPMD worker {slot} did not complete its startup handshake"
            )
        msg = parent_conn.recv()
        if msg[0] != "hello":  # pragma: no cover - protocol violation
            proc.terminate()
            raise CommunicationError(f"SPMD worker {slot} sent {msg[0]!r}, expected hello")
        self.spawned += 1
        return _WorkerHandle(slot, proc, parent_conn, msg[2])

    def _ensure(self, nworkers: int) -> list[_WorkerHandle]:
        """Prune dead workers and grow the pool to ``nworkers`` live ones."""
        self._workers = [h for h in self._workers if h.alive()]
        while len(self._workers) < nworkers:
            self._workers.append(self._spawn())
        return self._workers[:nworkers]

    def _abandon(self, handle: _WorkerHandle) -> None:
        """Terminate a wedged/dead worker and drop it from the pool."""
        try:
            handle.process.terminate()
        except Exception:  # pragma: no cover
            pass
        try:
            handle.conn.close()
        except Exception:  # pragma: no cover
            pass
        if handle in self._workers:
            self._workers.remove(handle)
        self.abandoned += 1

    def stats(self) -> dict[str, int]:
        """Pool occupancy/lifecycle counters (mirrors ``rank_pool_stats``)."""
        with self._lock:
            return {
                "workers": sum(1 for h in self._workers if h.alive()),
                "spawned": self.spawned,
                "abandoned": self.abandoned,
                "runs": self.runs,
            }

    def shutdown(self) -> None:
        """Stop every pooled worker (test hook; daemons die with the parent)."""
        with self._lock:
            workers, self._workers = self._workers, []
        for h in workers:
            try:
                h.conn.send(("shutdown",))
            except Exception:
                pass
        for h in workers:
            h.process.join(timeout=5.0)
            if h.process.is_alive():  # pragma: no cover
                h.process.terminate()

    # -- running -------------------------------------------------------
    def run(self, nworkers: int, **spec: Any) -> "Any":
        # One process-backend run at a time: run ids stay totally ordered
        # for the workers' orphan/finished bookkeeping, and rank blocks
        # never compete for the same worker.
        with self._lock:
            return self._run_locked(nworkers, **spec)

    def _run_locked(
        self,
        nworkers: int,
        *,
        fn: Callable[..., Any],
        cluster: ClusterSpec,
        ranks_per_node: int,
        args: tuple,
        kwargs: dict,
        trace: bool,
        recorder_factory: Callable[[int], Trace] | None,
        device_factory: Any,
        recv_timeout: float,
        wall_timeout: float,
        fault_plan: Any,
    ) -> Any:
        import cloudpickle

        from repro.sim.engine import SpmdResult, _RankFailure, select_failure

        nranks = cluster.num_nodes * ranks_per_node
        handles = self._ensure(nworkers)
        run_id = self._next_run_id
        self._next_run_id += 1
        blocks = partition_ranks(nranks, nworkers)
        rank_worker = tuple(i for i, blk in enumerate(blocks) for _ in blk)
        peer_addrs = {i: h.address for i, h in enumerate(handles)}

        base_spec = {
            "fn": fn,
            "cluster": cluster,
            "ranks_per_node": ranks_per_node,
            "args": args,
            "kwargs": kwargs,
            "trace": trace,
            "recorder_factory": recorder_factory,
            "device_factory": device_factory,
            "recv_timeout": recv_timeout,
            "wall_timeout": wall_timeout,
            "fault_plan": fault_plan,
            "rank_worker": rank_worker,
            "peer_addrs": peer_addrs,
        }
        for i, h in enumerate(handles):
            blob = cloudpickle.dumps({**base_spec, "my_ranks": blocks[i]})
            h.conn.send(("run", run_id, blob))

        # -- collect -----------------------------------------------------
        deadline = time.monotonic() + wall_timeout
        pending: dict[Connection, _WorkerHandle] = {h.conn: h for h in handles}
        results: dict[int, dict] = {}  # handle slot index in run -> result
        slot_of = {h.conn: i for i, h in enumerate(handles)}
        infra_failure: BaseException | None = None
        abort_relayed = False

        def relay_abort() -> None:
            nonlocal abort_relayed
            if abort_relayed:
                return
            abort_relayed = True
            for conn in pending:
                try:
                    conn.send(("abort", run_id))
                except Exception:
                    pass

        while pending:
            left = deadline - time.monotonic()
            if left <= 0:
                break
            for conn in _conn_wait(list(pending), timeout=left):
                h = pending[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    if infra_failure is None:
                        infra_failure = CommunicationError(
                            f"SPMD worker {h.slot} died mid-run"
                        )
                    del pending[conn]
                    self._abandon(h)
                    relay_abort()
                    continue
                kind = msg[0]
                if len(msg) > 1 and msg[1] != run_id:
                    continue  # straggler from an older, abandoned run
                if kind == "aborted":
                    relay_abort()
                elif kind == "done":
                    results[slot_of[conn]] = pickle.loads(msg[2])
                    del pending[conn]
                    h.runs_completed += 1
                elif kind == "fail":
                    exc, tb = pickle.loads(msg[2])
                    if infra_failure is None:
                        infra_failure = RuntimeError(
                            f"SPMD worker {h.slot} failed: {exc!r}\n{tb}"
                        )
                    del pending[conn]
                    relay_abort()

        if pending:
            # Shared wall budget exhausted: abort, give survivors a grace
            # period to report, then abandon anything still wedged.
            relay_abort()
            grace_end = time.monotonic() + _ABANDON_GRACE
            while pending and time.monotonic() < grace_end:
                for conn in _conn_wait(
                    list(pending), timeout=max(0.0, grace_end - time.monotonic())
                ):
                    h = pending[conn]
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        del pending[conn]
                        self._abandon(h)
                        continue
                    if msg[0] in ("done", "fail") and msg[1] == run_id:
                        del pending[conn]
                        if msg[0] == "done":
                            results[slot_of[conn]] = pickle.loads(msg[2])
            stuck = sorted(
                r for conn in pending for r in blocks[slot_of[conn]]
            )
            for h in list(pending.values()):
                self._abandon(h)
            self.runs += 1
            raise DeadlockError(
                f"SPMD run exceeded wall timeout of {wall_timeout}s; "
                f"ranks on unresponsive workers: {stuck}"
            )

        # -- merge -------------------------------------------------------
        self.runs += 1
        values: list[Any] = [None] * nranks
        times: list[float] = [0.0] * nranks
        traces: list[Trace] = [Trace(r, enabled=False) for r in range(nranks)]
        failures: list[_RankFailure] = []
        rank_pool_spawned = 0
        rank_pool_idle = 0
        for i in range(nworkers):
            res = results.get(i)
            if res is None:
                continue
            for j, r in enumerate(blocks[i]):
                values[r] = res["values"][j]
                times[r] = res["times"][j]
                traces[r] = res["traces"][j]
            for rank, exc in res["failures"]:
                failures.append(_RankFailure(rank, exc))
            if fault_plan is not None and res["fault_stats"] is not None:
                fault_plan.absorb(res["fault_stats"], res["consumed_crashes"])
            rank_pool_spawned += res["rank_pool"]["spawned"]
            rank_pool_idle += res["rank_pool"]["idle"]

        if failures:
            raise select_failure(failures).exc
        if infra_failure is not None:
            raise infra_failure

        if traces and traces[0].enabled:
            traces[0].gauge("rank_pool.spawned", rank_pool_spawned)
            traces[0].gauge("rank_pool.idle", rank_pool_idle)
            traces[0].gauge("proc_pool.workers", len(handles))
            traces[0].gauge("proc_pool.spawned", self.spawned)
            traces[0].gauge("proc_pool.runs", self.runs)
        return SpmdResult(values=values, times=times, traces=traces)


#: The process-wide worker pool shared by every ``backend="processes"`` run.
_pool = _ProcessWorkerPool()


def process_pool_stats() -> dict[str, int]:
    """Live/spawned/abandoned/run counters of the shared worker pool."""
    return _pool.stats()


def shutdown_pool() -> None:
    """Stop all pooled workers (test hook)."""
    _pool.shutdown()


def spmd_run_processes(
    fn: Callable[..., Any],
    cluster: ClusterSpec,
    *,
    ranks_per_node: int,
    args: tuple,
    kwargs: dict,
    trace: bool,
    recorder_factory: Callable[[int], Trace] | None,
    device_factory: Any,
    recv_timeout: float,
    wall_timeout: float,
    fault_plan: Any,
    workers: int | None,
) -> Any:
    """Run one SPMD program on the process backend (see module docstring).

    With an effective worker count of one (single-core hosts, or
    ``workers=1``) the run executes on the thread backend instead — the
    results are bit-identical either way and the bridge would only add
    overhead.
    """
    nranks = cluster.num_nodes * ranks_per_node
    nworkers = resolve_workers(workers, nranks)
    if nworkers <= 1:
        # Enter the thread body directly (not spmd_run) so the logical run
        # is counted once by engine.active_run_stats().
        from repro.sim.engine import _spmd_run_threads

        return _spmd_run_threads(
            fn,
            cluster,
            ranks_per_node=ranks_per_node,
            args=args,
            kwargs=kwargs,
            trace=trace,
            recorder_factory=recorder_factory,
            device_factory=device_factory,
            recv_timeout=recv_timeout,
            wall_timeout=wall_timeout,
            fault_plan=fault_plan,
        )
    return _pool.run(
        nworkers,
        fn=fn,
        cluster=cluster,
        ranks_per_node=ranks_per_node,
        args=args,
        kwargs=kwargs,
        trace=trace,
        recorder_factory=recorder_factory,
        device_factory=device_factory,
        recv_timeout=recv_timeout,
        wall_timeout=wall_timeout,
        fault_plan=fault_plan,
    )
