"""Busy-interval timeline for one execution resource.

A :class:`Timeline` models a serially-executing resource: one CPU core, one
GPU compute engine, one GPU copy engine, or one network injection port.
Scheduling an item at ready-time ``t`` places it at ``max(t, available_at)``
— i.e. classic list scheduling — and the resulting start/finish times are
what make load imbalance and pipelining *emerge* rather than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ValidationError


@dataclass(slots=True)
class Interval:
    """One scheduled busy interval (append-only; treat as immutable).

    A plain slotted dataclass rather than a frozen one: timelines create
    one per scheduled item on the simulation hot path, and frozen
    dataclasses pay ``object.__setattr__`` per field on construction.
    """

    start: float
    end: float
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Append-only schedule of busy intervals on one resource.

    When observability is enabled an external *sink* can be attached with
    :meth:`observe`; every scheduled interval is then also reported to the
    sink, which lets :mod:`repro.obs` keep a full-run interval history even
    though devices :meth:`reset` their timelines every step.  The sink never
    influences scheduling, so virtual time is bit-identical with or without
    one; when no sink is attached the only cost is one ``is None`` check.
    """

    __slots__ = ("name", "_available_at", "_intervals", "_busy", "_sink")

    def __init__(self, name: str, start: float = 0.0) -> None:
        self.name = name
        self._available_at = float(start)
        self._intervals: list[Interval] = []
        self._busy = 0.0
        self._sink = None

    def observe(self, sink) -> None:
        """Attach ``sink(name, start, end, label)``, called per interval."""
        self._sink = sink

    @property
    def available_at(self) -> float:
        """Earliest time a new item could start."""
        return self._available_at

    @property
    def busy_time(self) -> float:
        """Total scheduled busy seconds."""
        return self._busy

    @property
    def intervals(self) -> tuple[Interval, ...]:
        return tuple(self._intervals)

    def schedule(self, ready: float, duration: float, label: str = "") -> Interval:
        """Schedule an item that becomes ready at ``ready`` for ``duration``.

        Returns the placed interval; the item starts at
        ``max(ready, available_at)`` and the resource is then busy until its
        end.
        """
        # Coerce to python floats: callers sometimes hand in numpy scalars,
        # and letting them propagate through interval endpoints makes every
        # later comparison an order of magnitude slower.  Bit-identical —
        # both are IEEE doubles.
        ready = float(ready)
        duration = float(duration)
        if duration < 0:
            raise ValidationError(f"duration must be >= 0, got {duration}")
        if ready < 0:
            raise ValidationError(f"ready time must be >= 0, got {ready}")
        start = max(ready, self._available_at)
        interval = Interval(start=start, end=start + duration, label=label)
        self._intervals.append(interval)
        self._available_at = interval.end
        self._busy += duration
        if self._sink is not None:
            self._sink(self.name, start, interval.end, label)
        return interval

    def reset(self, start: float = 0.0) -> None:
        """Clear all scheduled state, as if freshly constructed at ``start``.

        Devices reset their engine timelines every stencil step; reusing
        the object (instead of constructing a new one) keeps the per-step
        allocation count flat.
        """
        self._available_at = float(start)
        self._intervals.clear()
        self._busy = 0.0

    def idle_time(self, horizon: float | None = None) -> float:
        """Idle seconds up to ``horizon`` (default: last finish time)."""
        end = self._available_at if horizon is None else horizon
        return max(0.0, end - self._busy)

    def utilization(self, horizon: float | None = None) -> float:
        """Busy fraction in ``[0, horizon]`` (0.0 for an empty timeline)."""
        end = self._available_at if horizon is None else horizon
        if end <= 0:
            return 0.0
        return min(1.0, self._busy / end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Timeline({self.name!r}, items={len(self._intervals)}, "
            f"available_at={self._available_at:.6f})"
        )
