"""Event tracing: the substrate of the observability layer.

Runtimes record *what happened when* (in virtual time) into a
:class:`Trace`: compute spans, communication spans, transfers, combines.
Tests use traces to assert structural properties the paper claims — e.g.
that with overlapped execution the local-edge compute span genuinely
overlaps the node-data exchange span, or that a tree combine has
``ceil(log2 n)`` rounds — rather than only checking final timings.

:mod:`repro.obs` builds on this class: :class:`repro.obs.Recorder`
subclasses :class:`Trace` and additionally captures per-:class:`Timeline`
busy intervals (surviving the per-step resets devices perform), which the
analysis layer turns into utilization, phase attribution and critical-path
reports.  The hooks :meth:`Trace.bind_fabric` / :meth:`Trace.bind_device`
are no-ops here so the simulation layers stay ignorant of ``repro.obs``.

Recording must never perturb virtual time — makespans are bit-identical
with tracing on or off — and the *disabled* path must be allocation-free:
``record`` takes its metadata as an optional positional dict (never
``**kwargs``, which would allocate a dict per call before the ``enabled``
check runs), and hot call sites check ``trace.enabled`` before building
labels or metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass(slots=True)
class TraceEvent:
    """One traced span of virtual time on one rank (treat as immutable).

    Slotted but not frozen: runtimes record events on the simulation hot
    path, and frozen dataclasses pay ``object.__setattr__`` per field.
    """

    rank: int
    category: str
    label: str
    start: float
    end: float
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


#: Shared empty metadata dict for events recorded without any; saves one
#: dict allocation per meta-less event.  Treated as immutable by contract.
_NO_META: dict[str, Any] = {}


def overlap_seconds(a: TraceEvent, b: TraceEvent) -> float:
    """Length of the temporal intersection of two events (0 if disjoint)."""
    return max(0.0, min(a.end, b.end) - max(a.start, b.start))


class Trace:
    """A per-rank collection of :class:`TraceEvent`, free when disabled."""

    __slots__ = ("rank", "enabled", "_events", "_counters", "_gauges")

    def __init__(self, rank: int, enabled: bool = True) -> None:
        self.rank = rank
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    def record(
        self,
        category: str,
        label: str,
        start: float,
        end: float,
        meta: dict[str, Any] | None = None,
    ) -> None:
        """Record a span; no-op when the trace is disabled.

        ``meta`` is an optional plain dict, deliberately *not* ``**kwargs``:
        a ``**``-signature would force CPython to allocate a keyword dict on
        every call, even when ``enabled`` is False.  Callers that attach
        metadata should build the dict behind their own ``enabled`` check.
        """
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(
                rank=self.rank,
                category=category,
                label=label,
                start=float(start),
                end=float(end),
                meta=_NO_META if meta is None else meta,
            )
        )

    # ------------------------------------------------------------------
    # Counters / gauges
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` onto counter ``name`` (no-op if disabled)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value`` (no-op if disabled)."""
        if not self.enabled:
            return
        self._gauges[name] = float(value)

    @property
    def counters(self) -> dict[str, float]:
        """Accumulated counters (name -> total), per rank."""
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, float]:
        """Latest gauge values (name -> value), per rank."""
        return dict(self._gauges)

    # ------------------------------------------------------------------
    # Observability hooks (overridden by repro.obs.Recorder)
    # ------------------------------------------------------------------
    def bind_fabric(self, fabric: Any) -> None:
        """Hook: called once per rank before the rank program starts."""

    def bind_device(self, device: Any) -> None:
        """Hook: called for each device built for this rank."""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def filter(
        self, category: str | None = None, label_prefix: str | None = None
    ) -> list[TraceEvent]:
        """Events matching a category and/or label prefix."""
        out = []
        for ev in self._events:
            if category is not None and ev.category != category:
                continue
            if label_prefix is not None and not ev.label.startswith(label_prefix):
                continue
            out.append(ev)
        return out

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) across all events; (0, 0) if empty."""
        if not self._events:
            return (0.0, 0.0)
        return (
            min(ev.start for ev in self._events),
            max(ev.end for ev in self._events),
        )

    def total(self, category: str) -> float:
        """Sum of durations of all events in ``category``."""
        return sum(ev.duration for ev in self._events if ev.category == category)

    def by_category(self) -> dict[str, float]:
        """Summed durations keyed by category (insertion-ordered)."""
        out: dict[str, float] = {}
        for ev in self._events:
            out[ev.category] = out.get(ev.category, 0.0) + (ev.end - ev.start)
        return out

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


def merge_traces(traces: Iterable[Trace]) -> list[TraceEvent]:
    """All events from several per-rank traces, sorted by start time."""
    events: list[TraceEvent] = []
    for tr in traces:
        events.extend(tr.events)
    events.sort(key=lambda ev: (ev.start, ev.rank))
    return events
