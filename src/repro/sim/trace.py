"""Event tracing for behavioural verification.

Runtimes record *what happened when* (in virtual time) into a
:class:`Trace`: compute spans, communication spans, transfers, combines.
Tests use traces to assert structural properties the paper claims — e.g.
that with overlapped execution the local-edge compute span genuinely
overlaps the node-data exchange span, or that a tree combine has
``ceil(log2 n)`` rounds — rather than only checking final timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass(slots=True)
class TraceEvent:
    """One traced span of virtual time on one rank (treat as immutable).

    Slotted but not frozen: runtimes record events on the simulation hot
    path, and frozen dataclasses pay ``object.__setattr__`` per field.
    """

    rank: int
    category: str
    label: str
    start: float
    end: float
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


def overlap_seconds(a: TraceEvent, b: TraceEvent) -> float:
    """Length of the temporal intersection of two events (0 if disjoint)."""
    return max(0.0, min(a.end, b.end) - max(a.start, b.start))


class Trace:
    """A per-rank collection of :class:`TraceEvent`, cheap when disabled."""

    __slots__ = ("rank", "enabled", "_events")

    def __init__(self, rank: int, enabled: bool = True) -> None:
        self.rank = rank
        self.enabled = enabled
        self._events: list[TraceEvent] = []

    def record(
        self,
        category: str,
        label: str,
        start: float,
        end: float,
        **meta: Any,
    ) -> None:
        """Record a span; no-op when the trace is disabled."""
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(
                rank=self.rank,
                category=category,
                label=label,
                start=float(start),
                end=float(end),
                meta=meta,
            )
        )

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def filter(
        self, category: str | None = None, label_prefix: str | None = None
    ) -> list[TraceEvent]:
        """Events matching a category and/or label prefix."""
        out = []
        for ev in self._events:
            if category is not None and ev.category != category:
                continue
            if label_prefix is not None and not ev.label.startswith(label_prefix):
                continue
            out.append(ev)
        return out

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) across all events; (0, 0) if empty."""
        if not self._events:
            return (0.0, 0.0)
        return (
            min(ev.start for ev in self._events),
            max(ev.end for ev in self._events),
        )

    def total(self, category: str) -> float:
        """Sum of durations of all events in ``category``."""
        return sum(ev.duration for ev in self._events if ev.category == category)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


def merge_traces(traces: Iterable[Trace]) -> list[TraceEvent]:
    """All events from several per-rank traces, sorted by start time."""
    events: list[TraceEvent] = []
    for tr in traces:
        events.extend(tr.events)
    events.sort(key=lambda ev: (ev.start, ev.rank))
    return events
