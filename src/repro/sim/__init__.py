"""Virtual-time simulation substrate.

The whole reproduction runs computations *functionally* (real NumPy math on
real arrays) while accounting time on a **virtual clock** per rank plus
per-device :class:`Timeline` objects, in the style of LogGP trace-driven
simulators.  Communication and device costs advance virtual time; wall-clock
time is irrelevant to every reported number.

Key pieces:

- :class:`VirtualClock` — one per simulated MPI process (rank).
- :class:`Timeline` — one per execution resource (CPU core, GPU compute
  engine, GPU copy engine); supports list-scheduling of work items.
- :class:`Trace` — optional event recording used by tests to verify
  behavioural claims (e.g. that communication genuinely overlaps compute).
- :func:`spmd_run` — executes one Python function per rank on real threads,
  wiring up clocks, communicators, and devices.
"""

from repro.sim.clock import VirtualClock
from repro.sim.timeline import Timeline
from repro.sim.trace import Trace, TraceEvent, overlap_seconds
from repro.sim.engine import (
    BACKENDS,
    RankContext,
    SpmdResult,
    active_run_stats,
    rank_pool_stats,
    resolve_backend,
    spmd_run,
)

__all__ = [
    "VirtualClock",
    "Timeline",
    "Trace",
    "TraceEvent",
    "overlap_seconds",
    "BACKENDS",
    "RankContext",
    "SpmdResult",
    "active_run_stats",
    "rank_pool_stats",
    "resolve_backend",
    "spmd_run",
    "process_pool_stats",
]


def process_pool_stats() -> dict[str, int]:
    """Stats of the process backend's worker pool (lazy import: the pool
    module is only loaded once a ``backend="processes"`` run happens)."""
    from repro.sim.procpool import process_pool_stats as _stats

    return _stats()
