"""Multi-core CPU device model.

One :class:`CPUDevice` stands for *all* the CPU cores of a node (the
paper's runtime drives them with pthreads from a single process).  Each
core is a separate worker :class:`~repro.sim.timeline.Timeline`, so the
dynamic chunk scheduler sees 12 independent consumers; static partitions
are charged assuming the partition is divided evenly across cores.

Roofline: a core's per-element time is the max of its compute time and its
share of the node memory bandwidth — running 12 cores flat out divides the
memory system 12 ways, which is what makes memory-bound kernels (stencils)
scale sub-linearly in cores, as on real hardware.
"""

from __future__ import annotations

from repro.cluster.specs import CPUSpec
from repro.device.base import Device
from repro.device.costmodel import atomic_cost_per_insert
from repro.device.work import WorkModel
from repro.sim.timeline import Timeline
from repro.util.errors import ValidationError


class CPUDevice(Device):
    """All CPU cores of one node, acting as one heterogeneous-team member."""

    kind = "cpu"

    def __init__(self, spec: CPUSpec, index: int = 0, name: str | None = None) -> None:
        super().__init__(name or spec.name, index)
        self.spec = spec
        self._workers = [Timeline(f"cpu{index}.core{c}") for c in range(spec.cores)]

    @property
    def cores(self) -> int:
        return self.spec.cores

    def core_elem_time(
        self, model: WorkModel, *, localized: bool = True, framework: bool = True
    ) -> float:
        """Seconds per element on ONE core with all cores active."""
        flops = model.flops_per_elem + (model.runtime_overhead_flops if framework else 0.0)
        compute = flops / (self.spec.core_flops * model.cpu_efficiency)
        memory = model.bytes_per_elem / (
            self.spec.mem_bandwidth * model.cpu_mem_efficiency / self.spec.cores
        )
        t = max(compute, memory)
        if model.atomics_per_elem > 0:
            t += model.atomics_per_elem * atomic_cost_per_insert(
                "cpu",
                model.num_reduction_keys or 1,
                localized,
                cpu_cores=self.spec.cores,
            )
        return t

    def elem_time(
        self, model: WorkModel, *, localized: bool = True, framework: bool = True
    ) -> float:
        """Seconds per element for the whole device (all cores together)."""
        return self.core_elem_time(model, localized=localized, framework=framework) / self.cores

    def partition_time(
        self, model: WorkModel, n: float, *, localized: bool = True, framework: bool = True
    ) -> float:
        """Time for ``n`` elements split evenly across the cores."""
        if n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        return n * self.elem_time(model, localized=localized, framework=framework)

    def memcpy_time(self, nbytes: float) -> float:
        """Host-memory copy cost (boundary packing, reduction merges)."""
        if nbytes < 0:
            raise ValidationError(f"nbytes must be >= 0, got {nbytes}")
        # memcpy reads + writes: 2x traffic over the node memory bus.
        return 2.0 * nbytes / self.spec.mem_bandwidth

    def timelines(self) -> list[Timeline]:
        return list(self._workers)

    @property
    def workers(self) -> list[Timeline]:
        """Per-core worker timelines for the dynamic chunk scheduler."""
        return self._workers

    def reset(self, start: float = 0.0) -> None:
        for worker in self._workers:
            worker.reset(start)

    @property
    def speed_hint(self) -> float:
        return self.spec.total_flops
