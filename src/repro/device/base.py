"""Abstract device interface.

A device converts element counts into simulated seconds (via its cost
methods) and owns one or more :class:`~repro.sim.timeline.Timeline` objects
on which the runtimes schedule work.  Devices hold *no* application state;
all data lives with the runtimes, which is what lets a single functional
execution be re-costed for different device mixes.
"""

from __future__ import annotations

import abc

from repro.device.work import WorkModel
from repro.sim.timeline import Timeline


class Device(abc.ABC):
    """One execution resource inside a node (a multi-core CPU or one GPU)."""

    kind: str

    def __init__(self, name: str, index: int) -> None:
        self.name = name
        self.index = index

    # -- cost model ----------------------------------------------------
    @abc.abstractmethod
    def elem_time(
        self, model: WorkModel, *, localized: bool = True, framework: bool = True
    ) -> float:
        """Seconds per element at full device occupancy.

        ``localized`` selects the reduction-localization atomic rate;
        ``framework`` charges the runtime's per-element bookkeeping
        overhead (hand-written baselines pass ``False``).
        """

    @abc.abstractmethod
    def partition_time(
        self, model: WorkModel, n: float, *, localized: bool = True, framework: bool = True
    ) -> float:
        """Seconds to process a statically-assigned partition of ``n`` elements.

        Includes per-invocation fixed costs (kernel launch on GPUs).
        """

    # -- scheduling ----------------------------------------------------
    @abc.abstractmethod
    def timelines(self) -> list[Timeline]:
        """All busy-interval timelines this device owns (for reports)."""

    @abc.abstractmethod
    def reset(self, start: float = 0.0) -> None:
        """Fresh timelines starting at ``start`` (between runtime launches)."""

    @property
    @abc.abstractmethod
    def speed_hint(self) -> float:
        """Relative raw throughput hint (FLOP/s scale); used only for
        deterministic tie-breaking in reports, never for partitioning —
        the adaptive partitioner profiles real (simulated) speeds."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, index={self.index})"
