"""Per-element kernel cost descriptions.

A :class:`WorkModel` describes what one *input unit* of a kernel costs: its
arithmetic, its memory traffic, how many reduction-object inserts it
performs, and how efficiently tuned code reaches peak on each device class.
Applications declare one WorkModel per kernel; runtimes hand them to
devices to convert element counts into simulated seconds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class WorkModel:
    """Cost description of one kernel, per input element.

    Attributes:
        name: Kernel name, used in traces and reports.
        flops_per_elem: Floating-point operations per element.
        bytes_per_elem: Device/host memory traffic per element (bytes).
        cpu_efficiency: Fraction of CPU peak a tuned scalar/SSE loop
            reaches for this kernel.  Calibrated per application (see
            ``repro.apps``), not a free parameter of the simulator.
        gpu_efficiency: Same for the GPU kernel.
        cpu_mem_efficiency: Fraction of node memory bandwidth the access
            pattern achieves (1.0 = streaming; gather/scatter lower).
        gpu_mem_efficiency: Same for GPU device memory (coalescing).
        atomics_per_elem: Reduction-object inserts per element (generalized
            and irregular reductions; 0 for stencils).
        num_reduction_keys: Distinct keys the inserts target (drives the
            atomic-contention model); ``None`` when atomics_per_elem == 0.
        transfer_bytes_per_elem: Host->device bytes streamed per element
            when the input is *not* resident on the GPU (generalized
            reductions copy their chunk in; irregular/stencil data stays
            resident).
        runtime_overhead_flops: Extra per-element bookkeeping arithmetic the
            *framework* executes (e.g. the stencil runtime's offset
            computation, §IV-C); hand-written baselines do not pay it.
        runtime_overhead_flops_gpu: GPU-specific override of the above
            (``None`` = same as CPU).  Generalized reductions pay their
            bookkeeping mostly in the GPU kernel's key handling.
    """

    name: str
    flops_per_elem: float
    bytes_per_elem: float
    cpu_efficiency: float = 0.5
    gpu_efficiency: float = 0.5
    cpu_mem_efficiency: float = 1.0
    gpu_mem_efficiency: float = 1.0
    atomics_per_elem: float = 0.0
    num_reduction_keys: int | None = None
    transfer_bytes_per_elem: float = 0.0
    runtime_overhead_flops: float = 0.0
    runtime_overhead_flops_gpu: float | None = None

    def __post_init__(self) -> None:
        if self.flops_per_elem < 0 or self.bytes_per_elem < 0:
            raise ValidationError("flops/bytes per element must be >= 0")
        if self.flops_per_elem == 0 and self.bytes_per_elem == 0:
            raise ValidationError(f"WorkModel {self.name!r} describes no work at all")
        for attr in (
            "cpu_efficiency",
            "gpu_efficiency",
            "cpu_mem_efficiency",
            "gpu_mem_efficiency",
        ):
            v = getattr(self, attr)
            if not 0 < v <= 1:
                raise ValidationError(f"WorkModel.{attr} must be in (0, 1], got {v}")
        if self.atomics_per_elem < 0:
            raise ValidationError("atomics_per_elem must be >= 0")
        if self.atomics_per_elem > 0 and not self.num_reduction_keys:
            raise ValidationError(
                f"WorkModel {self.name!r} performs atomics but num_reduction_keys is unset"
            )
        if self.transfer_bytes_per_elem < 0 or self.runtime_overhead_flops < 0:
            raise ValidationError("transfer/overhead terms must be >= 0")
        if self.runtime_overhead_flops_gpu is not None and self.runtime_overhead_flops_gpu < 0:
            raise ValidationError("runtime_overhead_flops_gpu must be >= 0")

    @property
    def gpu_overhead_flops(self) -> float:
        """The GPU-side framework overhead (falls back to the CPU value)."""
        if self.runtime_overhead_flops_gpu is not None:
            return self.runtime_overhead_flops_gpu
        return self.runtime_overhead_flops

    def replace(self, **changes) -> "WorkModel":
        """A copy with some fields changed (e.g. efficiency ablations)."""
        return dataclasses.replace(self, **changes)


def scaled(functional_elems: int, model_elems: int | None) -> float:
    """Time-scale factor mapping functional element counts to modeled ones.

    Benchmarks run the *math* on scaled-down arrays but charge the cost
    model for the paper's workload sizes; this returns the multiplier.

    >>> scaled(1000, 100000)
    100.0
    >>> scaled(1000, None)
    1.0
    """
    if functional_elems <= 0:
        raise ValidationError(f"functional_elems must be > 0, got {functional_elems}")
    if model_elems is None:
        return 1.0
    if model_elems < functional_elems:
        raise ValidationError(
            f"model_elems ({model_elems}) must be >= functional_elems ({functional_elems})"
        )
    return model_elems / functional_elems
