"""Discrete GPU device model (Fermi-class).

A :class:`GPUDevice` owns two engine timelines — a *copy* engine (PCIe DMA)
and a *compute* engine (kernel execution) — mirroring how CUDA streams
pipeline host→device copies with kernels.  The paper's generalized-
reduction scheduler creates two streams per GPU and splits each task chunk
into two blocks; :meth:`submit_chunk` reproduces exactly that pipeline, so
copy/compute overlap (and its limits: a chunk's kernel cannot start before
its copy finishes) is structural, not a fudge factor.

Kernel cost is roofline (compute vs. device-memory bandwidth) at the
kernel's calibrated efficiency, plus the atomic term for reduction inserts
and a fixed launch overhead per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.specs import GPUSpec
from repro.device.base import Device
from repro.device.costmodel import atomic_cost_per_insert
from repro.device.work import WorkModel
from repro.sim.timeline import Timeline
from repro.util.errors import ValidationError

#: CUDA block size assumed by the contention model and occupancy notes.
GPU_THREADS_PER_BLOCK = 256


@dataclass(frozen=True)
class ChunkExecution:
    """Virtual-time record of one pipelined chunk on a GPU."""

    ready: float
    copy_start: float
    copy_end: float
    kernel_start: float
    kernel_end: float

    @property
    def total(self) -> float:
        return self.kernel_end - self.ready


class GPUDevice(Device):
    """One discrete GPU: copy engine + compute engine."""

    kind = "gpu"

    def __init__(self, spec: GPUSpec, index: int = 0, name: str | None = None) -> None:
        super().__init__(name or f"{spec.name}#{index}", index)
        self.spec = spec
        self.copy_engine = Timeline(f"gpu{index}.copy")
        self.compute_engine = Timeline(f"gpu{index}.compute")

    # -- cost model ----------------------------------------------------
    def elem_time(
        self, model: WorkModel, *, localized: bool = True, framework: bool = True
    ) -> float:
        """Seconds per element of kernel execution (device fully occupied)."""
        flops = model.flops_per_elem + (model.gpu_overhead_flops if framework else 0.0)
        compute = flops / (self.spec.flops * model.gpu_efficiency)
        memory = model.bytes_per_elem / (self.spec.mem_bandwidth * model.gpu_mem_efficiency)
        t = max(compute, memory)
        if model.atomics_per_elem > 0:
            t += model.atomics_per_elem * atomic_cost_per_insert(
                "gpu", model.num_reduction_keys or 1, localized, gpu=self.spec
            )
        return t

    def kernel_time(
        self, model: WorkModel, n: float, *, localized: bool = True, framework: bool = True
    ) -> float:
        """One kernel launch processing ``n`` elements."""
        if n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        if n == 0:
            return 0.0
        return self.spec.kernel_launch_overhead + n * self.elem_time(
            model, localized=localized, framework=framework
        )

    def partition_time(
        self, model: WorkModel, n: float, *, localized: bool = True, framework: bool = True
    ) -> float:
        return self.kernel_time(model, n, localized=localized, framework=framework)

    def transfer_time(self, nbytes: float) -> float:
        """One host<->device copy of ``nbytes`` over PCIe."""
        if nbytes < 0:
            raise ValidationError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.spec.pcie_latency + nbytes / self.spec.pcie_bandwidth

    def peer_transfer_time(self, nbytes: float) -> float:
        """GPU->GPU copy via ``cudaMemcpyPeerAsync`` (concurrent
        bi-directional on the PCIe bus, per the paper §III-C)."""
        return self.transfer_time(nbytes)

    # -- pipelined chunk execution (two-stream model) --------------------
    def submit_chunk(
        self,
        model: WorkModel,
        n: float,
        ready: float,
        *,
        localized: bool = True,
        framework: bool = True,
        streams: int = 2,
        label: str = "chunk",
    ) -> ChunkExecution:
        """Execute one scheduler chunk, split across ``streams`` blocks.

        Mirrors the paper's §III-D flow: the controlling CPU thread splits
        the chunk into ``streams`` blocks; each block's input is copied
        host→device (copy engine), then its kernel runs (compute engine).
        Block *k+1*'s copy overlaps block *k*'s kernel.  Returns the
        virtual-time envelope; the controlling thread fetches the next
        chunk only after ``kernel_end`` (both streams done).
        """
        if streams < 1:
            raise ValidationError(f"streams must be >= 1, got {streams}")
        if n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        first_copy_start = None
        last_kernel_end = ready
        per_block = n / streams
        copy_bytes = per_block * model.transfer_bytes_per_elem
        for s in range(streams):
            copy_dur = self.transfer_time(copy_bytes) if copy_bytes > 0 else 0.0
            copy_iv = self.copy_engine.schedule(ready, copy_dur, f"{label}.h2d[{s}]")
            if first_copy_start is None:
                first_copy_start = copy_iv.start
            kernel_dur = self.kernel_time(
                model, per_block, localized=localized, framework=framework
            )
            kern_iv = self.compute_engine.schedule(copy_iv.end, kernel_dur, f"{label}.k[{s}]")
            last_kernel_end = kern_iv.end
        return ChunkExecution(
            ready=ready,
            copy_start=first_copy_start if first_copy_start is not None else ready,
            copy_end=self.copy_engine.available_at,
            kernel_start=last_kernel_end,  # end of pipeline; see envelope use
            kernel_end=last_kernel_end,
        )

    # -- bookkeeping -----------------------------------------------------
    def timelines(self) -> list[Timeline]:
        return [self.copy_engine, self.compute_engine]

    def reset(self, start: float = 0.0) -> None:
        self.copy_engine.reset(start)
        self.compute_engine.reset(start)

    @property
    def speed_hint(self) -> float:
        return self.spec.flops
