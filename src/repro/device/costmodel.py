"""Shared cost-model pieces: atomic contention and shared-memory capacity.

The paper's *reduction localization* optimization (§III-E) exists because
GPU atomics serialize when many threads target few keys.  We use a queueing
model: updates to distinct keys proceed in parallel (the memory system
pipelines them), updates to the same key serialize at the base atomic
latency.  With ``K`` keys and ample threads, aggregate insert throughput is
``K_parallel / base_cost`` where ``K_parallel = min(K, lanes)`` and
``lanes`` is how many concurrent atomic pipelines the memory level offers.
The amortized per-insert cost is therefore::

    base_cost / min(num_keys, lanes)

- Few keys (Kmeans: 40 clusters) → near-full serialization at the slow
  global-atomic latency — the paper's pain case.
- Localization moves the object into shared memory (fast ``base_cost``)
  *and* gives each thread block its own object copy, so the effective cost
  collapses — exactly the mechanism §III-E describes.

CPU side: localization means per-core *private* objects (plain cached
updates); the unlocalized path is a shared object with ``lock``-prefixed
updates contended by all cores.
"""

from __future__ import annotations

from repro.cluster.specs import GPUSpec
from repro.util.errors import ValidationError

#: Cost of inserting into a per-core *private* reduction object on a CPU
#: (a plain cached read-modify-write, no bus locking).
CPU_PRIVATE_INSERT_COST = 1.5e-9

#: Base cost of a ``lock``-prefixed update to a *shared* CPU reduction
#: object (uncontended).
CPU_SHARED_ATOMIC_COST = 20e-9

#: Concurrent atomic pipelines at each memory level.
GPU_GLOBAL_ATOMIC_LANES = 64
GPU_SHARED_ATOMIC_LANES = 32


def atomic_cost_per_insert(
    device_kind: str,
    num_keys: int,
    localized: bool,
    gpu: GPUSpec | None = None,
    cpu_cores: int = 1,
) -> float:
    """Amortized seconds per reduction-object insert on one device.

    Args:
        device_kind: ``"cpu"`` or ``"gpu"``.
        num_keys: Distinct reduction keys the inserts target.
        localized: Whether the runtime applied reduction localization
            (GPU: shared-memory objects; CPU: per-core private objects).
        gpu: Required for GPU costs (supplies the base atomic rates).
        cpu_cores: Cores contending on the object in the unlocalized CPU
            case.
    """
    if num_keys <= 0:
        raise ValidationError(f"num_keys must be > 0, got {num_keys}")
    if device_kind == "cpu":
        if localized:
            return CPU_PRIVATE_INSERT_COST
        # All cores hammer one shared object; with fewer keys than cores
        # the lock/cacheline ping-pong serializes them.
        contention = max(1.0, cpu_cores / num_keys)
        return CPU_SHARED_ATOMIC_COST * contention
    if device_kind == "gpu":
        if gpu is None:
            raise ValidationError("GPU atomic cost needs a GPUSpec")
        if localized:
            return gpu.shared_atomic_cost / min(num_keys, GPU_SHARED_ATOMIC_LANES)
        return gpu.atomic_cost / min(num_keys, GPU_GLOBAL_ATOMIC_LANES)
    raise ValidationError(f"unknown device kind {device_kind!r}")


def time_block_sweep_cost(
    k: int,
    *,
    msg_alphas: "list[float]",
    msg_bytes: "list[float]",
    msg_inv_bandwidths: "list[float]",
    ghost_elems: "list[float]",
    interior_elems: float,
    elem_time: float,
) -> float:
    """Predicted per-sweep cost of temporal-blocking factor ``k``.

    Temporal blocking trades message rounds for redundant ghost-zone
    flops: one exchange round every ``k`` sweeps carries each neighbour
    message at depth ``k*h``, and sweep ``s`` of a block recomputes
    ``ghost_elems[s]`` extra elements.  The closed form the stencil
    auto-tuner minimizes is::

        cost(k) = (1/k) * [ sum_m (alpha_m + k * bytes_m * beta_m)
                            + sum_s (interior + ghost_s) * t_elem ]

    where ``alpha_m = latency + send_overhead + recv_overhead`` of
    message ``m``'s link class (the per-message LogGP constant that
    blocking amortizes), ``beta_m = 1/bandwidth`` (the bytes term —
    unchanged by blocking, since ``k`` depth-``h`` strips cost exactly
    ``k`` times the bytes), and ``t_elem`` the aggregate per-element
    compute time of the device team.

    Args:
        k: Candidate blocking factor (>= 1).
        msg_alphas: Per-message constant of each halo message in one
            exchange round.
        msg_bytes: Depth-``h`` (unblocked) byte size of each message.
        msg_inv_bandwidths: ``1/bandwidth`` of each message's link.
        ghost_elems: Redundant elements recomputed at each of the ``k``
            sweeps (``ghost_elems[k-1]`` is 0 by construction).
        interior_elems: Elements of one plain sweep.
        elem_time: Seconds per element across the device team.
    """
    if k < 1:
        raise ValidationError(f"time block must be >= 1, got {k}")
    if len(ghost_elems) != k:
        raise ValidationError(
            f"need one ghost-elem count per sweep: got {len(ghost_elems)} for k={k}"
        )
    if not (len(msg_alphas) == len(msg_bytes) == len(msg_inv_bandwidths)):
        raise ValidationError("per-message lists must have equal lengths")
    comm = sum(
        alpha + k * nbytes * inv_bw
        for alpha, nbytes, inv_bw in zip(msg_alphas, msg_bytes, msg_inv_bandwidths)
    )
    compute = sum(interior_elems + ghost for ghost in ghost_elems) * elem_time
    return (comm + compute) / k


def reduction_fits_in_shared(num_keys: int, value_bytes: int, gpu: GPUSpec) -> bool:
    """Whether one reduction object fits in an SM's shared memory.

    The paper: "If reduction objects are small enough, the runtime system
    stores them in the shared memory on each SM."
    """
    if num_keys <= 0 or value_bytes <= 0:
        raise ValidationError("num_keys and value_bytes must be > 0")
    return num_keys * value_bytes <= gpu.shared_mem_per_sm


def shared_memory_partitions(num_nodes: int, reduction_elem_bytes: int, gpu: GPUSpec) -> int:
    """Number of reduction-space partitions for irregular reductions.

    Implements the paper's formula (§III-E)::

        num_parts = num_nodes / (shared_memory_size / reduction_element_size)

    i.e. each partition of the reduction space fits in shared memory.
    """
    if num_nodes <= 0 or reduction_elem_bytes <= 0:
        raise ValidationError("num_nodes and reduction_elem_bytes must be > 0")
    nodes_per_partition = max(1, int(gpu.shared_mem_per_sm // reduction_elem_bytes))
    return max(1, -(-num_nodes // nodes_per_partition))
