"""Device execution and cost models.

A :class:`Device` executes kernel work *functionally* (the math happens in
NumPy, on the rank thread) while charging simulated time derived from a
roofline cost model plus pattern-specific terms:

- compute:   ``flops_per_elem / (peak_flops * efficiency)``
- memory:    ``bytes_per_elem / bandwidth`` (per-core share on CPUs)
- atomics:   reduction-object inserts, priced by the contention model in
  :mod:`repro.device.costmodel` — *localizing* reductions into GPU shared
  memory (the paper's §III-E optimization) switches to the much cheaper
  shared-memory atomic rate;
- transfers: PCIe host↔device copies with latency + bandwidth terms;
- fixed:     kernel-launch overhead per GPU kernel.

Calibration philosophy: peak rates live in :mod:`repro.cluster.presets`
(datasheet numbers); *efficiencies* live with each application's
:class:`WorkModel` and are calibrated once against the paper's own
single-device measurements (see ``repro.apps``).  Everything else —
multi-device scaling, scheduling overhead, communication — emerges.
"""

from repro.device.work import WorkModel, scaled
from repro.device.costmodel import (
    atomic_cost_per_insert,
    reduction_fits_in_shared,
    shared_memory_partitions,
    CPU_PRIVATE_INSERT_COST,
    CPU_SHARED_ATOMIC_COST,
)
from repro.device.base import Device
from repro.device.cpu import CPUDevice
from repro.device.gpu import GPUDevice, GPU_THREADS_PER_BLOCK

__all__ = [
    "WorkModel",
    "scaled",
    "Device",
    "CPUDevice",
    "GPUDevice",
    "GPU_THREADS_PER_BLOCK",
    "atomic_cost_per_insert",
    "reduction_fits_in_shared",
    "shared_memory_partitions",
    "CPU_PRIVATE_INSERT_COST",
    "CPU_SHARED_ATOMIC_COST",
]
