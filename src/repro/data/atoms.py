"""Atom boxes and neighbor lists for MiniMD.

MiniMD initializes atoms on an FCC lattice and builds a cutoff-based
neighbor list that is rebuilt every ~20 time steps.  :func:`fcc_lattice`
produces the positions (with thermal jitter) and
:func:`build_neighbor_edges` the half neighbor list as an edge array —
which is exactly the indirection-array form the paper's irregular-reduction
pattern consumes.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.util.errors import ValidationError
from repro.util.rng import derive_seed, seeded_rng


def fcc_lattice(
    cells: int,
    *,
    lattice_constant: float = 1.0,
    jitter: float = 0.02,
    seed: int = 0,
) -> np.ndarray:
    """Positions of a ``cells^3`` FCC box (4 atoms per unit cell).

    >>> fcc_lattice(2).shape
    (32, 3)
    """
    if cells < 1:
        raise ValidationError(f"cells must be >= 1, got {cells}")
    base = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    grid = np.array(np.meshgrid(*([np.arange(cells)] * 3), indexing="ij"))
    corners = grid.reshape(3, -1).T  # (cells^3, 3)
    pos = (corners[:, None, :] + base[None, :, :]).reshape(-1, 3) * lattice_constant
    if jitter > 0:
        rng = seeded_rng(derive_seed(seed, "fcc", cells))
        pos = pos + rng.normal(0.0, jitter * lattice_constant, size=pos.shape)
    return pos


def build_neighbor_edges(positions: np.ndarray, cutoff: float) -> np.ndarray:
    """Half neighbor list (each pair once) within ``cutoff``.

    Returns an ``(m, 2)`` int64 edge array, sorted so ``u < v`` — the
    indirection array for the force kernel.
    """
    if cutoff <= 0:
        raise ValidationError(f"cutoff must be > 0, got {cutoff}")
    tree = cKDTree(np.asarray(positions))
    pairs = tree.query_pairs(cutoff, output_type="ndarray")
    if len(pairs) == 0:
        raise ValidationError("no neighbors within cutoff; increase cutoff or density")
    return np.sort(pairs.astype(np.int64), axis=1)
