"""Unstructured meshes / interaction graphs for irregular reductions.

:func:`geometric_mesh` mimics a molecular-dynamics interaction list
(Moldyn): points in a 3-D box connected when closer than a cutoff.  Nodes
are **sorted along a space-filling order** before IDs are assigned, so the
framework's contiguous block partitioning corresponds to a spatial
partitioning — the same property real MD inputs have after domain-ordering,
and the reason the paper's block scheme keeps the cross-edge fraction low.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.util.errors import ValidationError
from repro.util.rng import derive_seed, seeded_rng


def _morton_order(points: np.ndarray, bits: int = 8) -> np.ndarray:
    """Sort order of 3-D points along a Morton (Z-order) curve."""
    scaled = np.clip((points * (1 << bits)).astype(np.int64), 0, (1 << bits) - 1)
    code = np.zeros(len(points), dtype=np.int64)
    for b in range(bits):
        for axis in range(points.shape[1]):
            code |= ((scaled[:, axis] >> b) & 1) << (b * points.shape[1] + axis)
    return np.argsort(code, kind="stable")


def geometric_mesh(
    n_nodes: int,
    target_degree: float = 8.0,
    *,
    seed: int = 0,
    spatial_sort: bool = True,
    shuffle_fraction: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Random geometric graph in the unit cube with ~``target_degree`` mean degree.

    ``shuffle_fraction`` randomly relocates that fraction of node IDs
    after the spatial sort, emulating the partial locality of real mesh
    files (generated in domain order, then touched by refinement or atom
    migration).  0.0 = perfect Morton locality, 1.0 ~ arbitrary numbering.

    Returns:
        ``(positions, edges)`` — positions ``(n, 3)`` float64, edges
        ``(m, 2)`` int64 with ``u < v`` (each pair once, as in an
        interaction list).
    """
    if not 0.0 <= shuffle_fraction <= 1.0:
        raise ValidationError("shuffle_fraction must be in [0, 1]")
    if n_nodes < 2:
        raise ValidationError(f"n_nodes must be >= 2, got {n_nodes}")
    if target_degree <= 0:
        raise ValidationError("target_degree must be > 0")
    rng = seeded_rng(derive_seed(seed, "mesh", n_nodes))
    positions = rng.random((n_nodes, 3))
    # Mean degree of an RGG: n * (4/3) pi r^3 => solve r for the target.
    radius = (target_degree / (n_nodes * (4.0 / 3.0) * np.pi)) ** (1.0 / 3.0)
    if spatial_sort:
        order = _morton_order(positions)
        positions = positions[order]
    if shuffle_fraction > 0:
        srng = seeded_rng(derive_seed(seed, "mesh-shuffle", n_nodes))
        k = int(round(shuffle_fraction * n_nodes))
        if k >= 2:
            picked = srng.choice(n_nodes, size=k, replace=False)
            positions[picked] = positions[srng.permutation(picked)]
    tree = cKDTree(positions)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    if len(pairs) == 0:
        raise ValidationError(
            f"mesh came out edgeless (n={n_nodes}, degree={target_degree}); "
            f"increase target_degree"
        )
    edges = np.sort(pairs.astype(np.int64), axis=1)
    return positions, edges


def random_mesh(
    n_nodes: int, n_edges: int, *, seed: int = 0, allow_self_loops: bool = False
) -> np.ndarray:
    """Uniform random edges (no spatial structure) — the adversarial case
    for block partitioning; used by tests and the partitioning ablation."""
    if n_nodes < 2 or n_edges < 1:
        raise ValidationError("need n_nodes >= 2 and n_edges >= 1")
    rng = seeded_rng(derive_seed(seed, "random-mesh", n_nodes, n_edges))
    edges = rng.integers(0, n_nodes, size=(int(n_edges * 1.2) + 8, 2))
    if not allow_self_loops:
        edges = edges[edges[:, 0] != edges[:, 1]]
    if len(edges) < n_edges:
        raise ValidationError("self-loop rejection starved the edge pool; retry with more")
    return np.sort(edges[:n_edges].astype(np.int64), axis=1)
