"""Point datasets for generalized reductions (Kmeans)."""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.util.errors import ValidationError
from repro.util.rng import derive_seed, seeded_rng

#: Process-wide LRU memo of generated datasets, keyed by the full argument
#: tuple.  The paper's per-core MPI baselines model "every rank reads its
#: own contiguous slice", so at 32 nodes × 12 ranks each of 384 rank
#: threads regenerated the identical full dataset just to slice it —
#: pure GIL-serialized wall-clock cost that is never charged to virtual
#: time.  Cached arrays are returned read-only (the same contract as a
#: delivered message payload); callers that need to write take a copy.
#:
#: The memo is a bounded *LRU* (hits refresh recency, inserts evict the
#: least-recently-used entry): a long-lived process — the ``repro.serve``
#: job server in particular — sees many distinct specs over its lifetime,
#: and an unbounded or FIFO memo would either leak memory or evict the hot
#: dataset that every queued Kmeans job is about to reuse.
_CACHE_MAX = 8
_cache: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0


def points_cache_stats() -> dict[str, int]:
    """Occupancy and hit/miss/eviction counters of the dataset memo."""
    with _cache_lock:
        return {
            "size": len(_cache),
            "max_entries": _CACHE_MAX,
            "hits": _cache_hits,
            "misses": _cache_misses,
            "evictions": _cache_evictions,
        }


def clear_points_cache() -> None:
    """Empty the memo and zero its counters (test hook)."""
    global _cache_hits, _cache_misses, _cache_evictions
    with _cache_lock:
        _cache.clear()
        _cache_hits = _cache_misses = _cache_evictions = 0


def clustered_points(
    n: int,
    k: int,
    dims: int = 3,
    *,
    seed: int = 0,
    spread: float = 0.05,
    dtype=np.float32,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs around ``k`` centers in the unit cube.

    Matches the paper's Kmeans input shape ("a three-dimensional dataset
    with 40 centers"); single precision, like the 12-byte/point dataset.

    Returns:
        ``(points, true_centers)`` with shapes ``(n, dims)``/``(k, dims)``.
    """
    if n <= 0 or k <= 0 or dims <= 0:
        raise ValidationError("n, k, dims must all be > 0")
    if n < k:
        raise ValidationError(f"need at least k={k} points, got {n}")
    global _cache_hits, _cache_misses, _cache_evictions
    key = (n, k, dims, seed, spread, np.dtype(dtype).str)
    with _cache_lock:
        hit = _cache.get(key)
        if hit is not None:
            _cache.move_to_end(key)
            _cache_hits += 1
        else:
            _cache_misses += 1
    if hit is not None:
        return hit
    rng = seeded_rng(derive_seed(seed, "kmeans", "centers"))
    centers = rng.random((k, dims))
    prng = seeded_rng(derive_seed(seed, "kmeans", "points"))
    assignment = prng.integers(0, k, size=n)
    noise = prng.normal(0.0, spread, size=(n, dims))
    points = centers[assignment] + noise
    result = (points.astype(dtype), centers.astype(dtype))
    for arr in result:
        arr.setflags(write=False)
    with _cache_lock:
        if key not in _cache and len(_cache) >= _CACHE_MAX:
            _cache.popitem(last=False)
            _cache_evictions += 1
        _cache[key] = result
        _cache.move_to_end(key)
    return result
