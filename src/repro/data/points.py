"""Point datasets for generalized reductions (Kmeans)."""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError
from repro.util.rng import derive_seed, seeded_rng


def clustered_points(
    n: int,
    k: int,
    dims: int = 3,
    *,
    seed: int = 0,
    spread: float = 0.05,
    dtype=np.float32,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs around ``k`` centers in the unit cube.

    Matches the paper's Kmeans input shape ("a three-dimensional dataset
    with 40 centers"); single precision, like the 12-byte/point dataset.

    Returns:
        ``(points, true_centers)`` with shapes ``(n, dims)``/``(k, dims)``.
    """
    if n <= 0 or k <= 0 or dims <= 0:
        raise ValidationError("n, k, dims must all be > 0")
    if n < k:
        raise ValidationError(f"need at least k={k} points, got {n}")
    rng = seeded_rng(derive_seed(seed, "kmeans", "centers"))
    centers = rng.random((k, dims))
    prng = seeded_rng(derive_seed(seed, "kmeans", "points"))
    assignment = prng.integers(0, k, size=n)
    noise = prng.normal(0.0, spread, size=(n, dims))
    points = centers[assignment] + noise
    return points.astype(dtype), centers.astype(dtype)
