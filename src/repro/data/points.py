"""Point datasets for generalized reductions (Kmeans)."""

from __future__ import annotations

import threading

import numpy as np

from repro.util.errors import ValidationError
from repro.util.rng import derive_seed, seeded_rng

#: Process-wide memo of generated datasets, keyed by the full argument
#: tuple.  The paper's per-core MPI baselines model "every rank reads its
#: own contiguous slice", so at 32 nodes × 12 ranks each of 384 rank
#: threads regenerated the identical full dataset just to slice it —
#: pure GIL-serialized wall-clock cost that is never charged to virtual
#: time.  Cached arrays are returned read-only (the same contract as a
#: delivered message payload); callers that need to write take a copy.
_CACHE_MAX = 8
_cache: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
_cache_lock = threading.Lock()


def clustered_points(
    n: int,
    k: int,
    dims: int = 3,
    *,
    seed: int = 0,
    spread: float = 0.05,
    dtype=np.float32,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs around ``k`` centers in the unit cube.

    Matches the paper's Kmeans input shape ("a three-dimensional dataset
    with 40 centers"); single precision, like the 12-byte/point dataset.

    Returns:
        ``(points, true_centers)`` with shapes ``(n, dims)``/``(k, dims)``.
    """
    if n <= 0 or k <= 0 or dims <= 0:
        raise ValidationError("n, k, dims must all be > 0")
    if n < k:
        raise ValidationError(f"need at least k={k} points, got {n}")
    key = (n, k, dims, seed, spread, np.dtype(dtype).str)
    with _cache_lock:
        hit = _cache.get(key)
    if hit is not None:
        return hit
    rng = seeded_rng(derive_seed(seed, "kmeans", "centers"))
    centers = rng.random((k, dims))
    prng = seeded_rng(derive_seed(seed, "kmeans", "points"))
    assignment = prng.integers(0, k, size=n)
    noise = prng.normal(0.0, spread, size=(n, dims))
    points = centers[assignment] + noise
    result = (points.astype(dtype), centers.astype(dtype))
    for arr in result:
        arr.setflags(write=False)
    with _cache_lock:
        if len(_cache) >= _CACHE_MAX:
            _cache.pop(next(iter(_cache)))
        _cache[key] = result
    return result
