"""Synthetic dataset generators (the paper's inputs, scaled).

The paper's datasets (a 2.3 GB point file, a 130 M-edge mesh, a 500 k-atom
box, a 32768x32768 image, a 512^3 grid) are not shippable; these generators
produce statistically similar inputs at any scale from a single seed, and
the benchmarks charge the cost model at paper scale (see
:func:`repro.device.work.scaled`).

All generators are deterministic given their seed (see
:mod:`repro.util.rng`) so every rank of an SPMD run can generate the same
global dataset locally instead of broadcasting it.
"""

from repro.data.points import clear_points_cache, clustered_points, points_cache_stats
from repro.data.meshes import geometric_mesh, random_mesh
from repro.data.atoms import fcc_lattice, build_neighbor_edges
from repro.data.grids import heat3d_initial, synthetic_image

__all__ = [
    "clear_points_cache",
    "clustered_points",
    "points_cache_stats",
    "geometric_mesh",
    "random_mesh",
    "fcc_lattice",
    "build_neighbor_edges",
    "heat3d_initial",
    "synthetic_image",
]
