"""Structured grids and images for stencil applications."""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError
from repro.util.rng import derive_seed, seeded_rng


def heat3d_initial(shape: tuple[int, int, int], *, seed: int = 0, hot_fraction: float = 0.2) -> np.ndarray:
    """Initial temperature field: a hot central box in a cold domain.

    Mirrors the classic Heat3D benchmark setup (a heated region diffusing
    into the domain; zero-temperature boundaries).
    """
    if len(shape) != 3 or any(s < 4 for s in shape):
        raise ValidationError(f"shape must be 3-D with extents >= 4, got {shape}")
    if not 0 < hot_fraction <= 1:
        raise ValidationError("hot_fraction must be in (0, 1]")
    grid = np.zeros(shape, dtype=np.float64)
    center = [s // 2 for s in shape]
    half = [max(1, int(s * hot_fraction / 2)) for s in shape]
    region = tuple(slice(c - h, c + h) for c, h in zip(center, half))
    grid[region] = 100.0
    rng = seeded_rng(derive_seed(seed, "heat3d", shape))
    grid += rng.random(shape) * 0.01  # symmetry-breaking noise
    return grid


def synthetic_image(shape: tuple[int, int], *, seed: int = 0, n_shapes: int = 24) -> np.ndarray:
    """A float32 grayscale test image with rectangles and gradients.

    Gives Sobel real edges to find, so correctness checks compare
    meaningful gradient magnitudes rather than noise.
    """
    if len(shape) != 2 or any(s < 8 for s in shape):
        raise ValidationError(f"shape must be 2-D with extents >= 8, got {shape}")
    rng = seeded_rng(derive_seed(seed, "image", shape))
    h, w = shape
    yy, xx = np.mgrid[0:h, 0:w]
    img = (xx / w * 0.3 + yy / h * 0.2).astype(np.float32)
    for _ in range(n_shapes):
        y0, x0 = rng.integers(0, h - 4), rng.integers(0, w - 4)
        hh = int(rng.integers(2, max(3, h // 4)))
        ww = int(rng.integers(2, max(3, w // 4)))
        img[y0 : y0 + hh, x0 : x0 + ww] += float(rng.random()) * 0.8
    img += rng.normal(0, 0.01, size=shape).astype(np.float32)
    return np.clip(img, 0.0, 2.0).astype(np.float32)
