"""Exception hierarchy for the framework.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch framework failures without
swallowing genuine programming errors (``TypeError`` etc. still surface).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class ConfigurationError(ReproError):
    """A runtime, device, or cluster was configured inconsistently.

    Raised eagerly at setup time (e.g., a stencil runtime asked to decompose
    a 2-D grid over a 3-D process topology) so that misconfiguration never
    manifests as silently wrong results mid-run.
    """


class ValidationError(ReproError):
    """An argument failed validation (wrong range, shape, or type)."""


class CommunicationError(ReproError):
    """A message-passing operation failed or was used incorrectly.

    Examples: receiving with a mismatched buffer dtype, a collective invoked
    by only a subset of ranks (detected via watchdog timeout), or sending to
    a rank outside the communicator.
    """


class SchedulingError(ReproError):
    """The work scheduler was driven into an impossible state.

    Examples: scheduling a chunk on a device that was never registered, or
    an adaptive repartition that assigns zero work to every device.
    """


class DeadlockError(CommunicationError):
    """The SPMD watchdog concluded that ranks are mutually blocked."""
