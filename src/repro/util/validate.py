"""Small argument-validation helpers used at public API boundaries.

Each helper raises :class:`repro.util.errors.ValidationError` with a message
naming the offending parameter, which keeps the call sites one-liners::

    check_positive("chunk_size", chunk_size)
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.util.errors import ValidationError


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Require ``lo <= value <= hi`` (inclusive both ends)."""
    if not (lo <= value <= hi):
        raise ValidationError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> None:
    """Require ``isinstance(value, types)``."""
    if not isinstance(value, types):
        expected = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise ValidationError(f"{name} must be {expected}, got {type(value).__name__}")


def check_shape(name: str, array: np.ndarray, shape: Iterable[int | None]) -> None:
    """Require the array shape to match ``shape`` (``None`` = any extent).

    >>> check_shape("edges", np.zeros((5, 2)), (None, 2))
    """
    shape = tuple(shape)
    if array.ndim != len(shape):
        raise ValidationError(f"{name} must be {len(shape)}-D, got {array.ndim}-D")
    for axis, want in enumerate(shape):
        if want is not None and array.shape[axis] != want:
            raise ValidationError(
                f"{name} axis {axis} must have extent {want}, got {array.shape[axis]}"
            )
