"""Unit constants and human-readable formatting.

All simulator-internal quantities use SI base units: seconds for time,
bytes for sizes, FLOP/s for compute rates.  The constants below convert the
conventional HPC units (GB/s, microseconds, GFLOP/s) into base units so
that hardware specs read naturally::

    pcie_bandwidth = 8 * GB          # bytes/second
    network_latency = 2 * US         # seconds
    peak = 515 * GFLOPS              # FLOP/s
"""

from __future__ import annotations

# Sizes (bytes).  Powers of ten, matching vendor datasheets for bandwidths;
# shared-memory capacities use KiB explicitly where it matters.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KIB = 1_024
MIB = 1_048_576

# Times (seconds).
US = 1e-6
MS = 1e-3

# Rates.
GFLOPS = 1e9
TFLOPS = 1e12


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary-ish magnitude suffix.

    >>> fmt_bytes(2_300_000_000)
    '2.30 GB'
    """
    n = float(n)
    for unit, div in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_seconds(t: float) -> str:
    """Format a duration, choosing s/ms/us to keep 3 significant digits.

    >>> fmt_seconds(0.00123)
    '1.230 ms'
    """
    t = float(t)
    if abs(t) >= 1.0:
        return f"{t:.3f} s"
    if abs(t) >= MS:
        return f"{t / MS:.3f} ms"
    return f"{t / US:.3f} us"


def fmt_count(n: float) -> str:
    """Format a large count with K/M/B suffixes.

    >>> fmt_count(130_000_000)
    '130.0M'
    """
    n = float(n)
    for suffix, div in (("B", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(n) >= div:
            return f"{n / div:.1f}{suffix}"
    return f"{n:.0f}"
