"""Deterministic random-number helpers.

Every stochastic piece of the system (data generators, workload shuffles)
takes an explicit seed and derives per-purpose child seeds through
:func:`derive_seed`, so a whole multi-rank experiment is reproducible from a
single integer and two ranks never accidentally share a stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_rng(seed: int | None) -> np.random.Generator:
    """Return a NumPy ``Generator`` for ``seed`` (fresh entropy if ``None``)."""
    return np.random.default_rng(seed)


def derive_seed(base: int, *labels: object) -> int:
    """Derive a child seed from ``base`` and a label path.

    Uses SHA-256 over the textual label path so the mapping is stable across
    Python processes and versions (``hash()`` is salted per-process and
    unsuitable).

    >>> derive_seed(7, "kmeans", "points") == derive_seed(7, "kmeans", "points")
    True
    >>> derive_seed(7, "a") != derive_seed(7, "b")
    True
    """
    text = repr((int(base),) + tuple(str(x) for x in labels))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")
