"""Shared utilities: errors, unit helpers, deterministic RNG, validation.

These helpers are deliberately dependency-free (NumPy only) so every other
subpackage — :mod:`repro.sim`, :mod:`repro.comm`, :mod:`repro.device`,
:mod:`repro.core` — can use them without import cycles.
"""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    CommunicationError,
    DeadlockError,
    SchedulingError,
    ValidationError,
)
from repro.util.units import (
    KB,
    MB,
    GB,
    US,
    MS,
    GFLOPS,
    fmt_bytes,
    fmt_seconds,
    fmt_count,
)
from repro.util.rng import seeded_rng, derive_seed
from repro.util.validate import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    check_shape,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CommunicationError",
    "DeadlockError",
    "SchedulingError",
    "ValidationError",
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "GFLOPS",
    "fmt_bytes",
    "fmt_seconds",
    "fmt_count",
    "seeded_rng",
    "derive_seed",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "check_shape",
]
