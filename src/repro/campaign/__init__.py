"""Campaign sweep engine: the paper's whole evaluation as one artifact.

A campaign is the unit the paper's evaluation actually runs in — not one
simulation but a sweep (apps x presets x node counts x device mixes x
scales x seeds x fault plans).  This package makes that sweep a
first-class object:

- :class:`~repro.campaign.spec.CampaignSpec` — the declarative JSON spec
  that expands **deterministically** into canonical
  :class:`~repro.serve.spec.JobSpec` points,
- :class:`~repro.campaign.runner.CampaignRunner` — throughput-optimized
  execution through the job scheduler (one batched submission,
  widest-first backfill ordering, dataset pre-warming, duplicate-point
  dedup, persistent :class:`~repro.serve.store.ResultStore` beneath the
  LRU so warm re-runs execute **zero** jobs),
- :mod:`~repro.campaign.report` — run tables and paper-figure shapes
  (speedup bars, scaling curves, fault-overhead tables) for terminals.

CLI: ``repro campaign run|status|report``.
"""

from repro.campaign.report import render_report, run_table
from repro.campaign.runner import CampaignResult, CampaignRunner, RUN_TABLE_COLUMNS
from repro.campaign.spec import AXES, CampaignSpec, resolve_campaign_backend

__all__ = [
    "AXES",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "RUN_TABLE_COLUMNS",
    "render_report",
    "resolve_campaign_backend",
    "run_table",
]
