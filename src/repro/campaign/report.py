"""Campaign run tables and paper-figure shapes, rendered for terminals.

A completed campaign is a list of run-table rows (one per expanded
point).  This module turns those rows into the shapes the paper's
evaluation section uses:

- the **run table** itself (markdown-compatible, one row per point),
- **speedup bars** per (app, mix) group — the framework-vs-baseline
  bar-chart shape,
- **scaling curves** — speedup vs node count, one series per device mix,
  per app (the Fig. 5 shape), when the nodes axis has >= 2 values,
- a **fault-overhead table** — faulty vs clean makespan ratios for
  points that differ only in their fault plan.

Everything renders through :mod:`repro.metrics` machinery
(:func:`format_table`, :func:`render_bars`, :func:`render_chart`), so
campaign reports look like the rest of the repo's CI output.
"""

from __future__ import annotations

from typing import Any

from repro.metrics.ascii_chart import render_bars, render_chart
from repro.metrics.reporting import format_table

#: Columns shown in the rendered run table (subset of each row's keys).
TABLE_COLUMNS = (
    "app",
    "preset",
    "nodes",
    "mix",
    "scale",
    "seed",
    "faulty",
    "state",
    "cached",
    "makespan",
    "speedup",
)


def _fmt_rows(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    out = []
    for row in rows:
        r = dict(row)
        for key in ("makespan", "seq_time"):
            if isinstance(r.get(key), float):
                r[key] = f"{r[key]:.4f}"
        if isinstance(r.get("speedup"), float):
            r["speedup"] = f"{r['speedup']:.2f}x"
        if r.get("seed") is None:
            r["seed"] = "-"
        out.append(r)
    return out


def run_table(rows: list[dict[str, Any]], *, title: str = "") -> str:
    """The campaign run table, one row per expanded point."""
    return format_table(_fmt_rows(rows), columns=list(TABLE_COLUMNS), title=title)


def speedup_bars(rows: list[dict[str, Any]]) -> str | None:
    """Mean speedup per (app, mix) group as horizontal bars."""
    groups: dict[str, list[float]] = {}
    for row in rows:
        if row.get("speedup") is None:
            continue
        groups.setdefault(f"{row['app']}/{row['mix']}", []).append(row["speedup"])
    if not groups:
        return None
    items = [(name, sum(v) / len(v)) for name, v in sorted(groups.items())]
    return render_bars(
        items,
        fmt="{:6.2f}x",
        title="mean speedup vs sequential (by app/mix)",
    )


def scaling_charts(rows: list[dict[str, Any]]) -> list[str]:
    """Speedup-vs-nodes curves per app (one series per mix).

    Only apps with >= 2 distinct node counts chart; single-node campaigns
    have no curve to draw.
    """
    charts: list[str] = []
    apps = sorted({r["app"] for r in rows})
    for app in apps:
        series: dict[str, list[tuple[float, float]]] = {}
        for row in rows:
            if row["app"] != app or row.get("speedup") is None or row.get("faulty"):
                continue
            series.setdefault(row["mix"], []).append((row["nodes"], row["speedup"]))
        nodes = {x for pts in series.values() for x, _ in pts}
        if len(nodes) < 2:
            continue
        for pts in series.values():
            pts.sort()
        charts.append(
            render_chart(
                series,
                title=f"{app}: speedup vs nodes (markers = device mixes)",
                xlabel="nodes",
                ylabel="speedup",
                height=12,
            )
        )
    return charts


def _clean_key(row: dict[str, Any]) -> tuple:
    return (
        row["app"], row["preset"], row["nodes"], row["mix"], row["scale"], row["seed"],
    )


def fault_overhead(rows: list[dict[str, Any]]) -> str | None:
    """Faulty-vs-clean makespan ratios for otherwise-identical points."""
    clean: dict[tuple, float] = {}
    for row in rows:
        if not row.get("faulty") and row.get("makespan") is not None:
            clean[_clean_key(row)] = row["makespan"]
    out_rows = []
    for row in rows:
        if not row.get("faulty") or row.get("makespan") is None:
            continue
        base = clean.get(_clean_key(row))
        entry = {
            "app": row["app"],
            "nodes": row["nodes"],
            "mix": row["mix"],
            "seed": "-" if row["seed"] is None else row["seed"],
            "faulty_makespan": f"{row['makespan']:.4f}",
            "clean_makespan": "-" if base is None else f"{base:.4f}",
            "overhead": "-" if base is None else f"{row['makespan'] / base:.3f}x",
            "drops": row.get("fault_drops", "-"),
            "crashes": row.get("fault_crashes", "-"),
        }
        out_rows.append(entry)
    if not out_rows:
        return None
    return format_table(out_rows, title="fault overhead (faulty / clean makespan)")


def render_report(doc: dict[str, Any]) -> str:
    """Full terminal report from a :meth:`CampaignResult.to_dict` document."""
    rows = doc.get("rows") or []
    stats = doc.get("stats") or {}
    name = doc.get("campaign", "campaign")
    parts = [run_table(rows, title=f"campaign {name!r} — {len(rows)} point(s)")]
    summary = []
    for key in ("points", "submitted", "deduplicated", "executed",
                "cache_hits", "store_hits", "wall_s"):
        if key in stats:
            summary.append(f"{key}={stats[key]}")
    util = stats.get("utilization") or {}
    if util.get("average") is not None:
        summary.append(f"avg_rank_utilization={util['average']:.2f}")
    if summary:
        parts.append("  ".join(summary))
    bars = speedup_bars(rows)
    if bars:
        parts.append(bars)
    parts.extend(scaling_charts(rows))
    faults = fault_overhead(rows)
    if faults:
        parts.append(faults)
    failures = [r for r in rows if r.get("state") != "done"]
    if failures:
        lines = [f"{len(failures)} point(s) did not complete:"]
        for r in failures:
            lines.append(
                f"  - point {r['index']} ({r['app']}/{r['preset']}/n{r['nodes']}): "
                f"{r.get('state')}: {r.get('error')}"
            )
        parts.append("\n".join(lines))
    return "\n\n".join(parts)
