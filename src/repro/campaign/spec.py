"""Declarative campaign specs: the paper's whole evaluation as one file.

A :class:`CampaignSpec` names a sweep the way the paper's figures are
organized — apps x cluster presets x node counts x device mixes x scales x
seeds x fault plans — and expands it **deterministically** into canonical
:class:`~repro.serve.spec.JobSpec` points.  Determinism matters twice:
the same campaign file always produces the same spec list (so run tables
are comparable across machines), and every point's identity is its
``content_hash``, so a repeated or extended campaign re-executes only the
points the persistent :class:`~repro.serve.store.ResultStore` has never
seen.

The JSON form::

    {
      "name": "fig5-sweep",
      "axes": {
        "app":    ["heat3d", "kmeans"],
        "preset": ["laptop"],
        "nodes":  [1, 2, 4],
        "mix":    ["cpu", "cpu+2gpu"],
        "scale":  ["quick"],
        "seed":   [0, 1],
        "fault_plan": [null]
      },
      "params":      {...},                  # config overrides, all apps
      "app_params":  {"heat3d": {...}},      # config overrides, one app
      "options":     {...},                  # run() keywords, all apps
      "app_options": {"heat3d": {...}},      # run() keywords, one app
      "backend": "auto", "workers": null, "trace": false,
      "points": [ {full JobSpec document}, ... ]   # explicit extras
    }

Axes multiply (the cartesian product, in the fixed axis order above);
``points`` appends hand-written :class:`JobSpec` documents for anything a
product can't express.  The ``seed`` axis writes each app's ``seed``
config field; ``fault_plan`` entries are
:meth:`~repro.faults.plan.FaultPlan.to_dict` documents or ``null``.
``backend: "auto"`` resolves to the process backend on multi-core hosts
(wall-clock throughput; virtual makespans are backend-invariant and the
backend never enters a spec's content hash).
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.serve.spec import JobSpec
from repro.util.errors import ValidationError

#: Axis names, in expansion (outer to inner) order.
AXES = ("app", "preset", "nodes", "mix", "scale", "seed", "fault_plan")

#: Default value per axis when a campaign omits it.
_AXIS_DEFAULTS: dict[str, tuple] = {
    "preset": ("ohio",),
    "nodes": (4,),
    "mix": ("cpu+2gpu",),
    "scale": ("quick",),
    "seed": (None,),
    "fault_plan": (None,),
}


def resolve_campaign_backend(backend: str | None) -> str | None:
    """``"auto"`` -> processes on multi-core hosts, engine default else."""
    if backend != "auto":
        return backend
    return "processes" if (os.cpu_count() or 1) > 1 else None


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep over the job service's spec space.

    Args:
        name: Campaign name (labels the run table and report).
        axes: Axis name -> value list; see :data:`AXES`.  ``app`` is
            required and non-empty; omitted axes take single-point
            defaults.
        params: Config-field overrides applied to every point.
        app_params: Per-app config overrides (layered over ``params``;
            the place for fields that only exist on one app's config).
        options: App ``run()`` keyword options applied to every point.
        app_options: Per-app option overrides (layered over ``options``).
        backend: ``"auto"`` (processes on multi-core hosts), an explicit
            backend name, or ``None`` to honour the environment.
        workers: Process-backend worker count override.
        trace: Record every job (utilization / critical-path columns in
            the run table at the cost of per-job tracing overhead).
        points: Extra explicit :class:`JobSpec` documents appended after
            the product, for shapes the axes can't express.
    """

    name: str
    axes: Mapping[str, tuple]
    params: Mapping[str, Any] = field(default_factory=dict)
    app_params: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    options: Mapping[str, Any] = field(default_factory=dict)
    app_options: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    backend: str | None = "auto"
    workers: int | None = None
    trace: bool = False
    points: tuple = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValidationError(f"campaign name must be a non-empty string, got {self.name!r}")
        axes = {
            k: tuple(v) if isinstance(v, (list, tuple)) else (v,)
            for k, v in dict(self.axes).items()
        }
        unknown = set(axes) - set(AXES)
        if unknown:
            raise ValidationError(
                f"unknown campaign axes {sorted(unknown)}; known: {list(AXES)}"
            )
        if not axes.get("app"):
            raise ValidationError("campaign needs a non-empty 'app' axis")
        for axis, values in axes.items():
            if len(values) == 0:
                raise ValidationError(f"axis {axis!r} must not be empty")
            if len(set(map(_freeze, values))) != len(values):
                raise ValidationError(f"axis {axis!r} has duplicate values")
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "params", dict(self.params or {}))
        object.__setattr__(
            self, "app_params", {k: dict(v) for k, v in dict(self.app_params or {}).items()}
        )
        object.__setattr__(self, "options", dict(self.options or {}))
        object.__setattr__(
            self, "app_options", {k: dict(v) for k, v in dict(self.app_options or {}).items()}
        )
        object.__setattr__(self, "points", tuple(dict(p) for p in self.points))
        if self.backend not in (None, "auto"):
            from repro.sim.engine import resolve_backend

            resolve_backend(self.backend)  # raises on unknown names
        for scope in (self.app_params, self.app_options):
            stray = set(scope) - set(self.axes["app"])
            if stray:
                raise ValidationError(
                    f"per-app overrides name apps outside the 'app' axis: {sorted(stray)}"
                )

    # -- expansion ---------------------------------------------------------
    def axis(self, name: str) -> tuple:
        return self.axes.get(name, _AXIS_DEFAULTS.get(name, ()))

    def n_points(self) -> int:
        total = 1
        for axis in AXES:
            total *= len(self.axis(axis))
        return total + len(self.points)

    def expand(self) -> list[JobSpec]:
        """The campaign's canonical :class:`JobSpec` list.

        Deterministic: the cartesian product in :data:`AXES` order (outer
        to inner), then explicit ``points`` — same file, same list,
        everywhere.  Every point is validated at construction, so a typo'd
        param fails the whole expansion up front, not mid-sweep.
        """
        backend = resolve_campaign_backend(self.backend)
        specs: list[JobSpec] = []
        for app, preset, nodes, mix, scale, seed, plan in itertools.product(
            *(self.axis(a) for a in AXES)
        ):
            params = dict(self.params)
            params.update(self.app_params.get(app, {}))
            if seed is not None:
                params["seed"] = seed
            options = dict(self.options)
            options.update(self.app_options.get(app, {}))
            try:
                specs.append(
                    JobSpec(
                        app=app,
                        nodes=nodes,
                        mix=mix,
                        preset=preset,
                        scale=scale,
                        params=params,
                        options=options,
                        fault_plan=plan,
                        backend=backend,
                        workers=self.workers,
                        trace=self.trace,
                    )
                )
            except ValidationError as exc:
                raise ValidationError(
                    f"campaign {self.name!r} point "
                    f"(app={app}, preset={preset}, nodes={nodes}, mix={mix}, "
                    f"scale={scale}, seed={seed}) is invalid: {exc}"
                ) from None
        for i, doc in enumerate(self.points):
            try:
                spec = JobSpec.from_dict(doc)
            except ValidationError as exc:
                raise ValidationError(
                    f"campaign {self.name!r} explicit point #{i} is invalid: {exc}"
                ) from None
            if spec.backend is None and backend is not None:
                spec = JobSpec.from_dict({**spec.to_dict(), "backend": backend})
            specs.append(spec)
        return specs

    # -- wire format -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "axes": {k: list(v) for k, v in self.axes.items()},
            "params": dict(self.params),
            "app_params": {k: dict(v) for k, v in self.app_params.items()},
            "options": dict(self.options),
            "app_options": {k: dict(v) for k, v in self.app_options.items()},
            "backend": self.backend,
            "workers": self.workers,
            "trace": self.trace,
            "points": [dict(p) for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise ValidationError(
                f"campaign spec must be an object, got {type(data).__name__}"
            )
        known = {
            "name", "axes", "params", "app_params", "options", "app_options",
            "backend", "workers", "trace", "points",
        }
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"unknown campaign fields {sorted(unknown)}; known: {sorted(known)}"
            )
        if "name" not in data or "axes" not in data:
            raise ValidationError("campaign spec requires 'name' and 'axes' fields")
        axes = data["axes"]
        if not isinstance(axes, Mapping):
            raise ValidationError("campaign 'axes' must be an object of value lists")
        return cls(
            name=data["name"],
            axes={k: tuple(v) if isinstance(v, (list, tuple)) else (v,) for k, v in axes.items()},
            params=data.get("params") or {},
            app_params=data.get("app_params") or {},
            options=data.get("options") or {},
            app_options=data.get("app_options") or {},
            backend=data.get("backend", "auto"),
            workers=data.get("workers"),
            trace=bool(data.get("trace", False)),
            points=tuple(data.get("points") or ()),
        )

    @classmethod
    def load(cls, path: str | Path) -> "CampaignSpec":
        """Read a campaign spec from a JSON file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ValidationError(f"cannot read campaign file {path}: {exc}") from None
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"campaign file {path} is not valid JSON: {exc}") from None
        return cls.from_dict(data)


def _freeze(value: Any) -> Any:
    """Hashable view of an axis value (fault plans are dicts)."""
    if isinstance(value, Mapping):
        return json.dumps(value, sort_keys=True)
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value
