"""Campaign execution: maximum throughput over the job scheduler.

The runner turns an expanded campaign into completed results as fast as
the host allows:

- **One submission round trip.**  The whole spec list goes through
  :meth:`JobScheduler.submit_many` in-process, or one ``POST /jobs/batch``
  when pointed at a running server — never N individual submits.
- **Backfill-friendly ordering.**  Specs are submitted widest-first
  (descending rank cost, ties in expansion order): the classic
  longest-processing-time shape that lets the scheduler's first-fit
  backfill keep the rank budget saturated instead of stranding a wide job
  behind a drained budget.
- **Dataset pre-warming.**  Identical inputs are generated once per
  (app, scale, seed) group *before* jobs race: the process-wide dataset
  memos (:func:`repro.data.points.clustered_points`) generate outside
  their lock, so N cold concurrent jobs would otherwise each pay the
  generation.
- **Deduplicated execution.**  Points with equal content hashes execute
  once; every row still reports.
- **Warm pools and backends.**  ``backend: "auto"`` campaigns run on the
  process backend on multi-core hosts (the spec hash never sees the
  backend, so cached results stay shared), and all jobs reuse the
  process-wide warm rank/worker pools.
- **Persistence.**  With a :class:`~repro.serve.store.ResultStore`
  attached, completed points land on disk; a repeated or extended
  campaign re-executes only new points — a warm re-run completes with
  **zero** executions.

Every reported makespan is bit-identical to a direct
:func:`~repro.sim.engine.spmd_run` of the same spec — the job service's
core guarantee, which the ``campaign_throughput`` bench case pins in CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign.spec import CampaignSpec
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.scheduler import JobScheduler
from repro.serve.spec import JobSpec
from repro.serve.store import ResultStore
from repro.util.errors import ValidationError

#: Run-table columns every row carries (the schema CI asserts).
RUN_TABLE_COLUMNS = (
    "index",
    "app",
    "preset",
    "nodes",
    "mix",
    "scale",
    "seed",
    "faulty",
    "spec_hash",
    "job_id",
    "state",
    "cached",
    "makespan",
    "seq_time",
    "speedup",
    "error",
)


def prewarm_datasets(specs: list[JobSpec]) -> int:
    """Generate each distinct memoized dataset once, before jobs race.

    Only apps whose input generation is memoized process-wide benefit
    (Kmeans' :func:`clustered_points`; grids and meshes are generated
    per-run).  Returns the number of distinct datasets touched.
    """
    from repro.data.points import clustered_points

    warmed: set[tuple] = set()
    for spec in specs:
        if spec.app != "kmeans":
            continue
        cfg = spec.build_config()
        key = (cfg.functional_points, cfg.k, cfg.dims, cfg.seed)
        if key in warmed:
            continue
        warmed.add(key)
        clustered_points(cfg.functional_points, cfg.k, cfg.dims, seed=cfg.seed)
    return len(warmed)


def throughput_order(specs: list[JobSpec]) -> list[int]:
    """Submission order: widest first, expansion order among equals."""
    return sorted(range(len(specs)), key=lambda i: (-specs[i].ranks, i))


def _mean_utilization(report: dict[str, Any]) -> float | None:
    timelines = report.get("timelines") or []
    if not timelines:
        return None
    return sum(t["utilization"] for t in timelines) / len(timelines)


def _row_from_payload(
    index: int, spec: JobSpec, status: dict[str, Any], payload: dict[str, Any] | None
) -> dict[str, Any]:
    """One run-table row: the point's axes plus its job outcome."""
    row: dict[str, Any] = {
        "index": index,
        "app": spec.app,
        "preset": spec.preset,
        "nodes": spec.nodes,
        "mix": spec.mix,
        "scale": spec.scale,
        "seed": spec.params.get("seed"),
        "faulty": spec.fault_plan is not None,
        "spec_hash": spec.content_hash(),
        "job_id": status.get("id"),
        "state": status.get("state"),
        "cached": bool(status.get("cached")),
        "makespan": None,
        "seq_time": None,
        "speedup": None,
        "error": status.get("error"),
    }
    if payload is not None:
        row["makespan"] = payload.get("makespan")
        row["seq_time"] = payload.get("seq_time")
        row["speedup"] = payload.get("speedup")
        stats = payload.get("fault_stats")
        if stats is not None:
            row["fault_drops"] = stats.get("drops")
            row["fault_crashes"] = stats.get("crashes_consumed")
        report = payload.get("report")
        if report is not None:
            row["utilization"] = _mean_utilization(report)
            row["critical_path_links"] = len(report.get("critical_path") or [])
    return row


@dataclass
class CampaignResult:
    """A completed (or attempted) campaign run: table plus throughput facts."""

    name: str
    rows: list[dict[str, Any]]
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(r["state"] == "done" for r in self.rows)

    def failures(self) -> list[dict[str, Any]]:
        return [r for r in self.rows if r["state"] != "done"]

    def to_dict(self) -> dict[str, Any]:
        return {"campaign": self.name, "stats": dict(self.stats), "rows": list(self.rows)}


class CampaignRunner:
    """Execute a campaign at maximum throughput, in-process or via HTTP.

    Args:
        campaign: The declarative sweep to run.
        store: Persistent result store — a :class:`ResultStore`, a
            directory path, or ``None`` (in-memory only).  Ignored when a
            ``client`` is given (the server owns its store).
        client: A :class:`ServeClient` pointed at a running job server;
            the campaign then travels as one ``POST /jobs/batch``.
        rank_budget: In-process scheduler budget (ranks in flight).
        cache_size: In-process LRU size above the store.
        executor: In-process executor override (tests).
        timeout: Wall-clock seconds to wait for the whole sweep.
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        *,
        store: ResultStore | str | Path | None = None,
        client: ServeClient | None = None,
        rank_budget: int = 64,
        cache_size: int = 256,
        executor: Any = None,
        timeout: float = 3600.0,
    ) -> None:
        self.campaign = campaign
        self.client = client
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        self.rank_budget = rank_budget
        self.cache_size = cache_size
        self.executor = executor
        self.timeout = timeout

    # -- execution ---------------------------------------------------------
    def run(self) -> CampaignResult:
        specs = self.campaign.expand()
        if not specs:
            raise ValidationError(f"campaign {self.campaign.name!r} expands to no points")
        t0 = time.perf_counter()
        if self.client is not None:
            rows, stats = self._run_remote(specs)
        else:
            rows, stats = self._run_local(specs)
        stats["wall_s"] = round(time.perf_counter() - t0, 4)
        stats["points"] = len(specs)
        return CampaignResult(name=self.campaign.name, rows=rows, stats=stats)

    def _run_local(self, specs: list[JobSpec]) -> tuple[list[dict], dict]:
        order = throughput_order(specs)
        # Deduplicate identical points: one execution, every row reports.
        by_hash: dict[str, int] = {}
        submit_idx: list[int] = []
        for i in order:
            h = specs[i].content_hash()
            if h not in by_hash:
                by_hash[h] = i
                submit_idx.append(i)
        warmed = prewarm_datasets([specs[i] for i in submit_idx])
        scheduler = JobScheduler(
            self.executor,
            rank_budget=self.rank_budget,
            cache=ResultCache(self.cache_size, store=self.store),
        )
        try:
            outcomes = scheduler.submit_many([specs[i] for i in submit_idx])
            jobs: dict[str, Any] = {}  # spec hash -> Job | error entry
            for i, outcome in zip(submit_idx, outcomes):
                h = specs[i].content_hash()
                if outcome["ok"]:
                    jobs[h] = scheduler.wait(outcome["job"].id, timeout=self.timeout)
                else:
                    jobs[h] = outcome["error"]
            rows = []
            for i, spec in enumerate(specs):
                got = jobs[spec.content_hash()]
                if isinstance(got, str):  # admission error
                    status = {"id": None, "state": "rejected", "error": got}
                    payload = None
                else:
                    status = got.describe(with_spec=False)
                    payload = got.result
                rows.append(_row_from_payload(i, spec, status, payload))
            sched_stats = scheduler.stats()
        finally:
            scheduler.shutdown()
        cache_stats = sched_stats.get("cache", {})
        stats = {
            "mode": "local",
            "submitted": len(submit_idx),
            "deduplicated": len(specs) - len(submit_idx),
            "executed": sched_stats.get("executed", 0),
            "cache_hits": sched_stats.get("cache_hits", 0),
            "store_hits": cache_stats.get("store_hits", 0),
            "datasets_prewarmed": warmed,
            "rank_budget": self.rank_budget,
            "utilization": sched_stats.get("utilization"),
            "backend": specs[0].backend,
        }
        return rows, stats

    def _run_remote(self, specs: list[JobSpec]) -> tuple[list[dict], dict]:
        order = throughput_order(specs)
        by_hash: dict[str, int] = {}
        submit_idx: list[int] = []
        for i in order:
            h = specs[i].content_hash()
            if h not in by_hash:
                by_hash[h] = i
                submit_idx.append(i)
        before = self.client.stats()
        entries = self.client.submit_many([specs[i] for i in submit_idx])
        statuses: dict[str, dict[str, Any]] = {}
        waiting: list[tuple[str, str]] = []  # (spec hash, job id)
        for i, entry in zip(submit_idx, entries):
            h = specs[i].content_hash()
            if "id" not in entry:  # rejected: {"index", "error"} only
                statuses[h] = {"id": None, "state": "rejected", "error": entry["error"]}
            elif entry["state"] in ("done", "failed", "cancelled"):
                statuses[h] = entry
            else:
                waiting.append((h, entry["id"]))
                statuses[h] = entry
        if waiting:
            done = self.client.wait_many(
                [job_id for _, job_id in waiting], timeout=self.timeout
            )
            for h, job_id in waiting:
                statuses[h] = done[job_id]
        payloads: dict[str, dict[str, Any] | None] = {}
        for h, status in statuses.items():
            if status.get("state") == "done":
                payloads[h] = self.client.result(status["id"])["result"]
            else:
                payloads[h] = None
        rows = [
            _row_from_payload(i, spec, statuses[spec.content_hash()], payloads[spec.content_hash()])
            for i, spec in enumerate(specs)
        ]
        after = self.client.stats()
        stats = {
            "mode": "remote",
            "url": self.client.url,
            "submitted": len(submit_idx),
            "deduplicated": len(specs) - len(submit_idx),
            "executed": after.get("executed", 0) - before.get("executed", 0),
            "cache_hits": after.get("cache_hits", 0) - before.get("cache_hits", 0),
            "store_hits": after.get("cache", {}).get("store_hits", 0)
            - before.get("cache", {}).get("store_hits", 0),
            "utilization": after.get("utilization"),
            "backend": specs[0].backend,
        }
        return rows, stats

    # -- status (no execution) ---------------------------------------------
    def status(self) -> dict[str, Any]:
        """How much of the campaign the persistent store already holds."""
        specs = self.campaign.expand()
        cached = 0
        rows = []
        for i, spec in enumerate(specs):
            h = spec.content_hash()
            hit = self.store is not None and h in self.store
            cached += int(hit)
            rows.append(
                {
                    "index": i,
                    "app": spec.app,
                    "preset": spec.preset,
                    "nodes": spec.nodes,
                    "mix": spec.mix,
                    "scale": spec.scale,
                    "seed": spec.params.get("seed"),
                    "faulty": spec.fault_plan is not None,
                    "spec_hash": h,
                    "stored": hit,
                }
            )
        return {
            "campaign": self.campaign.name,
            "points": len(specs),
            "stored": cached,
            "missing": len(specs) - cached,
            "store": None if self.store is None else str(self.store.root),
            "rows": rows,
        }
