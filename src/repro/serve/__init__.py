"""Multi-tenant simulation job service.

Turns the CLI-per-run model into a long-lived server: many small jobs
share the process-wide warm pools (rank threads, worker processes, link
tables, dataset memos) instead of each paying full per-process setup — the
"heavy traffic" direction of the roadmap, in the spirit of persistent
runtimes like CaKernel's scheduler and HDArray's resident host process.

Pieces:

- :class:`~repro.serve.spec.JobSpec` / :func:`~repro.serve.spec.execute_job`
  — what a job *is*, its content hash, and the reference executor.
- :class:`~repro.serve.cache.ResultCache` — content-addressed LRU of
  completed results (identical jobs return without re-execution).
- :class:`~repro.serve.store.ResultStore` — the persistent on-disk tier
  beneath the LRU: atomic per-hash JSON entries that survive restarts and
  are shared by every process pointed at the same directory.
- :class:`~repro.serve.scheduler.JobScheduler` — priority queues,
  per-job rank budgets, admission control, concurrent execution.
- :class:`~repro.serve.server.JobServer` — the localhost HTTP API.
- :class:`~repro.serve.client.ServeClient` — the stdlib client the CLI
  and batch drivers use.

Guarantee inherited from the engine: a job's virtual makespan is
bit-identical whether it runs through the service (at any concurrency, on
either backend) or directly via :func:`repro.sim.engine.spmd_run`.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import DEFAULT_URL, ServeClient, ServeError
from repro.serve.scheduler import AdmissionError, Job, JobScheduler, TERMINAL_STATES
from repro.serve.server import JobServer
from repro.serve.spec import JobSpec, execute_job, served_app_names
from repro.serve.store import ResultStore, default_store_root

__all__ = [
    "AdmissionError",
    "DEFAULT_URL",
    "Job",
    "JobScheduler",
    "JobServer",
    "JobSpec",
    "ResultCache",
    "ResultStore",
    "ServeClient",
    "ServeError",
    "TERMINAL_STATES",
    "default_store_root",
    "execute_job",
    "served_app_names",
]
