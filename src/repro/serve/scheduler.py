"""Concurrent job scheduler: priority queues, rank budgets, admission control.

The scheduler owns the server's concurrency policy:

- **Admission control.**  Every job costs ``spec.ranks`` rank threads (one
  per simulated node).  A job that could *never* fit — more ranks than the
  whole budget — is rejected at submission (:class:`AdmissionError`); a job
  that merely doesn't fit *right now* is queued.  The running set's
  aggregate rank cost never exceeds ``rank_budget``, which bounds how many
  rank threads the shared :class:`~repro.sim.engine._RankThreadPool` is
  asked to hold live at once.
- **Priority queue.**  Higher ``spec.priority`` dispatches first; ties
  break in submission order.  Dispatch is *first-fit in priority order*: if
  the highest-priority job doesn't fit the remaining budget, a smaller,
  lower-priority job may start ahead of it (no head-of-line blocking behind
  wide jobs; wide jobs still win as soon as the budget drains).
- **Anti-starvation aging.**  Pure first-fit backfill can starve a wide
  high-priority job forever: it fits the *total* budget but a steady
  stream of narrow jobs keeps the *instantaneous* remainder too small.
  Every time a queued job is jumped by a later-ordered job that fits, its
  ``passed_over`` count ages; once it reaches ``starvation_limit`` the
  dispatcher reserves the budget for it — nothing ordered behind it starts
  until the running set drains enough for it to fit.
- **Result cache.**  Submission consults the content-addressed
  :class:`~repro.serve.cache.ResultCache` first; a hit completes the job
  instantly (``cached=True``) without touching the queue.  With a
  persistent :class:`~repro.serve.store.ResultStore` layered beneath the
  cache, hits survive server restarts.
- **Batch submission.**  :meth:`JobScheduler.submit_many` admits a whole
  spec list in one call, returning a per-spec outcome (job, cached result,
  or admission error) without failing the rest of the batch — the
  round-trip shape campaigns need.

Execution itself is delegated to an ``executor`` callable (by default
:func:`repro.serve.spec.execute_job`); each admitted job runs on its own
daemon thread, which is safe because :func:`~repro.sim.engine.spmd_run` is
re-entrant — concurrent runs only share lock-protected pools.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.serve.cache import ResultCache
from repro.serve.spec import JobSpec, execute_job
from repro.util.errors import ValidationError


class AdmissionError(ValidationError):
    """The scheduler refused a job at submission time."""


#: Terminal job states (no further transitions).
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One submitted job and everything the API reports about it."""

    id: str
    spec: JobSpec
    spec_hash: str
    seq: int
    state: str = "queued"  # queued | running | done | failed | cancelled
    cached: bool = False
    result: dict[str, Any] | None = None
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    passed_over: int = 0  # dispatches that jumped this job while queued

    @property
    def ranks(self) -> int:
        return self.spec.ranks

    def describe(self, *, with_spec: bool = True) -> dict[str, Any]:
        """JSON-able status view (results are fetched separately)."""
        out = {
            "id": self.id,
            "app": self.spec.app,
            "state": self.state,
            "priority": self.spec.priority,
            "ranks": self.ranks,
            "cached": self.cached,
            "spec_hash": self.spec_hash,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if with_spec:
            out["spec"] = self.spec.to_dict()
        if self.result is not None:
            out["makespan"] = self.result.get("makespan")
        return out


class JobScheduler:
    """Run jobs concurrently off the shared rank pools, within a budget."""

    def __init__(
        self,
        executor: Callable[[JobSpec], dict[str, Any]] | None = None,
        *,
        rank_budget: int = 64,
        cache: ResultCache | None = None,
        max_queued: int = 1024,
        starvation_limit: int = 4,
    ) -> None:
        if rank_budget < 1:
            raise ValidationError(f"rank_budget must be >= 1, got {rank_budget}")
        if max_queued < 0:
            raise ValidationError(f"max_queued must be >= 0, got {max_queued}")
        if starvation_limit < 1:
            raise ValidationError(
                f"starvation_limit must be >= 1, got {starvation_limit}"
            )
        self.rank_budget = rank_budget
        self.max_queued = max_queued
        self.starvation_limit = starvation_limit
        self.cache = cache if cache is not None else ResultCache()
        self._executor = executor if executor is not None else execute_job
        self._cond = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._queue: list[Job] = []  # queued jobs, submission order
        self._ranks_in_use = 0
        self._seq = 0
        self._executed = 0
        self._cache_hits = 0
        self._batches = 0
        self._pass_overs = 0
        self._reservations = 0
        # Rank-budget utilization: integral of ranks_in_use over wall time.
        self._util_started = time.monotonic()
        self._util_marked = self._util_started
        self._busy_rank_seconds = 0.0
        self._shutdown = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    def _change_ranks_locked(self, delta: int) -> None:
        """Adjust ``_ranks_in_use``, accruing the utilization integral."""
        now = time.monotonic()
        self._busy_rank_seconds += (now - self._util_marked) * self._ranks_in_use
        self._util_marked = now
        self._ranks_in_use += delta

    # -- submission ------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admit one job: cache hit, queue it, or raise :class:`AdmissionError`."""
        if spec.ranks > self.rank_budget:
            raise AdmissionError(
                f"job needs {spec.ranks} ranks but the server's budget is "
                f"{self.rank_budget}; it can never be scheduled"
            )
        spec_hash = spec.content_hash()
        with self._cond:
            if self._shutdown:
                raise AdmissionError("scheduler is shut down")
            self._seq += 1
            job = Job(
                id=f"j{self._seq:05d}-{uuid.uuid4().hex[:6]}",
                spec=spec,
                spec_hash=spec_hash,
                seq=self._seq,
            )
            cached = self.cache.get(spec_hash)
            if cached is not None:
                now = time.time()
                job.state = "done"
                job.cached = True
                job.result = cached
                job.started_at = now
                job.finished_at = now
                self._cache_hits += 1
                self._jobs[job.id] = job
                self._cond.notify_all()
                return job
            if len(self._queue) >= self.max_queued:
                raise AdmissionError(
                    f"queue is full ({self.max_queued} jobs waiting); retry later"
                )
            self._jobs[job.id] = job
            self._queue.append(job)
            self._cond.notify_all()
        return job

    def submit_many(self, specs: list[JobSpec]) -> list[dict[str, Any]]:
        """Admit a whole batch; per-spec outcomes, no all-or-nothing.

        Returns one entry per spec, in order:

        - ``{"ok": True, "job": Job}`` — admitted (possibly already done
          via the result cache/store; check ``job.cached``), or
        - ``{"ok": False, "error": str}`` — this spec was refused
          (over-budget forever, queue full, scheduler shut down) without
          affecting the rest of the batch.
        """
        out: list[dict[str, Any]] = []
        for spec in specs:
            try:
                out.append({"ok": True, "job": self.submit(spec)})
            except AdmissionError as exc:
                out.append({"ok": False, "error": str(exc)})
        with self._cond:
            self._batches += 1
        return out

    # -- dispatch ---------------------------------------------------------
    def _pick_locked(self) -> Job | None:
        """Best queued job that fits the remaining budget (first fit in
        priority order), or None.

        First fit is tempered by aging: walking the queue best-first, a
        job that doesn't fit is normally jumped (and its ``passed_over``
        aged — only when the walk really dispatches someone later), but a
        job that has already been jumped ``starvation_limit`` times closes
        the gate: nothing ordered behind it dispatches until the running
        set drains enough for it to fit.  That reserves the freed budget
        for the starved job instead of letting backfill nibble it away.
        """
        available = self.rank_budget - self._ranks_in_use
        skipped: list[Job] = []
        for job in sorted(self._queue, key=lambda j: (-j.spec.priority, j.seq)):
            if job.ranks <= available:
                if skipped:
                    self._pass_overs += len(skipped)
                    for jumped in skipped:
                        jumped.passed_over += 1
                return job
            if job.passed_over >= self.starvation_limit:
                # Budget reservation: this job has waited long enough.
                self._reservations += 1
                return None
            skipped.append(job)
        return None

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                job = self._pick_locked()
                while job is None and not self._shutdown:
                    self._cond.wait()
                    job = self._pick_locked()
                if job is None:  # shutdown with nothing dispatchable
                    return
                self._queue.remove(job)
                job.state = "running"
                job.started_at = time.time()
                self._change_ranks_locked(job.ranks)
            threading.Thread(
                target=self._run_job, args=(job,), name=f"serve-{job.id}", daemon=True
            ).start()

    def _run_job(self, job: Job) -> None:
        try:
            result = self._executor(job.spec)
        except BaseException as exc:  # noqa: BLE001 - job failures are data
            with self._cond:
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                job.finished_at = time.time()
                self._change_ranks_locked(-job.ranks)
                self._executed += 1
                self._cond.notify_all()
        else:
            self.cache.put(job.spec_hash, result)
            with self._cond:
                job.result = result
                job.state = "done"
                job.finished_at = time.time()
                self._change_ranks_locked(-job.ranks)
                self._executed += 1
                self._cond.notify_all()

    # -- queries ----------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> list[Job]:
        """All known jobs, in submission order."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def wait(self, job_id: str, timeout: float = 120.0) -> Job:
        """Block until ``job_id`` reaches a terminal state (or time out)."""
        job = self.get(job_id)
        deadline = time.monotonic() + timeout
        with self._cond:
            while job.state not in TERMINAL_STATES:
                left = deadline - time.monotonic()
                if left <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {job.state} after {timeout}s"
                    )
                self._cond.wait(timeout=left)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job.  Running/terminal jobs return False —
        a running SPMD program has no safe preemption point."""
        job = self.get(job_id)
        with self._cond:
            if job.state != "queued":
                return False
            self._queue.remove(job)
            job.state = "cancelled"
            job.finished_at = time.time()
            self._cond.notify_all()
            return True

    def stats(self) -> dict[str, Any]:
        from repro.sim.engine import active_run_stats, rank_pool_stats

        with self._cond:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            now = time.monotonic()
            elapsed = max(now - self._util_started, 1e-9)
            busy = self._busy_rank_seconds + (now - self._util_marked) * self._ranks_in_use
            counters = {
                "jobs": len(self._jobs),
                "by_state": by_state,
                "queued": len(self._queue),
                "ranks_in_use": self._ranks_in_use,
                "rank_budget": self.rank_budget,
                "executed": self._executed,
                "cache_hits": self._cache_hits,
                "batches": self._batches,
                "fairness": {
                    "starvation_limit": self.starvation_limit,
                    "pass_overs": self._pass_overs,
                    "reservations": self._reservations,
                    "max_queued_passed_over": max(
                        (j.passed_over for j in self._queue), default=0
                    ),
                },
                "utilization": {
                    "ranks_in_use": self._ranks_in_use,
                    "rank_budget": self.rank_budget,
                    "instantaneous": self._ranks_in_use / self.rank_budget,
                    "busy_rank_seconds": busy,
                    "elapsed_s": elapsed,
                    "average": busy / (elapsed * self.rank_budget),
                },
            }
        counters["cache"] = self.cache.stats()
        counters["rank_pool"] = rank_pool_stats()
        counters["engine"] = active_run_stats()
        return counters

    def shutdown(self, *, wait_running: float = 0.0) -> None:
        """Stop dispatching; queued jobs are cancelled.

        ``wait_running`` gives in-flight jobs that many wall-clock seconds
        to finish (they run on daemon threads either way).
        """
        with self._cond:
            self._shutdown = True
            for job in self._queue:
                job.state = "cancelled"
                job.finished_at = time.time()
            self._queue.clear()
            self._cond.notify_all()
        self._dispatcher.join(timeout=5.0)
        if wait_running > 0:
            deadline = time.monotonic() + wait_running
            with self._cond:
                while self._ranks_in_use > 0 and time.monotonic() < deadline:
                    self._cond.wait(timeout=max(0.0, deadline - time.monotonic()))
