"""Persistent on-disk result store (content-addressed, atomic, versioned).

The in-memory :class:`~repro.serve.cache.ResultCache` dies with the
process; a campaign that sweeps hundreds of (app, preset, nodes, seed)
points should not re-execute all of them because the server restarted.
:class:`ResultStore` keeps each completed result payload as one JSON file
keyed by the job's :meth:`~repro.serve.spec.JobSpec.content_hash`, so a
repeated or extended campaign re-executes only the points it has never
seen — across server restarts and across independent processes sharing
the same directory.

Durability rules:

- **Atomic writes.**  Every ``put`` writes a uniquely-named temp file in
  the entry's directory and ``os.replace``\\ s it into place.  Two server
  processes racing on the same key each land a complete file; readers
  never observe a torn write.
- **Version-stamped schema.**  Entries are wrapped as
  ``{"schema": N, "key": ..., "payload": ...}``.  A future schema bump
  makes old entries *misses* (counted ``incompatible``), never crashes —
  they stay on disk for the older code that understands them.
- **Corruption is a miss, not an error.**  A truncated, unparseable or
  mislabeled entry (e.g. a crashed writer pre-``os.replace`` semantics,
  or bit rot) is skipped, counted, best-effort unlinked, and simply
  re-executed and rewritten by the next campaign — a bad entry must never
  take a campaign down.

Layout: ``<root>/<hash[:2]>/<hash>.json`` (fan-out keeps directories
small at paper-sweep scale).  The default root is ``$REPRO_STORE`` or
``~/.cache/repro/results``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Iterator

from repro.util.errors import ValidationError

#: Entry wrapper schema understood by this code.  Bump on incompatible
#: payload changes; old entries then read as ``incompatible`` misses.
SCHEMA_VERSION = 1

#: Environment variable overriding the default store root.
STORE_ENV = "REPRO_STORE"


def default_store_root() -> Path:
    """``$REPRO_STORE`` if set, else ``~/.cache/repro/results``."""
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "results"


def _valid_key(key: str) -> bool:
    """Keys are hex content hashes; anything else never touches the disk."""
    return (
        isinstance(key, str)
        and 4 <= len(key) <= 128
        and all(c in "0123456789abcdef" for c in key)
    )


class ResultStore:
    """Directory of per-hash JSON result payloads with atomic writes."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_store_root()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt_dropped = 0
        self._incompatible = 0

    # -- paths -------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if not _valid_key(key):
            raise ValidationError(f"store keys are hex content hashes, got {key!r}")
        return self.root / key[:2] / f"{key}.json"

    # -- access ------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None``.

        Corrupt or truncated entries are dropped and read as misses;
        entries written under a different :data:`SCHEMA_VERSION` are left
        in place but rejected (``incompatible``).
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            with self._lock:
                self._misses += 1
            return None
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError:
            return self._drop_corrupt(path)
        if not isinstance(doc, dict) or "schema" not in doc:
            return self._drop_corrupt(path)
        if doc.get("schema") != SCHEMA_VERSION:
            with self._lock:
                self._incompatible += 1
                self._misses += 1
            return None
        if doc.get("key") != key or not isinstance(doc.get("payload"), dict):
            return self._drop_corrupt(path)
        with self._lock:
            self._hits += 1
        return doc["payload"]

    def _drop_corrupt(self, path: Path) -> None:
        """Count and best-effort remove a damaged entry; report a miss."""
        with self._lock:
            self._corrupt_dropped += 1
            self._misses += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key`` (last writer wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"schema": SCHEMA_VERSION, "key": key, "payload": payload}
        body = json.dumps(doc, separators=(",", ":"))
        # A unique temp file per writer + os.replace = no torn entries even
        # with two server processes completing the same spec concurrently.
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self._writes += 1

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        """All entry hashes currently on disk (no validation)."""
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if not sub.is_dir():
                continue
            for path in sorted(sub.glob("*.json")):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed (test hook)."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "root": str(self.root),
                "schema": SCHEMA_VERSION,
                "hits": self._hits,
                "misses": self._misses,
                "writes": self._writes,
                "corrupt_dropped": self._corrupt_dropped,
                "incompatible": self._incompatible,
            }
