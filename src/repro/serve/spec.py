"""Job specifications: the unit of work the job service schedules.

A :class:`JobSpec` names everything that determines a simulation's outcome
— the application, cluster preset and node count, device mix, config
overrides, app options, and the fault plan — in a JSON-able form that
travels over the HTTP API.  Its :meth:`~JobSpec.content_hash` is the
content address of the run's *result*: two specs that would produce
bit-identical virtual makespans hash equal, so the server's result cache
can return a completed job's payload without re-executing it.

Deliberately **excluded** from the hash: execution backend, worker count,
and priority.  The engine pins virtual makespans bit-identical across
backends (see :mod:`repro.sim.engine`), and priority only reorders the
queue — none of them can change the result, so including them would only
split the cache.  Fault plans enter the hash through
:meth:`repro.faults.plan.FaultPlan.canonical_key`, so listing the same
rules in a different order does not change a job's identity either.

:func:`execute_job` is the reference executor: it builds the cluster and
config exactly the way the CLI's direct-run path does and calls the app's
``run`` — which is what makes "submitted over the API" and "run directly
via ``spmd_run``" bit-for-bit comparable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.util.errors import ValidationError

#: Cluster presets a job may request, by name.
CLUSTER_PRESETS = ("ohio", "laptop", "latency")

#: Spec fields that never reach the content hash (see module docstring).
NON_SEMANTIC_FIELDS = ("backend", "workers", "priority")

#: Keyword arguments of app ``run`` functions that are plumbing, not app
#: options — they are carried by dedicated spec fields instead.
_RESERVED_OPTIONS = frozenset(
    {"backend", "workers", "fault_plan", "recorder_factory", "trace"}
)


def build_cluster(preset: str, nodes: int):
    """Instantiate a named cluster preset at ``nodes`` nodes."""
    from repro.cluster.presets import latency_cluster, laptop_cluster, ohio_cluster

    builders = {
        "ohio": ohio_cluster,
        "laptop": laptop_cluster,
        "latency": latency_cluster,
    }
    try:
        builder = builders[preset]
    except KeyError:
        raise ValidationError(
            f"unknown cluster preset {preset!r}; choose from {list(CLUSTER_PRESETS)}"
        ) from None
    return builder(nodes)


def _served_apps() -> dict[str, Any]:
    """The app registry the service schedules over.

    Reuses the profile driver's table (run function + quick-scale config
    factory), so the service serves exactly the apps the CLI can run and
    profiles at the same CI-friendly default sizes.
    """
    from repro.obs.profile import PROFILE_APPS

    return PROFILE_APPS


def served_app_names() -> list[str]:
    return sorted(_served_apps())


def _allowed_options(run_fn: Callable[..., Any]) -> set[str]:
    """The keyword-only parameters of an app's ``run`` (its option surface)."""
    sig = inspect.signature(run_fn)
    return {
        name
        for name, p in sig.parameters.items()
        if p.kind is inspect.Parameter.KEYWORD_ONLY
    } - _RESERVED_OPTIONS


def _listify(value: Any) -> Any:
    """Normalize tuples to lists recursively (canonical JSON form)."""
    if isinstance(value, (list, tuple)):
        return [_listify(v) for v in value]
    return value


def _tuplify(value: Any) -> Any:
    """Normalize JSON lists back to tuples (config dataclass form)."""
    if isinstance(value, (list, tuple)):
        return tuple(_tuplify(v) for v in value)
    return value


@dataclass(frozen=True)
class JobSpec:
    """Everything that determines one simulation job's result.

    Args:
        app: Application name (one of :func:`served_app_names`).
        nodes: Cluster node count; the job occupies ``nodes`` ranks.
        mix: Device mix per node (see :data:`repro.core.env.DEVICE_MIXES`).
        preset: Cluster preset name (:data:`CLUSTER_PRESETS`).
        scale: ``"quick"`` (CI-sized config, the default) or ``"full"``
            (the app's paper-sized defaults).
        params: Config-field overrides applied on top of the scale's
            default config (e.g. ``{"seed": 3, "iterations": 2}``).  JSON
            lists are converted to tuples for tuple-valued fields.
        options: App ``run()`` keyword options (e.g. ``overlap``,
            ``reliable``, ``checkpoint_every``, ``time_block``), validated
            against the app's signature at construction.
        fault_plan: Optional :meth:`FaultPlan.to_dict` document.
        backend: SPMD backend override (``None`` honours the environment).
        workers: Process-backend worker count override.
        priority: Higher runs first; ties in submission order.
        trace: Capture a per-rank observability trace; the result then
            carries a Chrome-trace document and an analysis report,
            fetchable through the API.
    """

    app: str
    nodes: int = 4
    mix: str = "cpu+2gpu"
    preset: str = "ohio"
    scale: str = "quick"
    params: Mapping[str, Any] = field(default_factory=dict)
    options: Mapping[str, Any] = field(default_factory=dict)
    fault_plan: Mapping[str, Any] | None = None
    backend: str | None = None
    workers: int | None = None
    priority: int = 0
    trace: bool = False

    def __post_init__(self) -> None:
        from repro.core.env import DEVICE_MIXES
        from repro.sim.engine import resolve_backend

        apps = _served_apps()
        if self.app not in apps:
            raise ValidationError(
                f"unknown app {self.app!r}; served apps: {sorted(apps)}"
            )
        if not isinstance(self.nodes, int) or self.nodes < 1:
            raise ValidationError(f"nodes must be an int >= 1, got {self.nodes!r}")
        if self.mix not in DEVICE_MIXES:
            raise ValidationError(
                f"unknown mix {self.mix!r}; choose from {sorted(DEVICE_MIXES)}"
            )
        if self.preset not in CLUSTER_PRESETS:
            raise ValidationError(
                f"unknown preset {self.preset!r}; choose from {list(CLUSTER_PRESETS)}"
            )
        if self.scale not in ("quick", "full"):
            raise ValidationError(f"scale must be 'quick' or 'full', got {self.scale!r}")
        if not isinstance(self.priority, int):
            raise ValidationError(f"priority must be an int, got {self.priority!r}")
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            raise ValidationError(f"workers must be an int >= 1, got {self.workers!r}")
        if self.backend is not None:
            resolve_backend(self.backend)  # raises on unknown names
        # Freeze the mapping fields so the spec is safely shareable.
        object.__setattr__(self, "params", dict(self.params or {}))
        object.__setattr__(self, "options", dict(self.options or {}))
        config_fields = {f.name for f in dataclasses.fields(self._config_type())}
        unknown = set(self.params) - config_fields
        if unknown:
            raise ValidationError(
                f"unknown {self.app} config params {sorted(unknown)}; "
                f"known: {sorted(config_fields)}"
            )
        allowed = _allowed_options(_served_apps()[self.app].run)
        bad = set(self.options) - allowed
        if bad:
            raise ValidationError(
                f"unknown {self.app} options {sorted(bad)}; known: {sorted(allowed)}"
            )
        if self.fault_plan is not None:
            # Validates field names/ranges; the plan itself is rebuilt at
            # execution time (plans carry runtime state, specs must not).
            self.build_fault_plan()

    # -- derived views ---------------------------------------------------
    @property
    def ranks(self) -> int:
        """Rank-budget cost of this job (framework apps run 1 rank/node)."""
        return self.nodes

    def _config_type(self) -> type:
        return type(_served_apps()[self.app].quick_config())

    def build_config(self) -> Any:
        """The app config this spec runs: scale default + ``params``."""
        entry = _served_apps()[self.app]
        base = entry.quick_config() if self.scale == "quick" else self._config_type()()
        if not self.params:
            return base
        overrides = {k: _tuplify(v) for k, v in self.params.items()}
        return dataclasses.replace(base, **overrides)

    def build_fault_plan(self):
        """A fresh :class:`FaultPlan` for one execution (or ``None``)."""
        if self.fault_plan is None:
            return None
        from repro.faults.plan import FaultPlan

        return FaultPlan.from_dict(dict(self.fault_plan))

    # -- canonical identity ------------------------------------------------
    def canonical(self) -> dict[str, Any]:
        """The hash-relevant content in canonical (sorted, listified) form."""
        plan = self.build_fault_plan()
        return {
            "app": self.app,
            "nodes": self.nodes,
            "mix": self.mix,
            "preset": self.preset,
            "scale": self.scale,
            "params": {k: _listify(self.params[k]) for k in sorted(self.params)},
            "options": {k: _listify(self.options[k]) for k in sorted(self.options)},
            "fault_plan": None if plan is None else plan.canonical_key(),
            "trace": self.trace,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 content address of this job's result."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # -- wire format -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "nodes": self.nodes,
            "mix": self.mix,
            "preset": self.preset,
            "scale": self.scale,
            "params": {k: _listify(v) for k, v in self.params.items()},
            "options": dict(self.options),
            "fault_plan": None if self.fault_plan is None else dict(self.fault_plan),
            "backend": self.backend,
            "workers": self.workers,
            "priority": self.priority,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        if not isinstance(data, Mapping):
            raise ValidationError(f"job spec must be an object, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"unknown job-spec fields {sorted(unknown)}; known: {sorted(known)}"
            )
        if "app" not in data:
            raise ValidationError("job spec requires an 'app' field")
        return cls(**{k: data[k] for k in data})


# -- execution -------------------------------------------------------------
def _json_number(value: Any) -> bool:
    return isinstance(value, (bool, int, float)) or (
        hasattr(value, "item") and getattr(value, "ndim", 1) == 0
    )


def _scalar(value: Any) -> Any:
    return value.item() if hasattr(value, "item") else value


def _extract_metrics(rank0_value: Any) -> dict[str, Any]:
    """Small JSON-able facts from rank 0's return value (arrays skipped)."""
    metrics: dict[str, Any] = {}
    if not isinstance(rank0_value, dict):
        return metrics
    for key, value in rank0_value.items():
        if _json_number(value) or isinstance(value, str):
            metrics[key] = _scalar(value)
        elif (
            isinstance(value, (list, tuple))
            and len(value) <= 256
            and all(_json_number(v) for v in value)
        ):
            metrics[key] = [_scalar(v) for v in value]
    return metrics


def _result_digest(result: Any) -> str | None:
    """SHA-256 of the app's functional result array, when there is one."""
    import numpy as np

    if isinstance(result, np.ndarray):
        h = hashlib.sha256()
        h.update(str(result.dtype).encode())
        h.update(str(result.shape).encode())
        h.update(np.ascontiguousarray(result).tobytes())
        return h.hexdigest()
    return None


def execute_job(spec: JobSpec) -> dict[str, Any]:
    """Run one job to completion and return its JSON-able result payload.

    This is the scheduler's default executor and the reference for the
    service's bit-identity guarantee: the app's ``run`` is called exactly
    as the CLI's direct path calls it, so a job's ``makespan`` is
    repr-equal to the same spec run without the service (floats survive
    the JSON round trip exactly).
    """
    entry = _served_apps()[spec.app]
    cluster = build_cluster(spec.preset, spec.nodes)
    config = spec.build_config()
    plan = spec.build_fault_plan()
    kwargs: dict[str, Any] = dict(spec.options)
    if spec.backend is not None:
        kwargs["backend"] = spec.backend
    if spec.workers is not None:
        kwargs["workers"] = spec.workers
    if plan is not None:
        kwargs["fault_plan"] = plan
    if spec.trace:
        from repro.obs.recorder import Recorder

        kwargs["recorder_factory"] = Recorder

    apprun = entry.run(cluster, config, spec.mix, **kwargs)

    payload: dict[str, Any] = {
        "app": apprun.app,
        "nodes": apprun.nodes,
        "mix": apprun.mix,
        "preset": spec.preset,
        "scale": spec.scale,
        "makespan": apprun.makespan,
        "seq_time": apprun.seq_time,
        "speedup": apprun.speedup,
        "metrics": _extract_metrics(apprun.spmd.values[0]),
        "result_digest": _result_digest(apprun.result),
        "fault_stats": None if plan is None else plan.stats_snapshot(),
        "spec_hash": spec.content_hash(),
    }
    if spec.trace:
        from repro.obs.analysis import analyze
        from repro.obs.export import export_chrome_trace

        payload["trace"] = export_chrome_trace(apprun.spmd.traces, apprun.spmd.makespan)
        payload["report"] = analyze(apprun.spmd, app_makespan=apprun.makespan).to_dict()
    return payload
