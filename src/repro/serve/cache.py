"""Content-addressed result cache for the job service.

Keys are :meth:`JobSpec.content_hash` digests; values are completed result
payloads (plain JSON-able dicts).  The cache is a bounded, thread-safe LRU
— hits refresh recency, inserts evict the least-recently-used entry — the
same policy :func:`repro.data.points.clustered_points` uses for datasets,
applied one level up: identical jobs return their memoized result without
re-execution, which is the whole point of a long-lived server amortizing
setup across "heavy traffic" of small jobs.

Cached payloads are shared, not copied: treat them as read-only (the same
contract as a delivered message payload).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.util.errors import ValidationError


class ResultCache:
    """Bounded LRU mapping spec hashes to completed result payloads."""

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached payload for ``key`` (refreshing recency), or None."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = payload
            self._entries.move_to_end(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
