"""Content-addressed result cache for the job service.

Keys are :meth:`JobSpec.content_hash` digests; values are completed result
payloads (plain JSON-able dicts).  The cache is a bounded, thread-safe LRU
— hits refresh recency, inserts evict the least-recently-used entry — the
same policy :func:`repro.data.points.clustered_points` uses for datasets,
applied one level up: identical jobs return their memoized result without
re-execution, which is the whole point of a long-lived server amortizing
setup across "heavy traffic" of small jobs.

The LRU may be layered over a persistent
:class:`~repro.serve.store.ResultStore`: a miss falls through to disk
(promoting the entry back into memory on a hit), and every ``put`` writes
through, so results survive process restarts and are shared by every
process pointed at the same store directory.  That layering is what lets a
repeated campaign complete with **zero executions** — the in-memory LRU is
the hot tier, the store the durable one.

Cached payloads are shared, not copied: treat them as read-only (the same
contract as a delivered message payload).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.serve.store import ResultStore
from repro.util.errors import ValidationError


class ResultCache:
    """Bounded LRU mapping spec hashes to completed result payloads,
    optionally write-through to a persistent :class:`ResultStore`."""

    def __init__(
        self, max_entries: int = 128, *, store: ResultStore | None = None
    ) -> None:
        if max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.store = store
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._store_hits = 0

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached payload for ``key`` (refreshing recency), or None.

        Memory misses fall through to the persistent store (when one is
        attached); a store hit promotes the payload into the LRU so the
        next lookup is memory-speed.
        """
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return payload
            self._misses += 1
        if self.store is None:
            return None
        payload = self.store.get(key)
        if payload is None:
            return None
        with self._lock:
            self._store_hits += 1
            self._insert_locked(key, payload)
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key``, evicting the LRU entry if full.

        Write-through: with a store attached the payload is also persisted
        (atomically) before the in-memory insert, so an entry the LRU later
        evicts is still one disk read away, never a re-execution.
        """
        if self.store is not None:
            self.store.put(key, payload)
        with self._lock:
            self._insert_locked(key, payload)

    def _insert_locked(self, key: str, payload: dict[str, Any]) -> None:
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1
        self._entries[key] = payload
        self._entries.move_to_end(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop the in-memory tier (the persistent store is untouched)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            out: dict[str, Any] = {
                "size": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "store_hits": self._store_hits,
            }
        out["store"] = None if self.store is None else self.store.stats()
        return out
