"""The job service's HTTP front end (stdlib ``ThreadingHTTPServer``).

A deliberately small, dependency-free JSON API on localhost:

====== =========================== ===========================================
Method Path                        Meaning
====== =========================== ===========================================
GET    ``/healthz``                liveness probe
GET    ``/stats``                  scheduler / cache / pool counters
GET    ``/jobs``                   all jobs (status summaries)
POST   ``/jobs``                   submit a job spec; 200 = cache hit,
                                   202 = queued, 400/429 = rejected
POST   ``/jobs/batch``             submit a list of specs in one round trip;
                                   always 200 with a per-spec outcome
                                   ({job id | cached result | error}) —
                                   one bad spec never fails the batch
GET    ``/jobs/<id>``              one job's status
GET    ``/jobs/<id>/result``       result payload (409 until terminal)
GET    ``/jobs/<id>/trace``        Chrome-trace document (jobs with trace=true)
POST   ``/jobs/<id>/cancel``       cancel a queued job (409 if running)
====== =========================== ===========================================

Each HTTP request is handled on its own thread, but handlers only touch the
lock-protected :class:`~repro.serve.scheduler.JobScheduler` — the actual
simulations run on the scheduler's job threads, so a slow job never blocks
a status poll.

:class:`JobServer` bundles scheduler + HTTP server + the serving thread;
``port=0`` binds an ephemeral port (the bound address is on ``.url``).
Use it as a context manager in tests.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import __version__
from repro.serve.cache import ResultCache
from repro.serve.scheduler import AdmissionError, JobScheduler
from repro.serve.spec import JobSpec
from repro.serve.store import ResultStore
from repro.util.errors import ValidationError

#: Largest request body accepted (job specs are small; this is a guardrail).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Most specs accepted in one ``POST /jobs/batch`` request.
MAX_BATCH_JOBS = 4096


class _ApiError(Exception):
    """An error with an HTTP status, rendered as a JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------
    @property
    def scheduler(self) -> JobScheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # quiet by default
            super().log_message(fmt, *args)

    def _send_json(self, obj: Any, status: int = 200) -> None:
        body = json.dumps(obj).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise _ApiError(400, "request requires a JSON body")
        if length > MAX_BODY_BYTES:
            raise _ApiError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _ApiError(400, f"invalid JSON body: {exc}") from None

    def _job(self, job_id: str):
        try:
            return self.scheduler.get(job_id)
        except KeyError:
            raise _ApiError(404, f"unknown job id {job_id!r}") from None

    # -- routing ------------------------------------------------------------
    def _route(self, method: str) -> None:
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            parts = [p for p in path.split("/") if p]
            self._dispatch(method, parts)
        except _ApiError as exc:
            self._send_json({"error": str(exc)}, status=exc.status)
        except Exception as exc:  # noqa: BLE001 - must answer the client
            self._send_json(
                {"error": f"internal error: {type(exc).__name__}: {exc}"}, status=500
            )

    def _dispatch(self, method: str, parts: list[str]) -> None:
        if method == "GET" and parts == ["healthz"]:
            self._send_json({"ok": True, "version": __version__})
        elif method == "GET" and parts == ["stats"]:
            self._send_json(self.scheduler.stats())
        elif method == "GET" and parts == ["jobs"]:
            self._send_json(
                {"jobs": [j.describe(with_spec=False) for j in self.scheduler.jobs()]}
            )
        elif method == "POST" and parts == ["jobs"]:
            self._submit()
        elif method == "POST" and parts == ["jobs", "batch"]:
            self._submit_batch()
        elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            self._send_json(self._job(parts[1]).describe())
        elif len(parts) == 3 and parts[0] == "jobs":
            job_id, action = parts[1], parts[2]
            if method == "GET" and action == "result":
                self._result(job_id)
            elif method == "GET" and action == "trace":
                self._trace(job_id)
            elif method == "POST" and action == "cancel":
                self._cancel(job_id)
            else:
                raise _ApiError(404, f"no such endpoint: {method} {self.path}")
        else:
            raise _ApiError(404, f"no such endpoint: {method} {self.path}")

    # -- endpoints ------------------------------------------------------------
    def _submit(self) -> None:
        data = self._read_json()
        try:
            spec = JobSpec.from_dict(data)
        except ValidationError as exc:
            raise _ApiError(400, f"bad job spec: {exc}") from None
        try:
            job = self.scheduler.submit(spec)
        except AdmissionError as exc:
            # Over-budget forever -> 400; queue full right now -> 429.
            status = 429 if "queue is full" in str(exc) else 400
            raise _ApiError(status, str(exc)) from None
        self._send_json(job.describe(), status=200 if job.cached else 202)

    def _submit_batch(self) -> None:
        """One round trip admits a whole spec list, one outcome per spec.

        The request body is ``{"jobs": [spec, ...]}`` (a bare JSON list is
        accepted too).  The response is always 200 with ``{"jobs": [...]}``
        where each entry is either a job status document (it may already be
        ``done`` via the result cache/persistent store — check ``cached``)
        or ``{"error": ...}`` for that spec alone; a malformed or
        inadmissible spec never fails its batch-mates.
        """
        data = self._read_json()
        if isinstance(data, dict):
            data = data.get("jobs")
        if not isinstance(data, list):
            raise _ApiError(400, "batch body must be a JSON list or {'jobs': [...]}")
        if len(data) > MAX_BATCH_JOBS:
            raise _ApiError(
                413, f"batch of {len(data)} specs exceeds the {MAX_BATCH_JOBS} cap"
            )
        entries: list[dict[str, Any]] = []
        specs: list[tuple[int, JobSpec]] = []
        for i, item in enumerate(data):
            try:
                specs.append((i, JobSpec.from_dict(item)))
                entries.append({})  # placeholder, filled from the scheduler
            except ValidationError as exc:
                entries.append({"index": i, "error": f"bad job spec: {exc}"})
        outcomes = self.scheduler.submit_many([spec for _, spec in specs])
        for (i, _), outcome in zip(specs, outcomes):
            if outcome["ok"]:
                entry = outcome["job"].describe(with_spec=False)
                entry["index"] = i
                entries[i] = entry
            else:
                entries[i] = {"index": i, "error": outcome["error"]}
        self._send_json({"jobs": entries})

    def _result(self, job_id: str) -> None:
        job = self._job(job_id)
        if job.state in ("queued", "running"):
            raise _ApiError(409, f"job {job_id} is still {job.state}")
        if job.state == "cancelled":
            raise _ApiError(409, f"job {job_id} was cancelled")
        if job.state == "failed":
            self._send_json({"id": job.id, "state": job.state, "error": job.error})
            return
        result = {k: v for k, v in (job.result or {}).items() if k != "trace"}
        self._send_json(
            {"id": job.id, "state": job.state, "cached": job.cached, "result": result}
        )

    def _trace(self, job_id: str) -> None:
        job = self._job(job_id)
        if job.state in ("queued", "running"):
            raise _ApiError(409, f"job {job_id} is still {job.state}")
        trace = (job.result or {}).get("trace")
        if trace is None:
            raise _ApiError(
                404, f"job {job_id} has no trace (submit with trace=true)"
            )
        self._send_json(trace)

    def _cancel(self, job_id: str) -> None:
        job = self._job(job_id)
        if self.scheduler.cancel(job.id):
            self._send_json(job.describe())
        elif job.state == "cancelled":
            self._send_json(job.describe())
        else:
            raise _ApiError(409, f"job {job_id} is {job.state}; only queued jobs cancel")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._route("POST")


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class JobServer:
    """The long-lived simulation job service (scheduler + HTTP API)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        rank_budget: int = 64,
        cache_size: int = 128,
        max_queued: int = 1024,
        executor: Any = None,
        verbose: bool = False,
        store_dir: Any = None,
    ) -> None:
        store = None if store_dir is None else ResultStore(store_dir)
        self.scheduler = JobScheduler(
            executor,
            rank_budget=rank_budget,
            cache=ResultCache(cache_size, store=store),
            max_queued=max_queued,
        )
        self._http = _HTTPServer((host, port), _Handler)
        self._http.scheduler = self.scheduler  # type: ignore[attr-defined]
        self._http.verbose = verbose  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "JobServer":
        """Serve requests on a background thread; returns self."""
        if self._thread is not None:
            raise ValidationError("server already started")
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` CLI path)."""
        self._http.serve_forever(poll_interval=0.1)

    def shutdown(self, *, wait_running: float = 0.0) -> None:
        self._http.shutdown()
        self._http.server_close()
        self.scheduler.shutdown(wait_running=wait_running)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
