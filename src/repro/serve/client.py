"""Stdlib HTTP client for the job service.

:class:`ServeClient` is what the CLI (``repro submit`` / ``repro jobs``),
the test suite, and future batch drivers (the campaign engine) talk to the
server with — plain ``urllib`` underneath, JSON in and out, no third-party
dependencies.

The canonical loop::

    client = ServeClient("http://127.0.0.1:8642")
    job = client.submit(JobSpec(app="heat3d", nodes=4, preset="laptop"))
    done = client.wait(job["id"])
    print(client.result(job["id"])["result"]["makespan"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.serve.scheduler import TERMINAL_STATES
from repro.serve.spec import JobSpec

#: Default server address (the ``repro serve`` default port).
DEFAULT_URL = "http://127.0.0.1:8642"


class ServeError(Exception):
    """An HTTP-level failure, carrying the server's error message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Thin JSON client for one job server."""

    def __init__(self, url: str = DEFAULT_URL, *, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------
    def _request(self, method: str, path: str, body: Any = None) -> Any:
        data = None if body is None else json.dumps(body).encode("utf-8")
        req = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - error body is best-effort
                message = exc.reason
            raise ServeError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServeError(0, f"cannot reach {self.url}: {exc.reason}") from None

    # -- API ----------------------------------------------------------------
    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except ServeError:
            return False

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def submit(self, spec: JobSpec | Mapping[str, Any]) -> dict[str, Any]:
        """Submit one job; returns its status document (maybe already done
        — cache hits complete at submission)."""
        payload = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        return self._request("POST", "/jobs", payload)

    def submit_many(
        self, specs: list[JobSpec | Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        """Submit a whole spec list in **one** HTTP round trip.

        Returns one entry per spec, in order: a job status document
        (possibly already ``done`` via the server's result cache or
        persistent store — check ``cached``) or ``{"error": ...}`` for the
        specs the server refused.  One bad spec never fails the batch.
        """
        payload = [
            spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
            for spec in specs
        ]
        return self._request("POST", "/jobs/batch", {"jobs": payload})["jobs"]

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def trace(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/trace")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.05
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll)

    def wait_many(
        self, job_ids: list[str], *, timeout: float = 600.0, poll: float = 0.05
    ) -> dict[str, dict[str, Any]]:
        """Poll until every listed job is terminal; id -> final status.

        One shared deadline covers the whole set (a campaign waits for the
        sweep, not for each point in sequence).
        """
        deadline = time.monotonic() + timeout
        done: dict[str, dict[str, Any]] = {}
        pending = list(dict.fromkeys(job_ids))
        while pending:
            still: list[str] = []
            for job_id in pending:
                status = self.status(job_id)
                if status["state"] in TERMINAL_STATES:
                    done[job_id] = status
                else:
                    still.append(job_id)
            pending = still
            if pending:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"{len(pending)} job(s) still running after {timeout}s: "
                        f"{pending[:5]}"
                    )
                time.sleep(poll)
        return done
