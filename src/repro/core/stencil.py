"""Stencil runtime (paper §II-A, §III-C/D/E, Fig. 4).

Grid decomposition and execution flow:

- **Inter-process**: the global grid is divided over a virtual Cartesian
  processor topology (user-supplied ``dims`` or an ``MPI_Dims_create``
  style balanced factorization).  Each process holds its sub-grid with a
  halo-padded allocation.
- **Halo exchange (Fig. 4 steps 1–5)**: per axis and direction, the
  boundary strips are packed into *preallocated, parity double-buffered*
  contiguous buffers (CPU: strip memcpy; GPU: a zero-copy kernel writing a
  host-mapped buffer, charged on the copy engine), sent zero-copy
  (``owned=True``) with non-blocking messages, and received directly into
  the halo slabs via ``irecv(out=...)`` — the wall-clock path does one
  copy on each end, while the *charged* pack/unpack costs (GPU: host
  buffer → device copy + scatter kernel) are unchanged.  When several
  arrays are exchanged (the grid plus mutable coefficient fields), all
  strips bound for one neighbour ride a single coalesced message
  (:class:`~repro.comm.coalesce.HaloCoalescer`): one payload per
  (axis, side) per step regardless of field count, charged bytes
  unchanged.
- **Overlap**: inner elements — those at least ``halo`` away from the
  sub-grid boundary — depend only on local data and are computed
  concurrently with the exchange; boundary elements run after (steps 3/7).
  ``overlap=False`` serializes exchange before all compute (Fig. 7).
- **Intra-process**: the sub-grid is split along the highest (first)
  dimension across devices, evenly on step 1 and speed-proportionally
  afterwards (:class:`~repro.core.adaptive.AdaptivePartitioner`).
  Device-boundary planes are exchanged via PCIe / peer copies (step 6).
- **Tiling**: grid tiling improves cache behaviour and lets all boundary
  planes be processed by a single GPU kernel launch; ``tiling=False``
  inflates CPU memory traffic and launches one GPU kernel per face
  (Fig. 7 ablates this).
- **Temporal blocking** (``configure(time_block=k)``): the halo slabs are
  allocated ``k * halo`` deep, one exchange round carries ``k`` depth-
  ``halo`` strips per neighbour in a single coalesced message, and ``k``
  kernel sweeps run per exchange over a *shrinking* valid region — sweep
  ``s`` still computes ``(k-1-s)*halo`` cells past the interior toward
  every rank neighbour, recomputing exactly the ghost values the
  neighbour computes itself (bit-identical by construction, since both
  run the same elementwise update on the same time-``t`` data).  The
  redundant ghost flops are charged as real work through the device cost
  model, so the trade — ``k`` x fewer message rounds (the per-message
  α/LogGP constant amortizes; bytes do not) against extra compute — is
  priced honestly.  ``time_block="auto"`` picks ``k`` per run from the
  link table's α/β and the kernel's flop intensity via the closed form
  in :func:`~repro.device.costmodel.time_block_sweep_cost`.

Functional honesty: halo slabs are filled **only** by the exchange
protocol, so a protocol bug produces wrong numbers, not just wrong times.
Non-periodic global borders keep zero-filled halos (the apps' sequential
references use the same convention).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cluster.topology import dims_create
from repro.comm.cart import CartComm
from repro.comm.coalesce import HaloCoalescer
from repro.comm.constants import PROC_NULL
from repro.core.adaptive import AdaptivePartitioner
from repro.core.api import StencilKernel
from repro.core.env import RuntimeEnv
from repro.core.partition import block_partition
from repro.device.costmodel import time_block_sweep_cost
from repro.device.cpu import CPUDevice
from repro.device.gpu import GPUDevice
from repro.util.errors import ConfigurationError

_TAG_HALO = 201

#: Search ceiling for ``time_block="auto"`` (beyond this the redundant
#: ghost volume dwarfs any realistic per-message constant).
MAX_AUTO_TIME_BLOCK = 16


class StencilFields:
    """Parameter wrapper passed to kernels configured with static fields.

    Lifts the paper's SII-C limitation that "only a single target object
    can be processed every time a runtime instance is launched": kernels
    may read any number of *static* coefficient fields (spatially varying
    diffusivity, masks, metric terms) alongside the evolving grid.  Fields
    are decomposed with the same halo padding as the grid, so
    :func:`~repro.core.api.shifted` works on them unchanged.

    Attributes:
        param: The user's own parameter (whatever was passed to configure).
        fields: ``{name: halo-padded local array}`` of the static fields.
    """

    __slots__ = ("param", "fields")

    def __init__(self, param: Any, fields: dict[str, np.ndarray]) -> None:
        self.param = param
        self.fields = fields

    def __getitem__(self, name: str) -> np.ndarray:
        return self.fields[name]

#: Extra CPU memory traffic factor when tiling is disabled (neighbour
#: accesses miss cache across long rows).
UNTILED_CPU_BYTES_FACTOR = 1.35

#: CPU compute efficiency retained without tiling (cache-miss stalls).
UNTILED_CPU_EFF_FACTOR = 0.85

#: GPU efficiency retained without tiling (uncoalesced boundary handling).
UNTILED_GPU_EFF_FACTOR = 0.90


class StencilRuntime:
    """Runtime instance for one stencil kernel over one structured grid."""

    def __init__(
        self,
        env: RuntimeEnv,
        *,
        overlap: bool = True,
        tiling: bool = True,
        adaptive: bool = True,
        cpu_tile: int = 16,
        gpu_tile: int = 32,
    ) -> None:
        self.env = env
        self.overlap = overlap
        self.tiling = tiling
        self.adaptive = adaptive
        self.cpu_tile = cpu_tile
        self.gpu_tile = gpu_tile
        self._kernel: StencilKernel | None = None
        self._configured = False
        self._parameter: Any = None
        self._timestep = 0
        self._partitioner: AdaptivePartitioner | None = None
        self._rows: np.ndarray | None = None  # current per-device row counts
        #: (t0, rows, recvs) of an exchange begun ahead of the next step
        #: (see :meth:`begin_step_early`), or None.
        self._prestarted: tuple[float, np.ndarray, list] | None = None
        #: Temporal-blocking factor (sweeps per exchange round) and the
        #: resulting halo-slab depth ``time_block * halo``.
        self._time_block = 1
        self._halo_depth: int | None = None
        #: Pack-buffer parity, flipped once per exchange round.  Session
        #: local (not snapshotted): alternation is all the double-buffer
        #: safety argument needs, and parity never affects charges.
        self._xchg_parity = 1
        #: Cumulative model-scale ghost-zone recomputation (flops), for
        #: the ``halo.redundant_flops`` gauge.
        self._redundant_flops = 0.0

    # -- configuration ---------------------------------------------------
    def configure(
        self,
        kernel: StencilKernel,
        global_shape: tuple[int, ...],
        *,
        dims: tuple[int, ...] | None = None,
        periodic: bool = False,
        model_shape: tuple[int, ...] | None = None,
        parameter: Any = None,
        static_fields: dict[str, np.ndarray] | None = None,
        exchange_fields: tuple[str, ...] = (),
        time_block: int | str = 1,
    ) -> None:
        """Set up the decomposition (paper: grid size + virtual topology).

        Args:
            kernel: The stencil kernel specification.
            global_shape: Functional global grid shape.
            dims: Virtual processor topology; balanced if ``None``.
            periodic: Periodic boundaries on every axis.
            model_shape: Paper-scale grid shape this run stands for (costs
                charged at that scale); same rank as ``global_shape``.
            parameter: Opaque state passed to the kernel.
            static_fields: Read-only coefficient fields (global arrays with
                the grid's shape).  The kernel then receives a
                :class:`StencilFields` wrapper as its parameter, carrying
                halo-padded local views of every field (an extension past
                the paper's single-target-object limitation, SII-C).
            exchange_fields: Names from ``static_fields`` that the kernel
                *mutates* each step, so their halos must travel with the
                grid's.  Their strips are coalesced with the grid strip
                into one message per neighbour per step (message count
                stays ``O(axes x 2)`` regardless of field count; charged
                bytes grow with the payload, as they must).  Exchanged
                fields must share the kernel dtype.
            time_block: Temporal-blocking factor ``k``: halo slabs are
                allocated ``k * halo`` deep, one exchange round runs per
                ``k`` sweeps, and the redundant ghost-zone recomputation
                is charged as real flops.  ``"auto"`` picks ``k`` from
                the link table's α/β and the kernel's flop intensity.
                Requires kernels that are temporal-blocking-safe: a pure
                ``halo``-neighbourhood update with no cross-sweep
                parameter mutation (see ``docs/writing_kernels.md``).
        """
        env = self.env
        ndim = len(global_shape)
        if ndim < 1:
            raise ConfigurationError("global_shape must have at least one axis")
        if dims is None:
            dims = dims_create(env.nprocs, ndim)
        self.cart = CartComm(env.comm, dims=dims, periodic=(periodic,) * ndim)
        self._kernel = kernel
        self._parameter = parameter
        self.global_shape = tuple(int(s) for s in global_shape)
        h = kernel.halo

        # Per-axis local extent for this rank's coordinates.
        self._axis_offsets = [
            block_partition(self.global_shape[ax], dims[ax]) for ax in range(ndim)
        ]
        self.local_start = tuple(
            int(self._axis_offsets[ax][self.cart.coords[ax]]) for ax in range(ndim)
        )
        self.local_shape = tuple(
            int(
                self._axis_offsets[ax][self.cart.coords[ax] + 1]
                - self._axis_offsets[ax][self.cart.coords[ax]]
            )
            for ax in range(ndim)
        )
        for ax, ext in enumerate(self.local_shape):
            if ext < 2 * h:
                raise ConfigurationError(
                    f"local extent {ext} on axis {ax} is below 2*halo={2 * h}; "
                    f"use fewer processes or a bigger grid"
                )

        # Model-scale ratios (per axis) for cost charging.
        if model_shape is None:
            self._axis_ratio = (1.0,) * ndim
        else:
            if len(model_shape) != ndim:
                raise ConfigurationError("model_shape rank must match global_shape")
            self._axis_ratio = tuple(
                model_shape[ax] / self.global_shape[ax] for ax in range(ndim)
            )
        self._elem_scale = float(np.prod(self._axis_ratio))

        # Neighbour ranks per axis (PROC_NULL outside non-periodic
        # borders); needed before allocation because temporal blocking
        # both validates against and widens the halo slabs.
        self._neighbors = [self.cart.shift(ax, 1) for ax in range(ndim)]

        # Validate exchange-field names up front: a typo'd or repeated
        # name should fail here, not deep inside the first exchange.
        names = tuple(exchange_fields)
        seen: set[str] = set()
        for name in names:
            if name in seen:
                raise ConfigurationError(
                    f"duplicate exchange field {name!r}: each field's strips "
                    f"already ride every halo message exactly once"
                )
            seen.add(name)
            if not static_fields or name not in static_fields:
                raise ConfigurationError(
                    f"exchange field {name!r} is not a configured static field"
                )
        self._exchange_names = names

        self._partitioner = AdaptivePartitioner(len(env.devices))
        self._time_block = self._resolve_time_block(time_block, 1 + len(names))
        self._halo_depth = self._time_block * h

        padded = tuple(ext + 2 * self._halo_depth for ext in self.local_shape)
        self._src = np.zeros(padded, dtype=kernel.dtype)
        self._dst = np.zeros(padded, dtype=kernel.dtype)
        self.interior = tuple(
            slice(self._halo_depth, self._halo_depth + ext) for ext in self.local_shape
        )

        # Pooled halo-exchange state, fixed for the lifetime of this
        # configuration: cached face slices and model-scale wire sizes,
        # and a per-neighbour message coalescer holding the preallocated
        # contiguous send strips.  Strips stay double-buffered by
        # exchange-round parity: the buffer a message was packed into is
        # not reused until two rounds later, by which point the neighbour
        # has provably consumed it (its next-round send on this axis
        # cannot happen before it filled this round's halos).  Packed
        # payloads are therefore sent with ``owned=True`` — no snapshot
        # copy — and single-strip receives land straight in the halo
        # slabs via ``irecv(out=...)``.
        self._send_slices = {}
        self._halo_slices = {}
        for ax in range(ndim):
            for side in (-1, +1):
                self._send_slices[(ax, side)] = self._face_slices(ax, side, False)
                self._halo_slices[(ax, side)] = self._face_slices(ax, side, True)
        self._face_wire = [self._face_bytes_model(ax) for ax in range(ndim)]
        self._fields: dict[str, np.ndarray] = {}
        if static_fields:
            for name, field in static_fields.items():
                field = np.asarray(field)
                if field.shape != self.global_shape:
                    raise ConfigurationError(
                        f"static field {name!r} has shape {field.shape}, "
                        f"expected {self.global_shape}"
                    )
                self._fields[name] = self._pad_from_global(field, self._halo_depth)
        for name in self._exchange_names:
            if self._fields[name].dtype != kernel.dtype:
                raise ConfigurationError(
                    f"exchange field {name!r} has dtype {self._fields[name].dtype}; "
                    f"coalesced halos require the kernel dtype {kernel.dtype}"
                )
        # All arrays exchanged per step: the grid (always) plus the
        # mutable fields.  Every (axis, side) face carries one strip per
        # array, coalesced into a single message whose charged size is the
        # per-strip wire size times the array count.
        self._exchange_extra = tuple(self._fields[n] for n in self._exchange_names)
        n_arrays = 1 + len(self._exchange_extra)
        self._axis_wire = [w * n_arrays for w in self._face_wire]
        self._coalescer = HaloCoalescer(env.comm, env.trace)
        for ax in range(ndim):
            for side in (-1, +1):
                strip_shape = tuple(
                    sl.stop - sl.start for sl in self._send_slices[(ax, side)]
                )
                self._coalescer.register(
                    (ax, side), (strip_shape,) * n_arrays, kernel.dtype
                )
        self._rows = None
        self._timestep = 0
        self._prestarted = None
        self._xchg_parity = 1
        self._redundant_flops = 0.0
        self._configured = True
        if env.trace.enabled:
            env.trace.gauge("stencil.time_block", float(self._time_block))
        # Region lists and element totals are fixed for this configuration;
        # cache them so the step loop doesn't rebuild slice tuples or
        # recount elements every iteration.
        self._inner = self._inner_region()
        self._boundary = self._boundary_regions()
        self._inner_elems = self._region_elems(self._inner)
        self._boundary_elems = sum(self._region_elems(r) for r in self._boundary)

    @property
    def time_block(self) -> int:
        """The resolved temporal-blocking factor (sweeps per exchange)."""
        return self._time_block

    def _resolve_time_block(self, time_block: int | str, n_arrays: int) -> int:
        """Validate or auto-tune the blocking factor at configure time."""
        h = self._kernel.halo
        if isinstance(time_block, str):
            if time_block != "auto":
                raise ConfigurationError(
                    f"time_block must be a positive int or 'auto', got {time_block!r}"
                )
            return self._auto_time_block(n_arrays)
        k = int(time_block)
        if k < 1:
            raise ConfigurationError(f"time_block must be >= 1, got {time_block}")
        if k > 1:
            # Generalizes the 2*halo rule: deep send strips come from the
            # interior, so every axis that actually exchanges needs room
            # for both faces' k*h-deep strips.
            for ax, ext in enumerate(self.local_shape):
                lo, hi = self._neighbors[ax]
                if (lo != PROC_NULL or hi != PROC_NULL) and ext < 2 * k * h:
                    raise ConfigurationError(
                        f"local extent {ext} on axis {ax} is below "
                        f"2*time_block*halo={2 * k * h}; lower time_block, "
                        f"use fewer processes or a bigger grid"
                    )
        return k

    def _auto_time_block(self, n_arrays: int) -> int:
        """Pick the blocking factor from the α/β link table (closed form).

        Temporal blocking amortizes each halo message's per-message
        constant α (latency + send/recv overheads) over ``k`` sweeps at
        the price of ``k``-deep strips (bytes charged verbatim — the β
        term does not amortize) and redundant ghost-zone flops over a
        shrinking valid region.  The tuner evaluates
        :func:`~repro.device.costmodel.time_block_sweep_cost` for every
        feasible ``k`` and keeps the argmin; ties break toward smaller
        ``k``, and ``k=1`` is always a candidate, so the choice is never
        worse than the unblocked baseline under its own model.
        """
        env = self.env
        h = self._kernel.halo
        kmax = MAX_AUTO_TIME_BLOCK
        has_neighbor = False
        for ax, ext in enumerate(self.local_shape):
            lo, hi = self._neighbors[ax]
            if lo == PROC_NULL and hi == PROC_NULL:
                continue
            has_neighbor = True
            kmax = min(kmax, ext // (2 * h))
        if not has_neighbor or kmax <= 1:
            return 1
        # One (α, bytes, 1/bw) entry per halo message of one exchange
        # round.  Ranks pack nodes contiguously (engine convention), so
        # the neighbour's node — hence link class — follows from rank.
        ctx = env.ctx
        cluster = ctx.cluster
        ranks_per_node = max(1, ctx.size // cluster.num_nodes)

        def node_of(rank: int) -> int:
            return min(rank // ranks_per_node, cluster.num_nodes - 1)

        my_node = node_of(ctx.rank)
        alphas: list[float] = []
        sizes: list[float] = []
        inv_bw: list[float] = []
        for ax in range(len(self.local_shape)):
            base = self._face_bytes_model(ax, depth=h) * n_arrays
            for nbr in self._neighbors[ax]:
                if nbr == PROC_NULL:
                    continue
                link = cluster.link_between(my_node, node_of(nbr))
                alphas.append(link.latency + link.send_overhead + link.recv_overhead)
                sizes.append(base)
                inv_bw.append(1.0 / link.bandwidth)
        # Aggregate per-element compute time of the device team.  Speed
        # profiling has not run yet, so assume the team splits perfectly
        # (harmonic aggregation of per-device rates).
        rate = 0.0
        for dev in env.devices:
            rate += 1.0 / dev.elem_time(self._effective_work(dev), framework=True)
        elem_time = 1.0 / rate
        interior = float(np.prod(self.local_shape))
        rows = self._partitioner.split(self.local_shape[0])
        best_k, best_cost = 1, None
        for k in range(1, kmax + 1):
            ghost = [
                (sum(self._sweep_counts(s, k, rows)) - interior) * self._elem_scale
                for s in range(k)
            ]
            cost = time_block_sweep_cost(
                k,
                msg_alphas=alphas,
                msg_bytes=sizes,
                msg_inv_bandwidths=inv_bw,
                ghost_elems=ghost,
                interior_elems=interior * self._elem_scale,
                elem_time=elem_time,
            )
            if best_cost is None or cost < best_cost:
                best_k, best_cost = k, cost
        return best_k

    def set_global_grid(self, grid: np.ndarray) -> None:
        """Load this rank's block from the (identical-on-all-ranks) grid."""
        self._check_configured()
        if grid.shape != self.global_shape:
            raise ConfigurationError(
                f"grid shape {grid.shape} != configured {self.global_shape}"
            )
        if not np.can_cast(grid.dtype, self._kernel.dtype, casting="same_kind"):
            # Slice assignment below would cast silently (e.g. a float
            # grid truncated into an integer kernel); make the kind
            # mismatch a configuration error instead of a precision bug.
            raise ConfigurationError(
                f"grid dtype {grid.dtype} cannot be cast to kernel dtype "
                f"{self._kernel.dtype} ('same_kind'); convert the grid explicitly"
            )
        block = grid[
            tuple(
                slice(self.local_start[ax], self.local_start[ax] + self.local_shape[ax])
                for ax in range(len(self.global_shape))
            )
        ]
        self._src[self.interior] = block
        self._dst[:] = 0

    def set_parameter(self, parameter: Any) -> None:
        self._parameter = parameter

    def _pad_from_global(self, field: np.ndarray, h: int) -> np.ndarray:
        """Local halo-padded view of a read-only global field.

        Static fields never change, so their halos are filled once at
        setup directly from the global array (the paper excludes setup
        from its timings); out-of-domain halo cells stay zero.
        """
        padded = np.zeros(tuple(ext + 2 * h for ext in self.local_shape), dtype=field.dtype)
        src_slices = []
        dst_slices = []
        for ax in range(field.ndim):
            g_lo = max(0, self.local_start[ax] - h)
            g_hi = min(self.global_shape[ax], self.local_start[ax] + self.local_shape[ax] + h)
            src_slices.append(slice(g_lo, g_hi))
            offset = g_lo - (self.local_start[ax] - h)
            dst_slices.append(slice(offset, offset + (g_hi - g_lo)))
        padded[tuple(dst_slices)] = field[tuple(src_slices)]
        return padded

    def _effective_parameter(self) -> Any:
        if self._fields:
            return StencilFields(self._parameter, self._fields)
        return self._parameter

    # -- regions ------------------------------------------------------------
    def _inner_region(self) -> tuple[slice, ...]:
        h = self._kernel.halo
        return tuple(slice(sl.start + h, sl.stop - h) for sl in self.interior)

    def _boundary_regions(self) -> list[tuple[slice, ...]]:
        """Non-overlapping slabs covering interior minus inner."""
        h = self._kernel.halo
        regions: list[tuple[slice, ...]] = []
        current = list(self.interior)
        for ax in range(len(current)):
            sl = current[ax]
            lowside = tuple(
                current[:ax] + [slice(sl.start, sl.start + h)] + current[ax + 1 :]
            )
            highside = tuple(
                current[:ax] + [slice(sl.stop - h, sl.stop)] + current[ax + 1 :]
            )
            regions.append(lowside)
            regions.append(highside)
            current[ax] = slice(sl.start + h, sl.stop - h)
        return regions

    @staticmethod
    def _region_elems(region: tuple[slice, ...]) -> int:
        n = 1
        for sl in region:
            n *= max(0, sl.stop - sl.start)
        return n

    # -- halo exchange (Fig. 4 steps 1-5) --------------------------------------
    def _face_slices(
        self, axis: int, side: int, halo_side: bool
    ) -> tuple[slice, ...]:
        """Slices of the strip to send (interior edge) or fill (halo slab).

        ``side`` is -1 (low) or +1 (high); ``halo_side`` selects the halo
        slab (receive target) instead of the interior strip (send source).
        Strips are ``time_block * halo`` deep: one exchange round carries
        everything ``time_block`` sweeps consume.

        On every axis *other* than the exchanged one the strip spans the
        full padded extent (halos included): exchanging axes sequentially
        then propagates corner/edge values through the shared face
        neighbours — required for 9-point/27-point stencils.
        """
        d = self._halo_depth
        out = [slice(0, n) for n in self._src.shape]
        sl = self.interior[axis]
        if side < 0:
            out[axis] = slice(sl.start - d, sl.start) if halo_side else slice(sl.start, sl.start + d)
        else:
            out[axis] = slice(sl.stop, sl.stop + d) if halo_side else slice(sl.stop - d, sl.stop)
        return tuple(out)

    def _face_bytes_model(self, axis: int, depth: int | None = None) -> float:
        """Model-scale bytes of one face strip (``depth`` defaults to the
        registered slab depth ``time_block * halo``)."""
        d = self._halo_depth if depth is None else depth
        elems = d
        for ax, ext in enumerate(self.local_shape):
            if ax != axis:
                elems *= ext
        scale = self._elem_scale / self._axis_ratio[axis]
        return elems * scale * np.dtype(self._kernel.dtype).itemsize

    def _pack_cost(self, axis: int, rows: np.ndarray) -> float:
        """Charge step-1/2 packing of one face across the device split.

        Returns the virtual time at which all send buffers are ready.
        The face perpendicular to axis 0 belongs entirely to the first or
        last device; faces along other axes are split across devices.
        """
        env = self.env
        ready = env.clock.now
        total_bytes = self._axis_wire[axis]
        n_dev = len(env.devices)
        # tolist(): keep the per-device shares python floats — numpy scalars
        # leaking into the time arithmetic slow every max()/schedule() call.
        shares = (rows / max(1, int(rows.sum()))).tolist() if axis != 0 else None
        for d, dev in enumerate(env.devices):
            if axis == 0:
                # Only the device owning the outermost rows packs this face;
                # attribute it to the first device for the low face and the
                # last for the high face (both directions happen per step).
                share = 1.0 if d in (0, n_dev - 1) else 0.0
                nbytes = total_bytes * share / max(1, (2 if n_dev > 1 else 1))
            else:
                nbytes = total_bytes * shares[d]
            if nbytes <= 0:
                continue
            if isinstance(dev, GPUDevice):
                # Zero-copy kernel writes the host-mapped buffer.
                dur = dev.spec.kernel_launch_overhead + nbytes / dev.spec.pcie_bandwidth
                iv = dev.copy_engine.schedule(env.clock.now, dur, f"halo.pack[{axis}]")
                ready = max(ready, iv.end)
            else:
                ready = max(ready, env.clock.now + env.host_memcpy_time(nbytes))
        return ready

    def _exchange_sources(self) -> tuple[np.ndarray, ...]:
        """Arrays whose strips ride each halo message, grid first.

        Recomputed per call because the grid buffers swap every step;
        the extra fields are stable objects mutated in place.
        """
        return (self._src,) + self._exchange_extra

    def _send_axis(self, axis: int, rows: np.ndarray) -> None:
        """Pack and send this axis' two faces (Fig. 4 steps 1-2).

        All exchanged arrays' strips for one neighbour travel as a single
        coalesced message — one per (axis, side) per step.
        """
        low_src, high_dst = self._neighbors[axis]
        if low_src == PROC_NULL and high_dst == PROC_NULL:
            return
        pack_done = self._pack_cost(axis, rows)
        self.env.clock.advance_to(pack_done)
        wire = self._axis_wire[axis]
        parity = self._xchg_parity
        sources = self._exchange_sources()
        if high_dst != PROC_NULL:
            strips = [arr[self._send_slices[(axis, +1)]] for arr in sources]
            self._coalescer.send((axis, +1), high_dst, _TAG_HALO + axis, strips, wire, parity)
        if low_src != PROC_NULL:
            strips = [arr[self._send_slices[(axis, -1)]] for arr in sources]
            self._coalescer.send((axis, -1), low_src, _TAG_HALO + axis, strips, wire, parity)

    def _post_axis_recvs(self, axis: int) -> list[tuple[int, Any]]:
        """Post this axis' receives straight into the halo slabs (no unpack
        copy in the single-strip case: ``deliver`` writes the slab view in
        place; multi-strip payloads scatter from a staging buffer)."""
        recvs = []
        low_src, high_dst = self._neighbors[axis]
        sources = self._exchange_sources()
        if low_src != PROC_NULL:
            outs = [arr[self._halo_slices[(axis, -1)]] for arr in sources]
            recvs.append(
                (axis, self._coalescer.post_recv((axis, -1), low_src, _TAG_HALO + axis, outs))
            )
        if high_dst != PROC_NULL:
            outs = [arr[self._halo_slices[(axis, +1)]] for arr in sources]
            recvs.append(
                (axis, self._coalescer.post_recv((axis, +1), high_dst, _TAG_HALO + axis, outs))
            )
        return recvs

    def _fill_halos(self, recvs: list[tuple[int, Any]]) -> None:
        """Wait for halo data (delivered into the slabs), charge unpack (4-5)."""
        env = self.env
        for axis, req in recvs:
            req.wait()
            nbytes = self._axis_wire[axis]
            unpack_end = env.clock.now
            for dev in env.devices:
                if isinstance(dev, GPUDevice):
                    iv = dev.copy_engine.schedule(
                        env.clock.now,
                        dev.transfer_time(nbytes) + dev.spec.kernel_launch_overhead,
                        f"halo.unpack[{axis}]",
                    )
                    unpack_end = max(unpack_end, iv.end)
                else:
                    unpack_end = max(
                        unpack_end, env.clock.now + env.host_memcpy_time(nbytes)
                    )
            env.clock.advance_to(unpack_end)

    def _begin_exchange(self) -> list[tuple[int, Any]]:
        """Kick off the halo exchange: post axis-0 traffic immediately.

        Later axes must wait for earlier axes' halos before their strips
        carry correct corner values (sequential-axis corner propagation),
        so only axis 0 is posted here; :meth:`_finish_exchange` drives the
        rest.  Inner compute still overlaps the whole pipeline.
        """
        # One parity flip per exchange round (== per temporal block):
        # alternation is what keeps a pack buffer unused until the
        # neighbour consumed the round before last.
        self._xchg_parity ^= 1
        rows = self._rows if self._rows is not None else np.array([1])
        recvs = self._post_axis_recvs(0)
        self._send_axis(0, rows)
        return recvs

    def begin_step_early(self) -> None:
        """Kick off the *next* step's axis-0 exchange ahead of :meth:`step`.

        Used by runtimes that have per-step work which can overlap the
        halo wire time — e.g. the fused reduce combine in
        :class:`~repro.core.stencil_reduce.StencilReduceRuntime`: the
        strips are packed and sent before the combine's collective runs,
        so its virtual cost hides the messages' flight time.  The next
        :meth:`step` call picks the in-flight exchange up instead of
        starting its own.  Device timelines are reset here (normally
        :meth:`step`'s first act) so the pack charges land on the fresh
        timelines of the step they belong to.  With temporal blocking the
        speculation covers a whole block: the deep exchange posted here
        feeds the next ``time_block`` sweeps.
        """
        self._check_configured()
        if self._prestarted is not None:
            raise ConfigurationError("an exchange is already in flight for the next step")
        env = self.env
        t0 = env.clock.now
        for dev in env.devices:
            dev.reset(start=t0)
        rows = self._device_rows()
        self._rows = rows
        recvs = self._begin_exchange()
        self._prestarted = (t0, rows, recvs)

    def cancel_begun_step(self) -> None:
        """Drain an exchange begun by :meth:`begin_step_early` unused.

        A convergence loop that speculatively begins step ``t+1``'s
        exchange and then detects convergence at step ``t`` must still
        complete the posted receives — every rank sent its strips, and
        leaving them unmatched would poison the per-(src, tag) FIFO for
        any later traffic.  Halo slabs are (re)filled, interiors are
        untouched, and the unpack charges are paid: the speculation was
        real work, so its cost is honest.
        """
        pre = self._prestarted
        if pre is None:
            return
        self._prestarted = None
        _t0, _rows, recvs = pre
        self._fill_halos(recvs)

    def _after_apply(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Hook: runs right after the kernel apply, before the buffer swap.

        ``src`` is the step's input grid, ``dst`` the freshly computed
        output.  Subclasses fuse per-step extras here (e.g. the local
        reduction of a fused stencil+reduce); the base runtime does
        nothing.
        """

    def _finish_exchange(self, recvs: list[tuple[int, Any]]) -> None:
        """Complete the exchange: fill axis-0 halos, then run later axes."""
        rows = self._rows if self._rows is not None else np.array([1])
        self._fill_halos(recvs)
        for axis in range(1, len(self.local_shape)):
            axis_recvs = self._post_axis_recvs(axis)
            self._send_axis(axis, rows)
            self._fill_halos(axis_recvs)

    def _interdevice_exchange(self, ready: float) -> float:
        """Step 6: boundary planes between neighbouring devices.

        Planes are ``time_block * halo`` deep and swapped once per
        exchange round — like the rank-level halos, the sweeps between
        rounds recompute across the split instead of re-exchanging.
        """
        env = self.env
        devices = env.devices
        if len(devices) < 2:
            return ready
        plane_elems = self._halo_depth
        for ax, ext in enumerate(self.local_shape):
            if ax != 0:
                plane_elems *= ext
        nbytes = plane_elems * (self._elem_scale / self._axis_ratio[0]) * self._src.itemsize
        finish = ready
        for a, b in zip(devices[:-1], devices[1:]):
            # Bidirectional plane swap between adjacent sub-grids.
            for dev in (a, b):
                if isinstance(dev, GPUDevice):
                    iv = dev.copy_engine.schedule(
                        ready, dev.peer_transfer_time(nbytes), "halo.d2d"
                    )
                    finish = max(finish, iv.end)
                else:
                    finish = max(finish, ready + env.host_memcpy_time(nbytes))
        return finish

    # -- device split ------------------------------------------------------------
    def _device_rows(self) -> np.ndarray:
        return self._partitioner.split(self.local_shape[0])

    # -- compute -------------------------------------------------------------------
    def _effective_work(self, dev) -> "Any":
        """The kernel's work model adjusted for the tiling setting."""
        work = self._kernel.work
        if self.tiling:
            return work
        if isinstance(dev, CPUDevice):
            # Long untiled rows blow the cache on neighbour accesses: more
            # memory traffic *and* pipeline stalls in the compute loop.
            return work.replace(
                bytes_per_elem=work.bytes_per_elem * UNTILED_CPU_BYTES_FACTOR,
                cpu_efficiency=work.cpu_efficiency * UNTILED_CPU_EFF_FACTOR,
            )
        return work.replace(gpu_efficiency=work.gpu_efficiency * UNTILED_GPU_EFF_FACTOR)

    def _charge_regions(
        self,
        total: int,
        n_regions: int,
        rows: np.ndarray,
        phase: str,
        ready: float,
    ) -> tuple[float, np.ndarray]:
        """Charge per-device virtual time for computing ``total`` elements
        spread over ``n_regions`` regions.

        Cost accounting only — the functional math runs separately (one
        fused kernel apply per step in :meth:`step`), because region
        fragmentation is a *virtual* concern: launch counts and per-device
        shares feed the cost model, while numpy runs fastest over the whole
        interior box.  Costs are split by each device's share of the axis-0
        rows.  Returns (finish time, per-device busy seconds).
        """
        shares = (rows / max(1, int(rows.sum()))).tolist()
        return self._charge_counts(
            [total * share for share in shares], n_regions, phase, ready
        )

    def _charge_counts(
        self,
        counts: list[float],
        n_regions: int,
        phase: str,
        ready: float,
    ) -> tuple[float, np.ndarray]:
        """Charge per-device virtual time for explicit per-device element
        counts (the temporal-blocking path computes ghost-extended counts
        itself; :meth:`_charge_regions` derives them from row shares)."""
        env = self.env
        busy = np.zeros(len(env.devices))
        finish = ready
        for d, dev in enumerate(env.devices):
            n_model = counts[d] * self._elem_scale
            if n_model <= 0:
                continue
            work = self._effective_work(dev)
            if isinstance(dev, GPUDevice):
                # Tiling groups all boundary planes into one launch; without
                # it each face costs its own kernel launch.
                launches = 1 if (self.tiling or phase != "boundary") else n_regions
                dur = launches * dev.spec.kernel_launch_overhead + n_model * dev.elem_time(
                    work, framework=True
                )
                iv = dev.compute_engine.schedule(ready, dur, f"stencil.{phase}")
                busy[d] += dur
                finish = max(finish, iv.end)
            else:
                dur = dev.partition_time(work, n_model, framework=True)
                iv = dev.timelines()[0].schedule(ready, dur, f"stencil.{phase}")
                busy[d] += dur
                finish = max(finish, iv.end)
            if env.trace.enabled:
                env.trace.record("compute", f"ST:{phase}:{dev.name}", iv.start, iv.end)
        return finish, busy

    # -- one iteration -----------------------------------------------------------------
    def step(self) -> None:
        """One stencil iteration: exchange halos, apply kernel, swap buffers.

        With ``time_block=k > 1`` one call is one full temporal block —
        one deep exchange plus ``k`` sweeps (the timestep counter
        advances by ``k``).  Use :meth:`run` to execute a sweep count
        that is not a multiple of ``k``.
        """
        if self._configured and self._time_block > 1:
            self._blocked_step(self._time_block)
            return
        self._check_configured()
        if self._kernel is None:
            raise ConfigurationError("no kernel configured")
        env = self.env
        clock = env.clock
        pre = self._prestarted
        if pre is None:
            t0 = clock.now
            for dev in env.devices:
                dev.reset(start=t0)
            rows = self._device_rows()
            self._rows = rows
            recvs = self._begin_exchange()
        else:
            # The exchange (and the device resets) already happened in
            # begin_step_early(); pick up the in-flight receives.
            self._prestarted = None
            t0, rows, recvs = pre
        n_bound = len(self._boundary)

        if self.overlap:
            inner_done, busy_inner = self._charge_regions(
                self._inner_elems, 1, rows, "inner", clock.now
            )
            self._finish_exchange(recvs)
            dev_xchg_done = self._interdevice_exchange(clock.now)
            ready = max(inner_done, dev_xchg_done)
            bound_done, busy_bound = self._charge_regions(
                self._boundary_elems, n_bound, rows, "boundary", ready
            )
            end = max(inner_done, bound_done)
        else:
            self._finish_exchange(recvs)
            dev_xchg_done = self._interdevice_exchange(clock.now)
            inner_done, busy_inner = self._charge_regions(
                self._inner_elems, 1, rows, "inner", dev_xchg_done
            )
            bound_done, busy_bound = self._charge_regions(
                self._boundary_elems, n_bound, rows, "boundary", inner_done
            )
            end = bound_done
        clock.advance_to(end)

        # Functional math, decoupled from the virtual charges above: one
        # fused kernel apply over the whole interior once the halos are in.
        # Elementwise stencil updates give bit-identical results whether
        # the interior is computed as one box or as inner + boundary slabs,
        # and numpy is much faster over the single large box.
        self._kernel.apply(self._src, self._dst, self.interior, self._effective_parameter())
        self._after_apply(self._src, self._dst)

        if self.adaptive and not self._partitioner.profiled:
            busy = busy_inner + busy_bound
            if busy.sum() > 0:
                self._partitioner.observe(rows.astype(float), np.maximum(busy, 1e-30))

        self._src, self._dst = self._dst, self._src
        self._timestep += 1
        if env.trace.enabled:
            env.trace.record("compute", "ST:step", t0, clock.now, {"step": self._timestep})

    def run(self, iterations: int) -> None:
        """Run ``iterations`` stencil *sweeps* (paper: the time-step loop).

        With temporal blocking the sweeps execute in blocks of
        ``time_block``; a final partial block still exchanges at the
        registered ``time_block * halo`` depth (the buffers and message
        layouts are fixed at configure time — the overshoot bytes are
        charged honestly) but only sweeps the remaining iterations, so
        the run lands exactly on ``iterations`` applications.
        """
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        k = self._time_block if self._configured else 1
        if k <= 1:
            for _ in range(iterations):
                self.step()
            return
        left = iterations
        while left > 0:
            sweeps = min(k, left)
            self._blocked_step(sweeps)
            left -= sweeps

    # -- temporal blocking (deep ghost zones) -------------------------------------------
    def _sweep_counts(self, s: int, sweeps: int, rows: np.ndarray) -> list[float]:
        """Per-device functional element counts charged for sweep ``s``.

        The valid region shrinks by ``halo`` toward every *open* side per
        sweep: at sweep ``s`` the computed box still extends
        ``e = (sweeps-1-s)*halo`` past the interior toward rank
        neighbours (ghost-zone recomputation), and every device
        additionally recomputes ``e`` rows past its own split planes —
        inter-device planes are exchanged once per block, so the sweeps
        in between must recompute across them too.  Sides at a
        non-periodic global border never extend.
        """
        h = self._kernel.halo
        e = (sweeps - 1 - s) * h
        cross = 1.0
        for ax in range(1, len(self.local_shape)):
            lo, hi = self._neighbors[ax]
            cross *= self.local_shape[ax] + e * ((lo != PROC_NULL) + (hi != PROC_NULL))
        lo0, hi0 = self._neighbors[0]
        n_dev = len(rows)
        counts: list[float] = []
        for d in range(n_dev):
            r = float(rows[d])
            if r <= 0:
                counts.append(0.0)
                continue
            open_lo = (d > 0) or (lo0 != PROC_NULL)
            open_hi = (d < n_dev - 1) or (hi0 != PROC_NULL)
            counts.append((r + e * (open_lo + open_hi)) * cross)
        return counts

    def _block_regions(self, sweeps: int) -> list[tuple[slice, ...]]:
        """Functional compute region for each sweep of one temporal block.

        Sweep ``s`` writes the interior extended by ``(sweeps-1-s)*halo``
        toward every side with a rank neighbour.  Each region plus its
        ``halo``-neighbourhood is contained in the previous sweep's
        region (or, for sweep 0, in the freshly exchanged deep slabs), so
        every ghost value recomputed here equals bit-for-bit what the
        owning rank computes: both run the same elementwise update on the
        same time-``t`` data.  Global-border halo cells are never written
        and stay zero in both buffers — the same convention sequential
        references use.
        """
        h = self._kernel.halo
        out: list[tuple[slice, ...]] = []
        for s in range(sweeps):
            e = (sweeps - 1 - s) * h
            region = []
            for ax, sl in enumerate(self.interior):
                lo, hi = self._neighbors[ax]
                region.append(
                    slice(
                        sl.start - (e if lo != PROC_NULL else 0),
                        sl.stop + (e if hi != PROC_NULL else 0),
                    )
                )
            out.append(tuple(region))
        return out

    def _blocked_step(self, sweeps: int) -> None:
        """One temporal block: one deep halo exchange, then ``sweeps`` sweeps.

        Virtual charging mirrors :meth:`step` for sweep 0 — the inner box
        overlaps the wire, the rest of the (ghost-extended) sweep-0
        region waits for halos and device planes — then sweeps ``1..k-1``
        are charged sequentially: pure local compute over a shrinking
        region, with the redundant ghost elements priced as real flops
        through the same device cost model.  The functional sweeps run
        afterwards over the exact shrinking regions, so gathered grids
        are bit-identical to ``time_block=1``.
        """
        self._check_configured()
        if self._kernel is None:
            raise ConfigurationError("no kernel configured")
        env = self.env
        clock = env.clock
        pre = self._prestarted
        if pre is None:
            t0 = clock.now
            for dev in env.devices:
                dev.reset(start=t0)
            rows = self._device_rows()
            self._rows = rows
            recvs = self._begin_exchange()
        else:
            # The deep exchange (and the device resets) already happened
            # in begin_step_early(); pick up the in-flight receives.
            self._prestarted = None
            t0, rows, recvs = pre
        n_bound = len(self._boundary)
        counts0 = self._sweep_counts(0, sweeps, rows)
        shares = (rows / max(1, int(rows.sum()))).tolist()
        # Sweep 0 splits like a plain step: the inner box overlaps the
        # exchange; everything else in its ghost-extended region is the
        # "boundary" remainder (strictly positive — the extension only
        # ever grows the region past inner+boundary).
        remainder0 = [
            counts0[d] - self._inner_elems * shares[d] for d in range(len(counts0))
        ]

        if self.overlap:
            inner_done, busy_inner = self._charge_regions(
                self._inner_elems, 1, rows, "inner", clock.now
            )
            self._finish_exchange(recvs)
            dev_xchg_done = self._interdevice_exchange(clock.now)
            ready = max(inner_done, dev_xchg_done)
            bound_done, busy_bound = self._charge_counts(
                remainder0, n_bound, "boundary", ready
            )
            end = max(inner_done, bound_done)
        else:
            self._finish_exchange(recvs)
            dev_xchg_done = self._interdevice_exchange(clock.now)
            inner_done, busy_inner = self._charge_regions(
                self._inner_elems, 1, rows, "inner", dev_xchg_done
            )
            bound_done, busy_bound = self._charge_counts(
                remainder0, n_bound, "boundary", inner_done
            )
            end = bound_done
        busy = busy_inner + busy_bound
        total_counts = np.asarray(counts0, dtype=float)
        for s in range(1, sweeps):
            counts = self._sweep_counts(s, sweeps, rows)
            end, busy_s = self._charge_counts(counts, 1, "sweep", end)
            busy += busy_s
            total_counts += np.asarray(counts, dtype=float)
        clock.advance_to(end)

        # Functional sweeps over the shrinking regions; the per-sweep
        # hook and the buffer swap run exactly as in single-step mode.
        for region in self._block_regions(sweeps):
            self._kernel.apply(self._src, self._dst, region, self._effective_parameter())
            self._after_apply(self._src, self._dst)
            self._src, self._dst = self._dst, self._src
            self._timestep += 1

        if self.adaptive and not self._partitioner.profiled:
            if busy.sum() > 0:
                # Effective per-sweep element counts (ghost rows included)
                # keep the speed profile unbiased by the extra work.
                self._partitioner.observe(total_counts / sweeps, np.maximum(busy, 1e-30))

        interior_elems = float(self._inner_elems + self._boundary_elems)
        self._redundant_flops += (
            max(0.0, float(total_counts.sum()) - sweeps * interior_elems)
            * self._elem_scale
            * self._kernel.work.flops_per_elem
        )
        if env.trace.enabled:
            env.trace.gauge("stencil.time_block", float(self._time_block))
            env.trace.gauge("halo.redundant_flops", self._redundant_flops)
            env.trace.record(
                "compute",
                "ST:block",
                t0,
                clock.now,
                {"step": self._timestep, "sweeps": sweeps},
            )

    # -- checkpoint/restart ------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Independent copy of the evolving per-rank state (checkpoint hook).

        Captures exactly what one iteration mutates: both grid buffers
        (halos included — a restored rank must not need a fresh exchange
        to resume), the timestep counter, the current device split, any
        mutable exchanged fields, and the adaptive partitioner's observed
        profile.  The pack-buffer parity is deliberately *not* captured:
        it is a session-local double-buffering detail that keeps
        alternating correctly from any starting value and never affects
        charges.  With temporal blocking, snapshots land on block
        boundaries (the checkpoint drivers step whole blocks), so no
        intra-block position needs saving either.  The partitioner state matters
        because a crash-restarted rank rebuilds its runtime with a fresh,
        *unprofiled* partitioner: without the saved speeds it would
        re-profile from an even split while the surviving ranks keep
        their proportional splits, and every post-recovery device charge
        (hence the makespan) would diverge from an uninterrupted run.
        Read-only configuration (decomposition, kernel, static fields) is
        rebuilt identically by the rank program and is deliberately not
        snapshotted.
        """
        self._check_configured()
        if self._prestarted is not None:
            raise ConfigurationError(
                "cannot snapshot with a speculative exchange in flight; "
                "drive checkpointed loops without begin_step_early()"
            )
        return {
            "src": self._src.copy(),
            "dst": self._dst.copy(),
            "timestep": self._timestep,
            "rows": None if self._rows is None else self._rows.copy(),
            "fields": {n: self._fields[n].copy() for n in self._exchange_names},
            "partitioner": self._partitioner.state_dict(),
        }

    def restore_state(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot_state` snapshot (restart hook)."""
        self._check_configured()
        np.copyto(self._src, state["src"])
        np.copyto(self._dst, state["dst"])
        self._timestep = state["timestep"]
        self._rows = None if state["rows"] is None else state["rows"].copy()
        for name, saved in state["fields"].items():
            np.copyto(self._fields[name], saved)
        self._partitioner.load_state(state["partitioner"])

    # -- results ---------------------------------------------------------------------------
    def local_interior(self) -> np.ndarray:
        """This rank's current sub-grid (a copy, halo stripped)."""
        self._check_configured()
        return self._src[self.interior].copy()

    def gather_global(self) -> np.ndarray | None:
        """Assemble the full grid at rank 0 (test/diagnostic helper)."""
        self._check_configured()
        piece = (self.local_start, self.local_interior())
        parts = self.env.comm.gather(piece, root=0)
        if parts is None:
            return None
        out = np.zeros(self.global_shape, dtype=self._kernel.dtype)
        for start, block in parts:
            out[
                tuple(slice(start[ax], start[ax] + block.shape[ax]) for ax in range(out.ndim))
            ] = block
        return out

    def _check_configured(self) -> None:
        if not self._configured:
            raise ConfigurationError("call configure first")
