"""Checkpoint/restart for iterative runtimes (the recovery half of faults).

Long-running iterative applications (stencil time-stepping, generalized
reduction iterations) snapshot their state every ``k`` iterations; when a
:class:`~repro.faults.plan.RankCrash` from the run's
:class:`~repro.faults.plan.FaultPlan` fires, every rank rolls back to the
last checkpoint in a *coordinated* recovery and re-executes from there.

Model: the crash is simulated at the application level — the rank's thread
survives, it is the application *state* that is lost — which corresponds
to checkpoint/restart-in-place on real clusters (the failed process is
respawned and rejoins at the last consistent snapshot).  The recovery
protocol per iteration boundary:

1. **Detection.**  Each rank checks whether its own planned crash is due
   (its virtual clock passed the crash time) and all ranks agree via a
   tiny ``allreduce`` — the simulation's failure detector heartbeat, which
   is also charged to virtual time like any collective.
2. **Rollback.**  On a detected crash, every rank restores the last
   checkpoint, charges the crash's ``restart_cost`` plus the snapshot
   reload time to its clock, records ``fault`` trace events (``crash`` on
   the failed rank, ``recovery`` everywhere), and re-synchronizes with a
   barrier before resuming at the checkpointed iteration.

Everything is a function of virtual time and the plan's seed, so a given
plan always produces the same recovery points and the same final makespan.
Combine with :class:`~repro.comm.reliable.ReliableComm` when the same plan
also drops or duplicates messages — the heartbeat and rollback barriers
then run over the reliable layer and survive the loss themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.comm.payload import estimate_nbytes
from repro.sim.engine import RankContext
from repro.util.errors import ValidationError

#: Trace category used for checkpoint, crash, and recovery events.
FAULT_CATEGORY = "fault"


@dataclass(frozen=True)
class Checkpoint:
    """One consistent per-rank snapshot: ``state`` as of ``iteration``."""

    iteration: int
    state: Any
    nbytes: int


class CheckpointManager:
    """Drives an iterative loop with periodic checkpoints and crash recovery.

    Args:
        ctx: The rank context (clock, comm, trace, fault plan).
        every: Checkpoint cadence in iterations (snapshot after every
            ``every``-th completed iteration, plus one at iteration 0).
        comm: Communicator for the detection heartbeat and recovery
            barrier; defaults to ``ctx.comm``.  Pass the run's
            :class:`~repro.comm.reliable.ReliableComm` when messages can
            be lost.
        write_bandwidth: Bytes/second charged for writing (and re-reading)
            a snapshot; defaults to half the node's memory bandwidth — an
            in-memory copy costs a read plus a write of every byte.
    """

    def __init__(
        self,
        ctx: RankContext,
        *,
        every: int = 10,
        comm: Any | None = None,
        write_bandwidth: float | None = None,
    ) -> None:
        if every < 1:
            raise ValidationError(f"checkpoint cadence must be >= 1, got {every}")
        self.ctx = ctx
        self.every = int(every)
        self.comm = comm if comm is not None else ctx.comm
        self.plan = ctx.fault_plan
        if write_bandwidth is None:
            write_bandwidth = ctx.node.cpu.mem_bandwidth / 2.0
        if write_bandwidth <= 0:
            raise ValidationError(f"write_bandwidth must be > 0, got {write_bandwidth}")
        self.write_bandwidth = float(write_bandwidth)
        self.checkpoints_taken = 0
        self.recoveries = 0
        self.last_checkpoint: Checkpoint | None = None

    # -- internals ------------------------------------------------------
    def _take(self, iteration: int, capture: Callable[[], Any]) -> Checkpoint:
        """Snapshot now; charges the write time and records a trace event."""
        clock = self.ctx.clock
        t0 = clock.now
        state = capture()
        nbytes = estimate_nbytes(state)
        clock.advance(nbytes / self.write_bandwidth)
        ckpt = Checkpoint(iteration=iteration, state=state, nbytes=nbytes)
        self.last_checkpoint = ckpt
        self.checkpoints_taken += 1
        if self.ctx.trace.enabled:
            self.ctx.trace.record(
                FAULT_CATEGORY,
                "checkpoint",
                t0,
                clock.now,
                {"iteration": iteration, "nbytes": nbytes},
            )
            self.ctx.trace.count("ckpt.snapshots")
            self.ctx.trace.count("ckpt.bytes", nbytes)
        return ckpt

    def _poll_crash(self) -> tuple[bool, Any, float]:
        """(any rank crashed, local crash or None, agreed restart cost).

        The agreement allreduce doubles as the failure detector: it costs
        what a heartbeat collective costs, every iteration.
        """
        crash = None
        if self.plan is not None:
            crash = self.plan.crash_pending(self.ctx.rank, self.ctx.clock.now)
        local = np.array([1.0 if crash is not None else 0.0,
                          crash.restart_cost if crash is not None else 0.0])
        agreed = self.comm.allreduce(local, op="max")
        return bool(agreed[0] > 0.0), crash, float(agreed[1])

    def _recover(
        self,
        ckpt: Checkpoint,
        crash: Any,
        restart_cost: float,
        restore: Callable[[Any], None],
    ) -> int:
        """Coordinated rollback to ``ckpt``; returns the resume iteration."""
        ctx = self.ctx
        clock = ctx.clock
        t0 = clock.now
        if crash is not None:
            # This rank is the one that failed: consume the one-shot crash
            # and mark the failure itself in the trace.
            self.plan.consume_crash(crash)
            if ctx.trace.enabled:
                ctx.trace.record(
                    FAULT_CATEGORY, "crash", crash.at_time, t0, {"rank": ctx.rank}
                )
        restore(ckpt.state)
        # Recovery accounting: the coordinated restart stall plus
        # re-reading the snapshot, visible in the virtual makespan.
        clock.advance(restart_cost + ckpt.nbytes / self.write_bandwidth)
        self.recoveries += 1
        if ctx.trace.enabled:
            ctx.trace.record(
                FAULT_CATEGORY,
                "recovery",
                t0,
                clock.now,
                {"resume_iteration": ckpt.iteration, "restart_cost": restart_cost},
            )
            ctx.trace.count("ckpt.recoveries")
        # Re-synchronize before anyone resumes computing.
        self.comm.barrier()
        return ckpt.iteration

    # -- the loop -------------------------------------------------------
    def run_iterations(
        self,
        iterations: int,
        step: Callable[[int], None],
        capture: Callable[[], Any],
        restore: Callable[[Any], None],
    ) -> int:
        """Run ``step(i)`` for ``i in range(iterations)`` with recovery.

        ``capture()`` must return an *independent* snapshot of the
        application state (the manager stores it as-is); ``restore(state)``
        must reinstate it.  Returns the number of step executions
        including re-executed iterations (``iterations`` exactly when no
        crash fired).
        """
        if iterations < 1:
            raise ValidationError(f"iterations must be >= 1, got {iterations}")
        ckpt = self._take(0, capture)
        executions = 0
        it = 0
        while it < iterations:
            crashed, crash, restart_cost = self._poll_crash()
            if crashed:
                it = self._recover(ckpt, crash, restart_cost, restore)
                continue
            step(it)
            executions += 1
            it += 1
            if it % self.every == 0 and it < iterations:
                ckpt = self._take(it, capture)
        return executions

    def run_convergence(
        self,
        max_iters: int,
        body: Callable[[int], bool],
        capture: Callable[[], Any],
        restore: Callable[[Any], None],
    ) -> int:
        """Run ``body(i)`` until it returns True or ``max_iters``, with recovery.

        The convergence-loop twin of :meth:`run_iterations`: ``body``
        performs one iteration and reports whether the loop should stop
        (e.g. the residual dropped below tolerance).  ``capture`` must
        include whatever the convergence test depends on — iteration
        counters, residual histories, kernel parameters — so that a
        rollback replays the loop identically (``body`` decisions are
        collective, so every rank stops on the same iteration).  Returns
        the number of body executions including re-executed iterations.
        """
        if max_iters < 1:
            raise ValidationError(f"max_iters must be >= 1, got {max_iters}")
        ckpt = self._take(0, capture)
        executions = 0
        it = 0
        while it < max_iters:
            crashed, crash, restart_cost = self._poll_crash()
            if crashed:
                it = self._recover(ckpt, crash, restart_cost, restore)
                continue
            done = bool(body(it))
            executions += 1
            it += 1
            if done:
                break
            if it % self.every == 0 and it < max_iters:
                ckpt = self._take(it, capture)
        return executions
