"""The pattern framework: the paper's primary contribution.

Public surface (mirrors the paper's Listing 2 flow):

.. code-block:: python

    from repro.core import RuntimeEnv, DeviceConfig

    def rank_program(ctx):
        env = RuntimeEnv(ctx, DeviceConfig(use_cpu=True, num_gpus=2))
        gr = env.get_GR()                 # generalized reductions
        ir = env.get_IR()                 # irregular reductions
        st = env.get_stencil()            # stencil computations
        ...
        env.finalize()

Each runtime accepts the paper's user-defined functions (emit/reduce, edge
compute/node reduce, stencil function) in *vectorized batch* form (the fast
path) or classic per-element form via the adapters in
:mod:`repro.core.api`.
"""

from repro.core.api import (
    GRKernel,
    IRKernel,
    StencilKernel,
    elementwise_emit,
    elementwise_edge_compute,
    elementwise_stencil,
    shifted,
    REDUCTION_OPS,
)
from repro.core.reduction_object import DenseReductionObject, HashReductionObject
from repro.core.partition import (
    block_partition,
    owner_of,
    classify_edges,
    arrange_nodes,
    NodeArrangement,
)
from repro.core.scheduler import ChunkScheduler, ScheduleReport
from repro.core.adaptive import AdaptivePartitioner
from repro.core.env import RuntimeEnv, DeviceConfig
from repro.core.generalized import GeneralizedReductionRuntime
from repro.core.irregular import IrregularReductionRuntime
from repro.core.stencil import StencilRuntime
from repro.core.stencil_reduce import ConvergenceResult, StencilReduceRuntime

__all__ = [
    "GRKernel",
    "IRKernel",
    "StencilKernel",
    "elementwise_emit",
    "elementwise_edge_compute",
    "elementwise_stencil",
    "shifted",
    "REDUCTION_OPS",
    "DenseReductionObject",
    "HashReductionObject",
    "block_partition",
    "owner_of",
    "classify_edges",
    "arrange_nodes",
    "NodeArrangement",
    "ChunkScheduler",
    "ScheduleReport",
    "AdaptivePartitioner",
    "RuntimeEnv",
    "DeviceConfig",
    "GeneralizedReductionRuntime",
    "IrregularReductionRuntime",
    "StencilRuntime",
    "StencilReduceRuntime",
    "ConvergenceResult",
]
