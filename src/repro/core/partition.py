"""Workload partitioning: reduction-space blocks and edge classification.

Implements the paper's §II-A partitioning scheme for irregular reductions:

1. Divide the nodes (the *reduction space*) into equal contiguous blocks,
   one per partition (process or device).
2. Group the edges: an edge whose endpoints fall in the same block is
   *local* (assigned exclusively); an edge crossing blocks is a *cross
   edge* and is assigned to **both** partitions — each side updates only
   its own endpoint, which removes races and the need for a combine step.

:func:`arrange_nodes` additionally builds the Fig. 3 memory layout: local
nodes stored contiguously in front, remote nodes grouped (contiguously) by
owning process behind them, plus a global-ID array for the data exchange
and the renumbering of edge endpoints into local slots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError


def block_partition(n: int, parts: int) -> np.ndarray:
    """Offsets of a balanced contiguous split of ``range(n)`` into ``parts``.

    Returns ``parts + 1`` offsets; partition ``p`` is
    ``[offsets[p], offsets[p+1])``.  The first ``n % parts`` partitions get
    one extra element.

    >>> block_partition(10, 3)
    array([ 0,  4,  7, 10])
    """
    if n < 0:
        raise ValidationError(f"n must be >= 0, got {n}")
    if parts <= 0:
        raise ValidationError(f"parts must be > 0, got {parts}")
    base, extra = divmod(n, parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


def partition_counts(n: int, parts: int) -> np.ndarray:
    """Sizes of the balanced split (``diff`` of :func:`block_partition`)."""
    return np.diff(block_partition(n, parts))


def owner_of(offsets: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Partition index owning each ID, given block offsets.

    >>> owner_of(np.array([0, 4, 7, 10]), np.array([0, 3, 4, 9]))
    array([0, 0, 1, 2])
    """
    ids = np.asarray(ids)
    if ids.size and (ids.min() < offsets[0] or ids.max() >= offsets[-1]):
        raise ValidationError("ids outside the partitioned range")
    return np.searchsorted(offsets, ids, side="right") - 1


def classify_edges(
    edges: np.ndarray, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """Masks of (local, cross) edges relative to node block ``[lo, hi)``.

    *Local*: both endpoints inside the block.  *Cross*: exactly one
    endpoint inside.  Edges touching the block not at all get neither mask
    (they belong to other partitions).
    """
    edges = np.asarray(edges)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValidationError(f"edges must be (m, 2), got {edges.shape}")
    in0 = (edges[:, 0] >= lo) & (edges[:, 0] < hi)
    in1 = (edges[:, 1] >= lo) & (edges[:, 1] < hi)
    local = in0 & in1
    cross = in0 ^ in1
    return local, cross


@dataclass
class NodeArrangement:
    """The Fig. 3 node layout for one process.

    Attributes:
        lo, hi: Global-ID range of the local node block.
        remote_ids: ``{owner_rank: sorted global IDs}`` of remote nodes this
            process reads (endpoints of its cross edges).
        remote_offsets: ``{owner_rank: slot offset}`` where that owner's
            remote block begins in the arranged array.
        n_slots: Total arranged slots = local count + all remote counts.
    """

    lo: int
    hi: int
    remote_ids: dict[int, np.ndarray]
    remote_offsets: dict[int, int]
    n_slots: int

    @property
    def n_local(self) -> int:
        return self.hi - self.lo

    def slot_of_global(self, global_ids: np.ndarray, n_global: int) -> np.ndarray:
        """Map global node IDs to arranged local slots (vectorized).

        Raises if any ID is neither local nor a known remote.
        """
        lookup = np.full(n_global, -1, dtype=np.int64)
        lookup[self.lo : self.hi] = np.arange(self.n_local)
        for owner, ids in self.remote_ids.items():
            base = self.remote_offsets[owner]
            lookup[ids] = base + np.arange(len(ids))
        slots = lookup[np.asarray(global_ids)]
        if slots.size and slots.min() < 0:
            raise ValidationError("edge references a node that is neither local nor remote")
        return slots


def arrange_nodes(
    edges: np.ndarray, offsets: np.ndarray, my_part: int
) -> tuple[NodeArrangement, np.ndarray, np.ndarray]:
    """Build this partition's edge set and node arrangement.

    Args:
        edges: Global ``(m, 2)`` indirection array (all edges).
        offsets: Node block offsets from :func:`block_partition`.
        my_part: This process's partition index.

    Returns:
        ``(arrangement, local_edges, cross_edges)`` where the edge arrays
        hold *global* endpoint IDs; renumber them to slots with
        :meth:`NodeArrangement.slot_of_global`.
    """
    nparts = len(offsets) - 1
    if not 0 <= my_part < nparts:
        raise ValidationError(f"my_part {my_part} out of range for {nparts} partitions")
    lo, hi = int(offsets[my_part]), int(offsets[my_part + 1])
    local_mask, cross_mask = classify_edges(edges, lo, hi)
    local_edges = np.asarray(edges)[local_mask]
    cross_edges = np.asarray(edges)[cross_mask]

    # Remote endpoints of cross edges, grouped by owner, each group sorted.
    remote_ids: dict[int, np.ndarray] = {}
    remote_offsets: dict[int, int] = {}
    n_local = hi - lo
    base = n_local
    if len(cross_edges):
        ends = cross_edges.reshape(-1)
        outside = ends[(ends < lo) | (ends >= hi)]
        uniq = np.unique(outside)
        owners = owner_of(offsets, uniq)
        for owner in np.unique(owners):
            ids = uniq[owners == owner]
            remote_ids[int(owner)] = ids
            remote_offsets[int(owner)] = base
            base += len(ids)

    arrangement = NodeArrangement(
        lo=lo,
        hi=hi,
        remote_ids=remote_ids,
        remote_offsets=remote_offsets,
        n_slots=base,
    )
    return arrangement, local_edges, cross_edges


def validate_range_tiling(ranges: list[tuple[int, int]], total: int) -> None:
    """Raise unless ``ranges`` exactly tile ``[0, total)``.

    The device split of the reduction space must neither drop nor
    double-cover a node: every node is owned by exactly one device, which
    is what lets device results be concatenated instead of combined.
    Rounding bugs in an adaptive split would silently corrupt results, so
    the runtime checks the tiling on every (re)partition.
    """
    if not ranges:
        raise ValidationError("device ranges must not be empty")
    prev = 0
    for lo, hi in ranges:
        if lo != prev or hi < lo:
            raise ValidationError(
                f"device ranges {ranges} do not tile [0, {total}): "
                f"range ({lo}, {hi}) does not start at {prev}"
            )
        prev = hi
    if prev != total:
        raise ValidationError(
            f"device ranges {ranges} cover [0, {prev}) but the reduction "
            f"space is [0, {total})"
        )


def split_edges_by_node_ranges(
    edges_slots: np.ndarray, ranges: list[tuple[int, int]]
) -> list[np.ndarray]:
    """Assign edges (in local-slot space) to device node-range partitions.

    Device-level application of the same reduction-space rule: an edge is
    given to every device whose range contains at least one endpoint (cross
    edges are duplicated); each device's reduction object then filters
    updates to its own range.  Returns per-device index arrays into
    ``edges_slots``.

    Contiguous ascending ranges (the adaptive partitioner always produces
    these) take an ``O(E log R)`` path: one ``searchsorted`` per endpoint
    column finds each endpoint's owning device, then each device selects
    its edges with a single equality test.  Arbitrary (overlapping or
    gapped) ranges fall back to per-range interval masks.
    """
    edges_slots = np.asarray(edges_slots)
    if not ranges:
        return []
    contiguous = all(hi >= lo for lo, hi in ranges) and all(
        ranges[i][1] == ranges[i + 1][0] for i in range(len(ranges) - 1)
    )
    if contiguous:
        bounds = np.array([lo for lo, _ in ranges] + [ranges[-1][1]], dtype=np.int64)
        e0, e1 = edges_slots[:, 0], edges_slots[:, 1]
        o0 = np.searchsorted(bounds, e0, side="right") - 1
        o1 = np.searchsorted(bounds, e1, side="right") - 1
        # Endpoints outside [lo0, hiN) — remote-node slots — own no device.
        o0 = np.where((e0 >= bounds[0]) & (e0 < bounds[-1]), o0, -1)
        o1 = np.where((e1 >= bounds[0]) & (e1 < bounds[-1]), o1, -1)
        return [np.flatnonzero((o0 == d) | (o1 == d)) for d in range(len(ranges))]
    out = []
    for lo, hi in ranges:
        in0 = (edges_slots[:, 0] >= lo) & (edges_slots[:, 0] < hi)
        in1 = (edges_slots[:, 1] >= lo) & (edges_slots[:, 1] < hi)
        out.append(np.nonzero(in0 | in1)[0])
    return out
