"""User-facing kernel specifications and adapters (paper Table I).

The paper's API takes per-element C function pointers; in Python the fast
path is *batched* user functions operating on NumPy slices.  Both styles
are supported:

- **Batched (recommended)**: ``emit_batch(obj, data, start, param)``
  processes ``data`` (a chunk of input units) in one vectorized call and
  inserts key/value arrays into the reduction object with
  ``obj.insert_many``.
- **Per-element (paper-faithful)**: write ``emit(obj, data, index, param)``
  exactly as in Table I and wrap it with :func:`elementwise_emit`; the
  adapter loops (slow, but semantically identical — tests use it to verify
  the batch kernels).

Reduction operators must be commutative and associative (paper §II-A);
:data:`REDUCTION_OPS` maps the supported names to their NumPy ufunc and
identity element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.device.work import WorkModel
from repro.util.errors import ValidationError

# name -> (ufunc used for combining, identity element)
REDUCTION_OPS: dict[str, tuple[np.ufunc, float]] = {
    "sum": (np.add, 0.0),
    "prod": (np.multiply, 1.0),
    "min": (np.minimum, np.inf),
    "max": (np.maximum, -np.inf),
}


def resolve_op(op: str) -> tuple[np.ufunc, float]:
    """Look up a reduction op name; raises with the known names listed."""
    try:
        return REDUCTION_OPS[op]
    except KeyError:
        raise ValidationError(
            f"unknown reduction op {op!r}; supported: {sorted(REDUCTION_OPS)}"
        ) from None


# ---------------------------------------------------------------------------
# Kernel specifications
# ---------------------------------------------------------------------------
EmitBatchFn = Callable[[Any, np.ndarray, int, Any], None]
EdgeComputeBatchFn = Callable[[Any, np.ndarray, Any, np.ndarray, Any], None]
StencilApplyFn = Callable[[np.ndarray, np.ndarray, tuple, Any], None]


@dataclass(frozen=True)
class GRKernel:
    """A generalized-reduction kernel (paper: ``gr_emit_fp``/``gr_reduce_fp``).

    Attributes:
        emit_batch: ``f(obj, data, start_index, parameter)`` — processes a
            chunk of input units, inserting key/value pairs into ``obj``.
        reduce_op: Name of the combining operation applied per key.
        num_keys: Size of the (dense) key space.
        value_width: Values per key (e.g. Kmeans: 3 coordinate sums + a
            count = 4).
        work: Cost model for one input unit.
        dtype: Value dtype of the reduction object.
    """

    emit_batch: EmitBatchFn
    reduce_op: str
    num_keys: int
    value_width: int
    work: WorkModel
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))

    def __post_init__(self) -> None:
        if self.num_keys <= 0 or self.value_width <= 0:
            raise ValidationError("num_keys and value_width must be > 0")
        resolve_op(self.reduce_op)


@dataclass(frozen=True)
class IRKernel:
    """An irregular-reduction kernel (``ir_edge_compute_fp``/``ir_node_reduce_fp``).

    Attributes:
        edge_compute_batch: ``f(obj, edges, edge_data, node_view, parameter)``
            — ``edges`` is an ``(m, 2)`` array of *local slot* indices into
            ``node_view`` (the Fig. 3 arrangement: local nodes first, then
            grouped remote nodes); the function inserts per-node updates
            keyed by slot index.  Inserts for slots outside the reduction
            object's range (remote nodes, or nodes owned by a different
            device partition) are filtered automatically — this is how the
            paper's "only the node(s) belonging to the current partition is
            updated" rule is enforced.
        reduce_op: Combining operation for node updates.
        value_width: Components per node update (e.g. 3 force components).
        work: Cost model for processing one *edge*.
    """

    edge_compute_batch: EdgeComputeBatchFn
    reduce_op: str
    value_width: int
    work: WorkModel
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))

    def __post_init__(self) -> None:
        if self.value_width <= 0:
            raise ValidationError("value_width must be > 0")
        resolve_op(self.reduce_op)


@dataclass(frozen=True)
class StencilKernel:
    """A stencil kernel (``stencil_fp``).

    Attributes:
        apply: ``f(src, dst, region, parameter)`` — computes
            ``dst[region]`` from the neighbourhood of ``src`` around
            ``region``.  ``src``/``dst`` are halo-padded local arrays and
            ``region`` is a tuple of slices (in padded coordinates); use
            :func:`shifted` to express neighbour accesses, which plays the
            role of the paper's ``GET_FLOAT3``-style get functions.
        halo: Stencil radius (1 for 7-point/9-point kernels).
        work: Cost model for one grid element.
    """

    apply: StencilApplyFn
    halo: int
    work: WorkModel
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))

    def __post_init__(self) -> None:
        if self.halo < 1:
            raise ValidationError(f"halo must be >= 1, got {self.halo}")


# ---------------------------------------------------------------------------
# Get-function equivalent
# ---------------------------------------------------------------------------
def shifted(arr: np.ndarray, region: tuple[slice, ...], offset: tuple[int, ...]) -> np.ndarray:
    """View of ``arr`` over ``region`` displaced by ``offset``.

    The vectorized analogue of the paper's ``GET_FLOAT3(buf, x+dx, y+dy)``
    macros: a 7-point Heat3D kernel reads
    ``shifted(src, region, (1, 0, 0))`` for its ``x+1`` neighbour.

    >>> a = np.arange(5.0)
    >>> shifted(a, (slice(1, 4),), (1,))
    array([2., 3., 4.])
    """
    if len(region) != arr.ndim or len(offset) != arr.ndim:
        raise ValidationError(
            f"region/offset rank must match array rank {arr.ndim}, "
            f"got {len(region)}/{len(offset)}"
        )
    out = []
    for axis, (sl, off) in enumerate(zip(region, offset)):
        start, stop = sl.start + off, sl.stop + off
        if start < 0 or stop > arr.shape[axis]:
            raise ValidationError(
                f"shifted access out of bounds on axis {axis}: [{start}:{stop}] "
                f"of extent {arr.shape[axis]} (is the halo wide enough?)"
            )
        out.append(slice(start, stop))
    return arr[tuple(out)]


# ---------------------------------------------------------------------------
# Batched reduction dispatch
# ---------------------------------------------------------------------------
def emit_keys_batch(obj: Any, keys: np.ndarray, values: np.ndarray) -> None:
    """Insert aligned ``keys``/``values`` arrays into a reduction object.

    The vectorized dispatch path for emit kernels: one call replaces
    ``len(keys)`` per-element ``obj.insert(k, v)`` calls.  ``values`` may
    be ``(n,)`` (``value_width == 1``) or ``(n, value_width)``.  Duplicate
    keys combine in input order (``np.bincount``/``np.ufunc.at``-style
    unbuffered scatter under the hood), so inserting a batch into a fresh
    object is bit-identical to the per-element loop — the compatibility
    guarantee the :func:`elementwise_emit` adapter is tested against.
    Out-of-range keys are dropped by the object's key-range filter, which
    is how the paper's ownership rule stays enforced on the batched path.
    """
    obj.insert_many(keys, values)


# ---------------------------------------------------------------------------
# Per-element adapters (paper-faithful signatures)
# ---------------------------------------------------------------------------
def elementwise_emit(fn: Callable[[Any, np.ndarray, int, Any], None]) -> EmitBatchFn:
    """Wrap a paper-style per-unit emit function into a batch function.

    ``fn(obj, data, index, parameter)`` is called once per input unit with
    the *global* index of the unit, exactly matching ``gr_emit_fp``.
    """

    def emit_batch(obj: Any, data: np.ndarray, start: int, parameter: Any) -> None:
        for i in range(len(data)):
            fn(obj, data[i], start + i, parameter)

    return emit_batch


def elementwise_edge_compute(
    fn: Callable[[Any, np.ndarray, Any, np.ndarray, Any], None],
) -> EdgeComputeBatchFn:
    """Wrap a paper-style per-edge compute function (``ir_edge_compute_fp``).

    ``fn(obj, edge, edge_data_i, node_view, parameter)`` is called once per
    edge; ``edge`` is the 2-vector of endpoint slots.
    """

    def edge_compute_batch(
        obj: Any, edges: np.ndarray, edge_data: Any, node_view: np.ndarray, parameter: Any
    ) -> None:
        for i in range(len(edges)):
            data_i = None if edge_data is None else edge_data[i]
            fn(obj, edges[i], data_i, node_view, parameter)

    return edge_compute_batch


def elementwise_stencil(
    fn: Callable[[np.ndarray, np.ndarray, tuple[int, ...], Any], None],
) -> StencilApplyFn:
    """Wrap a paper-style single-element stencil function (``stencil_fp``).

    ``fn(src, dst, offset, parameter)`` computes the output element at
    (padded) coordinate ``offset``.
    """

    def apply(src: np.ndarray, dst: np.ndarray, region: tuple, parameter: Any) -> None:
        import itertools

        for coord in itertools.product(*(range(sl.start, sl.stop) for sl in region)):
            fn(src, dst, coord, parameter)

    return apply
