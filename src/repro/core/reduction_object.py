"""Reduction objects: the framework's accumulation data structure.

The paper's reduction object is "a hash table with support for parallel
key-value insertion".  Two implementations:

- :class:`DenseReductionObject` — the fast path when the key space is a
  dense integer range (cluster IDs, node IDs).  Backed by one NumPy array;
  ``insert_many`` uses unbuffered ``ufunc.at`` scatter so duplicate keys in
  one batch combine correctly (the defining property of a reduction).
- :class:`HashReductionObject` — a dict-backed variant for sparse or
  unknown key spaces; same interface, used for API completeness and as a
  semantic oracle in tests.

Both support a *key range* filter ``[lo, hi)``: inserts outside the range
are silently dropped.  That filter is how two of the paper's rules are
enforced mechanically: "when an edge is being processed, only the node(s)
belonging to the current partition is updated" (inter-process), and the
same rule again between devices within a process.

Insert counting: every object tracks how many inserts were *attempted*
(``n_inserts``), which the cost model uses to charge atomic operations.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.api import resolve_op
from repro.util.errors import ValidationError


class DenseReductionObject:
    """Reduction object over integer keys in ``[key_lo, key_hi)``.

    Values are ``(num_keys, value_width)`` and combine with the named op.
    """

    def __init__(
        self,
        num_keys: int,
        value_width: int = 1,
        op: str = "sum",
        dtype: np.dtype | type = np.float64,
        key_lo: int = 0,
    ) -> None:
        if num_keys <= 0 or value_width <= 0:
            raise ValidationError("num_keys and value_width must be > 0")
        self.op = op
        self._ufunc, self._identity = resolve_op(op)
        self.key_lo = int(key_lo)
        self.key_hi = int(key_lo) + int(num_keys)
        self.value_width = int(value_width)
        self.dtype = np.dtype(dtype)
        self.values = np.full((num_keys, value_width), self._identity, dtype=self.dtype)
        # Sum over float64 can use np.bincount instead of ufunc.at: both
        # accumulate in input order, so results are identical, but bincount
        # is ~2x faster on the scatter-heavy emit paths.
        self._fast_sum = self._ufunc is np.add and self.dtype == np.float64
        self.n_inserts = 0
        self.n_dropped = 0

    @property
    def num_keys(self) -> int:
        return self.key_hi - self.key_lo

    def insert(self, key: int, value) -> None:
        """Insert one key/value pair (paper's ``obj->insert(&key, &val)``)."""
        self.n_inserts += 1
        if not self.key_lo <= key < self.key_hi:
            self.n_dropped += 1
            return
        self.values[key - self.key_lo] = self._ufunc(
            self.values[key - self.key_lo], np.asarray(value, dtype=self.dtype)
        )

    def insert_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Vectorized insert of ``len(keys)`` pairs.

        Duplicate keys within the batch combine correctly (``ufunc.at`` is
        unbuffered scatter).  ``values`` may be ``(n,)`` when
        ``value_width == 1`` or ``(n, value_width)``.
        """
        keys = np.asarray(keys)
        values = np.asarray(values, dtype=self.dtype)
        if values.ndim == 1:
            values = values[:, None]
        if values.shape != (len(keys), self.value_width):
            raise ValidationError(
                f"values shape {values.shape} does not match "
                f"({len(keys)}, {self.value_width})"
            )
        self.n_inserts += len(keys)
        mask = (keys >= self.key_lo) & (keys < self.key_hi)
        if not mask.all():
            self.n_dropped += int((~mask).sum())
            keys = keys[mask]
            values = values[mask]
        if self._fast_sum and len(keys):
            idx = keys - self.key_lo
            n = self.num_keys
            for j in range(self.value_width):
                self.values[:, j] += np.bincount(idx, weights=values[:, j], minlength=n)
        else:
            self._ufunc.at(self.values, keys - self.key_lo, values)

    def merge(self, other: "DenseReductionObject") -> None:
        """Combine another object elementwise (same keys, same op)."""
        if not isinstance(other, DenseReductionObject):
            raise ValidationError("can only merge DenseReductionObject instances")
        if (other.key_lo, other.key_hi, other.value_width, other.op) != (
            self.key_lo,
            self.key_hi,
            self.value_width,
            self.op,
        ):
            raise ValidationError(
                "merge requires identical key range, value width, and op "
                f"(got [{other.key_lo},{other.key_hi})x{other.value_width}/{other.op} vs "
                f"[{self.key_lo},{self.key_hi})x{self.value_width}/{self.op})"
            )
        self.values = self._ufunc(self.values, other.values)

    def as_array(self) -> np.ndarray:
        """The ``(num_keys, value_width)`` result array (a live view)."""
        return self.values

    @property
    def nbytes(self) -> int:
        return self.values.nbytes

    def spawn_empty(self) -> "DenseReductionObject":
        """A fresh object with the same configuration (for per-device copies)."""
        return DenseReductionObject(
            self.num_keys, self.value_width, self.op, self.dtype, key_lo=self.key_lo
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DenseReductionObject(keys=[{self.key_lo},{self.key_hi}), "
            f"width={self.value_width}, op={self.op!r})"
        )


class HashReductionObject:
    """Dict-backed reduction object for sparse/hashable key spaces.

    Keys may be any hashable value; values are scalars or small arrays.
    Slower than :class:`DenseReductionObject` but places no constraint on
    the key universe — the literal analogue of the paper's hash table.
    """

    def __init__(self, op: str = "sum", value_width: int = 1, dtype=np.float64) -> None:
        if value_width <= 0:
            raise ValidationError("value_width must be > 0")
        self.op = op
        self._ufunc, self._identity = resolve_op(op)
        self.value_width = int(value_width)
        self.dtype = np.dtype(dtype)
        self._table: dict = {}
        self.n_inserts = 0

    def insert(self, key, value) -> None:
        self.n_inserts += 1
        value = np.asarray(value, dtype=self.dtype).reshape(self.value_width)
        existing = self._table.get(key)
        if existing is None:
            self._table[key] = value.copy()
        else:
            self._table[key] = self._ufunc(existing, value)

    def insert_many(self, keys: Iterable, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self.dtype)
        if values.ndim == 1:
            values = values[:, None]
        for key, val in zip(keys, values):
            self.insert(key, val)

    def merge(self, other: "HashReductionObject") -> None:
        if other.op != self.op or other.value_width != self.value_width:
            raise ValidationError("merge requires identical op and value width")
        for key, val in other._table.items():
            existing = self._table.get(key)
            if existing is None:
                self._table[key] = val.copy()
            else:
                self._table[key] = self._ufunc(existing, val)

    def get(self, key, default=None):
        """Value for ``key`` or ``default``."""
        val = self._table.get(key)
        return default if val is None else val

    def keys(self):
        return self._table.keys()

    def items(self):
        return self._table.items()

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key) -> bool:
        return key in self._table
