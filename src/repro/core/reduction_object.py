"""Reduction objects: the framework's accumulation data structure.

The paper's reduction object is "a hash table with support for parallel
key-value insertion".  Two implementations:

- :class:`DenseReductionObject` — the fast path when the key space is a
  dense integer range (cluster IDs, node IDs).  Backed by one NumPy array;
  ``insert_many`` uses unbuffered scatter (``np.bincount`` for float64
  sums, ``ufunc.at`` otherwise) so duplicate keys in one batch combine
  correctly (the defining property of a reduction).
- :class:`HashReductionObject` — a dict-backed variant for sparse or
  unknown key spaces; same interface, used for API completeness and as a
  semantic oracle in tests.

Both support a *key range* filter ``[lo, hi)``: inserts outside the range
are silently dropped.  That filter is how two of the paper's rules are
enforced mechanically: "when an edge is being processed, only the node(s)
belonging to the current partition is updated" (inter-process), and the
same rule again between devices within a process.

Iterative patterns that scatter through the *same* indirection array every
time step (the irregular-reduction runtime) can precompute the scatter
layout once with :meth:`DenseReductionObject.plan_scatter` — the CPU
analogue of the paper's §III-E reduction localization: for float64 sums a
precomputed flattened bin index turns the per-step scatter into a single
``np.bincount``; for min/max a CSR-style segmented layout (stable sort by
owning key + segment boundaries) applies with ``ufunc.reduceat``.
``insert_many`` recognizes planned key arrays automatically, so user
kernels need no changes to benefit.

Insert counting: every object tracks how many inserts were *attempted*
(``n_inserts``), which the cost model uses to charge atomic operations.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.api import resolve_op
from repro.util.errors import ValidationError


class ScatterPlan:
    """Precomputed scatter layout for one fixed key array.

    Holds everything :meth:`DenseReductionObject.insert_many` needs to
    apply a batch of values against ``keys`` without touching the keys
    again:

    - For float64 **sums**: a precomputed flattened bin-index array
      (``key * width + column``) so the whole scatter is one
      ``np.bincount`` over the raw values — no filtering or sorting at
      apply time.  When most keys are in range, out-of-range keys are
      redirected to a trailing trash bin; when the in-range subset is
      small (a device object fed the full edge array), the plan instead
      precomputes a take-index so the apply gathers just its own values
      first — total scatter work then stays proportional to the in-range
      entries, not the batch.  Bins accumulate in input order either way,
      exactly like the unplanned per-column ``np.bincount``, so results
      stay bit-identical.
    - For **min/max**: a CSR-style segmented layout (stable sort order +
      segment starts + the unique owning index per segment) applied with
      ``ufunc.reduceat`` — order-insensitive ops make the re-grouping
      exact.
    - For anything else: the in-range filter and shifted indices for the
      generic ``ufunc.at`` path.

    A plan keeps a reference to its key array: the array must stay alive
    (and unmodified) for the plan's address-based identity to be valid.
    """

    __slots__ = (
        "keys",
        "n_keys",
        "valid",
        "all_valid",
        "n_dropped",
        "idx",
        "take_idx",
        "take_buf",
        "flat_idx",
        "n_bins",
        "order",
        "seg_starts",
        "uniq_idx",
    )

    def __init__(
        self,
        keys: np.ndarray,
        key_lo: int,
        key_hi: int,
        value_width: int = 1,
        fast_sum: bool = False,
    ) -> None:
        self.keys = keys
        self.n_keys = len(keys)
        n_range = key_hi - key_lo
        valid = (keys >= key_lo) & (keys < key_hi)
        self.all_valid = bool(valid.all())
        self.valid = None if self.all_valid else valid
        self.n_dropped = 0 if self.all_valid else int(self.n_keys - valid.sum())
        self.take_idx = None
        self.take_buf = None
        if fast_sum:
            n_valid = self.n_keys - self.n_dropped
            if not self.all_valid and 2 * n_valid < self.n_keys:
                # Sparse ownership: gather just the in-range values (pooled
                # buffer), then bincount the filtered keys directly.
                self.take_idx = np.flatnonzero(valid).astype(np.intp)
                self.take_buf = np.empty((n_valid, value_width))
                owner = keys[self.take_idx] - key_lo
                self.n_bins = n_range * value_width
            else:
                # Dense ownership: one bincount over the whole batch, with
                # a trailing trash bin absorbing out-of-range keys.
                owner = np.where(valid, keys - key_lo, n_range)
                self.n_bins = (n_range + 1) * value_width
            if value_width == 1:
                flat = owner
            else:
                flat = (owner[:, None] * value_width + np.arange(value_width)).ravel()
            self.flat_idx = flat.astype(np.intp, copy=False)
            self.idx = None
            self.order = None
            self.seg_starts = None
            self.uniq_idx = None
            return
        self.flat_idx = None
        self.n_bins = 0
        idx = (keys if self.all_valid else keys[valid]) - key_lo
        self.idx = idx.astype(np.intp, copy=False)
        if len(self.idx) and np.any(np.diff(self.idx) < 0):
            self.order = np.argsort(self.idx, kind="stable")
            sorted_idx = self.idx[self.order]
        else:
            self.order = None  # already segment-sorted: skip the gather
            sorted_idx = self.idx
        if len(sorted_idx):
            self.seg_starts = np.concatenate(
                [[0], np.flatnonzero(np.diff(sorted_idx)) + 1]
            )
            self.uniq_idx = sorted_idx[self.seg_starts]
        else:
            self.seg_starts = np.zeros(0, dtype=np.intp)
            self.uniq_idx = np.zeros(0, dtype=np.intp)


def _keys_token(keys: np.ndarray) -> tuple:
    """Identity of a key array's memory region (pointer, shape, strides).

    Two live arrays share a token only if they view the same data — the
    exact case the plan cache wants: ``edges[:, 0]`` rebuilt every step
    from the same cached edge array hits the plan registered for it.
    """
    return (keys.__array_interface__["data"][0], keys.shape, keys.strides)


class DenseReductionObject:
    """Reduction object over integer keys in ``[key_lo, key_hi)``.

    Values are ``(num_keys, value_width)`` and combine with the named op.
    """

    def __init__(
        self,
        num_keys: int,
        value_width: int = 1,
        op: str = "sum",
        dtype: np.dtype | type = np.float64,
        key_lo: int = 0,
        storage: np.ndarray | None = None,
    ) -> None:
        """
        Args:
            storage: Optional external value buffer of shape
                ``(num_keys, value_width)`` to accumulate into (filled
                with the op's identity here).  Lets several objects tile
                segments of one shared array — the irregular runtime backs
                its per-device objects with slices of the combined result
                so one full-range scatter updates all of them at once.
        """
        if num_keys <= 0 or value_width <= 0:
            raise ValidationError("num_keys and value_width must be > 0")
        self.op = op
        self._ufunc, self._identity = resolve_op(op)
        self.key_lo = int(key_lo)
        self.key_hi = int(key_lo) + int(num_keys)
        self.value_width = int(value_width)
        self.dtype = np.dtype(dtype)
        if storage is None:
            self.values = np.full((num_keys, value_width), self._identity, dtype=self.dtype)
        else:
            if storage.shape != (num_keys, value_width) or storage.dtype != self.dtype:
                raise ValidationError(
                    f"storage must be {(num_keys, value_width)} of {self.dtype}, "
                    f"got {storage.shape} of {storage.dtype}"
                )
            storage[...] = self._identity
            self.values = storage
        # Sum over float64 can use np.bincount instead of ufunc.at: both
        # accumulate in input order, so results are identical, but bincount
        # is ~2x faster on the scatter-heavy emit paths.
        self._fast_sum = self._ufunc is np.add and self.dtype == np.float64
        self._cols = np.arange(self.value_width)
        self._plans: dict[tuple, ScatterPlan] = {}
        self.n_inserts = 0
        self.n_dropped = 0

    @property
    def num_keys(self) -> int:
        return self.key_hi - self.key_lo

    def reset(self) -> None:
        """Refill with the identity element, keeping buffers and plans.

        Pooled objects call this between time steps instead of being
        reallocated; registered scatter plans survive because they depend
        only on the key layout, not on accumulated values.
        """
        self.values.fill(self._identity)
        self.n_inserts = 0
        self.n_dropped = 0

    def plan_scatter(self, keys: np.ndarray) -> ScatterPlan:
        """Precompute and register the scatter layout for ``keys``.

        Subsequent ``insert_many(keys_view, values)`` calls whose key
        argument views the same memory (same pointer/shape/strides — e.g.
        a column view rebuilt from the same cached edge array) skip
        filtering and indexing entirely and, for float64 sums, scatter via
        the segmented ``np.add.reduceat`` fast path.  The caller must keep
        ``keys`` unmodified while the plan is registered (the plan itself
        holds a reference, so lifetime is guaranteed).
        """
        keys = np.asarray(keys)
        plan = ScatterPlan(
            keys, self.key_lo, self.key_hi, self.value_width, self._fast_sum
        )
        self._plans[_keys_token(keys)] = plan
        return plan

    def insert(self, key: int, value) -> None:
        """Insert one key/value pair (paper's ``obj->insert(&key, &val)``)."""
        self.n_inserts += 1
        if not self.key_lo <= key < self.key_hi:
            self.n_dropped += 1
            return
        self.values[key - self.key_lo] = self._ufunc(
            self.values[key - self.key_lo], np.asarray(value, dtype=self.dtype)
        )

    def insert_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Vectorized insert of ``len(keys)`` pairs.

        Duplicate keys within the batch combine correctly and in input
        order (unbuffered scatter), so inserting a batch into a fresh
        object is bit-identical to the per-element loop.  ``values`` may
        be ``(n,)`` when ``value_width == 1`` or ``(n, value_width)``.
        """
        keys = np.asarray(keys)
        values = np.asarray(values, dtype=self.dtype)
        if values.ndim == 1:
            values = values[:, None]
        if values.shape != (len(keys), self.value_width):
            raise ValidationError(
                f"values shape {values.shape} does not match "
                f"({len(keys)}, {self.value_width})"
            )
        self.n_inserts += len(keys)
        if self._plans:
            plan = self._plans.get(_keys_token(keys))
            if plan is not None:
                self._insert_planned(plan, values)
                return
        mask = (keys >= self.key_lo) & (keys < self.key_hi)
        if not mask.all():
            self.n_dropped += int((~mask).sum())
            keys = keys[mask]
            values = values[mask]
        if not len(keys):
            return
        if self._fast_sum:
            self._scatter_sum(keys - self.key_lo, values)
        else:
            self._ufunc.at(self.values, keys - self.key_lo, values)

    def _scatter_sum(self, idx: np.ndarray, values: np.ndarray) -> None:
        """Input-order bincount scatter-add; one pass for any width.

        ``value_width > 1`` flattens to ``idx * width + column`` bins so a
        single ``np.bincount`` covers all columns (each flat bin still
        receives its contributions in input order, so the result is
        bit-identical to the per-column loop it replaces).
        """
        w = self.value_width
        if w == 1:
            self.values[:, 0] += np.bincount(
                idx, weights=values[:, 0], minlength=self.num_keys
            )
        else:
            flat = (idx[:, None] * w + self._cols).ravel()
            sums = np.bincount(flat, weights=values.ravel(), minlength=self.num_keys * w)
            self.values += sums.reshape(self.num_keys, w)

    def _insert_planned(self, plan: ScatterPlan, values: np.ndarray) -> None:
        """Apply a batch through a precomputed scatter plan."""
        self.n_dropped += plan.n_dropped
        if self._fast_sum:
            if plan.n_keys == 0:
                return
            if plan.take_idx is not None:
                if not len(plan.take_idx):
                    return
                values = np.take(values, plan.take_idx, axis=0, out=plan.take_buf)
            sums = np.bincount(
                plan.flat_idx, weights=values.ravel(), minlength=plan.n_bins
            )
            self.values += sums.reshape(-1, self.value_width)[: self.num_keys]
            return
        if not plan.all_valid:
            values = values[plan.valid]
        if not len(values):
            return
        if self._ufunc is np.minimum or self._ufunc is np.maximum:
            sv = values if plan.order is None else values[plan.order]
            segs = self._ufunc.reduceat(sv, plan.seg_starts, axis=0)
            self.values[plan.uniq_idx] = self._ufunc(self.values[plan.uniq_idx], segs)
        else:
            self._ufunc.at(self.values, plan.idx, values)

    def merge(self, other: "DenseReductionObject") -> None:
        """Combine another object elementwise (same keys, same op)."""
        if not isinstance(other, DenseReductionObject):
            raise ValidationError("can only merge DenseReductionObject instances")
        if (other.key_lo, other.key_hi, other.value_width, other.op) != (
            self.key_lo,
            self.key_hi,
            self.value_width,
            self.op,
        ):
            raise ValidationError(
                "merge requires identical key range, value width, and op "
                f"(got [{other.key_lo},{other.key_hi})x{other.value_width}/{other.op} vs "
                f"[{self.key_lo},{self.key_hi})x{self.value_width}/{self.op})"
            )
        self.values = self._ufunc(self.values, other.values)

    def as_array(self) -> np.ndarray:
        """The ``(num_keys, value_width)`` result array (a live view)."""
        return self.values

    @property
    def nbytes(self) -> int:
        return self.values.nbytes

    def spawn_empty(self) -> "DenseReductionObject":
        """A fresh object with the same configuration (for per-device copies)."""
        return DenseReductionObject(
            self.num_keys, self.value_width, self.op, self.dtype, key_lo=self.key_lo
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DenseReductionObject(keys=[{self.key_lo},{self.key_hi}), "
            f"width={self.value_width}, op={self.op!r})"
        )


class HashReductionObject:
    """Dict-backed reduction object for sparse/hashable key spaces.

    Keys may be any hashable value; values are scalars or small arrays.
    Slower than :class:`DenseReductionObject` but places no constraint on
    the key universe — the literal analogue of the paper's hash table.
    """

    def __init__(self, op: str = "sum", value_width: int = 1, dtype=np.float64) -> None:
        if value_width <= 0:
            raise ValidationError("value_width must be > 0")
        self.op = op
        self._ufunc, self._identity = resolve_op(op)
        self.value_width = int(value_width)
        self.dtype = np.dtype(dtype)
        self._table: dict = {}
        self.n_inserts = 0

    def insert(self, key, value) -> None:
        self.n_inserts += 1
        value = np.asarray(value, dtype=self.dtype).reshape(self.value_width)
        existing = self._table.get(key)
        if existing is None:
            self._table[key] = value.copy()
        else:
            self._table[key] = self._ufunc(existing, value)

    def insert_many(self, keys: Iterable, values: np.ndarray) -> None:
        """Vectorized insert: group duplicate keys, then one fold per key.

        Keys that form a sortable NumPy array are grouped with
        ``np.unique(..., return_inverse=True)`` and combined per group
        through the dense scatter machinery, leaving one dict update per
        *unique* key instead of one per pair.  Within a group, values
        combine in input order; a pre-existing table entry is then folded
        once with the group total (for floating sums that reassociates the
        accumulation — equal to within rounding, exact for min/max).
        Object-dtype keys (tuples, mixed types) fall back to the
        per-element loop.
        """
        values = np.asarray(values, dtype=self.dtype)
        if values.ndim == 1:
            values = values[:, None]
        try:
            keys_arr = np.asarray(keys)
            fallback = (
                keys_arr.dtype == object
                or keys_arr.ndim != 1
                or values.shape != (len(keys_arr), self.value_width)
            )
        except (ValueError, TypeError):  # ragged / mixed-type key sequences
            fallback = True
        if fallback:
            for key, val in zip(keys, values):
                self.insert(key, val)
            return
        self.n_inserts += len(keys_arr)
        if not len(keys_arr):
            return
        uniq, inverse = np.unique(keys_arr, return_inverse=True)
        grouped = np.full((len(uniq), self.value_width), self._identity, dtype=self.dtype)
        self._ufunc.at(grouped, inverse, values)
        table = self._table
        for key, val in zip(uniq.tolist(), grouped):
            existing = table.get(key)
            table[key] = val.copy() if existing is None else self._ufunc(existing, val)

    def merge(self, other: "HashReductionObject") -> None:
        if other.op != self.op or other.value_width != self.value_width:
            raise ValidationError("merge requires identical op and value width")
        for key, val in other._table.items():
            existing = self._table.get(key)
            if existing is None:
                self._table[key] = val.copy()
            else:
                self._table[key] = self._ufunc(existing, val)

    def get(self, key, default=None):
        """Value for ``key`` or ``default``."""
        val = self._table.get(key)
        return default if val is None else val

    def keys(self):
        return self._table.keys()

    def items(self):
        return self._table.items()

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key) -> bool:
        return key in self._table
