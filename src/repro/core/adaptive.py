"""Adaptive device-speed partitioning (paper §III-D).

Irregular reductions and stencils run many time steps over data resident on
each device, so dynamic chunk scheduling would force repeated reloads.
Instead the paper partitions *statically but adaptively*: the first time
step splits the reduction space evenly, the observed per-device speeds
``S_i`` are profiled, and from the second step each device receives
``N * S_i / sum(S_k)`` of the space.

:class:`AdaptivePartitioner` is that mechanism, decoupled from any pattern:
``split`` produces the current allocation, ``observe`` feeds back measured
(simulated) times.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import SchedulingError, ValidationError


class AdaptivePartitioner:
    """Even-first, speed-proportional-after splitter."""

    def __init__(self, n_devices: int) -> None:
        if n_devices <= 0:
            raise ValidationError(f"n_devices must be > 0, got {n_devices}")
        self.n_devices = n_devices
        self._speeds: np.ndarray | None = None
        self._split_cache: tuple[int, np.ndarray] | None = None

    @property
    def profiled(self) -> bool:
        """Whether a profile has been observed (i.e. split is proportional)."""
        return self._speeds is not None

    @property
    def speeds(self) -> np.ndarray | None:
        """Observed speeds (elements/second), or None before profiling."""
        return None if self._speeds is None else self._speeds.copy()

    def split(self, total: int) -> np.ndarray:
        """Per-device element counts summing exactly to ``total``.

        Even before profiling; proportional to observed speeds after.
        Rounding uses largest remainders so the counts always sum to
        ``total`` and no device is starved unless its speed share rounds
        to zero work.
        """
        if total < 0:
            raise ValidationError(f"total must be >= 0, got {total}")
        # Long-running patterns split the same total every time step, and
        # the answer only changes when a new profile is observed — memoize
        # (callers get a copy, so they can't corrupt the cache).
        if self._split_cache is not None and self._split_cache[0] == total:
            return self._split_cache[1].copy()
        if self._speeds is None:
            shares = np.full(self.n_devices, 1.0 / self.n_devices)
        else:
            shares = self._speeds / self._speeds.sum()
        exact = shares * total
        counts = np.floor(exact).astype(np.int64)
        remainder = int(total - counts.sum())
        if remainder > 0:
            order = np.argsort(-(exact - counts))
            counts[order[:remainder]] += 1
        self._split_cache = (total, counts)
        return counts.copy()

    def state_dict(self) -> dict:
        """Checkpointable copy of the profile (speeds + memoized split).

        A crash-restarted rank that rebuilds its runtime gets a *fresh*
        partitioner; without reloading this state it would re-profile from
        an even split while the survivors keep proportional splits, and
        every post-recovery device charge would diverge from an
        uninterrupted run.
        """
        return {
            "speeds": None if self._speeds is None else self._speeds.copy(),
            "split_cache": None
            if self._split_cache is None
            else (self._split_cache[0], self._split_cache[1].copy()),
        }

    def load_state(self, state: dict) -> None:
        """Reinstate a :meth:`state_dict` profile."""
        speeds = state["speeds"]
        cache = state["split_cache"]
        self._speeds = None if speeds is None else np.asarray(speeds, dtype=np.float64).copy()
        self._split_cache = None if cache is None else (int(cache[0]), np.asarray(cache[1]).copy())

    def observe(self, counts: np.ndarray, times: np.ndarray) -> None:
        """Record one time step's (counts, times) profile.

        Devices that received no work keep their previous speed estimate
        (or the mean of observed speeds, if never profiled).
        """
        counts = np.asarray(counts, dtype=np.float64)
        times = np.asarray(times, dtype=np.float64)
        if counts.shape != (self.n_devices,) or times.shape != (self.n_devices,):
            raise ValidationError(
                f"counts/times must both have shape ({self.n_devices},)"
            )
        if np.any(times < 0):
            raise ValidationError("times must be >= 0")
        worked = (counts > 0) & (times > 0)
        if not worked.any():
            raise SchedulingError("observe() called with no device having done work")
        speeds = np.zeros(self.n_devices)
        speeds[worked] = counts[worked] / times[worked]
        fallback = (
            self._speeds if self._speeds is not None else np.full(self.n_devices, speeds[worked].mean())
        )
        speeds[~worked] = fallback[~worked]
        self._speeds = speeds
        self._split_cache = None
