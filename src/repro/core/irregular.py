"""Irregular-reduction runtime (paper §II-A, §III-C/D/E).

The computation space is the edge set; the reduction space is the node
set.  Partitioning follows the paper exactly:

- **Inter-process**: nodes are split into equal contiguous blocks; edges
  with both endpoints local are *local edges*, edges crossing blocks are
  *cross edges* and are assigned to both sides (each side updates only its
  own endpoint).  Node storage uses the Fig. 3 arrangement — local nodes in
  front, remote nodes grouped by owning process behind — built by
  :func:`repro.core.partition.arrange_nodes`.
- **Remote-node exchange**: steps 1–4 (counts + global ID lists) run once
  per connectivity, steps 5–6 (node data) run whenever node data changed,
  all as real messages.  With ``overlap=True`` (default) local edges are
  computed concurrently with the step-5/6 exchange — the paper's
  *overlapped execution* — and cross edges afterwards.
- **Intra-process**: the local reduction space is split across devices by
  the :class:`~repro.core.adaptive.AdaptivePartitioner` (even on the first
  time step, speed-proportional from the second).  Each device further
  relies on shared-memory-sized reduction partitions
  (:func:`~repro.device.costmodel.shared_memory_partitions`) which make
  its atomic updates cheap (``localized``).  Device results are
  *concatenated*, never combined — the reduction space is disjoint.

Functional honesty: remote node slots are filled **only** by the exchange
protocol; if the protocol were wrong, results would be wrong.

Host-side performance: the hot loop is built around a persistent
per-device **edge-partition cache** (see :class:`_DevicePartition`).
After every (re)partition the runtime computes once — and keeps until the
next repartition or ``set_mesh``/``set_kernel`` — each device's edge
index sets, edge/edge-data slices, pooled reduction object, and the
precomputed scatter plans (:meth:`DenseReductionObject.plan_scatter`)
for all four endpoint columns of the full local/cross edge arrays.
Steady-state steps then run no per-step partitioning, no fancy-index
slicing, and no buffer allocation: the edge kernel executes **once per
phase** over the full edge array, and each emitted batch scatters
**once** through the combined full-range object's precomputed plan
(:class:`_MultiDeviceScatter`) — the pooled per-device objects' value
buffers are segments of the combined array, so a single planned
``np.bincount`` (or CSR/``reduceat`` for min/max) updates every device
at once, with per-device insert/drop counters maintained from counts
precomputed at cache-build time.  None of this touches the cost model —
each device is still charged for its own cached edge share — so virtual
makespans are unchanged.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.api import IRKernel, elementwise_edge_compute
from repro.core.adaptive import AdaptivePartitioner
from repro.core.env import RuntimeEnv
from repro.core.partition import (
    arrange_nodes,
    block_partition,
    classify_edges,
    split_edges_by_node_ranges,
    validate_range_tiling,
)
from repro.core.reduction_object import DenseReductionObject, _keys_token
from repro.device.costmodel import shared_memory_partitions
from repro.device.gpu import GPUDevice
from repro.device.work import WorkModel, scaled
from repro.util.errors import ConfigurationError

_TAG_IDS = 102
_TAG_DATA = 103


class _DevicePartition:
    """Cached per-device edge partition (valid until the next repartition).

    Everything the cost model and the accounting need per device, computed
    once: the local/cross edge index sets, the matching edge/edge-data
    slices (contiguous, read-only, materialized lazily on first access —
    the hot loop only needs the counts), and the pooled reduction object
    whose value buffer is a segment of the combined full-range object, so
    one kernel execution per phase can feed every device.
    """

    __slots__ = (
        "sel_local",
        "sel_cross",
        "obj",
        "_sources",
        "_slices",
    )

    def __init__(self, sel_local, sel_cross, sources, obj) -> None:
        self.sel_local = sel_local
        self.sel_cross = sel_cross
        self.obj = obj
        # (local_edges, cross_edges, local_data, cross_data) full arrays.
        self._sources = sources
        self._slices: dict[int, np.ndarray | None] = {}

    def _slice(self, which: int) -> np.ndarray | None:
        out = self._slices.get(which)
        if out is None and which not in self._slices:
            sel = self.sel_local if which in (0, 2) else self.sel_cross
            out = _frozen_slice(self._sources[which], sel)
            self._slices[which] = out
        return out

    @property
    def local_edges(self) -> np.ndarray:
        return self._slice(0)

    @property
    def cross_edges(self) -> np.ndarray:
        return self._slice(1)

    @property
    def local_data(self) -> np.ndarray | None:
        return self._slice(2)

    @property
    def cross_data(self) -> np.ndarray | None:
        return self._slice(3)

    @property
    def n_local(self) -> int:
        return len(self.sel_local)

    @property
    def n_cross(self) -> int:
        return len(self.sel_cross)


class _MultiDeviceScatter:
    """Routes kernel-emitted batches to the devices' pooled objects.

    The devices' reduction objects tile the local reduction space, and
    their value buffers are *segments* of one combined full-range object
    (see :class:`DenseReductionObject`'s ``storage`` parameter).  A batch
    emitted against one of the cached edge columns therefore scatters
    **once**, through the combined object's precomputed plan, and lands in
    every device's segment simultaneously — functionally identical to the
    per-device fan-out it replaces (each key is owned by exactly one
    device, and contributions hit each key in unchanged input order), but
    with one bincount over the batch instead of one gather+bincount per
    device.  Per-device insert/drop counters are maintained from counts
    precomputed at cache-build time, so the accounting the repartition
    tests rely on is unchanged.  Batches with unrecognized key arrays
    (custom kernels emitting derived keys) fall back to the per-device
    path, whose key-range filters write the same shared segments.

    This lets the runtime execute the edge kernel *once* per phase instead
    of once per device, eliminating the duplicated force computation for
    device-crossing edges.
    """

    __slots__ = ("combined", "objs", "drops")

    def __init__(self, combined, objs, drops) -> None:
        self.combined = combined
        self.objs = objs
        self.drops = drops  # _keys_token -> per-device dropped-entry counts

    def insert(self, key, value) -> None:
        for obj in self.objs:
            obj.insert(key, value)

    def insert_many(self, keys, values) -> None:
        drops = self.drops.get(_keys_token(keys)) if isinstance(keys, np.ndarray) else None
        if drops is None:
            for obj in self.objs:
                obj.insert_many(keys, values)
            return
        self.combined.insert_many(keys, values)
        n = len(keys)
        for obj, dropped in zip(self.objs, drops):
            obj.n_inserts += n
            obj.n_dropped += dropped

    def reset(self) -> None:
        """Identity-fill the shared storage once; zero every counter."""
        self.combined.reset()
        for obj in self.objs:
            obj.n_inserts = 0
            obj.n_dropped = 0


def _frozen_slice(array: np.ndarray | None, sel: np.ndarray) -> np.ndarray | None:
    """A contiguous read-only copy of ``array[sel]`` (cache-safe)."""
    if array is None:
        return None
    out = np.ascontiguousarray(array[sel])
    out.flags.writeable = False
    return out


class IrregularReductionRuntime:
    """Runtime instance for an irregular-reduction kernel over one mesh."""

    def __init__(
        self,
        env: RuntimeEnv,
        *,
        overlap: bool = True,
        localized: bool = True,
        adaptive: bool = True,
    ) -> None:
        """
        Args:
            env: The owning runtime environment.
            overlap: Overlap local-edge computation with the node-data
                exchange (paper's optimization; Fig. 7 ablates it).
            localized: Use shared-memory-sized reduction partitions on
                GPUs / private per-core objects on CPUs.
            adaptive: Re-split the device workload by profiled speed from
                the second time step (paper §III-D); ``False`` keeps the
                even split (ablation).
        """
        self.env = env
        self.overlap = overlap
        self.localized = localized
        self.adaptive = adaptive
        self._kernel: IRKernel | None = None
        self._parameter: Any = None
        # Mesh state (set_mesh / _setup)
        self._configured = False
        self._needs_id_exchange = True
        self._data_dirty = True
        self._gpu_edges_loaded = False
        self._timestep = 0
        self._partitioner: AdaptivePartitioner | None = None
        self._ranges: list[tuple[int, int]] | None = None
        self._result: np.ndarray | None = None
        self._have_result = False
        # Edge-partition cache (built lazily in start, kept across steps).
        self._edge_cache: list[_DevicePartition] | None = None
        self._multi: _MultiDeviceScatter | None = None
        self._combined: DenseReductionObject | None = None
        self._cache_builds = 0
        # Parity double-buffered step-5 gather buffer (all requesters
        # concatenated; spans mark each requester's slice).
        self._send_bufs: dict[int, np.ndarray] = {}
        self._serve_spans: list[tuple[int, int, int]] = []
        self._serve_idx: np.ndarray | None = None
        self._exchange_count = 0

    # -- configuration ---------------------------------------------------
    def set_kernel(self, kernel: IRKernel) -> None:
        self._kernel = kernel
        # Pooled objects and scatter plans embed the kernel's op, width,
        # and dtype — a new kernel invalidates them.
        self._edge_cache = None
        self._combined = None

    def set_edge_comp_func(
        self,
        fn,
        *,
        reduce_op: str = "sum",
        value_width: int = 1,
        work: WorkModel,
        dtype=np.float64,
        batched: bool = False,
    ) -> None:
        """Install a paper-style ``ir_edge_compute_fp`` (Table I)."""
        batch = fn if batched else elementwise_edge_compute(fn)
        self.set_kernel(
            IRKernel(
                edge_compute_batch=batch,
                reduce_op=reduce_op,
                value_width=value_width,
                work=work,
                dtype=np.dtype(dtype),
            )
        )

    def set_node_reduc_func(self, reduce_op: str) -> None:
        """Change the node combining op of the installed kernel."""
        if self._kernel is None:
            raise ConfigurationError("set a kernel before set_node_reduc_func")
        self.set_kernel(
            IRKernel(
                edge_compute_batch=self._kernel.edge_compute_batch,
                reduce_op=reduce_op,
                value_width=self._kernel.value_width,
                work=self._kernel.work,
                dtype=self._kernel.dtype,
            )
        )

    def set_parameter(self, parameter: Any) -> None:
        self._parameter = parameter

    def set_mesh(
        self,
        edges: np.ndarray,
        node_data: np.ndarray,
        edge_data: np.ndarray | None = None,
        *,
        model_edges: int | None = None,
        model_nodes: int | None = None,
        device_node_bytes: float | None = None,
        exchange_scale: float | None = None,
    ) -> None:
        """Provide the (global) mesh; every rank passes identical arrays.

        Args:
            edges: ``(m, 2)`` indirection array of global node IDs.
            node_data: ``(n, node_width)`` per-node attributes.
            edge_data: Optional per-edge attributes aligned with ``edges``.
            model_edges / model_nodes: Paper-scale counts the functional
                mesh stands for (costs are charged at that scale).
            device_node_bytes: Bytes per node actually uploaded to each
                GPU's full node copy every time node data changes (default:
                the whole row; MD apps upload positions only).
            exchange_scale: Scale factor for the *remote-node exchange*
                wire volume (default: ``model_nodes / functional_nodes``).
                Remote-node counts grow with partition *surface*, not
                volume, so apps with geometric meshes pass a
                surface-corrected factor (see ``repro.apps.minimd``).
        """
        edges = np.asarray(edges)
        node_data = np.asarray(node_data, dtype=np.float64)
        if node_data.ndim == 1:
            node_data = node_data[:, None]
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ConfigurationError(f"edges must be (m, 2), got {edges.shape}")
        self._n_global_nodes = len(node_data)
        self._n_global_edges = len(edges)
        self._edge_scale = scaled(max(1, len(edges)), model_edges)
        self._node_scale = scaled(max(1, len(node_data)), model_nodes)
        self._exchange_scale = (
            float(exchange_scale) if exchange_scale is not None else self._node_scale
        )
        if self._exchange_scale <= 0:
            raise ConfigurationError("exchange_scale must be > 0")

        nprocs = self.env.nprocs
        offsets = block_partition(self._n_global_nodes, nprocs)
        arrangement, local_edges, cross_edges = arrange_nodes(edges, offsets, self.env.rank)
        self._offsets = offsets
        self._arr = arrangement

        # Renumber edge endpoints to arranged slots (paper: "converts these
        # IDs into the local rank").  Frozen: the per-device scatter plans
        # key off these arrays' memory identity.
        self._local_edges = np.ascontiguousarray(
            arrangement.slot_of_global(
                local_edges.reshape(-1), self._n_global_nodes
            ).reshape(-1, 2)
        )
        self._local_edges.flags.writeable = False
        self._cross_edges = np.ascontiguousarray(
            arrangement.slot_of_global(
                cross_edges.reshape(-1), self._n_global_nodes
            ).reshape(-1, 2)
        )
        self._cross_edges.flags.writeable = False

        # Edge data travels with its edges.
        if edge_data is not None:
            edge_data = np.asarray(edge_data)
            lm, cm = classify_edges(edges, arrangement.lo, arrangement.hi)
            self._local_edge_data = edge_data[lm]
            self._cross_edge_data = edge_data[cm]
        else:
            self._local_edge_data = None
            self._cross_edge_data = None

        # Arranged node-data store (Fig. 3): local block + grouped remotes.
        self._node_width = node_data.shape[1]
        self._device_node_bytes = (
            float(device_node_bytes)
            if device_node_bytes is not None
            else float(self._node_width * 8)
        )
        self._nodes = np.zeros((arrangement.n_slots, self._node_width))
        self._nodes[: arrangement.n_local] = node_data[arrangement.lo : arrangement.hi]
        # Remote slots deliberately stay zero until the exchange fills them.

        self._partitioner = AdaptivePartitioner(len(self.env.devices))
        self._ranges = None
        self._configured = True
        self._needs_id_exchange = True
        self._data_dirty = True
        self._gpu_edges_loaded = False
        self._timestep = 0
        self._edge_cache = None
        self._combined = None
        self._result = None
        self._have_result = False
        self._send_bufs = {}
        self._exchange_count = 0

        # Load-time cost: each process inspects the full edge list to pick
        # its own (paper §III-B "inspects all the input edges").
        inspect = self._n_global_edges * self._edge_scale * 2 * 8  # two int64 reads/edge
        t0 = self.env.clock.now
        self.env.clock.advance(inspect / self.env.ctx.node.cpu.mem_bandwidth)
        if self.env.trace.enabled:
            self.env.trace.record("compute", "IR:inspect", t0, self.env.clock.now)

    # -- remote-node ID exchange (steps 1-4) -------------------------------
    def _exchange_ids(self) -> None:
        comm = self.env.comm
        nprocs = comm.size
        arr = self._arr
        # Steps 1-2: tell every process how many of its nodes we need
        # (an all-to-all of counts stands in for the pairwise requests).
        counts = np.zeros(nprocs, dtype=np.int64)
        for owner, ids in arr.remote_ids.items():
            counts[owner] = len(ids)
        all_counts = comm.alltoall(list(counts))
        # Steps 3-4: exchange the actual global-ID lists.
        reqs = []
        for owner, ids in arr.remote_ids.items():
            reqs.append(
                comm.isend(ids, owner, _TAG_IDS, wire_bytes=ids.nbytes * self._exchange_scale)
            )
        self._serve: dict[int, np.ndarray] = {}
        for requester, cnt in enumerate(all_counts):
            if requester != comm.rank and cnt > 0:
                ids = comm.recv(source=requester, tag=_TAG_IDS)
                self._serve[requester] = np.asarray(ids) - arr.lo  # local indices
        # Fuse the per-requester step-5 gathers into one np.take: all serve
        # indices concatenated, with each requester's span recorded so its
        # send is a zero-copy slice of the pooled gather buffer.
        spans = []
        lo = 0
        for requester, idx in self._serve.items():
            spans.append((requester, lo, lo + len(idx)))
            lo += len(idx)
        self._serve_spans = spans
        self._serve_idx = (
            np.concatenate(list(self._serve.values()))
            if self._serve
            else np.zeros(0, dtype=np.intp)
        )
        self._send_bufs = {}
        comm.waitall(reqs)
        self._needs_id_exchange = False

    # -- node-data exchange (steps 5-6) -------------------------------------
    def _begin_node_exchange(self) -> list:
        """Post receives straight into node slots; gather + send local data.

        Wall-clock fast path: receives land directly in the arranged node
        array via ``irecv(out=...)``, and the step-5 gathers for *all*
        requesters run as one ``np.take`` over the concatenated serve
        indices into a pooled, parity double-buffered gather buffer; each
        requester's message is a zero-copy slice of it, shipped with
        ``owned=True``.  Parity reuse is safe because the exchange is a
        rendezvous: a requester cannot start exchange ``k+1`` before
        consuming our exchange-``k`` buffer, and we cannot reuse that
        buffer (at exchange ``k+2``) before finishing ``k+1`` — which
        waits on the requester's own ``k+1`` send.  Wire and memcpy
        charges are unchanged (still advanced per requester).
        """
        comm = self.env.comm
        arr = self._arr
        itemsize = self._nodes.itemsize
        parity = self._exchange_count & 1
        self._exchange_count += 1
        recv_reqs = []
        for owner in arr.remote_ids:
            base = arr.remote_offsets[owner]
            n = len(arr.remote_ids[owner])
            recv_reqs.append(
                comm.irecv(source=owner, tag=_TAG_DATA, out=self._nodes[base : base + n])
            )
        if self._serve_spans:
            buf = self._send_bufs.get(parity)
            if buf is None:
                buf = np.empty((len(self._serve_idx), self._node_width))
                self._send_bufs[parity] = buf
            np.take(self._nodes, self._serve_idx, axis=0, out=buf)  # step-5 gather
            for requester, lo, hi in self._serve_spans:
                nbytes = (hi - lo) * self._node_width * itemsize * self._exchange_scale
                self.env.clock.advance(self.env.host_memcpy_time(nbytes))
                comm.isend(buf[lo:hi], requester, _TAG_DATA, wire_bytes=nbytes, owned=True)
        return recv_reqs

    def _finish_node_exchange(self, recv_reqs: list) -> None:
        for req in recv_reqs:
            req.wait()  # delivery copies into the posted node slots
        self._data_dirty = False

    # -- device partitioning ------------------------------------------------
    def _device_ranges(self) -> list[tuple[int, int]]:
        counts = self._partitioner.split(self._arr.n_local)
        ranges = []
        lo = 0
        for c in counts:
            ranges.append((lo, lo + int(c)))
            lo += int(c)
        validate_range_tiling(ranges, self._arr.n_local)
        return ranges

    def _build_edge_cache(self, ranges: list[tuple[int, int]]) -> None:
        """(Re)compute the per-device edge partitions and pooled objects.

        Runs only on the first step and after a repartition (in practice:
        once even-split, once more when the adaptive profile lands) —
        every other step reuses the cache untouched.  One *combined*
        full-range object registers scatter plans for all four endpoint
        columns of the full local/cross edge arrays; the per-device
        objects accumulate into segments of its value buffer, so the
        kernel runs once per phase and a single planned scatter updates
        every device.  Per-device drop counts for each column are
        precomputed here (ranges tile ``[0, n_local)``, so one
        ``searchsorted`` against the range boundaries assigns owners).
        """
        kernel = self._kernel
        n_local = self._arr.n_local
        local_sets = split_edges_by_node_ranges(self._local_edges, ranges)
        cross_sets = split_edges_by_node_ranges(self._cross_edges, ranges)
        # The combined object and its scatter plans cover [0, n_local) —
        # independent of the device split — so they survive repartitions
        # and are rebuilt only after set_mesh/set_kernel.
        combined = self._combined
        if combined is None:
            combined = DenseReductionObject(
                max(1, n_local), kernel.value_width, kernel.reduce_op, kernel.dtype
            )
            for column in (
                self._local_edges[:, 0],
                self._local_edges[:, 1],
                self._cross_edges[:, 0],
                self._cross_edges[:, 1],
            ):
                combined.plan_scatter(column)
            self._combined = combined
        his = np.array([hi for _, hi in ranges], dtype=np.int64)
        drops = {}
        for column in (
            self._local_edges[:, 0],
            self._local_edges[:, 1],
            self._cross_edges[:, 0],
            self._cross_edges[:, 1],
        ):
            owner = np.searchsorted(his, column, side="right")
            owned = np.bincount(owner, minlength=len(ranges) + 1)[: len(ranges)]
            drops[_keys_token(column)] = [int(len(column) - c) for c in owned]
        sources = (
            self._local_edges,
            self._cross_edges,
            self._local_edge_data,
            self._cross_edge_data,
        )
        cache = []
        for (lo, hi), sel_l, sel_c in zip(ranges, local_sets, cross_sets):
            obj = DenseReductionObject(
                max(1, hi - lo),
                kernel.value_width,
                kernel.reduce_op,
                kernel.dtype,
                key_lo=lo,
                storage=combined.values[lo:hi] if hi > lo else None,
            )
            cache.append(_DevicePartition(sel_l, sel_c, sources, obj))
        self._edge_cache = cache
        self._multi = _MultiDeviceScatter(combined, [part.obj for part in cache], drops)
        self._cache_builds += 1
        self.env.trace.count("ir.cache_builds")
        self._result = np.empty((n_local, kernel.value_width), dtype=kernel.dtype)

    # -- one time step --------------------------------------------------------
    def start(self) -> None:
        """Execute one reduction pass over all edges (paper: ``ir->start()``)."""
        if not self._configured:
            raise ConfigurationError("call set_mesh before start")
        if self._kernel is None:
            raise ConfigurationError("no kernel configured")
        env = self.env
        clock = env.clock
        kernel = self._kernel
        t0 = clock.now
        for dev in env.devices:
            dev.reset(start=t0)
        if self._needs_id_exchange:
            self._exchange_ids()

        # Adaptive (re)partitioning of the reduction space across devices;
        # the edge-partition cache is rebuilt only when the split moved.
        new_ranges = self._device_ranges()
        repartitioned = new_ranges != self._ranges
        self._ranges = new_ranges
        if repartitioned or self._edge_cache is None:
            self._build_edge_cache(new_ranges)
        else:
            self._multi.reset()
        cache = self._edge_cache

        # Charge GPU-side data movement: edges are uploaded on first use
        # and after every repartition; node data is re-uploaded whenever it
        # changed (full copy per device, paper §III-D).
        if self._local_edge_data is not None:
            per_edge_attr = self._local_edge_data.itemsize * (
                self._local_edge_data.shape[1] if self._local_edge_data.ndim > 1 else 1
            )
        else:
            per_edge_attr = 0
        edge_bytes_per = 2 * 8 + per_edge_attr  # two int64 endpoints + attributes
        node_bytes = len(self._nodes) * self._device_node_bytes * self._node_scale
        upload_done: dict[str, float] = {}
        node_upload_busy: dict[str, float] = {d.name: 0.0 for d in env.devices}
        for d, dev in enumerate(env.devices):
            ready = clock.now
            if isinstance(dev, GPUDevice):
                if repartitioned or not self._gpu_edges_loaded:
                    n_edges_dev = (cache[d].n_local + cache[d].n_cross) * self._edge_scale
                    iv = dev.copy_engine.schedule(
                        ready, dev.transfer_time(n_edges_dev * edge_bytes_per), "edges.h2d"
                    )
                    ready = iv.end
                if self._data_dirty or self._timestep == 0:
                    iv = dev.copy_engine.schedule(
                        ready, dev.transfer_time(node_bytes), "nodes.h2d"
                    )
                    node_upload_busy[dev.name] = iv.duration
                    ready = iv.end
            upload_done[dev.name] = ready
        self._gpu_edges_loaded = True

        if self._data_dirty or self._timestep == 0:
            recv_reqs = self._begin_node_exchange()
        else:
            recv_reqs = []

        # Record the SIII-E shared-memory partition counts (each partition
        # of the reduction space fits one SM's scratchpad).
        elem_bytes = kernel.value_width * kernel.dtype.itemsize
        if env.trace.enabled:
            for d, dev in enumerate(env.devices):
                if isinstance(dev, GPUDevice):
                    lo, hi = new_ranges[d]
                    n_dev_nodes = max(1, int((hi - lo) * self._node_scale))
                    env.trace.record(
                        "partition",
                        f"IR:shared-parts:{dev.name}",
                        clock.now,
                        clock.now,
                        {"num_parts": shared_memory_partitions(n_dev_nodes, elem_bytes, dev.spec)},
                    )

        device_busy = {d.name: 0.0 for d in env.devices}

        def compute_phase(phase: str, ready_floor: float) -> float:
            # Functional execution: one kernel run over the phase's full
            # edge array, fanned out to every device's pooled object (the
            # per-device key filters keep ownership disjoint).  Virtual
            # execution: each device is still charged for its own cached
            # edge share, duplicated cross-device edges included.
            finish = ready_floor
            cross = phase == "cross"
            edges_ph = self._cross_edges if cross else self._local_edges
            if len(edges_ph):
                data_ph = self._cross_edge_data if cross else self._local_edge_data
                kernel.edge_compute_batch(
                    self._multi, edges_ph, data_ph, self._nodes, self._parameter
                )
            for d, dev in enumerate(env.devices):
                n_d = cache[d].n_cross if cross else cache[d].n_local
                if n_d == 0:
                    continue
                dur = dev.partition_time(
                    kernel.work,
                    n_d * self._edge_scale,
                    localized=self.localized,
                    framework=True,
                )
                tl = dev.timelines()[-1]  # compute engine / last core acts as the device line
                iv = tl.schedule(max(upload_done[dev.name], ready_floor), dur, f"IR.{phase}")
                device_busy[dev.name] += dur
                finish = max(finish, iv.end)
                if env.trace.enabled:
                    env.trace.record(
                        "compute", f"IR:{phase}:{dev.name}", iv.start, iv.end, {"edges": n_d}
                    )
            return finish

        if self.overlap and recv_reqs:
            local_done = compute_phase("local", t0)
            self._finish_node_exchange(recv_reqs)
            exchange_done = clock.now
            cross_ready = max(local_done, exchange_done)
            cross_done = compute_phase("cross", cross_ready)
            end = max(local_done, cross_done)
        else:
            if recv_reqs:
                self._finish_node_exchange(recv_reqs)
            ready = clock.now
            local_done = compute_phase("local", ready)
            cross_done = compute_phase("cross", ready)
            end = max(local_done, cross_done)
        clock.advance_to(end)

        # Profile device speeds for the adaptive split (paper: profile the
        # first step, repartition in the second).
        if self.adaptive:
            counts = np.array(
                [cache[d].n_local + cache[d].n_cross for d in range(len(env.devices))],
                dtype=np.float64,
            )
            # Profile with the *recurring* per-step costs (compute + node
            # re-upload); the one-time edge upload is excluded so the
            # adaptive split reflects steady-state speeds.
            times = np.array(
                [
                    max(device_busy[d.name] + node_upload_busy[d.name], 1e-30)
                    for d in env.devices
                ]
            )
            if counts.sum() > 0 and not self._partitioner.profiled:
                self._partitioner.observe(counts, times)

        # Copy the combined result (whose segments are the per-device
        # objects' storage) into the preallocated result buffer.
        n_local = self._arr.n_local
        if n_local:
            np.copyto(self._result, self._multi.combined.values[:n_local])
        self._have_result = True
        self._timestep += 1
        if env.trace.enabled:
            env.trace.record("compute", "IR:step", t0, clock.now, {"step": self._timestep})
            # Per-step atomic-insert accounting: how many edge contributions
            # landed in (or fell outside) each device's reduction segment.
            for d, dev in enumerate(env.devices):
                part = cache[d]
                env.trace.count(f"ir.edges[{dev.name}]", part.n_local + part.n_cross)
            env.trace.count("ir.inserts", float(sum(o.n_inserts for o in self._multi.objs)))
            env.trace.count("ir.dropped", float(sum(o.n_dropped for o in self._multi.objs)))

    # -- results / updates -----------------------------------------------------
    @property
    def local_node_range(self) -> tuple[int, int]:
        """Global-ID range ``[lo, hi)`` of this process's nodes."""
        self._check_configured()
        return self._arr.lo, self._arr.hi

    def get_local_reduction(self) -> np.ndarray:
        """``(n_local, value_width)`` reduction result over local nodes.

        The returned array is a pooled buffer overwritten by the next
        :meth:`start`; copy it to keep a step's result beyond that.
        """
        if not self._have_result:
            raise ConfigurationError("start() has not produced a result yet")
        return self._result

    def get_local_nodes(self) -> np.ndarray:
        """Current local node data (a copy)."""
        self._check_configured()
        return self._nodes[: self._arr.n_local].copy()

    def update_nodedata(self, new_local_nodes: np.ndarray) -> None:
        """Replace local node data (paper: ``ir->update_nodedata(result)``).

        Marks the data dirty so the next :meth:`start` re-runs the step-5/6
        exchange (remote copies everywhere are stale now).  The edge
        partition cache holds only connectivity-derived state, so it
        survives node-data updates untouched.

        SPMD contract: if *any* rank updates its node data between two
        ``start()`` calls, **every** rank must call ``update_nodedata``
        before its next ``start()`` (with unchanged data if it has no
        updates) — the step-5/6 exchange is collective, and a rank that
        skips it would serve stale values to its neighbours.
        """
        self._check_configured()
        new_local_nodes = np.asarray(new_local_nodes, dtype=np.float64)
        if new_local_nodes.shape != (self._arr.n_local, self._node_width):
            raise ConfigurationError(
                f"expected shape {(self._arr.n_local, self._node_width)}, "
                f"got {new_local_nodes.shape}"
            )
        self._nodes[: self._arr.n_local] = new_local_nodes
        t0 = self.env.clock.now
        self.env.clock.advance(self.env.host_memcpy_time(new_local_nodes.nbytes * self._node_scale))
        if self.env.trace.enabled:
            self.env.trace.record("compute", "IR:update", t0, self.env.clock.now)
        self._data_dirty = True

    def _check_configured(self) -> None:
        if not self._configured:
            raise ConfigurationError("call set_mesh first")
