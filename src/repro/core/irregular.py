"""Irregular-reduction runtime (paper §II-A, §III-C/D/E).

The computation space is the edge set; the reduction space is the node
set.  Partitioning follows the paper exactly:

- **Inter-process**: nodes are split into equal contiguous blocks; edges
  with both endpoints local are *local edges*, edges crossing blocks are
  *cross edges* and are assigned to both sides (each side updates only its
  own endpoint).  Node storage uses the Fig. 3 arrangement — local nodes in
  front, remote nodes grouped by owning process behind — built by
  :func:`repro.core.partition.arrange_nodes`.
- **Remote-node exchange**: steps 1–4 (counts + global ID lists) run once
  per connectivity, steps 5–6 (node data) run whenever node data changed,
  all as real messages.  With ``overlap=True`` (default) local edges are
  computed concurrently with the step-5/6 exchange — the paper's
  *overlapped execution* — and cross edges afterwards.
- **Intra-process**: the local reduction space is split across devices by
  the :class:`~repro.core.adaptive.AdaptivePartitioner` (even on the first
  time step, speed-proportional from the second).  Each device further
  relies on shared-memory-sized reduction partitions
  (:func:`~repro.device.costmodel.shared_memory_partitions`) which make
  its atomic updates cheap (``localized``).  Device results are
  *concatenated*, never combined — the reduction space is disjoint.

Functional honesty: remote node slots are filled **only** by the exchange
protocol; if the protocol were wrong, results would be wrong.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.api import IRKernel, elementwise_edge_compute
from repro.core.adaptive import AdaptivePartitioner
from repro.core.env import RuntimeEnv
from repro.core.partition import (
    arrange_nodes,
    block_partition,
    classify_edges,
    split_edges_by_node_ranges,
)
from repro.core.reduction_object import DenseReductionObject
from repro.device.costmodel import shared_memory_partitions
from repro.device.gpu import GPUDevice
from repro.device.work import WorkModel, scaled
from repro.util.errors import ConfigurationError

_TAG_IDS = 102
_TAG_DATA = 103


class IrregularReductionRuntime:
    """Runtime instance for an irregular-reduction kernel over one mesh."""

    def __init__(
        self,
        env: RuntimeEnv,
        *,
        overlap: bool = True,
        localized: bool = True,
        adaptive: bool = True,
    ) -> None:
        """
        Args:
            env: The owning runtime environment.
            overlap: Overlap local-edge computation with the node-data
                exchange (paper's optimization; Fig. 7 ablates it).
            localized: Use shared-memory-sized reduction partitions on
                GPUs / private per-core objects on CPUs.
            adaptive: Re-split the device workload by profiled speed from
                the second time step (paper §III-D); ``False`` keeps the
                even split (ablation).
        """
        self.env = env
        self.overlap = overlap
        self.localized = localized
        self.adaptive = adaptive
        self._kernel: IRKernel | None = None
        self._parameter: Any = None
        # Mesh state (set_mesh / _setup)
        self._configured = False
        self._needs_id_exchange = True
        self._data_dirty = True
        self._gpu_edges_loaded = False
        self._timestep = 0
        self._partitioner: AdaptivePartitioner | None = None
        self._ranges: list[tuple[int, int]] | None = None
        self._result: np.ndarray | None = None

    # -- configuration ---------------------------------------------------
    def set_kernel(self, kernel: IRKernel) -> None:
        self._kernel = kernel

    def set_edge_comp_func(
        self,
        fn,
        *,
        reduce_op: str = "sum",
        value_width: int = 1,
        work: WorkModel,
        dtype=np.float64,
        batched: bool = False,
    ) -> None:
        """Install a paper-style ``ir_edge_compute_fp`` (Table I)."""
        batch = fn if batched else elementwise_edge_compute(fn)
        self.set_kernel(
            IRKernel(
                edge_compute_batch=batch,
                reduce_op=reduce_op,
                value_width=value_width,
                work=work,
                dtype=np.dtype(dtype),
            )
        )

    def set_node_reduc_func(self, reduce_op: str) -> None:
        """Change the node combining op of the installed kernel."""
        if self._kernel is None:
            raise ConfigurationError("set a kernel before set_node_reduc_func")
        self.set_kernel(
            IRKernel(
                edge_compute_batch=self._kernel.edge_compute_batch,
                reduce_op=reduce_op,
                value_width=self._kernel.value_width,
                work=self._kernel.work,
                dtype=self._kernel.dtype,
            )
        )

    def set_parameter(self, parameter: Any) -> None:
        self._parameter = parameter

    def set_mesh(
        self,
        edges: np.ndarray,
        node_data: np.ndarray,
        edge_data: np.ndarray | None = None,
        *,
        model_edges: int | None = None,
        model_nodes: int | None = None,
        device_node_bytes: float | None = None,
        exchange_scale: float | None = None,
    ) -> None:
        """Provide the (global) mesh; every rank passes identical arrays.

        Args:
            edges: ``(m, 2)`` indirection array of global node IDs.
            node_data: ``(n, node_width)`` per-node attributes.
            edge_data: Optional per-edge attributes aligned with ``edges``.
            model_edges / model_nodes: Paper-scale counts the functional
                mesh stands for (costs are charged at that scale).
            device_node_bytes: Bytes per node actually uploaded to each
                GPU's full node copy every time node data changes (default:
                the whole row; MD apps upload positions only).
            exchange_scale: Scale factor for the *remote-node exchange*
                wire volume (default: ``model_nodes / functional_nodes``).
                Remote-node counts grow with partition *surface*, not
                volume, so apps with geometric meshes pass a
                surface-corrected factor (see ``repro.apps.minimd``).
        """
        edges = np.asarray(edges)
        node_data = np.asarray(node_data, dtype=np.float64)
        if node_data.ndim == 1:
            node_data = node_data[:, None]
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ConfigurationError(f"edges must be (m, 2), got {edges.shape}")
        self._n_global_nodes = len(node_data)
        self._n_global_edges = len(edges)
        self._edge_scale = scaled(max(1, len(edges)), model_edges)
        self._node_scale = scaled(max(1, len(node_data)), model_nodes)
        self._exchange_scale = (
            float(exchange_scale) if exchange_scale is not None else self._node_scale
        )
        if self._exchange_scale <= 0:
            raise ConfigurationError("exchange_scale must be > 0")

        nprocs = self.env.nprocs
        offsets = block_partition(self._n_global_nodes, nprocs)
        arrangement, local_edges, cross_edges = arrange_nodes(edges, offsets, self.env.rank)
        self._offsets = offsets
        self._arr = arrangement

        # Renumber edge endpoints to arranged slots (paper: "converts these
        # IDs into the local rank").
        self._local_edges = arrangement.slot_of_global(
            local_edges.reshape(-1), self._n_global_nodes
        ).reshape(-1, 2)
        self._cross_edges = arrangement.slot_of_global(
            cross_edges.reshape(-1), self._n_global_nodes
        ).reshape(-1, 2)

        # Edge data travels with its edges.
        if edge_data is not None:
            edge_data = np.asarray(edge_data)
            lm, cm = classify_edges(edges, arrangement.lo, arrangement.hi)
            self._local_edge_data = edge_data[lm]
            self._cross_edge_data = edge_data[cm]
        else:
            self._local_edge_data = None
            self._cross_edge_data = None

        # Arranged node-data store (Fig. 3): local block + grouped remotes.
        self._node_width = node_data.shape[1]
        self._device_node_bytes = (
            float(device_node_bytes)
            if device_node_bytes is not None
            else float(self._node_width * 8)
        )
        self._nodes = np.zeros((arrangement.n_slots, self._node_width))
        self._nodes[: arrangement.n_local] = node_data[arrangement.lo : arrangement.hi]
        # Remote slots deliberately stay zero until the exchange fills them.

        self._partitioner = AdaptivePartitioner(len(self.env.devices))
        self._ranges = None
        self._configured = True
        self._needs_id_exchange = True
        self._data_dirty = True
        self._gpu_edges_loaded = False
        self._timestep = 0

        # Load-time cost: each process inspects the full edge list to pick
        # its own (paper §III-B "inspects all the input edges").
        inspect = self._n_global_edges * self._edge_scale * 2 * 8  # two int64 reads/edge
        self.env.clock.advance(inspect / self.env.ctx.node.cpu.mem_bandwidth)

    # -- remote-node ID exchange (steps 1-4) -------------------------------
    def _exchange_ids(self) -> None:
        comm = self.env.comm
        nprocs = comm.size
        arr = self._arr
        # Steps 1-2: tell every process how many of its nodes we need
        # (an all-to-all of counts stands in for the pairwise requests).
        counts = np.zeros(nprocs, dtype=np.int64)
        for owner, ids in arr.remote_ids.items():
            counts[owner] = len(ids)
        all_counts = comm.alltoall(list(counts))
        # Steps 3-4: exchange the actual global-ID lists.
        reqs = []
        for owner, ids in arr.remote_ids.items():
            reqs.append(
                comm.isend(ids, owner, _TAG_IDS, wire_bytes=ids.nbytes * self._exchange_scale)
            )
        self._serve: dict[int, np.ndarray] = {}
        for requester, cnt in enumerate(all_counts):
            if requester != comm.rank and cnt > 0:
                ids = comm.recv(source=requester, tag=_TAG_IDS)
                self._serve[requester] = np.asarray(ids) - arr.lo  # local indices
        comm.waitall(reqs)
        self._needs_id_exchange = False

    # -- node-data exchange (steps 5-6) -------------------------------------
    def _begin_node_exchange(self) -> list:
        comm = self.env.comm
        arr = self._arr
        itemsize = self._nodes.itemsize
        recv_reqs = [
            (owner, comm.irecv(source=owner, tag=_TAG_DATA)) for owner in arr.remote_ids
        ]
        for requester, idx in self._serve.items():
            buf = self._nodes[idx]  # gather into the send buffer (step 5 copy)
            nbytes = len(idx) * self._node_width * itemsize * self._exchange_scale
            self.env.clock.advance(self.env.host_memcpy_time(nbytes))
            comm.isend(buf, requester, _TAG_DATA, wire_bytes=nbytes)
        return recv_reqs

    def _finish_node_exchange(self, recv_reqs: list) -> None:
        arr = self._arr
        for owner, req in recv_reqs:
            data = req.wait()
            base = arr.remote_offsets[owner]
            n = len(arr.remote_ids[owner])
            self._nodes[base : base + n] = np.asarray(data).reshape(n, self._node_width)
        self._data_dirty = False

    # -- device partitioning ------------------------------------------------
    def _device_ranges(self) -> list[tuple[int, int]]:
        counts = self._partitioner.split(self._arr.n_local)
        ranges = []
        lo = 0
        for c in counts:
            ranges.append((lo, lo + int(c)))
            lo += int(c)
        return ranges

    def _edges_for_ranges(
        self, edges: np.ndarray, ranges: list[tuple[int, int]]
    ) -> list[np.ndarray]:
        return split_edges_by_node_ranges(edges, ranges)

    # -- one time step --------------------------------------------------------
    def start(self) -> None:
        """Execute one reduction pass over all edges (paper: ``ir->start()``)."""
        if not self._configured:
            raise ConfigurationError("call set_mesh before start")
        if self._kernel is None:
            raise ConfigurationError("no kernel configured")
        env = self.env
        clock = env.clock
        kernel = self._kernel
        t0 = clock.now
        for dev in env.devices:
            dev.reset(start=t0)
        if self._needs_id_exchange:
            self._exchange_ids()

        # Adaptive (re)partitioning of the reduction space across devices.
        new_ranges = self._device_ranges()
        repartitioned = new_ranges != self._ranges
        self._ranges = new_ranges
        local_sets = self._edges_for_ranges(self._local_edges, new_ranges)
        cross_sets = self._edges_for_ranges(self._cross_edges, new_ranges)

        # Charge GPU-side data movement: edges are uploaded on first use
        # and after every repartition; node data is re-uploaded whenever it
        # changed (full copy per device, paper §III-D).
        if self._local_edge_data is not None:
            per_edge_attr = self._local_edge_data.itemsize * (
                self._local_edge_data.shape[1] if self._local_edge_data.ndim > 1 else 1
            )
        else:
            per_edge_attr = 0
        edge_bytes_per = 2 * 8 + per_edge_attr  # two int64 endpoints + attributes
        node_bytes = len(self._nodes) * self._device_node_bytes * self._node_scale
        upload_done: dict[str, float] = {}
        node_upload_busy: dict[str, float] = {d.name: 0.0 for d in env.devices}
        for d, dev in enumerate(env.devices):
            ready = clock.now
            if isinstance(dev, GPUDevice):
                if repartitioned or not self._gpu_edges_loaded:
                    n_edges_dev = (len(local_sets[d]) + len(cross_sets[d])) * self._edge_scale
                    iv = dev.copy_engine.schedule(
                        ready, dev.transfer_time(n_edges_dev * edge_bytes_per), "edges.h2d"
                    )
                    ready = iv.end
                if self._data_dirty or self._timestep == 0:
                    iv = dev.copy_engine.schedule(
                        ready, dev.transfer_time(node_bytes), "nodes.h2d"
                    )
                    node_upload_busy[dev.name] = iv.duration
                    ready = iv.end
            upload_done[dev.name] = ready
        self._gpu_edges_loaded = True

        if self._data_dirty or self._timestep == 0:
            recv_reqs = self._begin_node_exchange()
        else:
            recv_reqs = []

        # Per-device reduction objects over disjoint local node ranges.
        objs = [
            DenseReductionObject(
                max(1, hi - lo), kernel.value_width, kernel.reduce_op, kernel.dtype, key_lo=lo
            )
            for lo, hi in new_ranges
        ]
        # Record the SIII-E shared-memory partition counts (each partition
        # of the reduction space fits one SM's scratchpad).
        elem_bytes = kernel.value_width * kernel.dtype.itemsize
        for d, dev in enumerate(env.devices):
            if isinstance(dev, GPUDevice):
                lo, hi = new_ranges[d]
                n_dev_nodes = max(1, int((hi - lo) * self._node_scale))
                env.trace.record(
                    "partition",
                    f"IR:shared-parts:{dev.name}",
                    clock.now,
                    clock.now,
                    num_parts=shared_memory_partitions(n_dev_nodes, elem_bytes, dev.spec),
                )

        device_busy = {d.name: 0.0 for d in env.devices}

        def compute_phase(edge_sets, edge_array, edge_data, phase: str, ready_floor: float) -> float:
            finish = ready_floor
            for d, dev in enumerate(env.devices):
                sel = edge_sets[d]
                if len(sel) == 0:
                    continue
                edges_d = edge_array[sel]
                data_d = None if edge_data is None else edge_data[sel]
                kernel.edge_compute_batch(objs[d], edges_d, data_d, self._nodes, self._parameter)
                dur = dev.partition_time(
                    kernel.work,
                    len(sel) * self._edge_scale,
                    localized=self.localized,
                    framework=True,
                )
                tl = dev.timelines()[-1]  # compute engine / last core acts as the device line
                iv = tl.schedule(max(upload_done[dev.name], ready_floor), dur, f"IR.{phase}")
                device_busy[dev.name] += dur
                finish = max(finish, iv.end)
                env.trace.record(
                    "compute", f"IR:{phase}:{dev.name}", iv.start, iv.end, edges=len(sel)
                )
            return finish

        if self.overlap and recv_reqs:
            local_done = compute_phase(
                local_sets, self._local_edges, self._local_edge_data, "local", t0
            )
            self._finish_node_exchange(recv_reqs)
            exchange_done = clock.now
            cross_ready = max(local_done, exchange_done)
            cross_done = compute_phase(
                cross_sets, self._cross_edges, self._cross_edge_data, "cross", cross_ready
            )
            end = max(local_done, cross_done)
        else:
            if recv_reqs:
                self._finish_node_exchange(recv_reqs)
            ready = clock.now
            local_done = compute_phase(
                local_sets, self._local_edges, self._local_edge_data, "local", ready
            )
            cross_done = compute_phase(
                cross_sets, self._cross_edges, self._cross_edge_data, "cross", ready
            )
            end = max(local_done, cross_done)
        clock.advance_to(end)

        # Profile device speeds for the adaptive split (paper: profile the
        # first step, repartition in the second).
        if self.adaptive:
            counts = np.array(
                [len(local_sets[d]) + len(cross_sets[d]) for d in range(len(env.devices))],
                dtype=np.float64,
            )
            # Profile with the *recurring* per-step costs (compute + node
            # re-upload); the one-time edge upload is excluded so the
            # adaptive split reflects steady-state speeds.
            times = np.array(
                [
                    max(device_busy[d.name] + node_upload_busy[d.name], 1e-30)
                    for d in env.devices
                ]
            )
            if counts.sum() > 0 and not self._partitioner.profiled:
                self._partitioner.observe(counts, times)

        # Concatenate device results over the disjoint reduction space.
        self._result = np.concatenate([o.values for o in objs], axis=0)[: self._arr.n_local]
        self._timestep += 1
        env.trace.record("compute", "IR:step", t0, clock.now, step=self._timestep)

    # -- results / updates -----------------------------------------------------
    @property
    def local_node_range(self) -> tuple[int, int]:
        """Global-ID range ``[lo, hi)`` of this process's nodes."""
        self._check_configured()
        return self._arr.lo, self._arr.hi

    def get_local_reduction(self) -> np.ndarray:
        """``(n_local, value_width)`` reduction result over local nodes."""
        if self._result is None:
            raise ConfigurationError("start() has not produced a result yet")
        return self._result

    def get_local_nodes(self) -> np.ndarray:
        """Current local node data (a copy)."""
        self._check_configured()
        return self._nodes[: self._arr.n_local].copy()

    def update_nodedata(self, new_local_nodes: np.ndarray) -> None:
        """Replace local node data (paper: ``ir->update_nodedata(result)``).

        Marks the data dirty so the next :meth:`start` re-runs the step-5/6
        exchange (remote copies everywhere are stale now).

        SPMD contract: if *any* rank updates its node data between two
        ``start()`` calls, **every** rank must call ``update_nodedata``
        before its next ``start()`` (with unchanged data if it has no
        updates) — the step-5/6 exchange is collective, and a rank that
        skips it would serve stale values to its neighbours.
        """
        self._check_configured()
        new_local_nodes = np.asarray(new_local_nodes, dtype=np.float64)
        if new_local_nodes.shape != (self._arr.n_local, self._node_width):
            raise ConfigurationError(
                f"expected shape {(self._arr.n_local, self._node_width)}, "
                f"got {new_local_nodes.shape}"
            )
        self._nodes[: self._arr.n_local] = new_local_nodes
        self.env.clock.advance(self.env.host_memcpy_time(new_local_nodes.nbytes * self._node_scale))
        self._data_dirty = True

    def _check_configured(self) -> None:
        if not self._configured:
            raise ConfigurationError("call set_mesh first")
