"""Dynamic chunk scheduling across heterogeneous devices (paper §III-D).

Generalized reductions get *dynamic* scheduling: the input is cut into
fixed-size chunks held in a virtual task queue; consumers pull the next
chunk the moment they become free.  Consumers are:

- each CPU core ("Each CPU core continuously receives chunks to process");
- one *controller* per GPU ("the task retrieval and kernel launches of
  GPUs is controlled by a CPU thread and two streams are created for each
  GPU ... the controlling CPU thread retrieves a task chunk for each GPU,
  and splits the chunk into two smaller blocks").

The simulation is exact list scheduling in virtual time: a min-heap of
consumer free-times assigns chunks greedily, so load imbalance, scheduler
tail effects, and the GPU copy/compute pipeline all show up in the final
makespan — these are precisely the overheads the paper's Table II measures
as the gap between "perfect" and "actual" speedup.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.device.base import Device
from repro.device.cpu import CPUDevice
from repro.device.gpu import GPUDevice
from repro.device.work import WorkModel
from repro.util.errors import SchedulingError, ValidationError

#: Cost of one task-queue pull (the paper's pthread lock acquisition).
DISPATCH_OVERHEAD = 0.3e-6

ExecFn = Callable[[Device, int, int], None]


@dataclass
class WorkerReport:
    """Per-consumer accounting after a scheduled run."""

    name: str
    device: Device
    elems: int = 0
    chunks: int = 0
    finish: float = 0.0


@dataclass
class ScheduleReport:
    """Outcome of one dynamic-scheduling pass."""

    start: float
    makespan: float
    workers: list[WorkerReport] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return self.makespan - self.start

    def elems_by_device(self) -> dict[str, int]:
        """Total elements processed per device name."""
        out: dict[str, int] = {}
        for w in self.workers:
            out[w.device.name] = out.get(w.device.name, 0) + w.elems
        return out

    def load_imbalance(self) -> float:
        """(makespan - mean finish) / (makespan - start); 0 means perfectly even."""
        if not self.workers or self.makespan <= self.start:
            return 0.0
        mean_finish = sum(w.finish for w in self.workers) / len(self.workers)
        return (self.makespan - mean_finish) / (self.makespan - self.start)


class _CoreConsumer:
    """One CPU core pulling chunks from the queue."""

    def __init__(self, device: CPUDevice, core: int, start: float) -> None:
        self.device = device
        self.report = WorkerReport(name=f"{device.name}.core{core}", device=device)
        self.free_at = start
        self._core = core

    def execute(self, model: WorkModel, n_modeled: float, *, localized: bool, framework: bool) -> float:
        dur = DISPATCH_OVERHEAD + n_modeled * self.device.core_elem_time(
            model, localized=localized, framework=framework
        )
        iv = self.device.workers[self._core].schedule(self.free_at, dur, "chunk")
        self.free_at = iv.end
        return iv.end


class _GpuConsumer:
    """The controlling thread of one GPU (two-stream pipeline)."""

    def __init__(self, device: GPUDevice, start: float, streams: int) -> None:
        self.device = device
        self.report = WorkerReport(name=f"{device.name}.ctl", device=device)
        self.free_at = start
        self.streams = streams

    def execute(self, model: WorkModel, n_modeled: float, *, localized: bool, framework: bool) -> float:
        ready = self.free_at + DISPATCH_OVERHEAD
        execution = self.device.submit_chunk(
            model,
            n_modeled,
            ready,
            localized=localized,
            framework=framework,
            streams=self.streams,
        )
        self.free_at = execution.kernel_end
        return self.free_at


class ChunkScheduler:
    """Greedy pull-based scheduler over a device team."""

    def __init__(
        self,
        devices: list[Device],
        *,
        localized: bool = True,
        framework: bool = True,
        gpu_streams: int = 2,
    ) -> None:
        if not devices:
            raise SchedulingError("ChunkScheduler needs at least one device")
        self.devices = devices
        self.localized = localized
        self.framework = framework
        self.gpu_streams = gpu_streams

    def run(
        self,
        model: WorkModel,
        total_elems: int,
        chunk_elems: int,
        *,
        start: float = 0.0,
        time_scale: float = 1.0,
        exec_fn: ExecFn | None = None,
        gpu_chunk_multiplier: int = 1,
    ) -> ScheduleReport:
        """Schedule ``total_elems`` in chunks of ``chunk_elems``.

        Args:
            model: Cost model of the kernel.
            total_elems: Functional element count (the local input length).
            chunk_elems: Chunk granularity, in functional elements.
            start: Virtual time at which consumers start pulling.
            time_scale: Multiplier mapping functional counts to modeled
                counts (see :func:`repro.device.work.scaled`).
            exec_fn: Called as ``exec_fn(device, start_elem, n)`` to do the
                real math for each chunk (omit for timing-only runs).
            gpu_chunk_multiplier: GPUs pull this many queue chunks at once
                (larger GPU task grain amortizes launches/transfers).

        Returns:
            :class:`ScheduleReport` with per-consumer accounting.
        """
        if total_elems < 0:
            raise ValidationError(f"total_elems must be >= 0, got {total_elems}")
        if chunk_elems <= 0:
            raise ValidationError(f"chunk_elems must be > 0, got {chunk_elems}")
        if time_scale <= 0:
            raise ValidationError(f"time_scale must be > 0, got {time_scale}")
        if gpu_chunk_multiplier < 1:
            raise ValidationError("gpu_chunk_multiplier must be >= 1")

        consumers: list[_CoreConsumer | _GpuConsumer] = []
        for dev in self.devices:
            if isinstance(dev, CPUDevice):
                consumers.extend(_CoreConsumer(dev, c, start) for c in range(dev.cores))
            elif isinstance(dev, GPUDevice):
                consumers.append(_GpuConsumer(dev, start, self.gpu_streams))
            else:
                raise SchedulingError(f"unknown device type {type(dev).__name__}")

        heap: list[tuple[float, int, int]] = [
            (c.free_at, i, i) for i, c in enumerate(consumers)
        ]
        heapq.heapify(heap)
        next_elem = 0
        seq = len(consumers)
        while next_elem < total_elems:
            free_at, _, idx = heapq.heappop(heap)
            consumer = consumers[idx]
            grain = chunk_elems
            if isinstance(consumer, _GpuConsumer):
                grain *= gpu_chunk_multiplier
            n = min(grain, total_elems - next_elem)
            if exec_fn is not None:
                exec_fn(consumer.device, next_elem, n)
            finish = consumer.execute(
                model,
                n * time_scale,
                localized=self.localized,
                framework=self.framework,
            )
            consumer.report.elems += n
            consumer.report.chunks += 1
            next_elem += n
            seq += 1
            heapq.heappush(heap, (consumer.free_at, seq, idx))

        makespan = start
        reports = []
        for c in consumers:
            c.report.finish = max(c.free_at, start)
            makespan = max(makespan, c.report.finish)
            reports.append(c.report)
        return ScheduleReport(start=start, makespan=makespan, workers=reports)
