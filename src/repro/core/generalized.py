"""Generalized-reduction runtime (paper §II-A, §III-C/D/E).

Execution flow of :meth:`GeneralizedReductionRuntime.start`:

1. **Inter-process partitioning** — the input has no loop dependences, so
   it is evenly block-partitioned across processes (done by the caller
   handing each rank its local slice; the runtime checks consistency).
2. **Intra-process heterogeneous execution** — the local slice is cut into
   chunks and dynamically scheduled over CPU cores and GPU controllers by
   :class:`~repro.core.scheduler.ChunkScheduler`; every consumer owns a
   private reduction object (reduction localization: per-core objects on
   the CPU, shared-memory objects on GPUs when they fit).
3. **Local merge** — device objects are combined into one local object;
   GPU objects are first copied device→host (charged on the copy engine).
4. **Global combine** — :meth:`get_global_reduction` runs the paper's
   "parallel binary tree order" combine via ``comm.reduce`` (⌈log₂ n⌉
   rounds), optionally broadcasting the result back.

The functional math and the virtual-time accounting run together: every
chunk's ``emit_batch`` really executes, and its cost lands on the
consuming worker's timeline.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.api import GRKernel, elementwise_emit, resolve_op
from repro.core.env import RuntimeEnv
from repro.core.reduction_object import DenseReductionObject
from repro.core.scheduler import ChunkScheduler
from repro.device.costmodel import reduction_fits_in_shared
from repro.device.gpu import GPUDevice
from repro.device.work import WorkModel, scaled
from repro.util.errors import ConfigurationError


class GeneralizedReductionRuntime:
    """Runtime instance for one (or successive) generalized-reduction kernels."""

    def __init__(
        self,
        env: RuntimeEnv,
        *,
        chunk_elems: int | None = None,
        gpu_chunk_multiplier: int = 8,
        gpu_streams: int = 2,
        localized: bool | None = None,
    ) -> None:
        """
        Args:
            env: The owning runtime environment.
            chunk_elems: Dynamic-scheduling chunk size in functional
                elements (CPU cores pull one chunk at a time).  ``None``
                (default) picks ``local_elems / 512`` so the queue has
                enough chunks for dynamic balancing regardless of the
                functional scale.
            gpu_chunk_multiplier: GPUs pull this many chunks at once.
            gpu_streams: CUDA streams per GPU (the paper uses 2).
            localized: Force reduction localization on (True) or off
                (False); ``None`` (default) applies it automatically when
                the reduction object fits in GPU shared memory — the
                paper's behaviour.
        """
        self.env = env
        self.chunk_elems = None if chunk_elems is None else int(chunk_elems)
        self.gpu_chunk_multiplier = int(gpu_chunk_multiplier)
        self.gpu_streams = int(gpu_streams)
        self.localized = localized
        self._kernel: GRKernel | None = None
        self._data: np.ndarray | None = None
        self._global_start = 0
        self._model_local: int | None = None
        self._parameter: Any = None
        self._local_result: DenseReductionObject | None = None
        self.last_schedule = None

    # -- configuration (paper: set_emit_func / set_reduc_func) ---------
    def set_kernel(self, kernel: GRKernel) -> None:
        """Install a batched kernel specification."""
        self._kernel = kernel
        self._local_result = None

    def set_emit_func(
        self,
        emit,
        *,
        reduce_op: str = "sum",
        num_keys: int,
        value_width: int = 1,
        work: WorkModel,
        dtype=np.float64,
        batched: bool = False,
    ) -> None:
        """Install a paper-style per-unit emit function (Table I).

        ``emit(obj, input, index, parameter)`` is wrapped by
        :func:`~repro.core.api.elementwise_emit` unless ``batched=True``.
        With ``batched=True``, ``emit`` is already a batch function
        ``emit(obj, data, start, parameter)`` covering a whole chunk —
        typically ending in one :func:`~repro.core.api.emit_keys_batch`
        call, which is bit-identical to the per-element loop but avoids
        the Python-level dispatch per input unit.
        """
        emit_batch = emit if batched else elementwise_emit(emit)
        self.set_kernel(
            GRKernel(
                emit_batch=emit_batch,
                reduce_op=reduce_op,
                num_keys=num_keys,
                value_width=value_width,
                work=work,
                dtype=np.dtype(dtype),
            )
        )

    def set_reduc_func(self, reduce_op: str) -> None:
        """Change the combining op of the installed kernel."""
        if self._kernel is None:
            raise ConfigurationError("set a kernel before set_reduc_func")
        resolve_op(reduce_op)
        self._kernel = GRKernel(
            emit_batch=self._kernel.emit_batch,
            reduce_op=reduce_op,
            num_keys=self._kernel.num_keys,
            value_width=self._kernel.value_width,
            work=self._kernel.work,
            dtype=self._kernel.dtype,
        )

    def set_input(
        self,
        local_data: np.ndarray,
        *,
        global_start: int = 0,
        model_local_elems: int | None = None,
        parameter: Any = None,
    ) -> None:
        """Provide this process's input slice.

        Args:
            local_data: The rank-local input units (first axis = units).
            global_start: Global index of ``local_data[0]`` (so per-unit
                user functions see global indices, as in the paper).
            model_local_elems: Paper-scale element count this slice stands
                for; costs are charged at that scale while the math runs on
                ``len(local_data)`` units.
            parameter: Opaque extra state passed to the emit function
                (e.g. current Kmeans centers).
        """
        if local_data.ndim < 1 or len(local_data) == 0:
            raise ConfigurationError("local_data must be a non-empty array of input units")
        self._data = local_data
        self._global_start = int(global_start)
        self._model_local = model_local_elems
        self._parameter = parameter

    def set_parameter(self, parameter: Any) -> None:
        """Update the opaque parameter between launches (e.g. new centers)."""
        self._parameter = parameter

    # -- decisions ------------------------------------------------------
    def _use_localized(self) -> bool:
        if self.localized is not None:
            return self.localized
        kernel = self._kernel
        gpus = self.env.gpus
        if not gpus:
            return True  # CPU path: per-core private objects are always used
        value_bytes = kernel.value_width * kernel.dtype.itemsize
        return reduction_fits_in_shared(kernel.num_keys, value_bytes, gpus[0].spec)

    # -- execution -------------------------------------------------------
    def start(self) -> None:
        """Run the kernel over the local input (paper: ``gr->start()``)."""
        kernel = self._kernel
        if kernel is None:
            raise ConfigurationError("no kernel configured; call set_kernel/set_emit_func")
        if self._data is None:
            raise ConfigurationError("no input configured; call set_input")
        env = self.env
        clock = env.clock
        t0 = clock.now
        for dev in env.devices:
            dev.reset(start=t0)

        localized = self._use_localized()
        n_local = len(self._data)
        time_scale = scaled(n_local, self._model_local)
        chunk_elems = self.chunk_elems or max(16, n_local // 512)

        # One private reduction object per device (the CPU object stands
        # for the per-core private objects, merged at chunk granularity —
        # their combine cost is part of CPU_PRIVATE_INSERT_COST).
        objs: dict[str, DenseReductionObject] = {}
        for dev in env.devices:
            objs[dev.name] = DenseReductionObject(
                kernel.num_keys, kernel.value_width, kernel.reduce_op, kernel.dtype
            )

        def exec_chunk(device, start_elem: int, n: int) -> None:
            chunk = self._data[start_elem : start_elem + n]
            kernel.emit_batch(
                objs[device.name], chunk, self._global_start + start_elem, self._parameter
            )

        scheduler = ChunkScheduler(
            env.devices,
            localized=localized,
            framework=True,
            gpu_streams=self.gpu_streams,
        )
        report = scheduler.run(
            kernel.work,
            n_local,
            chunk_elems,
            start=t0,
            time_scale=time_scale,
            exec_fn=exec_chunk,
            gpu_chunk_multiplier=self.gpu_chunk_multiplier,
        )
        self.last_schedule = report

        # Local merge: GPU objects come back over PCIe, then host combines.
        merged: DenseReductionObject | None = None
        merge_ready = report.makespan
        obj_bytes = kernel.num_keys * kernel.value_width * kernel.dtype.itemsize
        for dev in env.devices:
            obj = objs[dev.name]
            if isinstance(dev, GPUDevice):
                iv = dev.copy_engine.schedule(
                    report.makespan, dev.transfer_time(obj_bytes), "reduction.d2h"
                )
                merge_ready = max(merge_ready, iv.end)
            if merged is None:
                merged = obj
            else:
                merged.merge(obj)
                merge_ready += env.host_memcpy_time(obj_bytes)
        clock.advance_to(merge_ready)
        self._local_result = merged
        if env.trace.enabled:
            env.trace.record(
                "compute", f"GR:{kernel.work.name}", t0, clock.now, {"elems": n_local}
            )
            # Dynamic-scheduling outcome: chunks and elements per device,
            # plus this run's load imbalance, for the cluster-wide report.
            for w in report.workers:
                env.trace.count(f"gr.chunks[{w.device.name}]", w.chunks)
                env.trace.count(f"gr.elems[{w.device.name}]", w.elems)
            env.trace.count("gr.inserts", float(sum(o.n_inserts for o in objs.values())))
            env.trace.gauge("gr.load_imbalance", report.load_imbalance())

    # -- results -----------------------------------------------------------
    def get_local_reduction(self) -> DenseReductionObject:
        """This process's reduction object (paper: ``get_local_reduction``)."""
        if self._local_result is None:
            raise ConfigurationError("start() has not produced a result yet")
        return self._local_result

    def get_global_reduction(self, bcast: bool = True) -> np.ndarray | None:
        """Tree-combine all processes' objects (paper §III-B global combine).

        Returns the combined ``(num_keys, value_width)`` array — on every
        rank when ``bcast`` (the common case: all ranks need the new
        Kmeans centers), else only on rank 0 (others get ``None``).
        """
        local = self.get_local_reduction()
        ufunc, _ = resolve_op(local.op)
        combined = self.env.comm.reduce(local.values, op=lambda a, b: ufunc(a, b), root=0)
        if bcast:
            combined = self.env.comm.bcast(combined, root=0)
        return combined
