"""Fused stencil+reduce runtime (cf. the loop-of-stencil-reduce pattern,
arXiv 1609.04567).

Every convergence-driven solver pairs a stencil sweep with a global
scalar — a residual norm, an energy, image statistics — and the naive
composition pays a separate reduction pass after every step: walk the
grid again to produce the local value, then a blocking ``allreduce``
while the network sits idle.  :class:`StencilReduceRuntime` fuses both
halves:

- **Compute fusion.**  The local reduction value is produced *inside*
  the sweep: the kernel's per-element work is topped up by
  ``reduce_flops`` (the few flops of the fused accumulation — it rides
  the sweep's memory traffic, so no second pass over the grid and no
  extra kernel launch is charged), and the functional value is computed
  by ``reduce_fn(old_interior, new_interior)`` right after the kernel
  apply, before the buffer swap.
- **Communication fusion.**  The per-step combine is a recursive-
  doubling collective whose virtual charges *overlap the next step's
  halo exchange*: unless the loop is about to end, the runtime packs and
  sends the next step's axis-0 strips (:meth:`StencilRuntime.
  begin_step_early`) before folding the scalar, so the halo payloads'
  flight time hides under the combine instead of stalling the next step.

The combine itself reuses the communicator's ``allreduce`` (recursive
doubling with non-power-of-two fold-in), so the folded value is
bit-for-bit the value a separate post-step ``allreduce`` would produce:
``run_until`` matches a reference step-then-allreduce loop exactly —
same iteration count, same residual sequence, same final grid — while
arriving at it faster in virtual time.

Checkpoint/restart integrates through
:meth:`~repro.core.checkpoint.CheckpointManager.run_convergence`: the
convergence accumulator (iteration count, value/residual history, the
kernel parameter) snapshots with the grid, and speculation is disabled
so no halo message is ever in flight across a rollback boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.checkpoint import CheckpointManager
from repro.core.env import RuntimeEnv
from repro.core.stencil import StencilRuntime
from repro.util.errors import ConfigurationError

#: Trace category for fused-reduce spans (classified as compute).
REDUCE_CATEGORY = "stencil_reduce"

#: Default extra flops per element charged for the fused accumulation
#: (one subtract + one multiply-add of the running sum).
FUSED_REDUCE_FLOPS = 2.0


def l2_sq_residual(old: np.ndarray, new: np.ndarray) -> float:
    """Default ``reduce_fn``: squared L2 norm of the step update."""
    diff = (new - old).ravel()
    return float(np.dot(diff, diff))


@dataclass
class ConvergenceResult:
    """Outcome of one :meth:`StencilReduceRuntime.run_until` loop."""

    iterations: int
    residuals: list[float] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)
    converged: bool = False

    @property
    def final_residual(self) -> float:
        if not self.residuals:
            raise ConfigurationError("no iterations ran; no residual to report")
        return self.residuals[-1]


class StencilReduceRuntime(StencilRuntime):
    """Stencil runtime with a fused per-step global reduction.

    Args:
        env: The runtime environment.
        reduce_flops: Per-element flops added to the kernel's work model
            while a fused reduction is armed (see module docstring).
        **options: Forwarded to :class:`StencilRuntime`.
    """

    def __init__(self, env: RuntimeEnv, *, reduce_flops: float = FUSED_REDUCE_FLOPS, **options) -> None:
        super().__init__(env, **options)
        if reduce_flops < 0:
            raise ConfigurationError(f"reduce_flops must be >= 0, got {reduce_flops}")
        self.reduce_flops = float(reduce_flops)
        self._reduce_fn: Callable[[np.ndarray, np.ndarray], Any] | None = None
        self._local_value: Any = None
        self._conv: dict | None = None
        #: Per-sweep local values of the current temporal block (armed by
        #: :meth:`_fused_block`); None outside blocked convergence loops.
        self._block_values: list[Any] | None = None
        #: Per-sweep interior snapshots of the current block, kept only
        #: when a tolerance is set so a mid-block convergence can rewind
        #: the grid to the converged sweep.
        self._block_grids: list[np.ndarray] | None = None

    # -- fused charging and functional hook ------------------------------
    def _effective_work(self, dev) -> Any:
        work = super()._effective_work(dev)
        if self._reduce_fn is None:
            return work
        # The fused accumulation reuses the values the sweep already has
        # in registers: extra flops, no extra bytes, no extra launch.
        return work.replace(flops_per_elem=work.flops_per_elem + self.reduce_flops)

    def _after_apply(self, src: np.ndarray, dst: np.ndarray) -> None:
        if self._reduce_fn is not None:
            # Interiors are always fully valid, even mid-block: every
            # sweep's region contains the interior, so the fused local
            # value is bitwise the one an unblocked sweep produces.
            self._local_value = self._reduce_fn(src[self.interior], dst[self.interior])
            if self._block_values is not None:
                self._block_values.append(self._local_value)
            if self._block_grids is not None:
                self._block_grids.append(dst[self.interior].copy())

    # -- the fused combine ----------------------------------------------
    def _combine(self, local: Any, reduce_op: str) -> Any:
        """Fold the per-rank values (recursive doubling, traced).

        Delegates to the communicator's ``allreduce`` so the result is
        bitwise the one a standalone post-step collective would produce;
        the *placement* is what fusion changes (the call runs while the
        speculatively begun next-step halo messages are in flight).
        """
        env = self.env
        t0 = env.clock.now
        value = env.comm.allreduce(local, op=reduce_op)
        if env.trace.enabled:
            env.trace.record(
                REDUCE_CATEGORY, "SR:combine", t0, env.clock.now, {"step": self._timestep}
            )
            env.trace.count("stencil_reduce.combines")
        return value

    # -- the loop --------------------------------------------------------
    def run_until(
        self,
        *,
        max_iters: int,
        tol: float | None = None,
        reduce_op: str = "sum",
        reduce_fn: Callable[[np.ndarray, np.ndarray], Any] | None = None,
        residual_fn: Callable[[Any], float] | None = None,
        on_value: Callable[[Any], None] | None = None,
        checkpoint: CheckpointManager | None = None,
    ) -> ConvergenceResult:
        """Iterate until the residual drops to ``tol`` or ``max_iters``.

        Per iteration: one stencil step whose sweep also produces the
        local reduction value (``reduce_fn(old, new)`` over the interior,
        charged at ``reduce_flops`` extra per element), the next step's
        speculative halo send, the global combine (``reduce_op`` over the
        ranks' local values), then the convergence test.

        With temporal blocking (``configure(time_block=k)``) the loop
        runs block-at-a-time: ``k`` fused sweeps per exchange, one
        *vector* combine folding all ``k`` local values at once (bitwise
        identical per component to ``k`` scalar combines), speculation
        covering the next block's deep exchange, and checkpoint
        snapshots on block boundaries.  Residual histories and final
        grids match the ``time_block=1`` loop bit for bit, including a
        mid-block convergence (the grid rewinds to the converged sweep).
        ``on_value`` is incompatible with ``time_block > 1`` — it feeds
        the combined value back between sweeps, which a blocked loop
        cannot honour.

        Args:
            max_iters: Hard iteration cap (>= 1).
            tol: Stop once ``residual_fn(combined) <= tol``; ``None``
                never stops early (pure fixed-step fused loop).
            reduce_op: Elementwise combine op ("sum", "min", "max", ...).
            reduce_fn: Local value from (old, new) interiors; defaults to
                the squared L2 norm of the update.
            residual_fn: Scalar residual from the combined value;
                defaults to ``sqrt`` for the default ``reduce_fn`` and to
                ``float`` otherwise.
            on_value: Called with the combined value each iteration
                (before the convergence test) — e.g. to feed global
                statistics back into the kernel parameter for the *next*
                step, as SRAD does.
            checkpoint: Drive the loop through this
                :class:`~repro.core.checkpoint.CheckpointManager`
                (speculation is disabled: no in-flight halo message may
                straddle a rollback boundary).

        Returns:
            The convergence record; every rank returns identical
            iteration counts and residual sequences (the combine is a
            collective).
        """
        self._check_configured()
        if max_iters < 1:
            raise ConfigurationError(f"max_iters must be >= 1, got {max_iters}")
        if self._time_block > 1 and on_value is not None:
            raise ConfigurationError(
                "on_value feeds the combined value back between sweeps and is "
                "incompatible with time_block > 1 (temporal blocking only "
                "combines once per block); configure time_block=1 for "
                "statistics-coupled loops like SRAD"
            )
        if reduce_fn is None:
            reduce_fn = l2_sq_residual
            if residual_fn is None:
                residual_fn = math.sqrt
        if residual_fn is None:
            residual_fn = float
        self._reduce_fn = reduce_fn
        self._conv = {"iterations": 0, "residuals": [], "values": [], "converged": False}
        blocked = self._time_block > 1
        try:
            if checkpoint is not None:
                if blocked:
                    # One manager iteration per temporal block: snapshots
                    # land on block boundaries, so a crash-restart inside
                    # a block replays the whole block to the same
                    # bit-identical grid and history.
                    def body(_it: int) -> bool:
                        return self._fused_block(
                            tol, reduce_op, residual_fn, max_iters, speculate=False
                        )

                    n_blocks = -(-max_iters // self._time_block)
                    checkpoint.run_convergence(
                        n_blocks, body, self.snapshot_state, self.restore_state
                    )
                else:

                    def body(_it: int) -> bool:
                        return self._fused_iteration(
                            tol, reduce_op, residual_fn, on_value, speculate=False
                        )

                    checkpoint.run_convergence(
                        max_iters, body, self.snapshot_state, self.restore_state
                    )
            elif blocked:
                while self._conv["iterations"] < max_iters:
                    left = max_iters - self._conv["iterations"]
                    speculate = left > min(self._time_block, left)
                    if self._fused_block(
                        tol, reduce_op, residual_fn, max_iters, speculate=speculate
                    ):
                        break
                self.cancel_begun_step()
            else:
                while self._conv["iterations"] < max_iters:
                    speculate = self._conv["iterations"] + 1 < max_iters
                    if self._fused_iteration(
                        tol, reduce_op, residual_fn, on_value, speculate=speculate
                    ):
                        break
                self.cancel_begun_step()
            conv = self._conv
            return ConvergenceResult(
                iterations=conv["iterations"],
                residuals=conv["residuals"],
                values=conv["values"],
                converged=conv["converged"],
            )
        finally:
            self._reduce_fn = None
            self._local_value = None
            self._conv = None

    def _fused_iteration(
        self,
        tol: float | None,
        reduce_op: str,
        residual_fn: Callable[[Any], float],
        on_value: Callable[[Any], None] | None,
        *,
        speculate: bool,
    ) -> bool:
        """One fused step + combine + convergence test; True to stop."""
        env = self.env
        self._local_value = None
        self.step()
        local = self._local_value
        conv = self._conv
        conv["iterations"] += 1
        if speculate:
            # Send the next step's strips before folding the scalar: the
            # combine's virtual time hides the halo flight time.
            self.begin_step_early()
        value = self._combine(local, reduce_op)
        conv["values"].append(value)
        if on_value is not None:
            on_value(value)
        residual = float(residual_fn(value))
        conv["residuals"].append(residual)
        if env.trace.enabled:
            env.trace.count("stencil_reduce.steps")
            env.trace.gauge("stencil_reduce.residual", residual)
        done = tol is not None and residual <= tol
        if done:
            conv["converged"] = True
        return done

    def _fused_block(
        self,
        tol: float | None,
        reduce_op: str,
        residual_fn: Callable[[Any], float],
        max_iters: int,
        *,
        speculate: bool,
    ) -> bool:
        """One temporal block of fused sweeps + a single vector combine.

        Every sweep's local value is captured by the :meth:`_after_apply`
        hook; the block then folds all of them in *one* collective —
        recursive doubling applies the combine ufunc elementwise, so each
        component of the folded vector is bitwise the scalar a per-sweep
        ``allreduce`` would have produced (same rank tree, same IEEE op
        order).  Residuals are consumed sweep by sweep against ``tol``:
        on a mid-block hit the grid rewinds to the converged sweep's
        interior (the overshot sweeps' charges stay — the block was
        really computed) and the history ends exactly where the
        ``time_block=1`` loop's would.  Returns True to stop.
        """
        env = self.env
        conv = self._conv
        sweeps = min(self._time_block, max_iters - conv["iterations"])
        self._block_values = []
        self._block_grids = [] if tol is not None else None
        try:
            self._blocked_step(sweeps)
            values = self._block_values
            grids = self._block_grids
        finally:
            self._block_values = None
            self._block_grids = None
        if speculate:
            # Post the next block's deep exchange before the combine so
            # the strips' flight time hides under the collective.
            self.begin_step_early()
        combined = self._combine(np.stack([np.asarray(v) for v in values]), reduce_op)
        done = False
        for s in range(sweeps):
            value = combined[s]
            conv["iterations"] += 1
            conv["values"].append(value)
            residual = float(residual_fn(value))
            conv["residuals"].append(residual)
            if env.trace.enabled:
                env.trace.count("stencil_reduce.steps")
                env.trace.gauge("stencil_reduce.residual", residual)
            if tol is not None and residual <= tol:
                conv["converged"] = True
                done = True
                if s < sweeps - 1:
                    # The block overshot: functionally rewind the grid to
                    # the converged sweep (halos are stale but the loop
                    # is over; results read interiors only).
                    self._src[self.interior] = grids[s]
                break
        return done

    # -- checkpoint/restart ----------------------------------------------
    def snapshot_state(self) -> dict:
        """Grid snapshot plus the convergence accumulator.

        The residual/value history, iteration count, and the kernel
        parameter all evolve with the loop (``on_value`` may rewrite the
        parameter from global statistics), so a rollback must restore
        them together with the grid — otherwise a recovered run would
        re-append residuals it already recorded or resume with a
        parameter computed from lost iterations.
        """
        state = super().snapshot_state()
        if self._conv is not None:
            # Histories are append-only and the combined values are fresh
            # objects each step, so shallow list copies are independent.
            state["convergence"] = {
                "iterations": self._conv["iterations"],
                "residuals": list(self._conv["residuals"]),
                "values": list(self._conv["values"]),
                "converged": self._conv["converged"],
            }
            state["parameter"] = self._parameter
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        conv = state.get("convergence")
        if conv is not None and self._conv is not None:
            self._conv["iterations"] = conv["iterations"]
            self._conv["residuals"] = list(conv["residuals"])
            self._conv["values"] = list(conv["values"])
            self._conv["converged"] = conv["converged"]
            self._parameter = state["parameter"]
