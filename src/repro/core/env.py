"""Runtime environment: device team construction and runtime factories.

Mirrors the paper's Listing 2: one :class:`RuntimeEnv` per process wraps
the rank context, builds the device team (CPU cores and/or GPUs according
to a :class:`DeviceConfig`), and hands out pattern runtime instances
(``env.get_GR()``, ``env.get_IR()``, ``env.get_stencil()``).  A runtime
instance may be reused for multiple kernels of the same pattern by
resetting its configuration, exactly as in the paper's Moldyn example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.base import Device
from repro.device.cpu import CPUDevice
from repro.device.gpu import GPUDevice
from repro.sim.engine import RankContext
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceConfig:
    """Which of a node's execution resources the runtime may use.

    The paper's evaluation sweeps exactly these mixes: CPU-only, 1 GPU,
    2 GPUs, CPU+1GPU, CPU+2GPU.

    Attributes:
        use_cpu: Use the node's CPU cores.
        num_gpus: GPUs to use; ``None`` means all available.
    """

    use_cpu: bool = True
    num_gpus: int | None = None

    def label(self) -> str:
        g = "all" if self.num_gpus is None else str(self.num_gpus)
        return f"cpu={'y' if self.use_cpu else 'n'},gpus={g}"


#: Named device mixes used throughout the evaluation.
DEVICE_MIXES: dict[str, DeviceConfig] = {
    "cpu": DeviceConfig(use_cpu=True, num_gpus=0),
    "1gpu": DeviceConfig(use_cpu=False, num_gpus=1),
    "2gpu": DeviceConfig(use_cpu=False, num_gpus=2),
    "cpu+1gpu": DeviceConfig(use_cpu=True, num_gpus=1),
    "cpu+2gpu": DeviceConfig(use_cpu=True, num_gpus=2),
}


class RuntimeEnv:
    """Per-process runtime environment (paper: ``Runtime_env env; env.init()``)."""

    def __init__(self, ctx: RankContext, config: DeviceConfig | str = DeviceConfig()) -> None:
        if isinstance(config, str):
            try:
                config = DEVICE_MIXES[config]
            except KeyError:
                raise ConfigurationError(
                    f"unknown device mix {config!r}; known: {sorted(DEVICE_MIXES)}"
                ) from None
        self.ctx = ctx
        self.config = config
        self.devices: list[Device] = []
        if config.use_cpu:
            self.devices.append(CPUDevice(ctx.node.cpu, index=0))
        avail = len(ctx.node.gpus)
        want = avail if config.num_gpus is None else config.num_gpus
        if want > avail:
            raise ConfigurationError(
                f"requested {want} GPUs but node {ctx.node_index} has {avail}"
            )
        for g in range(want):
            self.devices.append(GPUDevice(ctx.node.gpus[g], index=g))
        if not self.devices:
            raise ConfigurationError("device config selects no devices at all")
        for dev in self.devices:
            # No-op on plain Traces; obs Recorders attach interval sinks to
            # every engine timeline so per-step resets don't lose history.
            ctx.trace.bind_device(dev)
        self._finalized = False

    # -- convenience passthroughs --------------------------------------
    @property
    def comm(self):
        return self.ctx.comm

    @property
    def clock(self):
        return self.ctx.clock

    @property
    def trace(self):
        return self.ctx.trace

    @property
    def rank(self) -> int:
        return self.ctx.rank

    @property
    def nprocs(self) -> int:
        return self.ctx.size

    @property
    def cpu(self) -> CPUDevice | None:
        """The CPU device, if configured (used for host-side costs)."""
        for d in self.devices:
            if isinstance(d, CPUDevice):
                return d
        return None

    @property
    def gpus(self) -> list[GPUDevice]:
        return [d for d in self.devices if isinstance(d, GPUDevice)]

    def host_memcpy_time(self, nbytes: float) -> float:
        """Host memory copy cost, available even in GPU-only configs."""
        cpu = self.cpu
        if cpu is not None:
            return cpu.memcpy_time(nbytes)
        return 2.0 * nbytes / self.ctx.node.cpu.mem_bandwidth

    # -- runtime factories (paper: env.get_IR(), env.get_GR()) ---------
    def get_GR(self, **options):
        """A generalized-reduction runtime bound to this environment."""
        from repro.core.generalized import GeneralizedReductionRuntime

        self._check_live()
        return GeneralizedReductionRuntime(self, **options)

    def get_IR(self, **options):
        """An irregular-reduction runtime bound to this environment."""
        from repro.core.irregular import IrregularReductionRuntime

        self._check_live()
        return IrregularReductionRuntime(self, **options)

    def get_stencil(self, **options):
        """A stencil runtime bound to this environment."""
        from repro.core.stencil import StencilRuntime

        self._check_live()
        return StencilRuntime(self, **options)

    def get_stencil_reduce(self, **options):
        """A fused stencil+reduce runtime bound to this environment."""
        from repro.core.stencil_reduce import StencilReduceRuntime

        self._check_live()
        return StencilReduceRuntime(self, **options)

    def _check_live(self) -> None:
        if self._finalized:
            raise ConfigurationError("RuntimeEnv already finalized")

    def finalize(self) -> None:
        """End-of-program hook (paper: ``env.finalize()``); idempotent."""
        self._finalized = True
