"""Additional applications demonstrating pattern coverage.

The paper argues its three patterns cover "16 out of 23 Rodinia benchmark
applications" (§I).  Beyond the five evaluation apps, this package
implements three more algorithm families on the *unchanged* framework API,
substantiating that coverage claim:

- :mod:`~repro.apps.extra.pagerank` — PageRank: an irregular reduction
  over a *directed* graph (one-sided edge updates) plus a generalized
  reduction for the convergence norm.
- :mod:`~repro.apps.extra.sssp` — single-source shortest paths via
  Bellman-Ford relaxation: an irregular reduction with the **min**
  operator (the non-sum reduction path).
- :mod:`~repro.apps.extra.srad` — Rodinia's SRAD (speckle-reducing
  anisotropic diffusion): a generalized reduction for the ROI statistics
  fused with a radius-2 stencil (the two Rodinia kernels fused through
  halo recomputation).
- :mod:`~repro.apps.extra.hotspot` — Rodinia's HotSpot thermal simulation:
  a stencil whose update reads a static power-map coefficient field (the
  SII-C extension in a real benchmark).
- :mod:`~repro.apps.extra.jacobi2d` — a Jacobi/Poisson solver iterating
  *until convergence*: the fused stencil+reduce pattern (per-step
  residual produced inside the sweep, combined overlapping the next halo
  exchange).

Each module carries a NumPy (and, for the graph apps, a networkx) oracle.
"""

from repro.apps.extra import hotspot, jacobi2d, pagerank, srad, sssp

__all__ = ["pagerank", "sssp", "srad", "hotspot", "jacobi2d"]
