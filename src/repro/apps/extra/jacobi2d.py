"""Jacobi 2-D Poisson solver — the convergence-driven stencil scenario.

Solves ``laplacian(u) = f`` on the unit square with zero Dirichlet
boundaries by Jacobi iteration, running until the L2 norm of the step
update drops below a tolerance — the iterate-until-converged shape none
of the fixed-step apps express, and the canonical client of the fused
stencil+reduce runtime: the residual is produced inside each sweep and
folded through a combine that overlaps the next halo exchange, so no
step pays a standalone reduction pass.

The right-hand side rides as a *static* (read-only) coefficient field;
the update is the textbook four-point average minus the source term::

    u'[i,j] = 1/4 * (u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1] - h^2 f[i,j])

Cost model: 6 FLOPs per element over ~24 bytes of traffic (the grid read
amortized across the 5-point neighbourhood, the rhs read, the write) —
memory-bound, like every low-order stencil.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import AppRun, sequential_time
from repro.cluster.specs import ClusterSpec
from repro.core.api import StencilKernel, shifted
from repro.core.env import DeviceConfig, RuntimeEnv
from repro.device.work import WorkModel
from repro.sim.engine import RankContext, spmd_run
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Jacobi2DConfig:
    """Jacobi/Poisson workload (functional scale only)."""

    shape: tuple[int, int] = (48, 48)
    tol: float = 5e-4
    max_iters: int = 400
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.shape) != 2 or any(s < 8 for s in self.shape):
            raise ValidationError("Jacobi2D needs a 2-D grid with extents >= 8")
        if self.tol <= 0 or self.max_iters < 1:
            raise ValidationError("need tol > 0 and max_iters >= 1")


def work_model() -> WorkModel:
    return WorkModel(name="jacobi2d", flops_per_elem=6.0, bytes_per_elem=24.0)


def generate_rhs(config: Jacobi2DConfig) -> np.ndarray:
    """A few smooth Gaussian sources/sinks (deterministic per seed)."""
    rng = np.random.default_rng(config.seed)
    ny, nx = config.shape
    yy, xx = np.meshgrid(np.linspace(0, 1, ny), np.linspace(0, 1, nx), indexing="ij")
    rhs = np.zeros(config.shape)
    for _ in range(4):
        cy, cx = rng.uniform(0.2, 0.8, size=2)
        amp = rng.uniform(-1.0, 1.0)
        rhs += amp * np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / 0.02))
    return rhs


def jacobi_apply(src: np.ndarray, dst: np.ndarray, region: tuple, param) -> None:
    """The damped-free Jacobi update; ``param`` carries h^2 and the rhs field."""
    h_sq = param.param
    rhs = param["rhs"]
    dst[region] = 0.25 * (
        shifted(src, region, (1, 0))
        + shifted(src, region, (-1, 0))
        + shifted(src, region, (0, 1))
        + shifted(src, region, (0, -1))
        - h_sq * rhs[region]
    )


def make_kernel() -> StencilKernel:
    return StencilKernel(
        apply=jacobi_apply, halo=1, work=work_model(), dtype=np.dtype(np.float64)
    )


def _grid_spacing_sq(config: Jacobi2DConfig) -> float:
    return (1.0 / (max(config.shape) - 1)) ** 2


def rank_program(
    ctx: RankContext,
    config: Jacobi2DConfig,
    mix: str | DeviceConfig = "cpu",
    *,
    time_block: int | str = 1,
) -> dict:
    """SPMD body: fused Jacobi sweeps until the update norm reaches tol.

    ``time_block`` enables temporal blocking (``k`` sweeps per deep halo
    exchange, ``"auto"`` to let the link-table tuner pick); the final
    grid and residual history stay bit-identical to ``time_block=1``.
    """
    env = RuntimeEnv(ctx, mix)
    st = env.get_stencil_reduce()
    st.configure(
        make_kernel(),
        config.shape,
        parameter=_grid_spacing_sq(config),
        static_fields={"rhs": generate_rhs(config)},
        time_block=time_block,
    )
    st.set_global_grid(np.zeros(config.shape))
    res = st.run_until(max_iters=config.max_iters, tol=config.tol)
    grid = st.gather_global()
    env.finalize()
    return {
        "grid": grid,
        "iterations": res.iterations,
        "residuals": res.residuals,
        "converged": res.converged,
        "time_block": st.time_block,
    }


def run(
    cluster: ClusterSpec,
    config: Jacobi2DConfig | None = None,
    mix: str | DeviceConfig = "cpu",
    *,
    time_block: int | str = 1,
    **spmd_kwargs,
) -> AppRun:
    """Run Jacobi2D to convergence; the makespan is the loop's actual time."""
    config = config or Jacobi2DConfig()
    result = spmd_run(
        rank_program,
        cluster,
        args=(config, mix),
        kwargs={"time_block": time_block},
        **spmd_kwargs,
    )
    iterations = result.values[0]["iterations"]
    seq = sequential_time(
        work_model(), float(np.prod(config.shape)), cluster.node, iterations
    )
    return AppRun(
        app="jacobi2d",
        mix=mix if isinstance(mix, str) else mix.label(),
        nodes=cluster.num_nodes,
        makespan=result.makespan,
        seq_time=seq,
        result=result.values[0]["grid"],
        spmd=result,
    )


def sequential_reference(config: Jacobi2DConfig) -> tuple[np.ndarray, int, list[float]]:
    """Plain NumPy step-then-norm loop with the same conventions.

    Returns (final grid, iterations, residual history).  The residuals
    use the same squared-L2-then-sqrt formula as the runtime; summation
    order differs from the rank-decomposed combine, so comparisons hold
    to roundoff, not bitwise.
    """
    rhs = generate_rhs(config)
    h_sq = _grid_spacing_sq(config)
    shape = config.shape
    src = np.zeros(tuple(s + 2 for s in shape))
    dst = np.zeros_like(src)
    rhs_padded = np.zeros_like(src)
    region = tuple(slice(1, s + 1) for s in shape)
    rhs_padded[region] = rhs

    class _Param:
        param = h_sq

        def __getitem__(self, name):
            return rhs_padded

    residuals: list[float] = []
    iterations = 0
    for _ in range(config.max_iters):
        jacobi_apply(src, dst, region, _Param())
        diff = (dst[region] - src[region]).ravel()
        residual = float(np.sqrt(np.dot(diff, diff)))
        residuals.append(residual)
        iterations += 1
        src, dst = dst, src
        src[0, :] = src[-1, :] = 0
        src[:, 0] = src[:, -1] = 0
        if residual <= config.tol:
            break
    return src[region], iterations, residuals
