"""SRAD (speckle-reducing anisotropic diffusion) — a Rodinia benchmark.

Exercises the multi-pattern composition the paper's coverage claim rests
on.  Each iteration of Rodinia's SRAD is:

1. a **global reduction** over the image for the ROI statistics (mean
   and variance give the speckle scale ``q0^2``) — here *fused into the
   sweep* via the stencil+reduce runtime: every step's statistics are
   produced by the kernel pass itself and combined while the next halo
   exchange is in flight, so no iteration pays a separate stats pass
   (only the first step primes from the initial image), then
2. two stencil passes: a diffusion-coefficient field ``c`` from the
   local gradients, then the image update from ``c`` at the east/south
   neighbours.

The two stencil passes are *fused* into one radius-2 kernel: the update at
``x`` needs ``c`` at ``x`` and at its west/north neighbours, and each
``c`` needs image values one step further out — so recomputing ``c``
inside a halo-2 kernel avoids a second evolving grid (the paper's §II-C
single-object limitation) at the cost of redundant arithmetic, exactly the
trade fused GPU stencils make.

SRAD is **not** temporal-blocking-safe: the diffusion coefficient of
sweep ``s+1`` depends on the *globally combined* statistics of sweep
``s`` (fed back through ``on_value``), so sweeps cannot be batched
between exchanges.  The runtime enforces this — ``run_until`` rejects
``on_value`` callbacks when ``time_block > 1`` — and SRAD always runs
at ``time_block=1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import StencilKernel, shifted
from repro.core.env import DeviceConfig, RuntimeEnv
from repro.data.grids import synthetic_image
from repro.device.work import WorkModel
from repro.sim.engine import RankContext
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class SradConfig:
    """SRAD workload (functional scale only)."""

    shape: tuple[int, int] = (64, 64)
    iterations: int = 4
    lam: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.shape) != 2 or any(s < 8 for s in self.shape):
            raise ValidationError("SRAD needs a 2-D image with extents >= 8")
        if not 0 < self.lam <= 1:
            raise ValidationError("lam must be in (0, 1]")


#: Per-element flops of the fused (sum, sum-of-squares) accumulation.
STATS_FUSED_FLOPS = 3.0


def update_work() -> WorkModel:
    return WorkModel(name="srad.update", flops_per_elem=60.0, bytes_per_elem=24.0)


def _coefficient(src: np.ndarray, region: tuple, q0_sq: float) -> np.ndarray:
    """The diffusion coefficient ``c`` over ``region`` (Rodinia's formula)."""
    j = src[region]
    dn = shifted(src, region, (-1, 0)) - j
    ds = shifted(src, region, (1, 0)) - j
    dw = shifted(src, region, (0, -1)) - j
    de = shifted(src, region, (0, 1)) - j
    j_safe = np.maximum(j, 1e-12)
    g2 = (dn * dn + ds * ds + dw * dw + de * de) / (j_safe * j_safe)
    l_ = (dn + ds + dw + de) / j_safe
    num = 0.5 * g2 - (1.0 / 16.0) * l_ * l_
    den_inner = 1.0 + 0.25 * l_
    q_sq = num / np.maximum(den_inner * den_inner, 1e-12)
    den = (q_sq - q0_sq) / max(q0_sq * (1 + q0_sq), 1e-12)
    c = 1.0 / (1.0 + den)
    return np.clip(c, 0.0, 1.0)


def make_update_kernel(lam: float) -> StencilKernel:
    """Fused halo-2 kernel: recompute ``c`` where needed, apply the update."""

    def apply(src, dst, region, q0_sq):
        def shift_region(dr, dc):
            return tuple(
                slice(sl.start + d, sl.stop + d) for sl, d in zip(region, (dr, dc))
            )

        c_here = _coefficient(src, region, q0_sq)
        c_south = _coefficient(src, shift_region(1, 0), q0_sq)
        c_east = _coefficient(src, shift_region(0, 1), q0_sq)
        j = src[region]
        dn = shifted(src, region, (-1, 0)) - j
        ds = shifted(src, region, (1, 0)) - j
        dw = shifted(src, region, (0, -1)) - j
        de = shifted(src, region, (0, 1)) - j
        divergence = c_south * ds + c_here * dn + c_east * de + c_here * dw
        dst[region] = j + (lam / 4.0) * divergence

    return StencilKernel(apply=apply, halo=2, work=update_work())


def _q0_sq_from_stats(total: float, total_sq: float, count: float) -> float:
    """Rodinia's speckle scale from the ROI sum / sum-of-squares."""
    mean = total / count
    var = total_sq / count - mean * mean
    return max(var / max(mean * mean, 1e-12), 1e-12)


def rank_program(
    ctx: RankContext, config: SradConfig, mix: str | DeviceConfig = "cpu"
) -> np.ndarray | None:
    """SPMD body: fused statistics + diffusion stencil per iteration.

    The norm loop runs on the fused stencil+reduce runtime: each sweep
    also produces the local (sum, sum of squares) of the *new* image, and
    the combine — overlapping the next step's halo exchange — yields the
    global statistics that set ``q0^2`` for the following step.  Only the
    very first step's statistics (of the initial image, before any sweep
    exists to fuse into) need a standalone priming reduction.
    """
    image = synthetic_image(config.shape, seed=config.seed).astype(np.float64) + 0.05

    env = RuntimeEnv(ctx, mix)
    st = env.get_stencil_reduce(reduce_flops=STATS_FUSED_FLOPS)
    st.configure(make_update_kernel(config.lam), config.shape)
    st.set_global_grid(image)

    count = float(np.prod(config.shape))
    local = st.local_interior()
    primed = env.comm.allreduce(
        np.array([local.sum(), (local**2).sum()]), op="sum"
    )
    st.set_parameter(_q0_sq_from_stats(float(primed[0]), float(primed[1]), count))

    def stats_fn(_old: np.ndarray, new: np.ndarray) -> np.ndarray:
        return np.array([new.sum(), (new**2).sum()])

    def on_stats(stats: np.ndarray) -> None:
        st.set_parameter(_q0_sq_from_stats(float(stats[0]), float(stats[1]), count))

    st.run_until(
        max_iters=config.iterations,
        tol=None,  # fixed iteration count, like Rodinia
        reduce_fn=stats_fn,
        residual_fn=lambda stats: float(stats[0]),
        on_value=on_stats,
    )

    env.finalize()
    return st.gather_global()


def sequential_reference(config: SradConfig) -> np.ndarray:
    """Plain NumPy SRAD with the same zero-halo convention."""
    image = synthetic_image(config.shape, seed=config.seed).astype(np.float64) + 0.05
    h = 2
    src = np.zeros(tuple(s + 2 * h for s in config.shape))
    region = tuple(slice(h, h + s) for s in config.shape)
    src[region] = image
    dst = np.zeros_like(src)
    kernel = make_update_kernel(config.lam)
    for _ in range(config.iterations):
        interior = src[region]
        mean = interior.mean()
        var = interior.var()
        q0_sq = max(var / max(mean * mean, 1e-12), 1e-12)
        kernel.apply(src, dst, region, q0_sq)
        src, dst = dst, src
        mask = np.ones_like(src, dtype=bool)
        mask[region] = False
        src[mask] = 0
    return src[region]
