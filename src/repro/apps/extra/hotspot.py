"""HotSpot — Rodinia's thermal simulation, a stencil with a power map.

HotSpot models processor die temperature: the evolving grid is the
temperature field, and each cell's update draws on a **static power map**
(the per-block dissipation of the floorplan) plus its four neighbours and
the ambient sink::

    T' = T + dt/cap * ( P + (T_n + T_s - 2T)/Ry
                          + (T_e + T_w - 2T)/Rx
                          + (T_amb - T)/Rz )

This is exactly the shape the static-fields extension exists for: the
power map rides along as a read-only coefficient field with the same
decomposition and halo padding as the temperature grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import StencilKernel, shifted
from repro.core.env import DeviceConfig, RuntimeEnv
from repro.core.stencil import StencilFields
from repro.device.work import WorkModel
from repro.sim.engine import RankContext
from repro.util.errors import ValidationError
from repro.util.rng import derive_seed, seeded_rng

T_AMBIENT = 80.0
CAP = 0.5
RX, RY, RZ = 1.0, 1.0, 4.0
DT = 0.05


@dataclass(frozen=True)
class HotspotConfig:
    """HotSpot workload (functional scale only)."""

    shape: tuple[int, int] = (64, 64)
    iterations: int = 20
    hot_blocks: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.shape) != 2 or any(s < 16 for s in self.shape):
            raise ValidationError("HotSpot needs a 2-D die with extents >= 16")
        if self.iterations < 1 or self.hot_blocks < 1:
            raise ValidationError("iterations and hot_blocks must be >= 1")


def work() -> WorkModel:
    return WorkModel(name="hotspot.step", flops_per_elem=15.0, bytes_per_elem=24.0)


def generate_power_map(config: HotspotConfig) -> np.ndarray:
    """A floorplan-like power map: a few hot rectangular units on a
    low-power background."""
    rng = seeded_rng(derive_seed(config.seed, "hotspot", config.shape))
    power = np.full(config.shape, 0.05)
    h, w = config.shape
    for _ in range(config.hot_blocks):
        y0, x0 = rng.integers(0, h - 8), rng.integers(0, w - 8)
        hh, ww = int(rng.integers(4, h // 4)), int(rng.integers(4, w // 4))
        power[y0 : y0 + hh, x0 : x0 + ww] += float(rng.random()) * 3.0 + 1.0
    return power


def hotspot_apply(src, dst, region, ctx: StencilFields) -> None:
    """stencil_fp: one explicit thermal step (Rodinia's update rule)."""
    temp = src[region]
    power = ctx["power"][region]
    vertical = shifted(src, region, (1, 0)) + shifted(src, region, (-1, 0)) - 2.0 * temp
    horizontal = shifted(src, region, (0, 1)) + shifted(src, region, (0, -1)) - 2.0 * temp
    dst[region] = temp + (DT / CAP) * (
        power + vertical / RY + horizontal / RX + (T_AMBIENT - temp) / RZ
    )


def make_kernel() -> StencilKernel:
    return StencilKernel(apply=hotspot_apply, halo=1, work=work())


def rank_program(
    ctx: RankContext,
    config: HotspotConfig,
    mix: str | DeviceConfig = "cpu",
    *,
    time_block: int | str = 1,
) -> np.ndarray | None:
    """SPMD body: decompose die + power map, iterate the thermal stencil.

    The power map is a pure per-cell coefficient, so the kernel is
    temporal-blocking-safe: ``time_block=k`` widens the static field's
    padding along with the halo and yields bit-identical temperatures.
    """
    power = generate_power_map(config)
    env = RuntimeEnv(ctx, mix)
    st = env.get_stencil()
    st.configure(
        make_kernel(),
        config.shape,
        static_fields={"power": power},
        time_block=time_block,
    )
    st.set_global_grid(np.full(config.shape, T_AMBIENT))
    st.run(config.iterations)
    env.finalize()
    return st.gather_global()


def sequential_reference(config: HotspotConfig) -> np.ndarray:
    """Plain NumPy HotSpot with the same zero-halo convention."""
    power = generate_power_map(config)
    h = 1
    src = np.zeros(tuple(s + 2 for s in config.shape))
    region = tuple(slice(h, h + s) for s in config.shape)
    src[region] = T_AMBIENT
    pad_power = np.zeros_like(src)
    pad_power[region] = power
    dst = np.zeros_like(src)
    fields = StencilFields(None, {"power": pad_power})
    for _ in range(config.iterations):
        hotspot_apply(src, dst, region, fields)
        src, dst = dst, src
        mask = np.ones_like(src, dtype=bool)
        mask[region] = False
        src[mask] = 0
    return src[region]
