"""Single-source shortest paths via Bellman-Ford relaxation.

Exercises the irregular-reduction pattern with the **min** operator: per
round every undirected edge ``(u, v, w)`` proposes ``dist[u] + w`` to ``v``
and ``dist[v] + w`` to ``u``; the reduction object keeps the minimum
proposal per node, and the host takes ``min(dist, proposals)``.  Rounds
repeat until an allreduce reports no distance changed (at most |V| - 1
rounds).  Verified against networkx's Dijkstra in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import IRKernel
from repro.core.env import DeviceConfig, RuntimeEnv
from repro.data.meshes import geometric_mesh
from repro.device.work import WorkModel
from repro.sim.engine import RankContext
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class SsspConfig:
    """SSSP workload (functional scale only)."""

    n_nodes: int = 300
    degree: float = 8.0
    source: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.source < self.n_nodes:
            raise ValidationError("source must be a valid node id")


def relax_work(n_nodes: int) -> WorkModel:
    return WorkModel(
        name="sssp.relax",
        flops_per_elem=4.0,
        bytes_per_elem=40.0,
        cpu_mem_efficiency=0.7,
        atomics_per_elem=2.0,
        num_reduction_keys=n_nodes,
    )


def relax_batch(obj, edges: np.ndarray, weights: np.ndarray, nodes: np.ndarray, _p) -> None:
    """ir_edge_compute_fp: propose relaxed distances to both endpoints."""
    du = nodes[edges[:, 0], 0]
    dv = nodes[edges[:, 1], 0]
    obj.insert_many(edges[:, 1], du + weights)
    obj.insert_many(edges[:, 0], dv + weights)


def generate_graph(config: SsspConfig):
    positions, edges = geometric_mesh(config.n_nodes, config.degree, seed=config.seed)
    weights = np.linalg.norm(positions[edges[:, 0]] - positions[edges[:, 1]], axis=1)
    return edges, weights


def rank_program(
    ctx: RankContext, config: SsspConfig, mix: str | DeviceConfig = "cpu"
) -> dict:
    edges, weights = generate_graph(config)
    n = config.n_nodes
    dist = np.full((n, 1), np.inf)
    dist[config.source, 0] = 0.0

    env = RuntimeEnv(ctx, mix)
    ir = env.get_IR()
    ir.set_kernel(IRKernel(relax_batch, "min", 1, relax_work(n)))
    ir.set_mesh(edges, dist, weights)
    lo, hi = ir.local_node_range

    rounds = 0
    for _ in range(n - 1):
        ir.start()
        proposals = ir.get_local_reduction()[:, 0]
        local = ir.get_local_nodes()
        improved = proposals < local[:, 0]
        rounds += 1
        changed = ctx.comm.allreduce(float(improved.any()), "max")
        if changed == 0.0:
            break
        local[improved, 0] = proposals[improved]
        ir.update_nodedata(local)

    env.finalize()
    return {"range": (lo, hi), "dist": ir.get_local_nodes()[:, 0], "rounds": rounds}


def sequential_reference(config: SsspConfig) -> np.ndarray:
    """Dijkstra via networkx (an entirely independent oracle)."""
    import networkx as nx

    edges, weights = generate_graph(config)
    graph = nx.Graph()
    graph.add_nodes_from(range(config.n_nodes))
    graph.add_weighted_edges_from(
        (int(u), int(v), float(w)) for (u, v), w in zip(edges, weights)
    )
    lengths = nx.single_source_dijkstra_path_length(graph, config.source)
    dist = np.full(config.n_nodes, np.inf)
    for node, d in lengths.items():
        dist[node] = d
    return dist
