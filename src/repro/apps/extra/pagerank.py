"""PageRank on the framework: a directed irregular reduction.

Per iteration every directed edge ``u -> v`` contributes
``rank[u] / outdeg[u]`` to ``v``; node data carries ``(rank, outdeg)``.
The runtime's ownership filter makes directed updates free: the kernel
inserts only for the destination endpoint, and cross-edge copies on the
source side are dropped by the reduction object's key-range filter.
Convergence is checked with a one-key generalized reduction over the
per-node deltas (an L1 norm), closing the loop with the second pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import GRKernel, IRKernel, emit_keys_batch
from repro.core.env import DeviceConfig, RuntimeEnv
from repro.data.meshes import random_mesh
from repro.device.work import WorkModel
from repro.sim.engine import RankContext
from repro.util.errors import ValidationError

DAMPING = 0.85


@dataclass(frozen=True)
class PageRankConfig:
    """PageRank workload (functional scale only; no paper counterpart)."""

    n_nodes: int = 400
    n_edges: int = 3_000
    max_iterations: int = 60
    tolerance: float = 1e-10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 2 or self.n_edges < 1:
            raise ValidationError("need n_nodes >= 2 and n_edges >= 1")
        if self.max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")


def contribution_work(n_nodes: int) -> WorkModel:
    return WorkModel(
        name="pagerank.push",
        flops_per_elem=4.0,
        bytes_per_elem=32.0,
        cpu_mem_efficiency=0.7,
        atomics_per_elem=1.0,
        num_reduction_keys=n_nodes,
    )


def norm_work() -> WorkModel:
    return WorkModel(
        name="pagerank.norm",
        flops_per_elem=3.0,
        bytes_per_elem=16.0,
        atomics_per_elem=1.0,
        num_reduction_keys=1,
    )


def contribution_batch(obj, edges: np.ndarray, edata, nodes: np.ndarray, _param) -> None:
    """ir_edge_compute_fp: push rank mass along each directed edge."""
    src = edges[:, 0]
    emit_keys_batch(obj, edges[:, 1], nodes[src, 0] / np.maximum(nodes[src, 1], 1.0))


def generate_graph(config: PageRankConfig) -> np.ndarray:
    """A random directed edge list (duplicates removed)."""
    edges = random_mesh(config.n_nodes, config.n_edges, seed=config.seed)
    # random_mesh sorts endpoints; re-orient half the edges for direction.
    rng = np.random.default_rng(config.seed + 1)
    flip = rng.random(len(edges)) < 0.5
    edges[flip] = edges[flip][:, ::-1]
    return np.unique(edges, axis=0)


def rank_program(
    ctx: RankContext, config: PageRankConfig, mix: str | DeviceConfig = "cpu"
) -> dict:
    """SPMD body: iterate push + renormalize until the L1 delta converges."""
    edges = generate_graph(config)
    n = config.n_nodes
    outdeg = np.zeros(n)
    np.add.at(outdeg, edges[:, 0], 1.0)
    nodes = np.column_stack([np.full(n, 1.0 / n), outdeg])

    env = RuntimeEnv(ctx, mix)
    ir = env.get_IR()
    ir.set_kernel(
        IRKernel(contribution_batch, "sum", 1, contribution_work(n))
    )
    ir.set_mesh(edges, nodes)
    lo, hi = ir.local_node_range

    gr = env.get_GR()
    gr.set_kernel(
        GRKernel(
            lambda obj, deltas, start, p: emit_keys_batch(
                obj, np.zeros(len(deltas), dtype=np.int64), np.abs(deltas[:, 0])
            ),
            "sum",
            1,
            1,
            norm_work(),
        )
    )

    iterations = 0
    for _ in range(config.max_iterations):
        ir.start()
        incoming = ir.get_local_reduction()[:, 0]
        local = ir.get_local_nodes()
        # Dangling mass: nodes without out-edges spread uniformly.
        dangling_local = local[local[:, 1] == 0, 0].sum()
        dangling = ctx.comm.allreduce(dangling_local, "sum")
        new_rank = (1 - DAMPING) / n + DAMPING * (incoming + dangling / n)
        deltas = (new_rank - local[:, 0])[:, None]
        updated = local.copy()
        updated[:, 0] = new_rank
        ir.update_nodedata(updated)
        iterations += 1

        gr.set_input(deltas, global_start=lo)
        gr.start()
        if gr.get_global_reduction()[0, 0] < config.tolerance:
            break

    env.finalize()
    return {"range": (lo, hi), "ranks": ir.get_local_nodes()[:, 0], "iterations": iterations}


def sequential_reference(config: PageRankConfig) -> np.ndarray:
    """Plain NumPy power iteration (same dangling-mass handling)."""
    edges = generate_graph(config)
    n = config.n_nodes
    outdeg = np.zeros(n)
    np.add.at(outdeg, edges[:, 0], 1.0)
    rank = np.full(n, 1.0 / n)
    for _ in range(config.max_iterations):
        incoming = np.zeros(n)
        np.add.at(incoming, edges[:, 1], rank[edges[:, 0]] / np.maximum(outdeg[edges[:, 0]], 1.0))
        dangling = rank[outdeg == 0].sum()
        new_rank = (1 - DAMPING) / n + DAMPING * (incoming + dangling / n)
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < config.tolerance:
            break
    return rank
