"""Kmeans clustering — the paper's generalized-reduction application.

Paper workload (§IV-A): a three-dimensional single-precision dataset with
40 centers, 200 million points (2.3 GB), timed for one iteration.

One Kmeans iteration is one generalized reduction: each point *emits*
``(nearest_center, [x, y, z, 1])`` and the per-key sums/counts yield the
new centers.  The reduction object is 40 keys x 4 floats = 640 B, far under
48 KiB — so reduction localization kicks in on GPUs, which the paper names
as the reason Kmeans has its largest GPU advantage.

Cost calibration (see :mod:`repro.apps.calibrate`): per point ~10 FLOPs per
center (3 subs, 3 mults, 2 adds, compare, bookkeeping) x 40 centers = 400
FLOPs, 12 bytes streamed; CPU efficiency 0.35 of the DP-peak figure (a
single-precision scalar distance loop); GPU efficiency solved so the GPU :
12-core-CPU ratio equals the paper's 2.69.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.calibrate import calibrate_gpu_ratio
from repro.apps.common import AppRun, check_functional_scale, sequential_time
from repro.cluster.specs import ClusterSpec, NodeSpec
from repro.core.env import DeviceConfig, RuntimeEnv
from repro.core.api import GRKernel, emit_keys_batch
from repro.core.partition import block_partition
from repro.data.points import clustered_points
from repro.device.work import WorkModel
from repro.sim.engine import RankContext, spmd_run
from repro.util.errors import ValidationError

#: Paper-measured single-node ratio: GPU vs 12-core CPU (§IV-C).
PAPER_GPU_CPU_RATIO = 2.69

#: Fig. 8: the framework is 6% slower than the hand-written Rodinia kernel;
#: the gap is the GPU kernel's per-point bookkeeping, charged as extra
#: FLOPs on the GPU side only — the framework's CPU path is the same loop a
#: hand-written version runs (the paper even finds it slightly *faster*
#: than per-core MPI thanks to its threaded process model).
FRAMEWORK_GPU_OVERHEAD_FLOPS = 24.0


@dataclass(frozen=True)
class KmeansConfig:
    """Kmeans workload description.

    ``n_points`` is the modeled (paper-scale) count; ``functional_points``
    is how many points the math actually touches.
    """

    n_points: int = 200_000_000
    functional_points: int = 200_000
    k: int = 40
    dims: int = 3
    iterations: int = 1
    seed: int = 0
    chunk_elems: int | None = None

    def __post_init__(self) -> None:
        check_functional_scale(self.functional_points, self.n_points, "kmeans")
        if self.k < 1 or self.dims < 1 or self.iterations < 1:
            raise ValidationError("k, dims, iterations must all be >= 1")


def base_work(config: KmeansConfig) -> WorkModel:
    """Uncalibrated per-point cost model."""
    itemsize = 4  # single precision, as in the paper's 12-byte points
    return WorkModel(
        name="kmeans.assign",
        flops_per_elem=10.0 * config.k,
        bytes_per_elem=float(config.dims * itemsize),
        cpu_efficiency=0.35,
        gpu_efficiency=0.10,  # placeholder; calibrated below
        atomics_per_elem=1.0,
        num_reduction_keys=config.k,
        transfer_bytes_per_elem=float(config.dims * itemsize),
        runtime_overhead_flops=0.0,
        runtime_overhead_flops_gpu=FRAMEWORK_GPU_OVERHEAD_FLOPS,
    )


def make_work(config: KmeansConfig, node: NodeSpec) -> WorkModel:
    """Work model calibrated to the paper's GPU:CPU ratio on ``node``."""
    if not node.gpus:
        return base_work(config)
    return calibrate_gpu_ratio(
        base_work(config), node, PAPER_GPU_CPU_RATIO, localized=True, streaming=True
    )


def nearest_centers(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Index of the nearest center per point (squared Euclidean distance).

    Expands ``|p - c|^2`` to ``|p|^2 - 2 p.c + |c|^2`` and drops the
    ``|p|^2`` term (constant per point, so it cannot change the argmin):
    one BLAS matmul plus a length-``k`` bias replaces the per-axis
    subtract/square/accumulate passes — ~2x faster at the paper's
    ``d=3, k=40``.  Shared by the framework emit kernel and the sequential
    oracle, so the assignment step is structurally identical in both.
    """
    pts = points.astype(np.float64, copy=False)
    score = pts @ (-2.0 * centers.T)
    score += np.einsum("ij,ij->i", centers, centers)
    return np.argmin(score, axis=1)


def make_emit(config: KmeansConfig):
    """The batched emit function: nearest-center assignment + accumulation."""

    def emit_batch(obj, points: np.ndarray, start: int, centers: np.ndarray) -> None:
        keys = nearest_centers(points, centers)
        vals = np.empty((len(points), centers.shape[1] + 1))
        vals[:, :-1] = points
        vals[:, -1] = 1.0
        emit_keys_batch(obj, keys, vals)

    return emit_batch


def make_kernel(config: KmeansConfig, node: NodeSpec) -> GRKernel:
    """The generalized-reduction kernel for one Kmeans iteration."""
    return GRKernel(
        emit_batch=make_emit(config),
        reduce_op="sum",
        num_keys=config.k,
        value_width=config.dims + 1,
        work=make_work(config, node),
        dtype=np.dtype(np.float64),
    )


def _new_centers(combined: np.ndarray, old: np.ndarray) -> np.ndarray:
    """Centers from the combined (sums, count) reduction; empty keep old."""
    counts = combined[:, -1:]
    centers = np.where(counts > 0, combined[:, :-1] / np.maximum(counts, 1.0), old)
    return centers


def rank_program(
    ctx: RankContext,
    config: KmeansConfig,
    mix: str | DeviceConfig = "cpu+2gpu",
    *,
    reliable: bool = False,
    checkpoint_every: int | None = None,
) -> np.ndarray:
    """SPMD body: one (or more) Kmeans iterations via the GR runtime.

    ``reliable`` wraps the communicator in
    :class:`~repro.comm.reliable.ReliableComm` (bit-identical results
    under lossy fault plans); ``checkpoint_every`` runs the iteration loop
    under a :class:`~repro.core.checkpoint.CheckpointManager` — the
    evolving state is just the centers array, so a crashed rank rolls the
    whole group back to the last snapshot of the centers.
    """
    if reliable:
        from repro.comm.reliable import ReliableComm

        ctx.comm = ReliableComm(ctx.comm)
    points, _true = clustered_points(
        config.functional_points, config.k, config.dims, seed=config.seed
    )
    state = {"centers": points[: config.k].astype(np.float64)}  # first-k init

    env = RuntimeEnv(ctx, mix)
    gr = env.get_GR(chunk_elems=config.chunk_elems)
    gr.set_kernel(make_kernel(config, ctx.node))

    offsets = block_partition(len(points), ctx.size)
    lo, hi = int(offsets[ctx.rank]), int(offsets[ctx.rank + 1])
    model_share = config.n_points // ctx.size

    def one_iteration(_it: int) -> None:
        gr.set_input(
            points[lo:hi],
            global_start=lo,
            model_local_elems=model_share,
            parameter=state["centers"],
        )
        gr.start()
        combined = gr.get_global_reduction(bcast=True)
        state["centers"] = _new_centers(combined, state["centers"])

    if checkpoint_every is not None:
        from repro.core.checkpoint import CheckpointManager

        mgr = CheckpointManager(ctx, every=checkpoint_every)
        mgr.run_iterations(
            config.iterations,
            one_iteration,
            lambda: state["centers"].copy(),
            lambda s: state.__setitem__("centers", s.copy()),
        )
    else:
        for it in range(config.iterations):
            one_iteration(it)
    env.finalize()
    if reliable:
        ctx.comm.flush()
    return state["centers"]


def run(
    cluster: ClusterSpec,
    config: KmeansConfig | None = None,
    mix: str | DeviceConfig = "cpu+2gpu",
    *,
    reliable: bool = False,
    checkpoint_every: int | None = None,
    **spmd_kwargs,
) -> AppRun:
    """Run Kmeans on ``cluster`` and report makespan + speedup basis."""
    config = config or KmeansConfig()
    result = spmd_run(
        rank_program,
        cluster,
        args=(config, mix),
        kwargs={"reliable": reliable, "checkpoint_every": checkpoint_every},
        **spmd_kwargs,
    )
    seq = sequential_time(
        base_work(config), config.n_points, cluster.node, config.iterations
    )
    return AppRun(
        app="kmeans",
        mix=mix if isinstance(mix, str) else mix.label(),
        nodes=cluster.num_nodes,
        makespan=result.makespan,
        seq_time=seq,
        result=result.values[0],
        spmd=result,
    )


def sequential_reference(config: KmeansConfig) -> np.ndarray:
    """Plain NumPy Kmeans (the correctness oracle)."""
    points, _true = clustered_points(
        config.functional_points, config.k, config.dims, seed=config.seed
    )
    centers = points[: config.k].astype(np.float64)
    pts = points.astype(np.float64)
    for _ in range(config.iterations):
        keys = nearest_centers(pts, centers)
        sums = np.zeros((config.k, config.dims))
        counts = np.zeros(config.k)
        np.add.at(sums, keys, pts)
        np.add.at(counts, keys, 1.0)
        centers = np.where(counts[:, None] > 0, sums / np.maximum(counts[:, None], 1.0), centers)
    return centers
