"""The paper's five evaluation applications, on the framework.

Each app module provides:

- a ``*Config`` dataclass (paper-scale defaults; ``functional_*`` fields
  control the scaled-down arrays the math actually runs on);
- calibrated :class:`~repro.device.work.WorkModel` constructors — per-app
  efficiencies are solved so the single-node GPU/CPU speed ratio matches
  the paper's own measurement (§IV-C), the one number we take as input;
- ``rank_program`` — the SPMD body using the framework API;
- ``run`` — drives :func:`repro.sim.spmd_run` over a cluster and device
  mix, returning an :class:`~repro.apps.common.AppRun` with the simulated
  makespan and the modeled sequential (single-core) time for speedups;
- ``sequential_reference`` — a plain NumPy implementation used as the
  correctness oracle by the tests.

Hand-written baselines (MPI one-rank-per-core, CUDA single-GPU) live in
:mod:`repro.apps.baselines`.
"""

from repro.apps.common import AppRun, extrapolate_steps, single_core_spec
from repro.apps import kmeans, moldyn, minimd, sobel, heat3d

__all__ = [
    "AppRun",
    "extrapolate_steps",
    "single_core_spec",
    "kmeans",
    "moldyn",
    "minimd",
    "sobel",
    "heat3d",
]
