"""MiniMD — the Mantevo molecular-dynamics mini-app on the framework.

Paper workload (§IV-A): 500,000 atoms (double precision), 1000 iterations.
The dominant kernel — Lennard-Jones force computation over a half neighbor
list — is an irregular reduction; energy computations are generalized
reductions; and, unlike Moldyn, the neighbor list is **rebuilt
periodically** (every ``reneighbor_every`` steps, MiniMD's default cadence
~20), which exercises the runtime's connectivity-reset path (the paper's
steps 1–4 run again after every rebuild).

The hand-written comparator is Mantevo's MPI+OpenMP MiniMD, i.e. one rank
per *node* (see :mod:`repro.apps.baselines.mpi_minimd`); the paper reports
the framework 1.17x faster thanks to communication/computation overlap.

GPU efficiencies are calibrated to the paper's measured 1.7x GPU :
12-core-CPU ratio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.apps.calibrate import calibrate_gpu_ratio
from repro.apps.common import AppRun, extrapolate_steps, sequential_time
from repro.cluster.specs import ClusterSpec, NodeSpec
from repro.core.api import GRKernel, IRKernel
from repro.core.env import DeviceConfig, RuntimeEnv
from repro.data.atoms import build_neighbor_edges, fcc_lattice
from repro.device.work import WorkModel
from repro.sim.engine import RankContext, spmd_run
from repro.util.errors import ValidationError

#: Paper-measured single-node ratio (§IV-C): GPU is 1.7x the 12-core CPU.
PAPER_GPU_CPU_RATIO = 1.7

DT = 5e-4
EPSILON = 1.0
SIGMA = 1.0


@dataclass(frozen=True)
class MiniMDConfig:
    """MiniMD workload description.

    ``functional_cells`` sets the FCC box edge (atoms = 4 * cells^3).
    The modeled atom count and a modeled mean neighbor count set the
    paper-scale edge count.
    """

    n_atoms: int = 500_000
    model_neighbors_per_atom: float = 38.0
    functional_cells: int = 14
    cutoff: float = 1.3
    iterations: int = 1000
    reneighbor_every: int = 20
    simulated_steps: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.functional_cells < 2:
            raise ValidationError("functional_cells must be >= 2")
        if 4 * self.functional_cells**3 > self.n_atoms:
            raise ValidationError("functional atom count exceeds modeled n_atoms")
        if not 1 <= self.simulated_steps <= self.iterations:
            raise ValidationError("need 1 <= simulated_steps <= iterations")
        if self.reneighbor_every < 1:
            raise ValidationError("reneighbor_every must be >= 1")

    @property
    def functional_atoms(self) -> int:
        return 4 * self.functional_cells**3

    @property
    def n_edges(self) -> int:
        """Modeled half-neighbor-list size."""
        return int(self.n_atoms * self.model_neighbors_per_atom / 2)

    @property
    def model_cells(self) -> float:
        """FCC box edge of the modeled atom count."""
        return (self.n_atoms / 4.0) ** (1.0 / 3.0)

    def exchange_scale(self) -> float:
        """Surface-corrected wire scale for the remote-atom exchange.

        Remote atoms per rank are the cutoff-deep shells of the neighbour
        slabs: a fraction ``~2*cutoff/box_edge`` of all atoms.  Scaling the
        functional remote count volumetrically would overstate the
        paper-scale exchange by ``model_cells / functional_cells``; divide
        it back out.
        """
        node_scale = self.n_atoms / self.functional_atoms
        return node_scale * self.functional_cells / self.model_cells


def base_force_work() -> WorkModel:
    """Uncalibrated per-pair cost of the LJ force kernel."""
    return WorkModel(
        name="minimd.lj",
        flops_per_elem=45.0,
        bytes_per_elem=64.0,
        cpu_efficiency=0.55,
        cpu_mem_efficiency=0.65,
        gpu_efficiency=0.3,  # placeholder; calibrated below
        gpu_mem_efficiency=0.5,
        atomics_per_elem=2.0,
        num_reduction_keys=4096,
        runtime_overhead_flops=1.0,
    )


def energy_work() -> WorkModel:
    """Per-atom cost of the energy generalized reduction."""
    return WorkModel(
        name="minimd.energy",
        flops_per_elem=12.0,
        bytes_per_elem=48.0,
        cpu_efficiency=0.5,
        gpu_efficiency=0.2,
        atomics_per_elem=1.0,
        num_reduction_keys=1,
        transfer_bytes_per_elem=48.0,
        runtime_overhead_flops=0.5,
    )


#: Bytes per atom uploaded to each GPU when positions change.
DEVICE_NODE_BYTES = 24.0


def make_force_work(node: NodeSpec, config: "MiniMDConfig") -> WorkModel:
    if not node.gpus:
        return base_force_work()
    upload_per_edge = (
        DEVICE_NODE_BYTES * config.n_atoms / (config.n_edges * node.gpus[0].pcie_bandwidth)
    )
    return calibrate_gpu_ratio(
        base_force_work(), node, PAPER_GPU_CPU_RATIO, gpu_overhead_per_elem=upload_per_edge
    )


def lj_force_batch(obj, edges: np.ndarray, edge_data, nodes: np.ndarray, cutoff2: float) -> None:
    """Lennard-Jones pair forces over the half neighbor list.

    In-place formulation: the displacement buffer becomes the force
    buffer and the ``sr2`` scratch accumulates the magnitude
    ``f = 24 eps (2 sr^12 - sr^6) / r^2``, with every operation keeping
    the naive expression's association so forces are bit-identical.
    Positions are compacted into a contiguous ``(n, 3)`` array first so
    both endpoint gathers hit ``np.take``'s contiguous fast path.
    """
    pos = np.ascontiguousarray(nodes[:, 0:3])
    f = np.take(pos, edges[:, 0], axis=0)
    f -= np.take(pos, edges[:, 1], axis=0)  # f holds the displacement d
    r2 = np.einsum("nd,nd->n", f, f)
    np.maximum(r2, 1e-12, out=r2)
    outside = r2 >= cutoff2
    sr2 = (SIGMA * SIGMA) / r2
    sr6 = sr2 * sr2
    sr6 *= sr2
    np.multiply(sr6, 2.0, out=sr2)  # sr2 scratch now builds the magnitude
    sr2 *= sr6
    sr2 -= sr6
    sr2 *= 24.0 * EPSILON
    sr2 /= r2
    sr2[outside] = 0.0
    f *= sr2[:, None]
    obj.insert_many(edges[:, 0], f)
    np.negative(f, out=f)
    obj.insert_many(edges[:, 1], f)


def make_force_kernel(node: NodeSpec, config: "MiniMDConfig") -> IRKernel:
    return IRKernel(
        edge_compute_batch=lj_force_batch,
        reduce_op="sum",
        value_width=3,
        work=make_force_work(node, config),
    )


def energy_emit_batch(obj, nodes: np.ndarray, start: int, _param) -> None:
    v = nodes[:, 3:6]
    ke = 0.5 * np.einsum("nd,nd->n", v, v)
    obj.insert_many(np.zeros(len(nodes), dtype=np.int64), ke)


def make_energy_kernel() -> GRKernel:
    return GRKernel(
        emit_batch=energy_emit_batch, reduce_op="sum", num_keys=1, value_width=1, work=energy_work()
    )


def _functional_atoms(config: MiniMDConfig) -> np.ndarray:
    pos = fcc_lattice(config.functional_cells, jitter=0.03, seed=config.seed)
    vel = np.zeros_like(pos)
    vel[:, 1] = 0.05 * np.cos(np.arange(len(pos)))
    return np.concatenate([pos, vel], axis=1)


def _integrate(nodes: np.ndarray, forces: np.ndarray) -> np.ndarray:
    # In place: callers pass the fresh copy from get_local_nodes.
    nodes[:, 3:6] += forces * DT
    nodes[:, 0:3] += nodes[:, 3:6] * DT
    return nodes


def rank_program(
    ctx: RankContext,
    config: MiniMDConfig,
    mix: str | DeviceConfig = "cpu+2gpu",
    *,
    overlap: bool = True,
) -> dict:
    """SPMD body: LJ force steps with periodic re-neighboring + energy GR."""
    atoms = _functional_atoms(config)
    edges = build_neighbor_edges(atoms[:, 0:3], config.cutoff)
    cutoff2 = config.cutoff**2

    env = RuntimeEnv(ctx, mix)
    ir = env.get_IR(overlap=overlap)
    ir.set_kernel(make_force_kernel(ctx.node, config))
    ir.set_parameter(cutoff2)
    ir.set_mesh(
        edges,
        atoms,
        model_edges=config.n_edges,
        model_nodes=config.n_atoms,
        device_node_bytes=DEVICE_NODE_BYTES,
        exchange_scale=config.exchange_scale(),
    )

    step_times = []
    rebuild_times = []
    wall0 = time.perf_counter()
    for step in range(config.simulated_steps):
        if step > 0 and step % config.reneighbor_every == 0:
            t0 = ctx.clock.now
            # Re-neighbor: every rank rebuilds the (identical functional)
            # list from the full positions — the runtime then re-runs its
            # connectivity setup (steps 1-4) and edge uploads.
            positions = _gather_positions(ctx, ir, atoms.shape)
            edges = build_neighbor_edges(positions[:, 0:3], config.cutoff)
            ir.set_mesh(
                edges,
                positions,
                model_edges=config.n_edges,
                model_nodes=config.n_atoms,
                device_node_bytes=DEVICE_NODE_BYTES,
                exchange_scale=config.exchange_scale(),
            )
            rebuild_times.append(ctx.clock.now - t0)
        t0 = ctx.clock.now
        ir.start()
        forces = ir.get_local_reduction()
        ir.update_nodedata(_integrate(ir.get_local_nodes(), forces))
        step_times.append(ctx.clock.now - t0)
    wall_steps = time.perf_counter() - wall0

    local_nodes = ir.get_local_nodes()
    lo, hi = ir.local_node_range
    gr = env.get_GR()
    gr.set_kernel(make_energy_kernel())
    gr.set_input(
        local_nodes,
        global_start=lo,
        model_local_elems=max(config.n_atoms // ctx.size, len(local_nodes)),
    )
    gr.start()
    ke = gr.get_global_reduction(bcast=True)

    env.finalize()
    return {
        "steps": step_times,
        "rebuilds": rebuild_times,
        "wall_steps": wall_steps,
        "ke": float(ke[0, 0]),
        "range": (lo, hi),
        "nodes": local_nodes,
    }


def _gather_positions(ctx: RankContext, ir, shape: tuple[int, int]) -> np.ndarray:
    """Allgather the current node data (re-neighboring needs all positions)."""
    lo, hi = ir.local_node_range
    parts = ctx.comm.allgather((lo, hi, ir.get_local_nodes()))
    full = np.zeros(shape)
    for plo, phi, block in parts:
        full[plo:phi] = block
    return full


def total_time(values: list[dict], config: MiniMDConfig) -> float:
    """Extrapolated full-run time including re-neighboring costs."""
    per_rank = []
    for v in values:
        base = extrapolate_steps(v["steps"], config.iterations)
        rebuilds = config.iterations // config.reneighbor_every
        per_rebuild = float(np.mean(v["rebuilds"])) if v["rebuilds"] else 0.0
        per_rank.append(base + rebuilds * per_rebuild)
    return max(per_rank)


def run(
    cluster: ClusterSpec,
    config: MiniMDConfig | None = None,
    mix: str | DeviceConfig = "cpu+2gpu",
    *,
    overlap: bool = True,
    **spmd_kwargs,
) -> AppRun:
    """Run MiniMD and report the extrapolated 1000-iteration makespan."""
    config = config or MiniMDConfig()
    result = spmd_run(
        rank_program, cluster, args=(config, mix), kwargs={"overlap": overlap}, **spmd_kwargs
    )
    seq = sequential_time(base_force_work(), config.n_edges, cluster.node, config.iterations)
    return AppRun(
        app="minimd",
        mix=mix if isinstance(mix, str) else mix.label(),
        nodes=cluster.num_nodes,
        makespan=total_time(result.values, config),
        seq_time=seq,
        result=result.values,
        spmd=result,
    )


def sequential_reference(config: MiniMDConfig) -> dict:
    """Plain NumPy MiniMD (the correctness oracle; no re-neighboring if
    ``simulated_steps`` stays below ``reneighbor_every``)."""
    atoms = _functional_atoms(config)
    edges = build_neighbor_edges(atoms[:, 0:3], config.cutoff)
    cutoff2 = config.cutoff**2
    nodes = atoms.copy()
    for step in range(config.simulated_steps):
        if step > 0 and step % config.reneighbor_every == 0:
            edges = build_neighbor_edges(nodes[:, 0:3], config.cutoff)
        d = nodes[edges[:, 0], 0:3] - nodes[edges[:, 1], 0:3]
        r2 = np.maximum(np.einsum("nd,nd->n", d, d), 1e-12)
        inside = r2 < cutoff2
        sr2 = (SIGMA * SIGMA) / r2
        sr6 = sr2 * sr2 * sr2
        fmag = np.where(inside, 24.0 * EPSILON * (2.0 * sr6 * sr6 - sr6) / r2, 0.0)
        f = fmag[:, None] * d
        forces = np.zeros((len(nodes), 3))
        np.add.at(forces, edges[:, 0], f)
        np.add.at(forces, edges[:, 1], -f)
        nodes[:, 3:6] += forces * DT
        nodes[:, 0:3] += nodes[:, 3:6] * DT
    v = nodes[:, 3:6]
    return {"nodes": nodes, "ke": float((0.5 * np.einsum("nd,nd->n", v, v)).sum())}
