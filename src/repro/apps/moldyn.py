"""Moldyn — molecular dynamics, the paper's flagship multi-pattern app.

Paper workload (§IV-A): 1 million nodes (molecules), 130 million edges
(interactions), 1000 iterations.  Per the paper's Listing 1/2, each time
step runs the **CF** (compute force) irregular-reduction kernel and updates
the node data; the **KE** (kinetic energy) and **AV** (average velocity)
generalized reductions run at the end.

Node data layout: columns 0:3 position, 3:6 velocity.  The CF kernel
computes a pairwise force for every edge within the cutoff and accumulates
``+f`` on one endpoint and ``-f`` on the other — the exact shape of the
paper's Listing 1 ``force_cmpt``.

Cost model: ~30 FLOPs and ~64 gathered bytes per edge (two 24-byte
positions plus scatter traffic) — gather-bound; GPU efficiencies are
calibrated to the paper's measured 1.5x GPU : 12-core-CPU ratio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.apps.calibrate import calibrate_gpu_ratio
from repro.apps.common import AppRun, extrapolate_steps, sequential_time
from repro.cluster.specs import ClusterSpec, NodeSpec
from repro.core.api import GRKernel, IRKernel
from repro.core.env import DeviceConfig, RuntimeEnv
from repro.data.meshes import geometric_mesh
from repro.device.work import WorkModel
from repro.sim.engine import RankContext, spmd_run
from repro.util.errors import ValidationError

#: Paper-measured single-node ratio (§IV-C): GPU is 1.5x the 12-core CPU.
PAPER_GPU_CPU_RATIO = 1.5

#: Integration step for the (toy) velocity/position update.
DT = 1e-3

#: Pair-force scale.
FORCE_G = 0.05


@dataclass(frozen=True)
class MoldynConfig:
    """Moldyn workload description."""

    n_nodes: int = 1_000_000
    n_edges: int = 130_000_000
    functional_nodes: int = 20_000
    functional_degree: float = 26.0
    iterations: int = 1000
    simulated_steps: int = 3
    cutoff: float = 1.0  # in units of the mesh connection radius (1 = all edges)
    locality_shuffle: float = 0.10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.functional_nodes > self.n_nodes:
            raise ValidationError("functional_nodes must not exceed n_nodes")
        if not 1 <= self.simulated_steps <= self.iterations:
            raise ValidationError("need 1 <= simulated_steps <= iterations")


def base_cf_work() -> WorkModel:
    """Uncalibrated per-edge cost of the CF kernel."""
    return WorkModel(
        name="moldyn.cf",
        flops_per_elem=30.0,
        bytes_per_elem=64.0,
        cpu_efficiency=0.50,
        cpu_mem_efficiency=0.60,  # indirection-array gathers
        gpu_efficiency=0.3,  # placeholder; calibrated below
        gpu_mem_efficiency=0.5,
        atomics_per_elem=2.0,
        num_reduction_keys=4096,  # nodes per shared-memory partition (large)
        runtime_overhead_flops=1.0,
    )


def gr_work(name: str) -> WorkModel:
    """Per-node cost of the KE / AV generalized reductions."""
    return WorkModel(
        name=name,
        flops_per_elem=10.0,
        bytes_per_elem=48.0,
        cpu_efficiency=0.5,
        gpu_efficiency=0.2,
        atomics_per_elem=1.0,
        num_reduction_keys=1,
        transfer_bytes_per_elem=48.0,
        runtime_overhead_flops=0.5,
    )


#: Bytes per node uploaded to each GPU when node data changes (positions).
DEVICE_NODE_BYTES = 24.0


def make_cf_work(node: NodeSpec, config: "MoldynConfig") -> WorkModel:
    if not node.gpus:
        return base_cf_work()
    # The per-step full node-copy upload, amortized per edge, is part of the
    # paper's measured GPU throughput; fold it into the calibration target.
    upload_per_edge = (
        DEVICE_NODE_BYTES * config.n_nodes / (config.n_edges * node.gpus[0].pcie_bandwidth)
    )
    return calibrate_gpu_ratio(
        base_cf_work(), node, PAPER_GPU_CPU_RATIO, gpu_overhead_per_elem=upload_per_edge
    )


def cf_edge_batch(obj, edges: np.ndarray, edge_data, nodes: np.ndarray, cutoff2: float) -> None:
    """The CF kernel (paper Listing 1): pairwise forces within the cutoff.

    Written with in-place updates so each batch allocates only the two
    position gathers plus two length-``m`` scratch vectors; the force
    scale is folded into one factor (``d * (G / r2)`` instead of
    ``(G * d) / r2`` — equal to within a ulp, well inside the apps'
    1e-9 tolerance) so the wide ``(m, 3)`` array is touched once.
    The positions are first compacted into a contiguous ``(n, 3)`` array
    so both endpoint gathers hit ``np.take``'s contiguous fast path —
    ~2.5x faster than fancy-indexing the strided ``nodes[:, 0:3]`` view,
    even counting the copy (edges outnumber nodes ~26:1).
    """
    pos = np.ascontiguousarray(nodes[:, 0:3])
    f = np.take(pos, edges[:, 0], axis=0)
    f -= np.take(pos, edges[:, 1], axis=0)  # f holds the displacement d
    r2 = np.einsum("nd,nd->n", f, f)
    inactive = r2 >= cutoff2
    np.maximum(r2, 1e-12, out=r2)
    np.divide(FORCE_G, r2, out=r2)  # r2 scratch now holds G / r2
    f *= r2[:, None]
    f[inactive] = 0.0
    obj.insert_many(edges[:, 0], f)
    np.negative(f, out=f)
    obj.insert_many(edges[:, 1], f)


def make_cf_kernel(node: NodeSpec, config: "MoldynConfig") -> IRKernel:
    return IRKernel(
        edge_compute_batch=cf_edge_batch,
        reduce_op="sum",
        value_width=3,
        work=make_cf_work(node, config),
    )


def ke_emit_batch(obj, nodes: np.ndarray, start: int, _param) -> None:
    """KE kernel: accumulate 0.5*|v|^2 under a single key."""
    v = nodes[:, 3:6]
    ke = 0.5 * np.einsum("nd,nd->n", v, v)
    obj.insert_many(np.zeros(len(nodes), dtype=np.int64), ke)


def av_emit_batch(obj, nodes: np.ndarray, start: int, _param) -> None:
    """AV kernel: accumulate velocity sums + count under a single key."""
    vals = np.concatenate([nodes[:, 3:6], np.ones((len(nodes), 1))], axis=1)
    obj.insert_many(np.zeros(len(nodes), dtype=np.int64), vals)


def make_ke_kernel() -> GRKernel:
    return GRKernel(
        emit_batch=ke_emit_batch, reduce_op="sum", num_keys=1, value_width=1, work=gr_work("moldyn.ke")
    )


def make_av_kernel() -> GRKernel:
    return GRKernel(
        emit_batch=av_emit_batch, reduce_op="sum", num_keys=1, value_width=4, work=gr_work("moldyn.av")
    )


def _integrate(nodes: np.ndarray, forces: np.ndarray) -> np.ndarray:
    """Velocity/position update from the CF reduction result (in place).

    Mutates and returns ``nodes`` — callers pass the fresh copy that
    ``get_local_nodes`` hands out, so no extra copy is needed.
    """
    nodes[:, 3:6] += forces * DT
    nodes[:, 0:3] += nodes[:, 3:6] * DT
    return nodes


def _functional_mesh(config: MoldynConfig):
    # Moldyn's mesh file has *partial* locality (domain-ordered once, then
    # perturbed): enough cross edges to make the remote-node exchange
    # significant — which is why the paper's overlapped execution buys it
    # 37% (Fig. 7) — but enough locality that the reduction-space
    # partitioning still pays (Table II).
    positions, edges = geometric_mesh(
        config.functional_nodes, config.functional_degree, seed=config.seed,
        shuffle_fraction=config.locality_shuffle,
    )
    velocities = np.zeros_like(positions)
    velocities[:, 0] = 0.1 * np.sin(np.arange(len(positions)))
    node_data = np.concatenate([positions, velocities], axis=1)
    return node_data, edges


def rank_program(
    ctx: RankContext,
    config: MoldynConfig,
    mix: str | DeviceConfig = "cpu+2gpu",
    *,
    overlap: bool = True,
) -> dict:
    """SPMD body following the paper's Listing 2 structure."""
    node_data, edges = _functional_mesh(config)
    # The connection radius of the functional mesh in the unit cube.
    cutoff2 = (config.cutoff**2) * (
        (config.functional_degree / (len(node_data) * (4.0 / 3.0) * np.pi)) ** (2.0 / 3.0)
    )

    env = RuntimeEnv(ctx, mix)
    ir = env.get_IR(overlap=overlap)
    ir.set_kernel(make_cf_kernel(ctx.node, config))
    ir.set_parameter(cutoff2)
    ir.set_mesh(
        edges,
        node_data,
        model_edges=config.n_edges,
        model_nodes=config.n_nodes,
        device_node_bytes=DEVICE_NODE_BYTES,
    )

    step_times = []
    wall0 = time.perf_counter()
    for _ in range(config.simulated_steps):
        t0 = ctx.clock.now
        ir.start()
        forces = ir.get_local_reduction()
        ir.update_nodedata(_integrate(ir.get_local_nodes(), forces))
        step_times.append(ctx.clock.now - t0)
    wall_steps = time.perf_counter() - wall0

    # KE and AV over the final local node data (generalized reductions).
    local_nodes = ir.get_local_nodes()
    lo, hi = ir.local_node_range
    model_share = config.n_nodes // ctx.size

    gr = env.get_GR()
    gr.set_kernel(make_ke_kernel())
    gr.set_input(local_nodes, global_start=lo, model_local_elems=max(model_share, len(local_nodes)))
    gr.start()
    ke = gr.get_global_reduction(bcast=True)

    gr.set_kernel(make_av_kernel())
    gr.set_input(local_nodes, global_start=lo, model_local_elems=max(model_share, len(local_nodes)))
    gr.start()
    av_raw = gr.get_global_reduction(bcast=True)
    av = av_raw[0, 0:3] / max(av_raw[0, 3], 1.0)

    env.finalize()
    return {
        "steps": step_times,
        "wall_steps": wall_steps,
        "ke": float(ke[0, 0]),
        "av": av,
        "range": (lo, hi),
        "nodes": local_nodes,
        "tail_time": 0.0,
    }


def run(
    cluster: ClusterSpec,
    config: MoldynConfig | None = None,
    mix: str | DeviceConfig = "cpu+2gpu",
    *,
    overlap: bool = True,
    **spmd_kwargs,
) -> AppRun:
    """Run Moldyn and report the extrapolated 1000-iteration makespan."""
    config = config or MoldynConfig()
    result = spmd_run(
        rank_program, cluster, args=(config, mix), kwargs={"overlap": overlap}, **spmd_kwargs
    )
    per_rank = [extrapolate_steps(v["steps"], config.iterations) for v in result.values]
    seq = sequential_time(base_cf_work(), config.n_edges, cluster.node, config.iterations)
    return AppRun(
        app="moldyn",
        mix=mix if isinstance(mix, str) else mix.label(),
        nodes=cluster.num_nodes,
        makespan=max(per_rank),
        seq_time=seq,
        result=result.values,
        spmd=result,
    )


def sequential_reference(config: MoldynConfig) -> dict:
    """Plain NumPy Moldyn (the correctness oracle)."""
    node_data, edges = _functional_mesh(config)
    cutoff2 = (config.cutoff**2) * (
        (config.functional_degree / (len(node_data) * (4.0 / 3.0) * np.pi)) ** (2.0 / 3.0)
    )
    nodes = node_data.copy()
    for _ in range(config.simulated_steps):
        d = nodes[edges[:, 0], 0:3] - nodes[edges[:, 1], 0:3]
        r2 = np.einsum("nd,nd->n", d, d)
        f = np.where((r2 < cutoff2)[:, None], FORCE_G * d / np.maximum(r2, 1e-12)[:, None], 0.0)
        forces = np.zeros((len(nodes), 3))
        np.add.at(forces, edges[:, 0], f)
        np.add.at(forces, edges[:, 1], -f)
        nodes[:, 3:6] += forces * DT
        nodes[:, 0:3] += nodes[:, 3:6] * DT
    v = nodes[:, 3:6]
    ke = float((0.5 * np.einsum("nd,nd->n", v, v)).sum())
    av = v.mean(axis=0)
    return {"nodes": nodes, "ke": ke, "av": av}
