"""Shared application plumbing: results, sequential-time modeling, helpers."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.cluster.specs import CPUSpec, ClusterSpec, NodeSpec
from repro.device.cpu import CPUDevice
from repro.device.work import WorkModel
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class AppRun:
    """Outcome of one application execution on a simulated cluster."""

    app: str
    mix: str
    nodes: int
    makespan: float
    seq_time: float
    result: Any = None
    #: The underlying SPMD result (per-rank values, final clocks, traces);
    #: kept for observability (``repro profile``), excluded from equality.
    spmd: Any = dataclasses.field(default=None, compare=False, repr=False)

    @property
    def speedup(self) -> float:
        """Speedup over the modeled sequential single-core execution —
        the paper's Figure 5 y-axis."""
        if self.makespan <= 0:
            raise ValidationError("makespan must be > 0 to compute a speedup")
        return self.seq_time / self.makespan


def single_core_spec(cpu: CPUSpec) -> CPUSpec:
    """A one-core view of a CPU for sequential baselines and per-core MPI ranks.

    The lone core keeps its compute rate and its 1/cores share of the node
    memory bandwidth and cache — consistent with how the multi-core model
    accounts per-core resources, so "12 x one-core ranks" and "one 12-core
    process" have identical aggregate capability and differ only in
    software structure (message counts, combine trees, overlap), which is
    exactly the comparison the paper's §IV-C makes.
    """
    return dataclasses.replace(
        cpu,
        cores=1,
        mem_bandwidth=cpu.mem_bandwidth / cpu.cores,
        cache_bytes=cpu.cache_bytes / cpu.cores,
    )


def sequential_elem_time(work: WorkModel, node: NodeSpec, *, framework: bool = False) -> float:
    """Modeled per-element time of a hand-written sequential (1-core) loop."""
    dev = CPUDevice(single_core_spec(node.cpu))
    return dev.core_elem_time(work, localized=True, framework=framework)


def sequential_time(work: WorkModel, n_elems: float, node: NodeSpec, iterations: int = 1) -> float:
    """Modeled sequential single-core time for ``iterations`` passes."""
    if n_elems <= 0 or iterations < 1:
        raise ValidationError("n_elems must be > 0 and iterations >= 1")
    return iterations * n_elems * sequential_elem_time(work, node)


def extrapolate_steps(step_times: list[float], total_iterations: int) -> float:
    """Total time for ``total_iterations`` from a few measured steps.

    Early simulated steps include one-time costs (setup exchange, the even
    split before the adaptive repartition, the repartition's data
    movement); the *last* measured step is steady state.  The estimate is
    the measured prefix plus the steady rate for the remainder::

        sum(measured) + last * (total - len(measured))

    >>> extrapolate_steps([3.0, 2.0, 1.0], 10)
    13.0
    """
    if not step_times:
        raise ValidationError("need at least one measured step")
    if total_iterations < len(step_times):
        raise ValidationError(
            f"total_iterations ({total_iterations}) below measured steps ({len(step_times)})"
        )
    return sum(step_times) + step_times[-1] * (total_iterations - len(step_times))


def check_functional_scale(functional: int, model: int, name: str) -> None:
    """Guard that a config's functional size does not exceed its model size."""
    if functional > model:
        raise ValidationError(
            f"{name}: functional size {functional} exceeds modeled size {model}"
        )


def cluster_with_nodes(cluster: ClusterSpec, nodes: int) -> ClusterSpec:
    """Convenience passthrough to :meth:`ClusterSpec.with_nodes`."""
    return cluster.with_nodes(nodes)


def parse_time_block(value: str | int) -> int | str:
    """Parse a ``--time-block`` value: a positive integer or ``"auto"``.

    Shared by the CLI and profile plumbing so every app front-end accepts
    the same spellings and reports the same error.
    """
    if isinstance(value, int):
        if value < 1:
            raise ValidationError(f"time block must be >= 1, got {value}")
        return value
    text = value.strip().lower()
    if text == "auto":
        return "auto"
    try:
        k = int(text)
    except ValueError:
        raise ValidationError(
            f"time block must be a positive integer or 'auto', got {value!r}"
        ) from None
    if k < 1:
        raise ValidationError(f"time block must be >= 1, got {k}")
    return k
