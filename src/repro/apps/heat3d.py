"""Heat3D — 3-D heat diffusion, the paper's 7-point stencil application.

Paper workload (§IV-A): a 512x512x512 double-precision grid, 100
iterations, compared against a widely-distributed MPI implementation.

The kernel is the classic explicit Jacobi update::

    out[i,j,k] = in[i,j,k] + alpha * (sum of 6 face neighbours - 6*in[i,j,k])

Cost model: 10 FLOPs and ~16 bytes of memory traffic per element (one
8-byte read amortized by cache reuse across the 7-point neighbourhood plus
one 8-byte write) — memory-bound on the CPU, as on real hardware.  GPU
efficiency is calibrated to the paper's measured 2.4x GPU : 12-core-CPU
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.calibrate import calibrate_gpu_ratio
from repro.apps.common import AppRun, extrapolate_steps, sequential_time
from repro.cluster.specs import ClusterSpec, NodeSpec
from repro.core.api import StencilKernel
from repro.core.env import DeviceConfig, RuntimeEnv
from repro.data.grids import heat3d_initial
from repro.device.work import WorkModel
from repro.sim.engine import RankContext, spmd_run
from repro.util.errors import ValidationError

#: Paper-measured single-node ratio (§IV-C): GPU is 2.4x the 12-core CPU.
PAPER_GPU_CPU_RATIO = 2.4

#: Diffusion coefficient of the update (stability requires < 1/6).
ALPHA = 0.1


@dataclass(frozen=True)
class Heat3DConfig:
    """Heat3D workload description."""

    shape: tuple[int, int, int] = (512, 512, 512)
    functional_shape: tuple[int, int, int] = (48, 48, 48)
    iterations: int = 100
    simulated_steps: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or len(self.functional_shape) != 3:
            raise ValidationError("Heat3D grids are 3-D")
        for f, m in zip(self.functional_shape, self.shape):
            if f > m:
                raise ValidationError("functional_shape must not exceed shape")
        if not 1 <= self.simulated_steps <= self.iterations:
            raise ValidationError("need 1 <= simulated_steps <= iterations")

    @property
    def n_elems(self) -> int:
        return int(np.prod(self.shape))


def base_work() -> WorkModel:
    """Uncalibrated per-element cost model (double precision)."""
    return WorkModel(
        name="heat3d.jacobi",
        flops_per_elem=10.0,
        bytes_per_elem=16.0,
        cpu_efficiency=0.60,
        cpu_mem_efficiency=0.90,
        gpu_efficiency=0.5,  # placeholder; calibrated below
        runtime_overhead_flops=0.5,
    )


def make_work(node: NodeSpec) -> WorkModel:
    if not node.gpus:
        return base_work()
    return calibrate_gpu_ratio(base_work(), node, PAPER_GPU_CPU_RATIO)


def heat_apply(src: np.ndarray, dst: np.ndarray, region: tuple, alpha) -> None:
    """The 7-point Jacobi update over ``region`` (vectorized ``stencil_fp``).

    Accumulates the six neighbour planes into one *contiguous* temporary
    (in-place adds on a strided ``dst[region]`` view are slower than a
    single strided write at the end), then finishes the update as
    ``alpha * (acc - 6*center) + center`` — bit-identical to the naive
    expression, with one temporary instead of one per operator.

    The six neighbour views are sliced inline rather than via
    :func:`repro.core.api.shifted`: the stencil runtime calls this kernel
    once per device region per step, and for the thin boundary slabs the
    checked helper's per-call validation costs as much as the math.  The
    slices are exactly what ``shifted(src, region, off)`` would produce.
    """
    ys, xs, zs = region
    center = src[region]
    acc = src[ys.start + 1 : ys.stop + 1, xs, zs] + src[ys.start - 1 : ys.stop - 1, xs, zs]
    acc += src[ys, xs.start + 1 : xs.stop + 1, zs]
    acc += src[ys, xs.start - 1 : xs.stop - 1, zs]
    acc += src[ys, xs, zs.start + 1 : zs.stop + 1]
    acc += src[ys, xs, zs.start - 1 : zs.stop - 1]
    acc -= 6.0 * center
    acc *= alpha
    acc += center
    dst[region] = acc


def make_kernel(node: NodeSpec) -> StencilKernel:
    return StencilKernel(
        apply=heat_apply, halo=1, work=make_work(node), dtype=np.dtype(np.float64)
    )


def rank_program(
    ctx: RankContext,
    config: Heat3DConfig,
    mix: str | DeviceConfig = "cpu+2gpu",
    *,
    overlap: bool = True,
    tiling: bool = True,
    reliable: bool = False,
    checkpoint_every: int | None = None,
    adaptive: bool = True,
    until_tol: float | None = None,
    max_iters: int | None = None,
    time_block: int | str = 1,
) -> dict:
    """SPMD body: run ``simulated_steps`` stencil steps, report per-step times.

    The benchmark extrapolates the measured steady-state step time to the
    paper's full iteration count (see
    :func:`repro.apps.common.extrapolate_steps`).

    ``reliable`` wraps the rank's communicator in
    :class:`~repro.comm.reliable.ReliableComm` so the run completes
    bit-identically under a lossy fault plan; ``checkpoint_every`` drives
    the step loop through a :class:`~repro.core.checkpoint.CheckpointManager`
    (snapshot cadence in iterations) so an injected rank crash recovers
    from the last checkpoint instead of failing the run.

    ``until_tol`` switches to the convergence-driven variant: a fused
    stencil+reduce loop (:class:`~repro.core.stencil_reduce.
    StencilReduceRuntime`) that stops once the L2 norm of the step update
    drops to the tolerance, or after ``max_iters`` (default:
    ``config.iterations``).  Every simulated step is then a real step —
    no extrapolation — and the result carries the residual history.

    ``time_block`` enables temporal blocking (``k`` sweeps per deep halo
    exchange, ``"auto"`` to let the link-table tuner pick); grids and
    residual histories stay bit-identical to ``time_block=1``.
    """
    if reliable:
        from repro.comm.reliable import ReliableComm

        ctx.comm = ReliableComm(ctx.comm)
    env = RuntimeEnv(ctx, mix)
    if until_tol is not None:
        st = env.get_stencil_reduce(overlap=overlap, tiling=tiling, adaptive=adaptive)
    else:
        st = env.get_stencil(overlap=overlap, tiling=tiling, adaptive=adaptive)
    st.configure(
        make_kernel(ctx.node),
        config.functional_shape,
        model_shape=config.shape,
        parameter=ALPHA,
        time_block=time_block,
    )
    st.set_global_grid(heat3d_initial(config.functional_shape, seed=config.seed))
    recoveries = 0

    if until_tol is not None:
        mgr = None
        if checkpoint_every is not None:
            from repro.core.checkpoint import CheckpointManager

            mgr = CheckpointManager(ctx, every=checkpoint_every)
        res = st.run_until(
            max_iters=max_iters if max_iters is not None else config.iterations,
            tol=until_tol,
            checkpoint=mgr,
        )
        grid = st.gather_global()
        env.finalize()
        if reliable:
            ctx.comm.flush()
        return {
            "steps": [],
            "grid": grid,
            "recoveries": 0 if mgr is None else mgr.recoveries,
            "iterations": res.iterations,
            "residuals": res.residuals,
            "converged": res.converged,
            "time_block": st.time_block,
        }

    step_times: list[float] = []
    k = st.time_block
    if k > 1:
        # Blocked loop: advance whole temporal blocks (the checkpoint
        # unit too, so snapshots land on block boundaries) and spread
        # each block's elapsed time evenly over its sweeps — the total
        # is exact and the last entry is the steady per-sweep rate, so
        # extrapolate_steps keeps its meaning.
        n_blocks = -(-config.simulated_steps // k)

        def one_block(b: int) -> None:
            t0 = ctx.clock.now
            sweeps = min(k, config.simulated_steps - b * k)
            st.run(sweeps)
            dt = (ctx.clock.now - t0) / sweeps
            step_times.extend([dt] * sweeps)

        if checkpoint_every is not None:
            from repro.core.checkpoint import CheckpointManager

            mgr = CheckpointManager(ctx, every=checkpoint_every)
            mgr.run_iterations(n_blocks, one_block, st.snapshot_state, st.restore_state)
            recoveries = mgr.recoveries
        else:
            for b in range(n_blocks):
                one_block(b)
        grid = st.gather_global()
        env.finalize()
        if reliable:
            ctx.comm.flush()
        return {
            "steps": step_times,
            "grid": grid,
            "recoveries": recoveries,
            "time_block": k,
        }

    def one_step(_it: int) -> None:
        t0 = ctx.clock.now
        st.step()
        step_times.append(ctx.clock.now - t0)

    if checkpoint_every is not None:
        from repro.core.checkpoint import CheckpointManager

        mgr = CheckpointManager(ctx, every=checkpoint_every)
        mgr.run_iterations(
            config.simulated_steps, one_step, st.snapshot_state, st.restore_state
        )
        recoveries = mgr.recoveries
    else:
        for it in range(config.simulated_steps):
            one_step(it)
    grid = st.gather_global()
    env.finalize()
    if reliable:
        ctx.comm.flush()
    return {"steps": step_times, "grid": grid, "recoveries": recoveries, "time_block": k}


def run(
    cluster: ClusterSpec,
    config: Heat3DConfig | None = None,
    mix: str | DeviceConfig = "cpu+2gpu",
    *,
    overlap: bool = True,
    tiling: bool = True,
    reliable: bool = False,
    checkpoint_every: int | None = None,
    adaptive: bool = True,
    until_tol: float | None = None,
    max_iters: int | None = None,
    time_block: int | str = 1,
    **spmd_kwargs,
) -> AppRun:
    """Run Heat3D and report the extrapolated full-run makespan.

    With ``until_tol`` the run is convergence-driven: the makespan is the
    loop's actual virtual time (every iteration really runs; nothing to
    extrapolate) and the sequential baseline is scaled to the iteration
    count the loop took.
    """
    config = config or Heat3DConfig()
    result = spmd_run(
        rank_program,
        cluster,
        args=(config, mix),
        kwargs={
            "overlap": overlap,
            "tiling": tiling,
            "reliable": reliable,
            "checkpoint_every": checkpoint_every,
            "adaptive": adaptive,
            "until_tol": until_tol,
            "max_iters": max_iters,
            "time_block": time_block,
        },
        **spmd_kwargs,
    )
    if until_tol is not None:
        makespan = result.makespan
        iterations = result.values[0]["iterations"]
    else:
        per_rank_totals = [
            extrapolate_steps(v["steps"], config.iterations) for v in result.values
        ]
        makespan = max(per_rank_totals)
        iterations = config.iterations
    seq = sequential_time(base_work(), config.n_elems, cluster.node, iterations)
    return AppRun(
        app="heat3d",
        mix=mix if isinstance(mix, str) else mix.label(),
        nodes=cluster.num_nodes,
        makespan=makespan,
        seq_time=seq,
        result=result.values[0]["grid"],
        spmd=result,
    )


def sequential_reference(config: Heat3DConfig) -> np.ndarray:
    """Plain NumPy Heat3D with the same zero-halo boundary convention."""
    grid = heat3d_initial(config.functional_shape, seed=config.seed)
    shape = grid.shape
    src = np.zeros(tuple(s + 2 for s in shape))
    src[1:-1, 1:-1, 1:-1] = grid
    dst = np.zeros_like(src)
    region = tuple(slice(1, s + 1) for s in shape)
    for _ in range(config.simulated_steps):
        heat_apply(src, dst, region, ALPHA)
        src, dst = dst, src
        src[0, :, :] = src[-1, :, :] = 0
        src[:, 0, :] = src[:, -1, :] = 0
        src[:, :, 0] = src[:, :, -1] = 0
    return src[region]
