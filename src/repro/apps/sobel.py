"""Sobel edge detection — the paper's 2-D 9-point stencil application.

Paper workload (§IV-A): two 3x3 masks convolved over a 32768x32768 single-
precision image, 15 iterations; the MPI baseline comes from the GWU UPC
suite and the CUDA baseline from the NVIDIA SDK (which stages the input in
texture memory, making it 15% faster than the framework, Fig. 8).

Cost model: ~40 FLOPs per pixel (two 3x3 convolutions + gradient
magnitude), 16 bytes of traffic with tiling — compute-bound on the CPU,
which is where the framework's offset-computation overhead (the paper's
explanation for its 11% deficit vs. hand-written MPI, §IV-C) becomes
visible as ``runtime_overhead_flops``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.calibrate import calibrate_gpu_ratio
from repro.apps.common import AppRun, extrapolate_steps, sequential_time
from repro.cluster.specs import ClusterSpec, NodeSpec
from repro.core.api import StencilKernel
from repro.core.env import DeviceConfig, RuntimeEnv
from repro.data.grids import synthetic_image
from repro.device.work import WorkModel
from repro.sim.engine import RankContext, spmd_run
from repro.util.errors import ValidationError

#: Table II: perfect CPU+1GPU speedup 3.24 => GPU : 12-core-CPU = 2.24.
PAPER_GPU_CPU_RATIO = 2.24

#: §IV-C: the stencil runtime "spends extra cycles on computing the
#: offsets", making framework Sobel ~11% slower than hand-written MPI.
FRAMEWORK_OVERHEAD_FLOPS = 4.4

#: The Sobel masks.
GX = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float64)
GY = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], dtype=np.float64)


@dataclass(frozen=True)
class SobelConfig:
    """Sobel workload description."""

    shape: tuple[int, int] = (32768, 32768)
    functional_shape: tuple[int, int] = (768, 768)
    iterations: int = 15
    simulated_steps: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.shape) != 2 or len(self.functional_shape) != 2:
            raise ValidationError("Sobel images are 2-D")
        for f, m in zip(self.functional_shape, self.shape):
            if f > m:
                raise ValidationError("functional_shape must not exceed shape")
        if not 1 <= self.simulated_steps <= self.iterations:
            raise ValidationError("need 1 <= simulated_steps <= iterations")

    @property
    def n_elems(self) -> int:
        return int(np.prod(self.shape))


def base_work() -> WorkModel:
    """Uncalibrated per-pixel cost model (single precision)."""
    return WorkModel(
        name="sobel.masks",
        flops_per_elem=40.0,
        bytes_per_elem=16.0,
        cpu_efficiency=0.60,
        gpu_efficiency=0.2,  # placeholder; calibrated below
        runtime_overhead_flops=FRAMEWORK_OVERHEAD_FLOPS,
    )


def make_work(node: NodeSpec) -> WorkModel:
    if not node.gpus:
        return base_work()
    return calibrate_gpu_ratio(base_work(), node, PAPER_GPU_CPU_RATIO)


def sobel_apply(src: np.ndarray, dst: np.ndarray, region: tuple, _param) -> None:
    """Convolve both masks over ``region``; write gradient magnitude.

    Uses the separable form of the masks: with per-row sums
    ``s = src[y, x-1] + 2*src[y, x] + src[y, x+1]`` and diffs
    ``d = src[y, x+1] - src[y, x-1]``, the gradients are
    ``gx = d[y-1] + 2*d[y] + d[y+1]`` and ``gy = s[y+1] - s[y-1]``
    (the weights of :data:`GX`/:data:`GY`).  Everything runs in the grid's
    native dtype, with less than half the array passes of the direct 3x3
    loop — equivalent math, measurably faster wall-clock.
    """
    ys, xs = region
    rows = slice(ys.start - 1, ys.stop + 1)
    left = src[rows, xs.start - 1 : xs.stop - 1]
    mid = src[rows, xs]
    right = src[rows, xs.start + 1 : xs.stop + 1]
    d = right - left
    s = left + 2 * mid + right
    gx = d[:-2] + 2 * d[1:-1] + d[2:]
    gy = s[2:] - s[:-2]
    dst[region] = np.sqrt(gx * gx + gy * gy)


def make_kernel(node: NodeSpec) -> StencilKernel:
    return StencilKernel(
        apply=sobel_apply, halo=1, work=make_work(node), dtype=np.dtype(np.float32)
    )


def rank_program(
    ctx: RankContext,
    config: SobelConfig,
    mix: str | DeviceConfig = "cpu+2gpu",
    *,
    overlap: bool = True,
    tiling: bool = True,
    time_block: int | str = 1,
) -> dict:
    """SPMD body: repeated Sobel passes with per-step timing.

    ``time_block`` enables temporal blocking (``k`` sweeps per deep halo
    exchange, ``"auto"`` to let the link-table tuner pick); the gathered
    image stays bit-identical to ``time_block=1``.
    """
    env = RuntimeEnv(ctx, mix)
    st = env.get_stencil(overlap=overlap, tiling=tiling)
    st.configure(
        make_kernel(ctx.node),
        config.functional_shape,
        model_shape=config.shape,
        time_block=time_block,
    )
    st.set_global_grid(synthetic_image(config.functional_shape, seed=config.seed))
    step_times: list[float] = []
    k = st.time_block
    left = config.simulated_steps
    while left > 0:
        sweeps = min(k, left)
        t0 = ctx.clock.now
        st.run(sweeps)
        dt = (ctx.clock.now - t0) / sweeps
        step_times.extend([dt] * sweeps)
        left -= sweeps
    image = st.gather_global()
    env.finalize()
    return {"steps": step_times, "image": image, "time_block": k}


def run(
    cluster: ClusterSpec,
    config: SobelConfig | None = None,
    mix: str | DeviceConfig = "cpu+2gpu",
    *,
    overlap: bool = True,
    tiling: bool = True,
    time_block: int | str = 1,
    **spmd_kwargs,
) -> AppRun:
    """Run Sobel and report the extrapolated full-run makespan."""
    config = config or SobelConfig()
    result = spmd_run(
        rank_program,
        cluster,
        args=(config, mix),
        kwargs={"overlap": overlap, "tiling": tiling, "time_block": time_block},
        **spmd_kwargs,
    )
    per_rank_totals = [
        extrapolate_steps(v["steps"], config.iterations) for v in result.values
    ]
    seq = sequential_time(base_work(), config.n_elems, cluster.node, config.iterations)
    return AppRun(
        app="sobel",
        mix=mix if isinstance(mix, str) else mix.label(),
        nodes=cluster.num_nodes,
        makespan=max(per_rank_totals),
        seq_time=seq,
        result=result.values[0]["image"],
        spmd=result,
    )


def sequential_reference(config: SobelConfig) -> np.ndarray:
    """Plain NumPy Sobel with the same zero-halo boundary convention."""
    img = synthetic_image(config.functional_shape, seed=config.seed)
    shape = img.shape
    src = np.zeros((shape[0] + 2, shape[1] + 2), dtype=np.float32)
    src[1:-1, 1:-1] = img
    dst = np.zeros_like(src)
    region = (slice(1, shape[0] + 1), slice(1, shape[1] + 1))
    for _ in range(config.simulated_steps):
        sobel_apply(src, dst, region, None)
        src, dst = dst, src
        src[0, :] = src[-1, :] = 0
        src[:, 0] = src[:, -1] = 0
    return src[region]
