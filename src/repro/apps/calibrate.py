"""Calibration of GPU efficiencies against the paper's measured ratios.

The only numbers this reproduction takes from the paper as *inputs* are the
single-node device speed ratios it reports in §IV-C (e.g. "For Kmeans, the
GPU is 2.69 times faster than 12-core CPU", Moldyn 1.5x, MiniMD 1.7x,
Heat3D 2.4x, Sobel ~2.24x from Table II's perfect speedups).  Those ratios
pin each kernel's GPU efficiency, which we cannot derive from first
principles without the authors' CUDA code.  Everything downstream —
multi-device speedups, scheduling overheads, communication costs,
optimization deltas — is produced by the simulator.

:func:`calibrate_gpu_ratio` solves for the efficiency scaling analytically
using the *same* device cost methods the runtimes use, so the calibrated
model is exact by construction (verified by tests in
``tests/apps/test_calibration.py``).
"""

from __future__ import annotations

from repro.cluster.specs import NodeSpec
from repro.device.cpu import CPUDevice
from repro.device.gpu import GPUDevice
from repro.device.work import WorkModel
from repro.util.errors import ConfigurationError, ValidationError


def gpu_effective_elem_time(
    work: WorkModel,
    gpu: GPUDevice,
    *,
    localized: bool = True,
    streaming: bool = False,
    streams: int = 2,
) -> float:
    """Steady-state per-element time on one GPU.

    With ``streaming`` (generalized reductions), each scheduler chunk is
    split into ``streams`` blocks whose host→device copies pipeline against
    kernels, but the controller fetches the next chunk only when both
    streams finish (paper §III-D).  For per-element kernel time ``k`` and
    copy time ``c`` the chunk critical path is ``c/s + k`` when kernels
    dominate and ``c + k/s`` when copies dominate.
    """
    kernel = gpu.elem_time(work, localized=localized, framework=True)
    if not streaming or work.transfer_bytes_per_elem == 0:
        return kernel
    transfer = work.transfer_bytes_per_elem / gpu.spec.pcie_bandwidth
    if kernel >= transfer:
        return kernel + transfer / streams
    return transfer + kernel / streams


def device_ratio(
    work: WorkModel, node: NodeSpec, *, localized: bool = True, streaming: bool = False
) -> float:
    """Current GPU : 12-core-CPU speed ratio under ``work``."""
    cpu = CPUDevice(node.cpu)
    gpu = GPUDevice(node.gpus[0])
    cpu_t = cpu.elem_time(work, localized=localized, framework=True)
    gpu_t = gpu_effective_elem_time(work, gpu, localized=localized, streaming=streaming)
    return cpu_t / gpu_t


def calibrate_gpu_ratio(
    work: WorkModel,
    node: NodeSpec,
    target_ratio: float,
    *,
    localized: bool = True,
    streaming: bool = False,
    gpu_overhead_per_elem: float = 0.0,
) -> WorkModel:
    """Scale the GPU efficiencies of ``work`` so the device ratio hits target.

    ``gpu_overhead_per_elem`` charges fixed per-element time the runtime
    spends outside the kernel (e.g. the per-step node-data re-upload of
    irregular reductions, amortized per edge) so the *measured* device
    ratio, overheads included, lands on the paper's number.

    Solves ``cpu_elem_time / gpu_effective_elem_time == target_ratio`` for
    a common multiplier on ``gpu_efficiency`` and ``gpu_mem_efficiency``
    (the roofline max scales as 1/multiplier; atomic and transfer terms are
    fixed).  Raises if the target is unreachable — e.g. the PCIe streaming
    floor or the atomic cost alone already exceeds the required time, or
    the required efficiency would exceed 1.0 (the kernel would need to beat
    datasheet peak, meaning the declared flops/bytes are off).
    """
    if target_ratio <= 0:
        raise ValidationError(f"target_ratio must be > 0, got {target_ratio}")
    if not node.gpus:
        raise ConfigurationError("node has no GPUs to calibrate against")
    cpu = CPUDevice(node.cpu)
    gpu = GPUDevice(node.gpus[0])

    cpu_t = cpu.elem_time(work, localized=localized, framework=True)
    target_t = cpu_t / target_ratio - gpu_overhead_per_elem
    if target_t <= 0:
        raise ConfigurationError(
            f"target ratio {target_ratio} unreachable: per-element GPU overhead "
            f"{gpu_overhead_per_elem:.3e}s already exceeds the required time"
        )

    streams = 2
    transfer = (
        work.transfer_bytes_per_elem / gpu.spec.pcie_bandwidth if streaming else 0.0
    )
    if transfer > target_t * (1 + 1e-9):
        raise ConfigurationError(
            f"target ratio {target_ratio} unreachable: PCIe streaming floor "
            f"{transfer:.3e}s/elem exceeds required {target_t:.3e}s/elem"
        )
    # Invert the chunk-pipeline formula: effective = kernel + transfer/streams
    # (kernel-dominant branch; validated below).
    if transfer > 0:
        kernel_target = target_t - transfer / streams
        if kernel_target < transfer:
            # Copy-dominant branch: effective = transfer + kernel/streams.
            kernel_target = (target_t - transfer) * streams
            if kernel_target <= 0:
                raise ConfigurationError(
                    f"target ratio {target_ratio} unreachable: PCIe-bound even "
                    f"with an instant kernel ({work.name!r})"
                )
        target_t = kernel_target

    # Required *roofline* time: the kernel minus its fixed atomic cost.
    from repro.device.costmodel import atomic_cost_per_insert

    atomic = (
        work.atomics_per_elem
        * atomic_cost_per_insert(
            "gpu", work.num_reduction_keys or 1, localized, gpu=gpu.spec
        )
        if work.atomics_per_elem > 0
        else 0.0
    )
    if atomic > target_t * (1 + 1e-9):
        raise ConfigurationError(
            f"target ratio {target_ratio} unreachable: atomic cost "
            f"{atomic:.3e}s/elem exceeds required {target_t:.3e}s/elem"
        )
    roofline_needed = max(target_t - atomic, 1e-30)

    # Solve each roofline term for the efficiency that makes it exactly hit
    # the needed time; the slower (larger-needed-efficiency) term binds, the
    # other saturates at that time too (a tight roofline corner) unless its
    # requirement exceeds 1.0 — then it binds *below* the needed time and is
    # simply left at 1.0... which would make the kernel too fast, so instead
    # we require the binding term's efficiency to be feasible and pin the
    # non-binding term at the same time (capped at 1.0; a faster
    # non-binding term cannot slow the max() down, so capping is safe only
    # for the non-binding side).
    flops = work.flops_per_elem + work.gpu_overhead_flops
    need_comp_eff = flops / (roofline_needed * gpu.spec.flops) if flops > 0 else 0.0
    need_mem_eff = (
        work.bytes_per_elem / (roofline_needed * gpu.spec.mem_bandwidth)
        if work.bytes_per_elem > 0
        else 0.0
    )
    if need_comp_eff > 1.0 + 1e-9 and need_mem_eff > 1.0 + 1e-9:
        raise ConfigurationError(
            f"calibration for ratio {target_ratio} needs efficiencies "
            f"(compute {need_comp_eff:.3f}, memory {need_mem_eff:.3f}) > 1.0; "
            f"lower the declared flops/bytes or the CPU efficiency of {work.name!r}"
        )
    if max(need_comp_eff, need_mem_eff) < 1e-12:
        raise ConfigurationError(
            f"work model {work.name!r} declares no GPU roofline work to calibrate"
        )
    # At least one term must land exactly on roofline_needed: pick the term
    # whose requirement is feasible (<= 1) and largest; set the other to its
    # own requirement when feasible (keeping the corner tight) or 1.0.
    comp_eff = min(1.0, need_comp_eff) if need_comp_eff > 0 else work.gpu_efficiency
    mem_eff = min(1.0, need_mem_eff) if need_mem_eff > 0 else work.gpu_mem_efficiency
    if need_comp_eff > 1.0:
        comp_eff = 1.0  # compute runs at peak; memory term must carry the time
        if need_mem_eff > 1.0 or need_mem_eff <= 0:
            raise ConfigurationError(
                f"cannot realize ratio {target_ratio} for {work.name!r}"
            )
    if need_mem_eff > 1.0:
        mem_eff = 1.0  # memory at peak; compute term must carry the time
        if need_comp_eff > 1.0 or need_comp_eff <= 0:
            raise ConfigurationError(
                f"cannot realize ratio {target_ratio} for {work.name!r}"
            )
    return work.replace(gpu_efficiency=comp_eff, gpu_mem_efficiency=mem_eff)
