"""Hand-written MPI Heat3D (one rank per core), after dournac.org's solver.

Explicit 3-D Cartesian decomposition over all cores, blocking halo
exchanges every iteration (sendrecv per axis/direction), whole-subgrid
compute afterwards — no overlap, no tiling, no threading.  Each rank is a
single CPU core.
"""

from __future__ import annotations

import numpy as np

from repro.apps import heat3d as fw_heat3d
from repro.apps.common import AppRun, sequential_time, single_core_spec
from repro.cluster.specs import ClusterSpec
from repro.cluster.topology import coords_of, dims_create, rank_of
from repro.comm.constants import PROC_NULL
from repro.device.cpu import CPUDevice
from repro.sim.engine import RankContext, spmd_run

_TAG = 300


def _block(extent: int, parts: int, index: int) -> tuple[int, int]:
    base, extra = divmod(extent, parts)
    lo = index * base + min(index, extra)
    return lo, lo + base + (1 if index < extra else 0)


def _neighbor(coords, dims, axis, step):
    trial = list(coords)
    trial[axis] += step
    if not 0 <= trial[axis] < dims[axis]:
        return PROC_NULL
    return rank_of(tuple(trial), dims)


def rank_program(ctx: RankContext, config: fw_heat3d.Heat3DConfig) -> dict:
    dims = dims_create(ctx.size, 3)
    coords = coords_of(ctx.rank, dims)
    shape = config.functional_shape

    # -- local block with a one-cell halo --------------------------------
    bounds = [_block(shape[ax], dims[ax], coords[ax]) for ax in range(3)]
    local_shape = tuple(hi - lo for lo, hi in bounds)
    src = np.zeros(tuple(s + 2 for s in local_shape))
    dst = np.zeros_like(src)
    grid = fw_heat3d.heat3d_initial(shape, seed=config.seed)
    src[1:-1, 1:-1, 1:-1] = grid[
        bounds[0][0] : bounds[0][1], bounds[1][0] : bounds[1][1], bounds[2][0] : bounds[2][1]
    ]
    interior = tuple(slice(1, 1 + ext) for ext in local_shape)

    # -- cost model: one core, hand-written loop -------------------------
    core = CPUDevice(single_core_spec(ctx.node.cpu))
    work = fw_heat3d.base_work()
    elem_time = core.core_elem_time(work, localized=True, framework=False)
    elem_scale = float(np.prod([m / f for m, f in zip(config.shape, shape)]))
    model_local = int(np.prod(local_shape)) * elem_scale

    def face_bytes(axis: int) -> float:
        elems = 1
        for ax in range(3):
            if ax != axis:
                elems *= local_shape[ax]
        return elems * (elem_scale / (config.shape[axis] / shape[axis])) * 8

    step_times = []
    for _ in range(config.simulated_steps):
        t0 = ctx.clock.now
        # -- blocking halo exchange, axis by axis ------------------------
        for axis in range(3):
            down = _neighbor(coords, dims, axis, -1)
            up = _neighbor(coords, dims, axis, +1)
            wire = face_bytes(axis)

            def plane(where: int):
                # Full padded extent on other axes (corner propagation).
                index = [slice(0, n) for n in src.shape]
                index[axis] = where
                return tuple(index)

            # send up / receive from down
            if up != PROC_NULL:
                ctx.comm.send(np.ascontiguousarray(src[plane(-2)]), up, _TAG + axis, wire_bytes=wire)
            if down != PROC_NULL:
                got = ctx.comm.recv(source=down, tag=_TAG + axis)
                src[plane(0)] = got
            # send down / receive from up
            if down != PROC_NULL:
                ctx.comm.send(np.ascontiguousarray(src[plane(1)]), down, _TAG + axis, wire_bytes=wire)
            if up != PROC_NULL:
                got = ctx.comm.recv(source=up, tag=_TAG + axis)
                src[plane(-1)] = got

        # -- whole-subgrid update (no inner/boundary split) --------------
        fw_heat3d.heat_apply(src, dst, interior, fw_heat3d.ALPHA)
        ctx.clock.advance(model_local * elem_time)
        src, dst = dst, src
        step_times.append(ctx.clock.now - t0)

    return {"steps": step_times, "bounds": bounds, "block": src[interior].copy()}


def run(cluster: ClusterSpec, config: fw_heat3d.Heat3DConfig | None = None, **kw) -> AppRun:
    """Run the per-core MPI baseline over ``cluster``."""
    config = config or fw_heat3d.Heat3DConfig()
    result = spmd_run(
        rank_program,
        cluster,
        ranks_per_node=cluster.node.cpu.cores,
        args=(config,),
        **kw,
    )
    from repro.apps.common import extrapolate_steps

    makespan = max(extrapolate_steps(v["steps"], config.iterations) for v in result.values)
    seq = sequential_time(fw_heat3d.base_work(), config.n_elems, cluster.node, config.iterations)
    return AppRun(
        app="heat3d-mpi",
        mix=f"mpi-{cluster.node.cpu.cores}ppn",
        nodes=cluster.num_nodes,
        makespan=makespan,
        seq_time=seq,
        result=result.values,
    )


def assemble(values: list[dict], shape: tuple[int, int, int]) -> np.ndarray:
    """Reassemble the global grid from per-rank blocks (test helper)."""
    out = np.zeros(shape)
    for v in values:
        b = v["bounds"]
        out[b[0][0] : b[0][1], b[1][0] : b[1][1], b[2][0] : b[2][1]] = v["block"]
    return out
