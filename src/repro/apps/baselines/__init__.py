"""Hand-written baselines the paper compares against (§IV-C, Fig. 5/6/8).

These are deliberately written in explicit message-passing style — manual
partitioning, manual halo exchange, blocking communication, no tiling, no
overlap — because they stand in for the hand-written benchmarks the paper
used (Northwestern Kmeans, GWU UPC Sobel, dournac.org Heat3D, Mantevo
MiniMD, Rodinia/SDK CUDA kernels).  They serve three purposes:

1. **Performance comparators** for Fig. 5 (MPI, one rank per core — except
   MiniMD, whose Mantevo code is MPI+OpenMP, one rank per node) and Fig. 8
   (hand-tuned single-GPU CUDA);
2. **Code-size comparators** for Fig. 6 — their verbosity is the point;
3. **Independent correctness oracles**: they compute the same answers
   through a different code path.

Cost accounting: hand-written kernels charge ``framework=False`` device
rates (no runtime bookkeeping overhead) directly onto the rank clock.
"""

from repro.apps.baselines import (  # noqa: F401
    cuda_kmeans,
    cuda_sobel,
    mpi_heat3d,
    mpi_kmeans,
    mpi_minimd,
    mpi_sobel,
)

__all__ = [
    "mpi_kmeans",
    "mpi_sobel",
    "mpi_heat3d",
    "mpi_minimd",
    "cuda_kmeans",
    "cuda_sobel",
]
