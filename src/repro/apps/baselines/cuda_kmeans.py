"""Hand-written single-GPU CUDA Kmeans, after the Rodinia benchmark.

The Fig. 8 comparator: one GPU, input streamed in chunks over two streams,
shared-memory accumulation — structurally the same pipeline the framework
builds, minus the framework's per-point bookkeeping
(``runtime_overhead_flops``), which is exactly the paper's observed ~6%
gap.
"""

from __future__ import annotations

import numpy as np

from repro.apps import kmeans as fw_kmeans
from repro.apps.common import AppRun, sequential_time
from repro.cluster.specs import ClusterSpec
from repro.device.gpu import GPUDevice
from repro.sim.engine import RankContext, spmd_run
from repro.util.errors import ConfigurationError


def rank_program(ctx: RankContext, config: fw_kmeans.KmeansConfig) -> np.ndarray:
    if not ctx.node.gpus:
        raise ConfigurationError("cuda_kmeans needs a GPU")
    gpu = GPUDevice(ctx.node.gpus[0])
    work = fw_kmeans.make_work(config, ctx.node)

    points, _ = fw_kmeans.clustered_points(
        config.functional_points, config.k, config.dims, seed=config.seed
    )
    centers = points[: config.k].astype(np.float64)
    scale = config.n_points / len(points)
    # Rodinia copies large blocks; 16 chunks keeps fixed costs negligible.
    chunk = max(16, len(points) // 16)

    emit = fw_kmeans.make_emit(config)
    from repro.core.reduction_object import DenseReductionObject

    for _ in range(config.iterations):
        obj = DenseReductionObject(config.k, config.dims + 1, "sum")
        ready = ctx.clock.now
        for start in range(0, len(points), chunk):
            block = points[start : start + chunk]
            emit(obj, block, start, centers)
            execution = gpu.submit_chunk(
                work, len(block) * scale, ready, localized=True, framework=False
            )
            ready = execution.kernel_end
        # final device->host copy of the reduction object
        ready += gpu.transfer_time(obj.values.nbytes)
        ctx.clock.advance_to(ready)
        combined = obj.values
        counts = combined[:, -1:]
        centers = np.where(counts > 0, combined[:, :-1] / np.maximum(counts, 1.0), centers)
    return centers


def run(cluster: ClusterSpec, config: fw_kmeans.KmeansConfig | None = None, **kw) -> AppRun:
    """Run the hand-written CUDA baseline on one node's first GPU."""
    config = config or fw_kmeans.KmeansConfig()
    if cluster.num_nodes != 1:
        cluster = cluster.with_nodes(1)
    result = spmd_run(rank_program, cluster, args=(config,), **kw)
    seq = sequential_time(
        fw_kmeans.base_work(config), config.n_points, cluster.node, config.iterations
    )
    return AppRun(
        app="kmeans-cuda",
        mix="cuda-1gpu",
        nodes=1,
        makespan=result.makespan,
        seq_time=seq,
        result=result.values[0],
    )
