"""Hand-written MPI Sobel (one rank per core), after the GWU UPC suite.

Explicit 2-D Cartesian decomposition over all cores, blocking halo
exchange per iteration, whole-subimage convolution — no overlap, no
tiling, no threading.  Each rank is a single CPU core.
"""

from __future__ import annotations

import numpy as np

from repro.apps import sobel as fw_sobel
from repro.apps.common import AppRun, extrapolate_steps, sequential_time, single_core_spec
from repro.cluster.specs import ClusterSpec
from repro.cluster.topology import coords_of, dims_create, rank_of
from repro.comm.constants import PROC_NULL
from repro.device.cpu import CPUDevice
from repro.sim.engine import RankContext, spmd_run

_TAG = 320


def _block(extent: int, parts: int, index: int) -> tuple[int, int]:
    base, extra = divmod(extent, parts)
    lo = index * base + min(index, extra)
    return lo, lo + base + (1 if index < extra else 0)


def _neighbor(coords, dims, axis, step):
    trial = list(coords)
    trial[axis] += step
    if not 0 <= trial[axis] < dims[axis]:
        return PROC_NULL
    return rank_of(tuple(trial), dims)


def rank_program(ctx: RankContext, config: fw_sobel.SobelConfig) -> dict:
    dims = dims_create(ctx.size, 2)
    coords = coords_of(ctx.rank, dims)
    shape = config.functional_shape

    bounds = [_block(shape[ax], dims[ax], coords[ax]) for ax in range(2)]
    local_shape = tuple(hi - lo for lo, hi in bounds)
    src = np.zeros(tuple(s + 2 for s in local_shape), dtype=np.float32)
    dst = np.zeros_like(src)
    image = fw_sobel.synthetic_image(shape, seed=config.seed)
    src[1:-1, 1:-1] = image[bounds[0][0] : bounds[0][1], bounds[1][0] : bounds[1][1]]
    interior = tuple(slice(1, 1 + ext) for ext in local_shape)

    core = CPUDevice(single_core_spec(ctx.node.cpu))
    work = fw_sobel.base_work()
    elem_time = core.core_elem_time(work, localized=True, framework=False)
    elem_scale = float(np.prod([m / f for m, f in zip(config.shape, shape)]))
    model_local = int(np.prod(local_shape)) * elem_scale

    def face_bytes(axis: int) -> float:
        other = local_shape[1 - axis]
        return other * (elem_scale / (config.shape[axis] / shape[axis])) * 4

    step_times = []
    for _ in range(config.simulated_steps):
        t0 = ctx.clock.now
        for axis in range(2):
            down = _neighbor(coords, dims, axis, -1)
            up = _neighbor(coords, dims, axis, +1)
            wire = face_bytes(axis)

            def line(where: int):
                # Full padded extent on the other axis so corners propagate
                # through sequential axis exchanges (Sobel reads diagonals).
                index = [slice(0, n) for n in src.shape]
                index[axis] = where
                return tuple(index)

            if up != PROC_NULL:
                ctx.comm.send(np.ascontiguousarray(src[line(-2)]), up, _TAG + axis, wire_bytes=wire)
            if down != PROC_NULL:
                src[line(0)] = ctx.comm.recv(source=down, tag=_TAG + axis)
            if down != PROC_NULL:
                ctx.comm.send(np.ascontiguousarray(src[line(1)]), down, _TAG + axis, wire_bytes=wire)
            if up != PROC_NULL:
                src[line(-1)] = ctx.comm.recv(source=up, tag=_TAG + axis)

        fw_sobel.sobel_apply(src, dst, interior, None)
        ctx.clock.advance(model_local * elem_time)
        src, dst = dst, src
        step_times.append(ctx.clock.now - t0)

    return {"steps": step_times, "bounds": bounds, "block": src[interior].copy()}


def run(cluster: ClusterSpec, config: fw_sobel.SobelConfig | None = None, **kw) -> AppRun:
    """Run the per-core MPI baseline over ``cluster``."""
    config = config or fw_sobel.SobelConfig()
    result = spmd_run(
        rank_program,
        cluster,
        ranks_per_node=cluster.node.cpu.cores,
        args=(config,),
        **kw,
    )
    makespan = max(extrapolate_steps(v["steps"], config.iterations) for v in result.values)
    seq = sequential_time(fw_sobel.base_work(), config.n_elems, cluster.node, config.iterations)
    return AppRun(
        app="sobel-mpi",
        mix=f"mpi-{cluster.node.cpu.cores}ppn",
        nodes=cluster.num_nodes,
        makespan=makespan,
        seq_time=seq,
        result=result.values,
    )


def assemble(values: list[dict], shape: tuple[int, int]) -> np.ndarray:
    """Reassemble the global image from per-rank blocks (test helper)."""
    out = np.zeros(shape, dtype=np.float32)
    for v in values:
        b = v["bounds"]
        out[b[0][0] : b[0][1], b[1][0] : b[1][1]] = v["block"]
    return out
