"""Hand-written single-GPU CUDA Sobel, after the NVIDIA SDK sample.

The Fig. 8 comparator.  The SDK kernel stages the input through *texture
memory*, an application-specific optimization the paper notes the
framework "cannot perform" — modeled as a modest efficiency gain on top of
dropping the framework's offset-computation overhead.  Together they
produce the paper's ~15% gap.
"""

from __future__ import annotations

import numpy as np

from repro.apps import sobel as fw_sobel
from repro.apps.common import AppRun, sequential_time
from repro.cluster.specs import ClusterSpec
from repro.device.gpu import GPUDevice
from repro.sim.engine import RankContext, spmd_run
from repro.util.errors import ConfigurationError

#: Texture staging improves the achieved throughput of the neighbour reads
#: (2-D-locality caching) and removes read stalls from the compute loop.
TEXTURE_EFFICIENCY_GAIN = 1.15


def rank_program(ctx: RankContext, config: fw_sobel.SobelConfig) -> dict:
    if not ctx.node.gpus:
        raise ConfigurationError("cuda_sobel needs a GPU")
    gpu = GPUDevice(ctx.node.gpus[0])
    work = fw_sobel.make_work(ctx.node)
    work = work.replace(
        gpu_efficiency=min(1.0, work.gpu_efficiency * TEXTURE_EFFICIENCY_GAIN),
        gpu_mem_efficiency=min(1.0, work.gpu_mem_efficiency * TEXTURE_EFFICIENCY_GAIN),
    )

    image = fw_sobel.synthetic_image(config.functional_shape, seed=config.seed)
    shape = image.shape
    src = np.zeros((shape[0] + 2, shape[1] + 2), dtype=np.float32)
    src[1:-1, 1:-1] = image
    dst = np.zeros_like(src)
    region = (slice(1, shape[0] + 1), slice(1, shape[1] + 1))
    n_model = int(np.prod(config.shape))

    # The initial host->device image copy is *setup* — the paper's timings
    # "do not include application setup and initialization times".
    ready = ctx.clock.now
    step_times = []
    for _ in range(config.simulated_steps):
        t0 = ready
        fw_sobel.sobel_apply(src, dst, region, None)
        ready = t0 + gpu.kernel_time(work, n_model, framework=False)
        src, dst = dst, src
        src[0, :] = src[-1, :] = 0
        src[:, 0] = src[:, -1] = 0
        step_times.append(ready - t0)
    ctx.clock.advance_to(ready)
    return {"steps": step_times, "image": src[region].copy()}


def run(cluster: ClusterSpec, config: fw_sobel.SobelConfig | None = None, **kw) -> AppRun:
    """Run the hand-written CUDA baseline on one node's first GPU."""
    config = config or fw_sobel.SobelConfig()
    if cluster.num_nodes != 1:
        cluster = cluster.with_nodes(1)
    result = spmd_run(rank_program, cluster, args=(config,), **kw)
    from repro.apps.common import extrapolate_steps

    makespan = max(extrapolate_steps(v["steps"], config.iterations) for v in result.values)
    seq = sequential_time(fw_sobel.base_work(), config.n_elems, cluster.node, config.iterations)
    return AppRun(
        app="sobel-cuda",
        mix="cuda-1gpu",
        nodes=1,
        makespan=makespan,
        seq_time=seq,
        result=result.values[0]["image"],
    )
