"""Hand-written MPI Kmeans (one rank per core), after the Northwestern kernel.

Structure of the original: every process owns an equal slice of the
points; each iteration computes nearest centers and partial sums locally,
then calls ``MPI_Allreduce`` on the (k x (dims+1)) accumulator.  No
threading, no accelerators, blocking collectives.
"""

from __future__ import annotations

import numpy as np

from repro.apps import kmeans as fw_kmeans
from repro.apps.common import AppRun, sequential_time, single_core_spec
from repro.cluster.specs import ClusterSpec
from repro.device.cpu import CPUDevice
from repro.sim.engine import RankContext, spmd_run


def rank_program(ctx: RankContext, config: fw_kmeans.KmeansConfig) -> np.ndarray:
    """One MPI rank: local assignment + allreduce, one core per rank."""
    # -- input loading: every rank reads its own contiguous slice ---------
    points, _ = fw_kmeans.clustered_points(
        config.functional_points, config.k, config.dims, seed=config.seed
    )
    n = len(points)
    base, extra = divmod(n, ctx.size)
    lo = ctx.rank * base + min(ctx.rank, extra)
    hi = lo + base + (1 if ctx.rank < extra else 0)
    local = points[lo:hi].astype(np.float64)
    centers = points[: config.k].astype(np.float64)

    # -- cost model: a plain sequential loop on this rank's core ----------
    core = CPUDevice(single_core_spec(ctx.node.cpu))
    work = fw_kmeans.base_work(config)
    elem_time = core.core_elem_time(work, localized=True, framework=False)
    model_local = config.n_points // ctx.size

    for _ in range(config.iterations):
        # assignment + accumulation (the hand-written inner loop)
        diff = local[:, None, :] - centers[None, :, :]
        d2 = np.einsum("nkd,nkd->nk", diff, diff)
        keys = np.argmin(d2, axis=1)
        acc = np.zeros((config.k, config.dims + 1))
        np.add.at(acc[:, : config.dims], keys, local)
        np.add.at(acc[:, config.dims], keys, 1.0)
        ctx.clock.advance(model_local * elem_time)

        total = ctx.comm.allreduce(acc, "sum")
        counts = total[:, config.dims :]
        centers = np.where(
            counts > 0, total[:, : config.dims] / np.maximum(counts, 1.0), centers
        )
    return centers


def run(cluster: ClusterSpec, config: fw_kmeans.KmeansConfig | None = None, **kw) -> AppRun:
    """Run the per-core MPI baseline over ``cluster``."""
    config = config or fw_kmeans.KmeansConfig()
    result = spmd_run(
        rank_program,
        cluster,
        ranks_per_node=cluster.node.cpu.cores,
        args=(config,),
        **kw,
    )
    seq = sequential_time(
        fw_kmeans.base_work(config), config.n_points, cluster.node, config.iterations
    )
    return AppRun(
        app="kmeans-mpi",
        mix=f"mpi-{cluster.node.cpu.cores}ppn",
        nodes=cluster.num_nodes,
        makespan=result.makespan,
        seq_time=seq,
        result=result.values[0],
    )
