"""Hand-written MPI+OpenMP MiniMD (one rank per node), after Mantevo's code.

The original parallelizes across nodes with MPI and within a node with
OpenMP; communication is blocking (exchange *then* compute — the paper
credits its 1.17x win over this code to overlapping the two).  This
baseline partitions atoms into contiguous blocks, exchanges the positions
of remotely-owned neighbor atoms every step, computes LJ forces over its
edge set with all 12 cores, and integrates locally.
"""

from __future__ import annotations

import numpy as np

from repro.apps import minimd as fw_minimd
from repro.apps.common import AppRun, sequential_time
from repro.cluster.specs import ClusterSpec
from repro.device.cpu import CPUDevice
from repro.sim.engine import RankContext, spmd_run

_TAG_IDS = 340
_TAG_POS = 341


def rank_program(ctx: RankContext, config: fw_minimd.MiniMDConfig) -> dict:
    atoms = fw_minimd._functional_atoms(config)
    edges = fw_minimd.build_neighbor_edges(atoms[:, 0:3], config.cutoff)
    n = len(atoms)
    cutoff2 = config.cutoff**2

    # -- block partition of atoms ----------------------------------------
    base, extra = divmod(n, ctx.size)
    lo = ctx.rank * base + min(ctx.rank, extra)
    hi = lo + base + (1 if ctx.rank < extra else 0)

    # Edges this rank computes: any edge touching a local atom.
    touch = ((edges[:, 0] >= lo) & (edges[:, 0] < hi)) | (
        (edges[:, 1] >= lo) & (edges[:, 1] < hi)
    )
    my_edges = edges[touch]

    # Remote atoms we need, grouped by owning rank.
    def owner(ids):
        cut = extra * (base + 1)
        small = ids < cut
        return np.where(small, ids // max(base + 1, 1), extra + (ids - cut) // max(base, 1))

    ends = my_edges.reshape(-1)
    remote = np.unique(ends[(ends < lo) | (ends >= hi)])
    owners = owner(remote) if len(remote) else np.array([], dtype=np.int64)
    need: dict[int, np.ndarray] = {
        int(p): remote[owners == p] for p in np.unique(owners)
    }

    # Tell owners which atoms we need (counts via alltoall, then IDs).
    counts = [len(need.get(p, ())) for p in range(ctx.size)]
    all_counts = ctx.comm.alltoall(counts)
    for p, ids in need.items():
        ctx.comm.send(ids, p, _TAG_IDS)
    serve: dict[int, np.ndarray] = {}
    for p, cnt in enumerate(all_counts):
        if p != ctx.rank and cnt > 0:
            serve[p] = np.asarray(ctx.comm.recv(source=p, tag=_TAG_IDS))

    # -- cost model: 12 OpenMP threads, hand-written loop -----------------
    cpu = CPUDevice(ctx.node.cpu)
    work = fw_minimd.base_force_work()
    edge_scale = config.n_edges / max(1, len(edges))
    # Same surface-corrected wire scale as the framework path: remote-atom
    # counts grow with slab surface, not volume (see MiniMDConfig).
    exchange_scale = config.exchange_scale()
    positions = atoms.copy()

    step_times = []
    for _ in range(config.simulated_steps):
        t0 = ctx.clock.now
        # -- blocking position exchange (no overlap) ----------------------
        for p, ids in serve.items():
            buf = positions[ids]
            ctx.comm.send(buf, p, _TAG_POS, wire_bytes=buf.nbytes * exchange_scale)
        for p, ids in need.items():
            got = ctx.comm.recv(source=p, tag=_TAG_POS)
            positions[ids] = np.asarray(got).reshape(len(ids), positions.shape[1])

        # -- LJ forces over my edges, updating only local atoms -----------
        d = positions[my_edges[:, 0], 0:3] - positions[my_edges[:, 1], 0:3]
        r2 = np.maximum(np.einsum("nd,nd->n", d, d), 1e-12)
        sr2 = 1.0 / r2
        sr6 = sr2 * sr2 * sr2
        fmag = np.where(r2 < cutoff2, 24.0 * (2.0 * sr6 * sr6 - sr6) / r2, 0.0)
        f = fmag[:, None] * d
        forces = np.zeros((n, 3))
        u_local = (my_edges[:, 0] >= lo) & (my_edges[:, 0] < hi)
        v_local = (my_edges[:, 1] >= lo) & (my_edges[:, 1] < hi)
        np.add.at(forces, my_edges[u_local, 0], f[u_local])
        np.add.at(forces, my_edges[v_local, 1], -f[v_local])
        ctx.clock.advance(
            cpu.partition_time(work, len(my_edges) * edge_scale, localized=True, framework=False)
        )

        # -- integrate local atoms ----------------------------------------
        positions[lo:hi, 3:6] += forces[lo:hi] * fw_minimd.DT
        positions[lo:hi, 0:3] += positions[lo:hi, 3:6] * fw_minimd.DT
        step_times.append(ctx.clock.now - t0)

    return {"steps": step_times, "range": (lo, hi), "nodes": positions[lo:hi].copy()}


def run(cluster: ClusterSpec, config: fw_minimd.MiniMDConfig | None = None, **kw) -> AppRun:
    """Run the per-node MPI+OpenMP baseline over ``cluster``."""
    config = config or fw_minimd.MiniMDConfig()
    result = spmd_run(rank_program, cluster, args=(config,), **kw)
    from repro.apps.common import extrapolate_steps

    makespan = max(extrapolate_steps(v["steps"], config.iterations) for v in result.values)
    seq = sequential_time(
        fw_minimd.base_force_work(), config.n_edges, cluster.node, config.iterations
    )
    return AppRun(
        app="minimd-mpi",
        mix="mpi+openmp",
        nodes=cluster.num_nodes,
        makespan=makespan,
        seq_time=seq,
        result=result.values,
    )
