"""Exporters: Chrome-trace/Perfetto JSON and machine-readable report JSON.

The Chrome trace uses the classic ``traceEvents`` format understood by
``chrome://tracing`` and https://ui.perfetto.dev: one *process* per rank,
one *thread track* per resource :class:`~repro.sim.timeline.Timeline`
(CPU cores, GPU copy/compute engines, NIC egress/ingress), plus one track
per span category (``comm``, ``compute``, ``fault``...).  Virtual seconds
become microseconds (``ts``/``dur``), the unit trace viewers expect.

Span events within one category can legitimately overlap in virtual time
(two in-flight sends, per-device phase spans); complete ("X") events on
one track would render garbled, so overlapping events are spread across
numbered overflow lanes (``comm``, ``comm+1``, ...) by a greedy interval
colouring.  Zero-duration events export as instants ("i").
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Sequence

from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SpmdResult

_US = 1e6  # virtual seconds -> trace microseconds


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars (and anything else) into JSON-native types."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float, str)) or value is None:
        return value
    for caster in (int, float):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return str(value)


def _assign_lanes(events: list[tuple[float, float, Any]]) -> list[int]:
    """Greedy interval colouring: lane index per event (input order kept)."""
    order = sorted(range(len(events)), key=lambda i: (events[i][0], events[i][1]))
    lane_free: list[float] = []
    lanes = [0] * len(events)
    for i in order:
        start, end, _ = events[i]
        for lane, free_at in enumerate(lane_free):
            if start >= free_at:
                lanes[i] = lane
                lane_free[lane] = max(end, start)
                break
        else:
            lanes[i] = len(lane_free)
            lane_free.append(max(end, start))
    return lanes


def export_chrome_trace(
    traces: Sequence[Trace], makespan: float | None = None
) -> dict[str, Any]:
    """Build a Chrome-trace dict from per-rank traces (Recorder or Trace)."""
    events: list[dict[str, Any]] = []
    for rank, tr in enumerate(traces):
        pid = rank
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"rank {rank}"},
            }
        )
        tid_of: dict[str, int] = {}

        def tid_for(track: str, pid=pid, tid_of=tid_of) -> int:
            tid = tid_of.get(track)
            if tid is None:
                tid = len(tid_of)
                tid_of[track] = tid
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": track},
                    }
                )
            return tid

        # One track per resource timeline (Recorder ranks only).  Declare
        # every attached timeline up front so idle resources still show.
        for name in getattr(tr, "timeline_names", ()):  # attach order
            tid_for(name)
        for rec in getattr(tr, "intervals", ()):
            events.append(
                {
                    "ph": "X",
                    "name": rec.label or rec.timeline,
                    "cat": "resource",
                    "ts": rec.start * _US,
                    "dur": (rec.end - rec.start) * _US,
                    "pid": pid,
                    "tid": tid_for(rec.timeline),
                }
            )

        # Category tracks for span events, with overflow lanes where spans
        # of one category overlap.
        by_cat: dict[str, list] = {}
        for ev in tr.events:
            by_cat.setdefault(ev.category, []).append((ev.start, ev.end, ev))
        for cat in sorted(by_cat):
            cat_events = by_cat[cat]
            lanes = _assign_lanes(cat_events)
            for (start, end, ev), lane in zip(cat_events, lanes):
                track = cat if lane == 0 else f"{cat}+{lane}"
                args = {k: _json_safe(v) for k, v in ev.meta.items()}
                entry: dict[str, Any] = {
                    "name": ev.label,
                    "cat": cat,
                    "ts": start * _US,
                    "pid": pid,
                    "tid": tid_for(track),
                    "args": args,
                }
                if end > start:
                    entry["ph"] = "X"
                    entry["dur"] = (end - start) * _US
                else:
                    entry["ph"] = "i"
                    entry["s"] = "t"
                events.append(entry)

    out: dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if makespan is not None:
        out["otherData"] = {"makespan_s": makespan}
    return out


def validate_chrome_trace(obj: Any) -> None:
    """Validate the Chrome-trace JSON schema; raises ``ValueError``.

    Checks the shape viewers actually require: a ``traceEvents`` list whose
    entries have a known phase, a name, integer pid/tid, and — for complete
    events — non-negative numeric ``ts``/``dur``.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace must be a JSON object, got {type(obj).__name__}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must have a 'traceEvents' list")
    if "displayTimeUnit" in obj and obj["displayTimeUnit"] not in ("ms", "ns"):
        raise ValueError(f"displayTimeUnit must be 'ms' or 'ns', got {obj['displayTimeUnit']!r}")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: event must be an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            raise ValueError(f"{where}: unsupported phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        if ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or "name" not in args:
                raise ValueError(f"{where}: metadata event needs args.name")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: dur must be a non-negative number")
    # The whole object must round-trip through JSON (no numpy scalars etc.).
    try:
        json.dumps(obj)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"trace is not JSON-serializable: {exc}") from exc


def write_chrome_trace(
    path: str, traces: Sequence[Trace], makespan: float | None = None
) -> dict[str, Any]:
    """Export, validate, and write a Chrome trace; returns the dict."""
    obj = export_chrome_trace(traces, makespan)
    validate_chrome_trace(obj)
    with open(path, "w") as fh:
        json.dump(obj, fh)
    return obj
