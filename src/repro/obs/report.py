"""Plain-text rendering of a :class:`~repro.obs.analysis.RunReport`.

Built on the repo's existing terminal primitives —
:func:`repro.metrics.reporting.format_table` for the phase / critical-path
tables and :func:`repro.metrics.ascii_chart.render_bars` for per-timeline
utilization — so ``repro profile`` output matches the house style of the
figure and benchmark reports.
"""

from __future__ import annotations

from repro.metrics.ascii_chart import render_bars
from repro.metrics.reporting import format_table
from repro.obs.analysis import RunReport


def _fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:.1f}us"


def render_text_report(
    report: RunReport, *, top_links: int = 12, bar_width: int = 40
) -> str:
    """Render the full observability report for terminal output."""
    parts: list[str] = []
    parts.append(f"makespan: {report.makespan:.9g} s  ({report.nranks} ranks)")
    if report.app_makespan is not None and report.app_makespan != report.makespan:
        parts.append(
            f"app-reported makespan: {report.app_makespan:.9g} s "
            "(extrapolated beyond the simulated steps)"
        )

    parts.append("")
    parts.append(
        format_table(
            [ph.to_dict() for ph in report.phases],
            columns=[
                "rank", "compute", "comm", "wait", "fault", "other",
                "finish_wait", "total",
            ],
            title="Phase attribution (seconds; rows sum to the makespan)",
        )
    )

    if report.timelines:
        items = [
            (f"r{tl.rank}:{tl.name}", tl.utilization) for tl in report.timelines
        ]
        parts.append("")
        parts.append(
            render_bars(
                items,
                width=bar_width,
                max_value=1.0,
                title="Timeline utilization (busy fraction of the makespan)",
            )
        )

    if report.critical_path:
        shown = report.critical_path
        note = ""
        if len(shown) > top_links:
            by_dur = sorted(shown, key=lambda link: -link.duration)[:top_links]
            keep = {id(link) for link in by_dur}
            shown = [link for link in shown if id(link) in keep]
            note = (
                f" (longest {top_links} of {len(report.critical_path)} links)"
            )
        parts.append("")
        parts.append(
            format_table(
                [
                    {
                        "rank": link.rank,
                        "phase": link.phase,
                        "label": link.label,
                        "start": _fmt_us(link.start),
                        "duration": _fmt_us(link.duration),
                        "slack": _fmt_us(link.slack),
                    }
                    for link in shown
                ],
                title="Critical path (chronological)" + note,
            )
        )

    if report.counters:
        parts.append("")
        parts.append(
            format_table(
                [
                    {"counter": name, "cluster_total": value}
                    for name, value in sorted(report.counters.items())
                ],
                title="Counters (summed across ranks)",
            )
        )

    gauges = [
        {"rank": rank, "gauge": name, "value": value}
        for rank, gd in enumerate(report.gauges_by_rank)
        for name, value in sorted(gd.items())
    ]
    if gauges:
        parts.append("")
        parts.append(format_table(gauges, title="Gauges (latest value per rank)"))

    parts.append("")
    parts.append(f"events recorded: {report.n_events}")
    return "\n".join(parts)
