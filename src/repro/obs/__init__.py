"""repro.obs — the observability subsystem.

Spans and counters (recorded through :class:`~repro.sim.trace.Trace` /
:class:`Recorder`), full-run timeline capture, post-run analysis
(utilization, phase attribution, critical path), and exporters
(Chrome-trace/Perfetto JSON, plain text, machine JSON).  See the
"Observability" section of ``docs/architecture.md``.

Typical use::

    from repro.obs import Recorder, analyze
    result = spmd_run(prog, cluster, recorder_factory=Recorder)
    report = analyze(result)
    report.verify()                      # reconciliation + contiguity
    print(render_text_report(report))
"""

from repro.obs.analysis import (
    PathLink,
    PhaseBreakdown,
    RunReport,
    TimelineStats,
    aggregate_counters,
    analyze,
    attribute_phases,
    critical_path,
    match_messages,
    timeline_stats,
)
from repro.obs.export import (
    export_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import PROFILE_APPS, profile_app
from repro.obs.recorder import IntervalRecord, Recorder
from repro.obs.report import render_text_report

__all__ = [
    "IntervalRecord",
    "PathLink",
    "PhaseBreakdown",
    "PROFILE_APPS",
    "Recorder",
    "RunReport",
    "TimelineStats",
    "aggregate_counters",
    "analyze",
    "attribute_phases",
    "critical_path",
    "export_chrome_trace",
    "match_messages",
    "profile_app",
    "render_text_report",
    "timeline_stats",
    "validate_chrome_trace",
    "write_chrome_trace",
]
