"""The ``repro profile`` driver: run an app under observation, analyze it.

Runs one of the five paper applications with per-rank
:class:`~repro.obs.recorder.Recorder` instances installed (spans, counters
and full-run timeline histories), then produces the
:class:`~repro.obs.analysis.RunReport` the CLI renders or exports.

The report's ``makespan`` is the *simulated* makespan (the slowest rank's
final virtual clock) — that is what phase attribution, utilization and the
critical path reconcile against.  Apps that extrapolate a few simulated
steps to the paper's full iteration count report that larger number as
``app_makespan`` alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.apps import heat3d, kmeans, minimd, moldyn, sobel
from repro.apps.extra import jacobi2d
from repro.apps.common import AppRun
from repro.cluster.presets import ohio_cluster
from repro.cluster.specs import ClusterSpec
from repro.obs.analysis import RunReport, analyze
from repro.obs.recorder import Recorder
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class _ProfiledApp:
    run: Callable[..., AppRun]
    quick_config: Callable[[], Any]


#: Quick-scale configs mirror the smoke benchmark sizes: every path is
#: exercised (multi-step, multi-device, adaptive repartition) but the
#: functional payloads stay small enough for CI.
PROFILE_APPS: dict[str, _ProfiledApp] = {
    "kmeans": _ProfiledApp(
        kmeans.run,
        lambda: kmeans.KmeansConfig(functional_points=60_000, iterations=1),
    ),
    "moldyn": _ProfiledApp(
        moldyn.run,
        lambda: moldyn.MoldynConfig(functional_nodes=4_000, simulated_steps=3),
    ),
    "minimd": _ProfiledApp(
        minimd.run,
        lambda: minimd.MiniMDConfig(functional_cells=8, simulated_steps=3),
    ),
    "sobel": _ProfiledApp(
        sobel.run,
        lambda: sobel.SobelConfig(functional_shape=(384, 384), simulated_steps=3),
    ),
    "heat3d": _ProfiledApp(
        heat3d.run,
        lambda: heat3d.Heat3DConfig(functional_shape=(36, 36, 36), simulated_steps=3),
    ),
    "jacobi2d": _ProfiledApp(
        jacobi2d.run,
        lambda: jacobi2d.Jacobi2DConfig(shape=(32, 32), tol=1e-3, max_iters=60),
    ),
}


def profile_app(
    app: str,
    *,
    cluster: ClusterSpec | None = None,
    nodes: int = 4,
    mix: str = "cpu+2gpu",
    scale: str = "quick",
    **run_kwargs: Any,
) -> tuple[AppRun, RunReport]:
    """Run ``app`` with observability on; return (app result, report)."""
    try:
        entry = PROFILE_APPS[app]
    except KeyError:
        raise ConfigurationError(
            f"unknown app {app!r}; known: {sorted(PROFILE_APPS)}"
        ) from None
    if scale not in ("quick", "full"):
        raise ConfigurationError(f"scale must be 'quick' or 'full', got {scale!r}")
    if cluster is None:
        cluster = ohio_cluster(nodes)
    config = entry.quick_config() if scale == "quick" else None
    apprun = entry.run(
        cluster, config, mix, recorder_factory=Recorder, **run_kwargs
    )
    report = analyze(apprun.spmd, app_makespan=apprun.makespan)
    return apprun, report
