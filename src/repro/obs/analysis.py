"""Post-run analysis: phase attribution, utilization, critical path.

Everything here consumes the per-rank traces (ideally
:class:`~repro.obs.recorder.Recorder` instances, so timeline histories are
available) *after* a run; nothing in this module executes during
simulation, so analysis can never perturb virtual time.

Phase attribution
    Each rank's clock interval ``[0, T_rank]`` is tiled by a sweep over its
    recorded spans, classifying every instant into exactly one phase —
    ``wait`` (blocked on a message that had not arrived), ``comm``
    (send/receive software overheads), ``fault`` (checkpoint, recovery,
    retransmission backoff), ``compute`` (anything covered by a runtime
    span but none of the above), or ``other`` (clock advance not covered
    by any span).  Overlaps resolve by priority (fault > wait/comm >
    compute): a halo receive inside a stencil step bills to comm, not
    compute.  Because the phases tile the interval, their sums (plus
    ``finish_wait``, the time a rank idles after finishing while the
    slowest rank runs on) reconcile *exactly* to the makespan.

Critical path
    A backward walk over the same tiling, starting from the last segment
    of the slowest rank.  Within a rank the tiling makes predecessors
    contiguous by construction; at a ``wait`` segment the walk jumps
    across the matched message edge (n-th send on a (src, dst, tag)
    stream pairs with the n-th receive — the fabric's per-stream FIFO
    guarantee) to the sender, inserting a ``wire`` link covering the
    network time so the reported chain stays contiguous in virtual time.
    Links carry a ``slack``: 0 for on-path work, and for ``wait`` links
    the binding margin — how much the receiver's own preceding work could
    have grown before the message stopped being the binding dependency.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.sim.trace import Trace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SpmdResult

#: Phase priority: higher wins where spans overlap.  ``fault`` outranks the
#: comm pair (a retransmission backoff is charged to the fault layer, not
#: the send that triggered it); ``wait``/``comm`` never overlap each other
#: (point-to-point calls are serial on a rank's clock) but both outrank the
#: runtime's enclosing compute span.
_PRIORITY = {"fault": 4, "wait": 3, "comm": 3, "compute": 2}

_EPS = 1e-15


@dataclass(slots=True)
class PhaseBreakdown:
    """Where one rank's share of the makespan went (sums to ``total``)."""

    rank: int
    compute: float
    comm: float
    wait: float
    fault: float
    other: float
    finish_wait: float

    @property
    def total(self) -> float:
        return self.compute + self.comm + self.wait + self.fault + self.other + self.finish_wait

    def to_dict(self) -> dict[str, float]:
        return {
            "rank": self.rank,
            "compute": self.compute,
            "comm": self.comm,
            "wait": self.wait,
            "fault": self.fault,
            "other": self.other,
            "finish_wait": self.finish_wait,
            "total": self.total,
        }


@dataclass(slots=True)
class TimelineStats:
    """Full-run busy/idle accounting for one resource timeline."""

    rank: int
    name: str
    busy: float
    n_intervals: int
    utilization: float
    idle: float
    longest_gap: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "name": self.name,
            "busy": self.busy,
            "n_intervals": self.n_intervals,
            "utilization": self.utilization,
            "idle": self.idle,
            "longest_gap": self.longest_gap,
        }


@dataclass(slots=True)
class PathLink:
    """One link of the critical-path chain (chronological order)."""

    rank: int
    phase: str
    label: str
    start: float
    end: float
    slack: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "phase": self.phase,
            "label": self.label,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "slack": self.slack,
        }


@dataclass
class RunReport:
    """Complete post-run observability report for one SPMD run."""

    makespan: float
    times: list[float]
    phases: list[PhaseBreakdown]
    timelines: list[TimelineStats]
    critical_path: list[PathLink]
    counters: dict[str, float]
    counters_by_rank: list[dict[str, float]]
    gauges_by_rank: list[dict[str, float]]
    n_events: int = 0
    app_makespan: float | None = None  # app-reported (possibly extrapolated)

    @property
    def nranks(self) -> int:
        return len(self.times)

    def verify(self, rel_tol: float = 1e-9) -> None:
        """Raise ``AssertionError`` unless the report is self-consistent:
        every rank's phase sums reconcile to the makespan, and the critical
        path is contiguous in virtual time and ends at the makespan."""
        scale = max(self.makespan, 1e-30)
        for ph in self.phases:
            if abs(ph.total - self.makespan) > rel_tol * scale:
                raise AssertionError(
                    f"rank {ph.rank} phases sum to {ph.total!r}, "
                    f"makespan is {self.makespan!r}"
                )
        if self.critical_path:
            tol = rel_tol * scale
            if abs(self.critical_path[-1].end - self.makespan) > tol:
                raise AssertionError(
                    f"critical path ends at {self.critical_path[-1].end!r}, "
                    f"makespan is {self.makespan!r}"
                )
            for a, b in zip(self.critical_path, self.critical_path[1:]):
                if b.start - a.end > tol:
                    raise AssertionError(
                        f"critical path gap: link ending {a.end!r} followed "
                        f"by link starting {b.start!r}"
                    )

    def to_dict(self) -> dict[str, Any]:
        return {
            "makespan": self.makespan,
            "app_makespan": self.app_makespan,
            "nranks": self.nranks,
            "times": list(self.times),
            "phases": [ph.to_dict() for ph in self.phases],
            "timelines": [tl.to_dict() for tl in self.timelines],
            "critical_path": [link.to_dict() for link in self.critical_path],
            "counters": dict(self.counters),
            "counters_by_rank": [dict(c) for c in self.counters_by_rank],
            "gauges_by_rank": [dict(g) for g in self.gauges_by_rank],
            "n_events": self.n_events,
        }


# ----------------------------------------------------------------------
# Span classification
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _Span:
    """One attribution span: a clamped, classified slice of a trace event."""

    start: float
    end: float
    phase: str
    event: TraceEvent


def _classify(ev: TraceEvent, horizon: float) -> list[_Span]:
    """Split one trace event into attribution spans on ``[0, horizon]``."""
    start = min(ev.start, horizon)
    end = min(ev.end, horizon)
    if end <= start:
        # Zero-width events (dup-discards, partition markers) carry no time.
        return []
    if ev.category == "comm":
        if ev.label.startswith("send->"):
            # Only the sender-side software overhead is on this rank's
            # clock; the tail of the span (up to arrival) is wire time.
            busy_end = ev.meta.get("busy_end", ev.end)
            busy_end = min(max(busy_end, start), end)
            if busy_end > start:
                return [_Span(start, busy_end, "comm", ev)]
            return []
        if ev.label.startswith("recv<-"):
            arrival = ev.meta.get("arrival", ev.start)
            split = min(max(arrival, start), end)
            out = []
            if split > start:
                out.append(_Span(start, split, "wait", ev))
            if end > split:
                out.append(_Span(split, end, "comm", ev))
            return out
        return [_Span(start, end, "comm", ev)]
    if ev.category == "fault":
        if ev.label == "crash":
            # The crash span marks when the failure happened, back in time
            # over work that was already attributed; the recovery span
            # carries the actual cost.
            return []
        if end > start:
            return [_Span(start, end, "fault", ev)]
        return []
    if ev.category == "partition":
        return []
    return [_Span(start, end, "compute", ev)]


def _tile_rank(
    events: Sequence[TraceEvent], horizon: float
) -> list[_Span]:
    """Tile ``[0, horizon]`` into non-overlapping, classified segments.

    Sweep line over the rank's classified spans: at every boundary the
    highest-priority active span claims the elementary interval; uncovered
    stretches become ``other``.  Ties go to the latest-starting active
    span, so the innermost (most specific) label wins within a phase.
    """
    spans: list[_Span] = []
    for ev in events:
        spans.extend(_classify(ev, horizon))
    if horizon <= 0:
        return []
    bounds: list[tuple[float, int, _Span]] = []
    for sp in spans:
        bounds.append((sp.start, 1, sp))
        bounds.append((sp.end, -1, sp))
    bounds.sort(key=lambda b: b[0])
    tiles: list[_Span] = []
    active: list[_Span] = []
    cursor = 0.0
    i = 0
    n = len(bounds)

    def emit(upto: float) -> None:
        nonlocal cursor
        if upto - cursor <= 0:
            return
        if active:
            best = max(
                active, key=lambda s: (_PRIORITY.get(s.phase, 1), s.start)
            )
            tiles.append(_Span(cursor, upto, best.phase, best.event))
        else:
            tiles.append(_Span(cursor, upto, "other", None))  # type: ignore[arg-type]
        cursor = upto

    while i < n:
        pos = bounds[i][0]
        emit(min(pos, horizon))
        while i < n and bounds[i][0] == pos:
            _, kind, sp = bounds[i]
            if kind == 1:
                active.append(sp)
            else:
                active.remove(sp)
            i += 1
    emit(horizon)
    # Merge adjacent tiles with identical phase+event (sweep boundaries
    # inside one span otherwise fragment it).
    merged: list[_Span] = []
    for t in tiles:
        if merged and merged[-1].phase == t.phase and merged[-1].event is t.event:
            merged[-1].end = t.end
        else:
            merged.append(t)
    return merged


def attribute_phases(
    traces: Sequence[Trace], times: Sequence[float], makespan: float
) -> list[PhaseBreakdown]:
    """Per-rank phase attribution; each row sums exactly to ``makespan``."""
    out = []
    for rank, (tr, t_rank) in enumerate(zip(traces, times)):
        sums = {"compute": 0.0, "comm": 0.0, "wait": 0.0, "fault": 0.0, "other": 0.0}
        for tile in _tile_rank(tr.events, t_rank):
            sums[tile.phase] += tile.end - tile.start
        out.append(
            PhaseBreakdown(
                rank=rank,
                compute=sums["compute"],
                comm=sums["comm"],
                wait=sums["wait"],
                fault=sums["fault"],
                other=sums["other"],
                finish_wait=makespan - t_rank,
            )
        )
    return out


# ----------------------------------------------------------------------
# Timeline utilization
# ----------------------------------------------------------------------
def timeline_stats(traces: Sequence[Trace], makespan: float) -> list[TimelineStats]:
    """Busy/idle accounting per attached timeline (Recorder ranks only)."""
    out: list[TimelineStats] = []
    horizon = max(makespan, _EPS)
    for rank, tr in enumerate(traces):
        grouped = getattr(tr, "intervals_by_timeline", None)
        if grouped is None:
            continue
        for name, recs in grouped().items():
            ivs = sorted(((r.start, r.end) for r in recs))
            busy = 0.0
            longest_gap = 0.0
            cover_end = 0.0
            for s, e in ivs:
                if s > cover_end:
                    longest_gap = max(longest_gap, s - cover_end)
                    cover_end = s
                if e > cover_end:
                    busy += e - cover_end
                    cover_end = e
            longest_gap = max(longest_gap, max(0.0, horizon - cover_end))
            out.append(
                TimelineStats(
                    rank=rank,
                    name=name,
                    busy=busy,
                    n_intervals=len(recs),
                    utilization=min(1.0, busy / horizon),
                    idle=max(0.0, horizon - busy),
                    longest_gap=longest_gap,
                )
            )
    return out


# ----------------------------------------------------------------------
# Message-edge matching and critical path
# ----------------------------------------------------------------------
def match_messages(
    traces: Sequence[Trace],
) -> dict[int, tuple[int, TraceEvent]]:
    """Pair receive events with their sends over per-stream FIFOs.

    Returns ``id(recv_event) -> (sender_rank, send_event)``.  The fabric
    delivers per-(src, dst, tag) streams in order, so the n-th send on a
    stream pairs with the n-th receive.  Under fault injection a dropped
    send's record still occupies its slot — the pairing then points at the
    first transmission attempt, which is the correct *causal* origin.
    """
    sends: dict[tuple[int, int, int], list[TraceEvent]] = {}
    for rank, tr in enumerate(traces):
        for ev in tr.events:
            if ev.category == "comm" and ev.label.startswith("send->"):
                key = (rank, ev.meta.get("dst", -1), ev.meta.get("tag", -1))
                sends.setdefault(key, []).append(ev)
    taken: dict[tuple[int, int, int], int] = {}
    edges: dict[int, tuple[int, TraceEvent]] = {}
    for rank, tr in enumerate(traces):
        for ev in tr.events:
            if ev.category == "comm" and ev.label.startswith("recv<-"):
                src = ev.meta.get("src")
                if src is None:
                    continue
                key = (src, rank, ev.meta.get("tag", -1))
                idx = taken.get(key, 0)
                stream = sends.get(key)
                if stream is not None and idx < len(stream):
                    edges[id(ev)] = (src, stream[idx])
                    taken[key] = idx + 1
    return edges


#: Backstop against pathological walks; real chains are far shorter.
_MAX_LINKS = 100_000


def critical_path(
    traces: Sequence[Trace], times: Sequence[float], makespan: float
) -> list[PathLink]:
    """Backward walk from the slowest rank's finish to virtual time zero.

    Returns the chain in chronological order.  Within a rank the phase
    tiling makes consecutive links contiguous; at each ``wait`` link the
    walk crosses the matched message edge, emitting a ``wire`` link for
    the network time so contiguity is preserved across ranks.
    """
    if not times or makespan <= 0:
        return []
    edges = match_messages(traces)
    tilings: list[list[_Span]] = [
        _tile_rank(tr.events, t_rank) for tr, t_rank in zip(traces, times)
    ]
    starts: list[list[float]] = [[sp.start for sp in tiles] for tiles in tilings]

    def seg_at(rank: int, t: float) -> int | None:
        """Index of the segment of ``rank`` containing time ``t``."""
        tiles = tilings[rank]
        if not tiles:
            return None
        i = bisect_right(starts[rank], t) - 1
        if i < 0:
            i = 0
        return min(i, len(tiles) - 1)

    crit_rank = max(range(len(times)), key=lambda r: times[r])
    chain: list[PathLink] = []
    rank = crit_rank
    idx = len(tilings[rank]) - 1 if tilings[rank] else None

    def link_label(sp: _Span) -> str:
        return sp.event.label if sp.event is not None else "(untraced)"

    while idx is not None and len(chain) < _MAX_LINKS:
        sp = tilings[rank][idx]
        if sp.phase == "wait" and id(sp.event) in edges:
            src_rank, send_ev = edges[id(sp.event)]
            arrival = min(sp.event.meta.get("arrival", sp.end), sp.end)
            chain.append(
                PathLink(
                    rank=rank,
                    phase="wait",
                    label=link_label(sp),
                    start=sp.start,
                    end=sp.end,
                    # Binding margin: how much the receiver's own preceding
                    # work could have grown before the message stopped
                    # being the binding dependency.
                    slack=max(0.0, arrival - sp.start),
                )
            )
            busy_end = send_ev.meta.get("busy_end", send_ev.end)
            chain.append(
                PathLink(
                    rank=src_rank,
                    phase="wire",
                    label=f"wire {src_rank}->{rank}",
                    start=busy_end,
                    end=max(arrival, busy_end),
                )
            )
            rank = src_rank
            idx = seg_at(rank, max(send_ev.start, 0.0))
            continue
        chain.append(
            PathLink(
                rank=rank,
                phase=sp.phase,
                label=link_label(sp),
                start=sp.start,
                end=sp.end,
            )
        )
        idx = idx - 1 if idx > 0 else None
    chain.reverse()
    return chain


# ----------------------------------------------------------------------
# Counters and the full report
# ----------------------------------------------------------------------
def aggregate_counters(traces: Iterable[Trace]) -> dict[str, float]:
    """Cluster-wide counter totals (summed across ranks)."""
    out: dict[str, float] = {}
    for tr in traces:
        for name, value in tr.counters.items():
            out[name] = out.get(name, 0.0) + value
    return out


def analyze(result: "SpmdResult", app_makespan: float | None = None) -> RunReport:
    """Build the full :class:`RunReport` from one SPMD run's traces."""
    traces = result.traces
    times = [float(t) for t in result.times]
    makespan = max(times) if times else 0.0
    return RunReport(
        makespan=makespan,
        times=times,
        phases=attribute_phases(traces, times, makespan),
        timelines=timeline_stats(traces, makespan),
        critical_path=critical_path(traces, times, makespan),
        counters=aggregate_counters(traces),
        counters_by_rank=[tr.counters for tr in traces],
        gauges_by_rank=[tr.gauges for tr in traces],
        n_events=sum(len(tr) for tr in traces),
        app_makespan=app_makespan,
    )
