"""The observability recorder: a :class:`~repro.sim.trace.Trace` that also
captures per-:class:`~repro.sim.timeline.Timeline` busy intervals.

Pattern runtimes reset their devices' engine timelines every step (list
scheduling restarts from the step's t0), so post-run inspection of the
timelines themselves only ever sees the *last* step.  The recorder fixes
that by attaching itself as the timelines' interval sink: every scheduled
interval is mirrored into a per-rank history the analysis layer can sweep
over the whole run.

Attachment happens through the two hooks the simulation layers call on
every trace object (no-ops on the plain :class:`Trace`):

- :meth:`Recorder.bind_fabric` — called by ``spmd_run`` once per rank,
  attaches the rank's NIC egress/ingress timelines (wire serialization).
- :meth:`Recorder.bind_device` — called by ``RuntimeEnv`` per device,
  attaches every engine timeline (CPU cores, GPU copy/compute engines).

The sink only appends to a Python list; it never reads scheduling state,
so makespans are bit-identical with a recorder installed or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.trace import Trace


@dataclass(slots=True)
class IntervalRecord:
    """One busy interval on one named resource timeline (immutable)."""

    timeline: str
    start: float
    end: float
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class Recorder(Trace):
    """Per-rank observability recorder (spans + counters + timeline history)."""

    __slots__ = ("_intervals", "_timeline_names")

    def __init__(self, rank: int, enabled: bool = True) -> None:
        super().__init__(rank, enabled=enabled)
        self._intervals: list[IntervalRecord] = []
        self._timeline_names: list[str] = []

    # -- binding hooks --------------------------------------------------
    def bind_fabric(self, fabric: Any) -> None:
        """Attach this rank's NIC egress/ingress timelines as sinks.

        The timelines live on the fabric's per-rank shard (egress is
        scheduled under the sender's shard lock, ingress under the
        receiver's), so the sink only ever fires with that shard's lock
        held — appends from different ranks never interleave within one
        recorder.
        """
        if not self.enabled:
            return
        self._attach(fabric.egress_timeline(self.rank))
        self._attach(fabric.ingress_timeline(self.rank))

    def bind_device(self, device: Any) -> None:
        """Attach every engine timeline of one device."""
        if not self.enabled:
            return
        for tl in device.timelines():
            self._attach(tl)

    def _attach(self, timeline: Any) -> None:
        if timeline.name not in self._timeline_names:
            self._timeline_names.append(timeline.name)
        timeline.observe(self._sink)

    def _sink(self, name: str, start: float, end: float, label: str) -> None:
        self._intervals.append(IntervalRecord(name, start, end, label))

    # -- queries --------------------------------------------------------
    @property
    def intervals(self) -> tuple[IntervalRecord, ...]:
        """Full-run interval history across all attached timelines."""
        return tuple(self._intervals)

    @property
    def timeline_names(self) -> tuple[str, ...]:
        """Names of every timeline attached, in attach order (an attached
        timeline appears even if it never scheduled anything)."""
        return tuple(self._timeline_names)

    def intervals_by_timeline(self) -> dict[str, list[IntervalRecord]]:
        """Interval history grouped by timeline name (attach order)."""
        out: dict[str, list[IntervalRecord]] = {name: [] for name in self._timeline_names}
        for rec in self._intervals:
            out.setdefault(rec.timeline, []).append(rec)
        return out
