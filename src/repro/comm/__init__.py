"""MPI-like message passing over an in-process fabric with virtual time.

This is the distributed-memory substrate the framework (and the hand-written
baselines) run on.  Semantics mirror MPI / mpi4py:

- blocking and non-blocking point-to-point (``send``/``recv``/``isend``/
  ``irecv``/``sendrecv``) with tag matching and per-(source, tag) FIFO
  (non-overtaking) ordering;
- collectives built *on top of* point-to-point (binomial trees, recursive
  doubling, dissemination barrier) so their virtual-time cost emerges from
  the same link model as everything else;
- Cartesian topologies (:class:`CartComm`) with ``shift`` for stencil halo
  exchange.

Timing follows LogGP: a message of ``n`` bytes over a link costs
``send_overhead`` on the sender, then arrives ``latency + n/bandwidth``
later; the receiver's clock jumps to the arrival time (never backwards) and
pays ``recv_overhead``.  Intra-node and inter-node links differ only in
their :class:`~repro.cluster.specs.InterconnectSpec`.
"""

from repro.comm.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.comm.fabric import Fabric, Message
from repro.comm.communicator import SimComm, Request, SendRequest, RecvRequest
from repro.comm.reliable import ReliableComm, ReliableRecvRequest
from repro.comm.cart import CartComm
from repro.comm.coalesce import CoalescedRecv, HaloCoalescer

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "Fabric",
    "Message",
    "SimComm",
    "Request",
    "SendRequest",
    "RecvRequest",
    "ReliableComm",
    "ReliableRecvRequest",
    "CartComm",
    "CoalescedRecv",
    "HaloCoalescer",
]
