"""Per-neighbour halo message coalescing (cf. arXiv 1210.4400).

A stencil step exchanges one strip per (axis, direction) per *array*:
the evolving grid plus any number of exchanged coefficient fields, and —
for deep-halo multi-step schemes — ``k`` strips of depth ``h`` each.
Sending each strip as its own message multiplies Fabric traffic by the
array count: ``O(fields x axes x 2)`` messages per rank per step, each
paying the LogGP per-message overhead and latency.

:class:`HaloCoalescer` aggregates every strip bound for one neighbour
into a single payload, restoring the ``O(axes x 2)`` message count while
charging exactly the same wire bytes (the caller passes the summed
model-scale size).  The charged cost *win* is the per-message constants;
the bytes term is unchanged by design.

Layouts are registered once per configuration (strip shapes never change
between steps), so the per-step path is copy + send with no allocation:

- **Single-strip layouts** (the common one-grid case) reproduce the
  pre-coalescer protocol byte for byte: the strip is packed into a
  parity double-buffered contiguous buffer, sent zero-copy
  (``owned=True``), and received straight into the halo slab via
  ``irecv(out=...)``.  Existing single-field runs are therefore charged
  *identically* — same message count, same sizes, same clock arithmetic.
- **Multi-strip layouts** pack all strips into one flat parity buffer
  (segment views, one memcpy each), send one message, and on the receive
  side land in a flat staging buffer that :meth:`CoalescedRecv.wait`
  scatters into the individual halo slabs.

Parity double buffering carries over unchanged from the stencil runtime:
a pack buffer is not reused until two steps later, by which point the
neighbour has provably consumed it, so ``owned=True`` sends stay safe.
"""

from __future__ import annotations

from math import prod
from typing import Any, Hashable, Sequence

import numpy as np

from repro.util.errors import ConfigurationError


class CoalescedRecv:
    """Handle for one in-flight coalesced receive.

    ``wait()`` blocks (in virtual time) until the payload is delivered;
    multi-strip payloads are then scattered from the staging buffer into
    the registered output views.  Single-strip receives were posted with
    ``out=`` pointing directly at the halo slab, so there is nothing to
    scatter.
    """

    __slots__ = ("_req", "_stage", "_outs")

    def __init__(self, req: Any, stage: np.ndarray | None, outs: Sequence[np.ndarray]) -> None:
        self._req = req
        self._stage = stage
        self._outs = outs

    def wait(self) -> None:
        self._req.wait()
        stage = self._stage
        if stage is not None:
            offset = 0
            for out in self._outs:
                n = out.size
                out[...] = stage[offset : offset + n].reshape(out.shape)
                offset += n


class HaloCoalescer:
    """Packs all strips bound for one neighbour into a single message.

    One instance per runtime configuration.  Keys are opaque hashables
    identifying a (neighbour, direction) face — the stencil runtime uses
    ``(axis, side)``.  Every strip of a layout must share one dtype (they
    are segments of one wire buffer).
    """

    def __init__(self, comm: Any, trace: Any = None) -> None:
        self.comm = comm
        self.trace = trace
        #: key -> tuple of strip shapes (fixed at registration).
        self._layouts: dict[Hashable, tuple[tuple[int, ...], ...]] = {}
        #: (key, parity) -> pack buffer (strip-shaped when single-strip).
        self._send_bufs: dict[tuple[Hashable, int], np.ndarray] = {}
        #: key -> flat receive staging buffer (multi-strip layouts only).
        self._recv_stage: dict[Hashable, np.ndarray] = {}

    def register(
        self, key: Hashable, strip_shapes: Sequence[tuple[int, ...]], dtype: np.dtype
    ) -> None:
        """Declare the fixed per-step layout of one face's payload."""
        if key in self._layouts:
            raise ConfigurationError(f"coalescer key {key!r} already registered")
        shapes = tuple(tuple(int(n) for n in shape) for shape in strip_shapes)
        if not shapes:
            raise ConfigurationError("a coalesced layout needs at least one strip")
        self._layouts[key] = shapes
        if len(shapes) == 1:
            for parity in (0, 1):
                self._send_bufs[(key, parity)] = np.empty(shapes[0], dtype=dtype)
        else:
            total = sum(prod(shape) for shape in shapes)
            for parity in (0, 1):
                self._send_bufs[(key, parity)] = np.empty(total, dtype=dtype)
            self._recv_stage[key] = np.empty(total, dtype=dtype)

    def strips_per_message(self, key: Hashable) -> int:
        return len(self._layouts[key])

    def send(
        self,
        key: Hashable,
        dest: int,
        tag: int,
        strips: Sequence[np.ndarray],
        wire_bytes: float,
        parity: int,
    ) -> None:
        """Pack ``strips`` into the parity buffer and send one message.

        ``wire_bytes`` is the charged model-scale size of the whole
        payload (the sum over strips) — coalescing changes the message
        count, never the byte count.
        """
        shapes = self._layouts[key]
        if len(strips) != len(shapes):
            raise ConfigurationError(
                f"layout {key!r} packs {len(shapes)} strip(s), got {len(strips)}"
            )
        buf = self._send_bufs[(key, parity & 1)]
        if len(shapes) == 1:
            np.copyto(buf, strips[0])
        else:
            offset = 0
            for strip in strips:
                n = strip.size
                np.copyto(buf[offset : offset + n].reshape(strip.shape), strip)
                offset += n
        self.comm.isend(buf, dest, tag, wire_bytes=wire_bytes, owned=True)
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.count("halo.msgs")
            trace.count("halo.strips", len(strips))

    def post_recv(
        self, key: Hashable, source: int, tag: int, outs: Sequence[np.ndarray]
    ) -> CoalescedRecv:
        """Post the matching receive; ``outs`` are the halo-slab views."""
        shapes = self._layouts[key]
        if len(outs) != len(shapes):
            raise ConfigurationError(
                f"layout {key!r} delivers {len(shapes)} strip(s), got {len(outs)}"
            )
        stage = self._recv_stage.get(key)
        target = outs[0] if stage is None else stage
        req = self.comm.irecv(source=source, tag=tag, out=target)
        return CoalescedRecv(req, stage, outs)
