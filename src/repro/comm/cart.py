"""Cartesian process topology over a :class:`~repro.comm.SimComm`.

The stencil runtime decomposes its global grid over a virtual processor
grid; :class:`CartComm` supplies the coordinate arithmetic and neighbour
lookup (``MPI_Cart_create`` / ``MPI_Cart_shift`` equivalents).  Shifts at
non-periodic borders return :data:`~repro.comm.constants.PROC_NULL`, and
sends/receives to ``PROC_NULL`` are no-ops, so border ranks need no special
cases in the halo-exchange code.
"""

from __future__ import annotations

from repro.cluster.topology import coords_of, dims_create, rank_of
from repro.comm.communicator import SimComm
from repro.comm.constants import PROC_NULL
from repro.util.errors import ConfigurationError


class CartComm:
    """A Cartesian view of an existing communicator (same ranks, same size)."""

    def __init__(
        self,
        comm: SimComm,
        dims: tuple[int, ...] | list[int] | None = None,
        ndims: int | None = None,
        periodic: tuple[bool, ...] | None = None,
    ) -> None:
        if dims is None:
            if ndims is None:
                raise ConfigurationError("CartComm needs either dims or ndims")
            dims = dims_create(comm.size, ndims)
        else:
            dims = tuple(int(d) for d in dims)
            total = 1
            for d in dims:
                total *= d
            if total != comm.size:
                raise ConfigurationError(
                    f"dims {dims} describe {total} processes, communicator has {comm.size}"
                )
        self.comm = comm
        self.dims = tuple(dims)
        self.periodic = tuple(periodic) if periodic is not None else (False,) * len(self.dims)
        if len(self.periodic) != len(self.dims):
            raise ConfigurationError(
                f"periodic has {len(self.periodic)} entries for {len(self.dims)} dims"
            )
        self.coords = coords_of(comm.rank, self.dims)

    @property
    def ndims(self) -> int:
        return len(self.dims)

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def rank_at(self, coords: tuple[int, ...]) -> int:
        """Rank at ``coords``, honouring periodicity; PROC_NULL if outside."""
        wrapped = []
        for c, extent, per in zip(coords, self.dims, self.periodic):
            if per:
                wrapped.append(c % extent)
            elif 0 <= c < extent:
                wrapped.append(c)
            else:
                return PROC_NULL
        return rank_of(tuple(wrapped), self.dims)

    def shift(self, axis: int, disp: int = 1) -> tuple[int, int]:
        """``(source, dest)`` for a shift of ``disp`` along ``axis``.

        Matches ``MPI_Cart_shift``: ``dest`` is the rank ``disp`` steps in
        the positive direction, ``source`` is the rank the same distance in
        the negative direction (i.e. the one whose shifted data lands here).
        """
        if not 0 <= axis < self.ndims:
            raise ConfigurationError(f"axis {axis} out of range for {self.ndims}-D topology")
        up = list(self.coords)
        up[axis] += disp
        down = list(self.coords)
        down[axis] -= disp
        return self.rank_at(tuple(down)), self.rank_at(tuple(up))

    def neighbors(self) -> dict[tuple[int, int], int]:
        """All face neighbours: ``{(axis, ±1): rank_or_PROC_NULL}``."""
        out: dict[tuple[int, int], int] = {}
        for axis in range(self.ndims):
            src, dst = self.shift(axis, 1)
            out[(axis, +1)] = dst
            out[(axis, -1)] = src
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CartComm(dims={self.dims}, coords={self.coords}, rank={self.rank})"
