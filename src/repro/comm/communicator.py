"""The per-rank communicator: point-to-point messaging with virtual time.

One :class:`SimComm` is owned by each rank thread; all of them share a
:class:`~repro.comm.fabric.Fabric`.  Virtual-time rules (LogGP):

- ``send``/``isend``: the sender's clock advances by the link's
  ``send_overhead``; the message's arrival time is
  ``sender_now + latency + nbytes / bandwidth``.  Both calls are *buffered
  eager* sends — they never block — matching MPI's behaviour for the
  moderate message sizes this framework produces.
- ``recv`` / ``Request.wait``: the receiver's clock jumps forward to
  ``max(now, arrival_time)`` then advances by ``recv_overhead``.  Compute
  performed between posting an ``irecv`` and waiting on it therefore hides
  communication time — *overlap emerges from the clock rules*, it is never
  a hard-coded discount.

Collective operations live in :mod:`repro.comm.collectives` and are bound
here as methods; they are built from these point-to-point primitives so
their cost emerges from the same model.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.comm import collectives as _coll
from repro.comm.constants import ANY_SOURCE, ANY_TAG, MAX_USER_TAG, PROC_NULL
from repro.comm.fabric import Fabric
from repro.comm.payload import make_payload
from repro.sim.clock import VirtualClock
from repro.sim.trace import Trace
from repro.util.errors import CommunicationError, ValidationError

#: Wall-clock watchdog for a single blocking receive; a simulated program
#: that keeps a rank waiting this long is considered deadlocked.
DEFAULT_RECV_TIMEOUT = 120.0


class Request:
    """Base class for non-blocking operation handles."""

    def wait(self) -> Any:
        raise NotImplementedError

    def test(self) -> bool:
        """True if :meth:`wait` would not block (wall-clock sense)."""
        raise NotImplementedError


class SendRequest(Request):
    """Handle for an ``isend``; complete at creation (buffered eager)."""

    __slots__ = ()

    def wait(self) -> None:
        return None

    def test(self) -> bool:
        return True


class RecvRequest(Request):
    """Handle for an ``irecv``; matching is deferred until :meth:`wait`.

    Deferring keeps matching deterministic in virtual time: the receiver's
    clock only synchronizes with the message when the program actually
    waits, which is exactly MPI's completion semantics.
    """

    __slots__ = ("_comm", "_source", "_tag", "_out", "_done", "_value")

    def __init__(self, comm: "SimComm", source: int, tag: int, out: np.ndarray | None) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._out = out
        self._done = False
        self._value: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._value = self._comm.recv(source=self._source, tag=self._tag, out=self._out)
            self._done = True
        return self._value

    def test(self) -> bool:
        if self._done:
            return True
        if self._source == PROC_NULL:
            return True
        return self._comm.fabric.probe(self._comm.rank, self._source, self._tag)


class SimComm:
    """MPI-like communicator bound to one rank's virtual clock.

    Point-to-point calls go through the sharded
    :class:`~repro.comm.fabric.Fabric`: a send touches only the sender's
    and receiver's shards (never a global lock), a specific-source receive
    matches in O(1) against the per-(source, tag) FIFO index, and a
    blocked receive registers its (source, tag) predicate so senders wake
    it only for messages that can match.  Slotted: one communicator is
    constructed per rank per run, and figure sweeps construct millions.
    """

    __slots__ = ("fabric", "rank", "clock", "trace", "recv_timeout", "_coll_seq")

    def __init__(
        self,
        fabric: Fabric,
        rank: int,
        clock: VirtualClock,
        trace: Trace | None = None,
        recv_timeout: float = DEFAULT_RECV_TIMEOUT,
    ) -> None:
        if not 0 <= rank < fabric.size:
            raise ValidationError(f"rank {rank} out of range for fabric of size {fabric.size}")
        self.fabric = fabric
        self.rank = rank
        self.clock = clock
        self.trace = trace
        self.recv_timeout = recv_timeout
        self._coll_seq = 0

    @property
    def size(self) -> int:
        return self.fabric.size

    @property
    def node_index(self) -> int:
        """Index of the node hosting this rank."""
        return self.fabric.node_of(self.rank)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def _check_peer(self, peer: int, what: str, allow_any: bool = False) -> None:
        if peer == PROC_NULL:
            return
        if allow_any and peer == ANY_SOURCE:
            return
        if not 0 <= peer < self.size:
            raise CommunicationError(f"{what} rank {peer} out of range (size {self.size})")

    def _check_tag(self, tag: int, allow_any: bool) -> None:
        if allow_any and tag == ANY_TAG:
            return
        if not 0 <= tag <= MAX_USER_TAG:
            raise CommunicationError(f"tag {tag} out of range [0, {MAX_USER_TAG}]")

    def send(
        self,
        obj: Any,
        dest: int,
        tag: int = 0,
        _internal: bool = False,
        wire_bytes: float | None = None,
        owned: bool = False,
    ) -> None:
        """Buffered eager send: snapshots ``obj`` and returns immediately.

        The sender's virtual clock advances only by the link's software
        send overhead; wire time is borne by the receiver's clock when the
        message is consumed.

        ``wire_bytes`` overrides the charged message size (benchmarks send
        scaled-down functional payloads that stand for paper-scale data).

        ``owned=True`` is the zero-copy fast path for framework-internal
        sends: the caller transfers ownership of ``obj`` and promises not
        to mutate it until the receiver has consumed the message, so no
        snapshot copy is made (see :func:`repro.comm.payload.make_payload`).
        """
        self._check_peer(dest, "destination")
        if not _internal:
            self._check_tag(tag, allow_any=False)
        if dest == PROC_NULL:
            return
        if wire_bytes is not None and wire_bytes < 0:
            raise CommunicationError(f"wire_bytes must be >= 0, got {wire_bytes}")
        link = self.fabric.link(self.rank, dest)
        start = self.clock.now
        self.clock.advance(link.send_overhead)
        payload = make_payload(obj, owned=owned)
        charged = payload.nbytes if wire_bytes is None else wire_bytes
        arrival = self.fabric.transmit(
            self.rank, dest, tag, payload, send_time=self.clock.now, charged=charged, link=link
        )
        tr = self.trace
        if tr is not None and tr.enabled:
            # busy_end: where the sender's own clock stopped charging; the
            # remainder of the span (up to arrival) is wire time, which the
            # attribution sweep must not bill to this rank.
            tr.record(
                "comm",
                f"send->{dest}",
                start,
                arrival,
                {"tag": tag, "nbytes": charged, "dst": dest, "busy_end": self.clock.now},
            )
            tr.count("comm.msgs_sent")
            tr.count("comm.bytes_sent", charged)

    def isend(
        self,
        obj: Any,
        dest: int,
        tag: int = 0,
        wire_bytes: float | None = None,
        owned: bool = False,
    ) -> SendRequest:
        """Non-blocking send (identical cost to :meth:`send` in this model)."""
        self.send(obj, dest, tag, wire_bytes=wire_bytes, owned=owned)
        return SendRequest()

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        out: np.ndarray | None = None,
        _internal: bool = False,
    ) -> Any:
        """Blocking receive; returns the payload (or fills ``out``).

        The receiver's clock synchronizes to the message arrival time, so
        waiting for a late message costs exactly the gap, and a message
        that already arrived costs only the receive overhead.
        """
        self._check_peer(source, "source", allow_any=True)
        if not _internal:
            self._check_tag(tag, allow_any=True)
        if source == PROC_NULL:
            return None
        wait_start = self.clock.now
        msg = self.fabric.match(self.rank, source, tag, timeout=self.recv_timeout)
        link = self.fabric.link(msg.src, self.rank)
        self.clock.advance_to(msg.arrival_time)
        self.clock.advance(link.recv_overhead)
        tr = self.trace
        if tr is not None and tr.enabled:
            # arrival: lets the analysis split the span into wait (blocked
            # on the wire) vs receive overhead, and anchors message edges
            # for critical-path extraction.
            tr.record(
                "comm",
                f"recv<-{msg.src}",
                wait_start,
                self.clock.now,
                {
                    "tag": msg.tag,
                    "nbytes": msg.nbytes,
                    "src": msg.src,
                    "arrival": msg.arrival_time,
                },
            )
            tr.count("comm.msgs_recv")
            tr.count("comm.bytes_recv", msg.nbytes)
        return msg.payload.deliver(out)

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, out: np.ndarray | None = None
    ) -> RecvRequest:
        """Non-blocking receive; completion (and clock sync) happens at wait."""
        self._check_peer(source, "source", allow_any=True)
        self._check_tag(tag, allow_any=True)
        return RecvRequest(self, source, tag, out)

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        out: np.ndarray | None = None,
        _internal: bool = False,
    ) -> Any:
        """Combined send+receive (deadlock-free pairwise exchange)."""
        self.send(obj, dest, sendtag, _internal=_internal)
        return self.recv(source=source, tag=recvtag, out=out, _internal=_internal)

    @staticmethod
    def waitall(requests: list[Request]) -> list[Any]:
        """Wait on every request, returning their values in order."""
        return [req.wait() for req in requests]

    # ------------------------------------------------------------------
    # Collectives (implementations in repro.comm.collectives)
    # ------------------------------------------------------------------
    def _next_coll_tag(self, op_id: int) -> int:
        """A fresh internal tag for one collective invocation.

        SPMD programs invoke collectives in the same order on every rank,
        so the per-rank sequence numbers agree and tags match across ranks.
        """
        tag = _coll.collective_tag(self._coll_seq, op_id)
        self._coll_seq += 1
        return tag

    barrier = _coll.barrier
    bcast = _coll.bcast
    reduce = _coll.reduce
    allreduce = _coll.allreduce
    gather = _coll.gather
    allgather = _coll.allgather
    scatter = _coll.scatter
    alltoall = _coll.alltoall
    scan = _coll.scan
    exscan = _coll.exscan
    reduce_scatter = _coll.reduce_scatter

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimComm(rank={self.rank}, size={self.size})"
