"""Collective operations, built from point-to-point primitives.

These functions are bound as methods on :class:`repro.comm.SimComm`.  Each
is implemented with the classic algorithm (binomial trees, recursive
doubling, dissemination) so the *virtual-time* cost of a collective emerges
from the link model — e.g. the paper's "global reduction ... in a parallel
binary tree order, so that up to log(n) parallel reduction steps are
needed" is literally what :func:`reduce` executes.

SPMD contract: every rank of the communicator must invoke the same
collectives in the same order (as with MPI); internal tags are derived from
a per-rank invocation counter, so mismatched orders raise or deadlock
rather than silently mismatching.

Zero-copy: array payloads forwarded unmodified through a collective tree
(bcast/gather relays) ride the point-to-point zero-copy path — the payload
freezes the array read-only once and every hop shares that one buffer, so
relaying costs virtual time but no functional-layer copies.  Only steps
that combine values (reduce, scan) materialize new arrays.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Any

from repro.comm.constants import COLLECTIVE_TAG_BASE
from repro.comm.ops import get_reduce_op
from repro.util.errors import CommunicationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.communicator import SimComm

# Tag layout: | seq (16 bits) | op_id (5 bits) | round (5 bits) |
_SEQ_MOD = 1 << 16
_OP_BITS = 5
_ROUND_BITS = 5
_MAX_ROUNDS = 1 << _ROUND_BITS

_OP_BARRIER = 0
_OP_BCAST = 1
_OP_REDUCE = 2
_OP_ALLREDUCE = 3
_OP_GATHER = 4
_OP_SCATTER = 5
_OP_ALLTOALL = 6
_OP_SCAN = 7
_OP_REDUCE_SCATTER = 8
_OP_EXSCAN = 9


def collective_tag(seq: int, op_id: int, round_: int = 0) -> int:
    """Internal tag for round ``round_`` of the ``seq``-th collective."""
    if round_ >= _MAX_ROUNDS:
        raise CommunicationError(f"collective exceeded {_MAX_ROUNDS} rounds")
    return (
        COLLECTIVE_TAG_BASE
        + (seq % _SEQ_MOD) * (1 << (_OP_BITS + _ROUND_BITS))
        + op_id * (1 << _ROUND_BITS)
        + round_
    )


@lru_cache(maxsize=4096)
def _children(relative: int, size: int) -> tuple[int, ...]:
    """Binomial-tree children of ``relative`` (relative rank space).

    The parent of node ``r`` (r > 0) is ``r`` with its lowest set bit
    cleared; children of ``r`` are ``r + 2^k`` for every ``2^k`` below the
    lowest set bit (or below the tree span, for the root), bounded by
    ``size``.  Returned largest-offset first, which is the order that
    minimizes tree depth on the critical path.  Cached (and therefore
    returned as an immutable tuple): every bcast/reduce/gather of a run
    recomputes the same few (relative, size) shapes, and figure sweeps
    call collectives millions of times.
    """
    if relative == 0:
        span = 1
        while span < size:
            span <<= 1
    else:
        span = relative & -relative
    kids = []
    offset = span >> 1
    while offset >= 1:
        child = relative + offset
        if child < size:
            kids.append(child)
        offset >>= 1
    return tuple(kids)


def _parent(relative: int) -> int:
    """Binomial-tree parent in relative rank space (undefined for 0)."""
    return relative - (relative & -relative)


def barrier(self: "SimComm") -> None:
    """Dissemination barrier: ``ceil(log2 size)`` rounds of pairwise tokens."""
    seq = self._next_coll_tag(_OP_BARRIER)
    size = self.size
    if size == 1:
        return
    round_ = 0
    dist = 1
    while dist < size:
        tag = seq + round_  # rounds occupy the low bits of the tag block
        dst = (self.rank + dist) % size
        src = (self.rank - dist) % size
        self.send(None, dst, tag, _internal=True)
        self.recv(source=src, tag=tag, _internal=True)
        dist <<= 1
        round_ += 1


def bcast(self: "SimComm", obj: Any = None, root: int = 0) -> Any:
    """Binomial-tree broadcast of ``obj`` from ``root``; returns it on all."""
    tag = self._next_coll_tag(_OP_BCAST)
    size = self.size
    if size == 1:
        return obj
    relative = (self.rank - root) % size
    if relative != 0:
        parent = (_parent(relative) + root) % size
        obj = self.recv(source=parent, tag=tag, _internal=True)
    for child in _children(relative, size):
        self.send(obj, (child + root) % size, tag, _internal=True)
    return obj


def reduce(self: "SimComm", value: Any, op: Any = "sum", root: int = 0) -> Any:
    """Binomial-tree reduction to ``root`` (the paper's global combine).

    ``op`` must be commutative and associative (a name from
    :mod:`repro.comm.ops` or any callable).  Non-root ranks return ``None``.
    """
    tag = self._next_coll_tag(_OP_REDUCE)
    combine = get_reduce_op(op)
    size = self.size
    if size == 1:
        return value
    relative = (self.rank - root) % size
    acc = value
    # Receive children smallest-offset first: they finish their (smaller)
    # subtrees soonest, so the deep subtree arrives last — minimal waiting.
    for child in reversed(_children(relative, size)):
        contrib = self.recv(source=(child + root) % size, tag=tag, _internal=True)
        acc = combine(acc, contrib)
    if relative != 0:
        self.send(acc, (_parent(relative) + root) % size, tag, _internal=True)
        return None
    return acc


def allreduce(self: "SimComm", value: Any, op: Any = "sum") -> Any:
    """Recursive-doubling allreduce (with fold-in for non-power-of-two)."""
    seq = self._next_coll_tag(_OP_ALLREDUCE)
    combine = get_reduce_op(op)
    size = self.size
    if size == 1:
        return value
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    acc = value
    round_ = 0
    # Phase 1: the `rem` extra ranks fold their value into a partner.
    if self.rank >= pof2:
        self.send(acc, self.rank - pof2, seq + round_, _internal=True)
    elif self.rank < rem:
        contrib = self.recv(source=self.rank + pof2, tag=seq + round_, _internal=True)
        acc = combine(acc, contrib)
    round_ += 1
    # Phase 2: recursive doubling among the first pof2 ranks.
    if self.rank < pof2:
        dist = 1
        while dist < pof2:
            partner = self.rank ^ dist
            got = self.sendrecv(
                acc, partner, partner, seq + round_, seq + round_, _internal=True
            )
            acc = combine(acc, got)
            dist <<= 1
            round_ += 1
    else:
        round_ += (pof2 - 1).bit_length()
    # Phase 3: results flow back to the extra ranks.
    if self.rank < rem:
        self.send(acc, self.rank + pof2, seq + round_, _internal=True)
    elif self.rank >= pof2:
        acc = self.recv(source=self.rank - pof2, tag=seq + round_, _internal=True)
    return acc


def gather(self: "SimComm", value: Any, root: int = 0) -> list[Any] | None:
    """Binomial-tree gather; ``root`` gets ``[value_0, ..., value_{P-1}]``."""
    tag = self._next_coll_tag(_OP_GATHER)
    size = self.size
    if size == 1:
        return [value]
    relative = (self.rank - root) % size
    collected: dict[int, Any] = {self.rank: value}
    for child in reversed(_children(relative, size)):
        part = self.recv(source=(child + root) % size, tag=tag, _internal=True)
        collected.update(part)
    if relative != 0:
        self.send(collected, (_parent(relative) + root) % size, tag, _internal=True)
        return None
    return [collected[r] for r in range(size)]


def allgather(self: "SimComm", value: Any) -> list[Any]:
    """Gather to rank 0, then broadcast the assembled list."""
    parts = gather(self, value, root=0)
    return bcast(self, parts, root=0)


def scatter(self: "SimComm", values: list[Any] | None = None, root: int = 0) -> Any:
    """Scatter one element of ``values`` (given at ``root``) to each rank.

    Linear sends from the root: scatter appears only on cold paths here
    (initial workload distribution), where O(P) root overhead is the
    honest cost of a root-held dataset anyway.
    """
    tag = self._next_coll_tag(_OP_SCATTER)
    size = self.size
    if self.rank == root:
        if values is None or len(values) != size:
            raise CommunicationError(
                f"scatter root needs exactly {size} values, got "
                f"{'None' if values is None else len(values)}"
            )
        for dst in range(size):
            if dst != root:
                self.send(values[dst], dst, tag, _internal=True)
        return values[root]
    return self.recv(source=root, tag=tag, _internal=True)


def alltoall(self: "SimComm", values: list[Any]) -> list[Any]:
    """Pairwise-exchange all-to-all: ``size - 1`` shifted sendrecv rounds."""
    tag = self._next_coll_tag(_OP_ALLTOALL)
    size = self.size
    if len(values) != size:
        raise CommunicationError(f"alltoall needs exactly {size} values, got {len(values)}")
    result: list[Any] = [None] * size
    result[self.rank] = values[self.rank]
    for shift in range(1, size):
        dst = (self.rank + shift) % size
        src = (self.rank - shift) % size
        result[src] = self.sendrecv(values[dst], dst, src, tag, tag, _internal=True)
    return result


def scan(self: "SimComm", value: Any, op: Any = "sum") -> Any:
    """Inclusive prefix reduction: rank r gets combine(value_0..value_r).

    Classic log-step parallel prefix (Hillis-Steele over ranks): in round
    k every rank sends its running prefix to ``rank + 2^k`` and folds in
    the prefix received from ``rank - 2^k``.
    """
    seq = self._next_coll_tag(_OP_SCAN)
    combine = get_reduce_op(op)
    size = self.size
    acc = value
    dist = 1
    round_ = 0
    while dist < size:
        tag = seq + round_
        if self.rank + dist < size:
            self.send(acc, self.rank + dist, tag, _internal=True)
        if self.rank - dist >= 0:
            left = self.recv(source=self.rank - dist, tag=tag, _internal=True)
            acc = combine(left, acc)
        dist <<= 1
        round_ += 1
    return acc


def exscan(self: "SimComm", value: Any, op: Any = "sum") -> Any:
    """Exclusive prefix reduction; rank 0 receives ``None`` (as in MPI).

    Implemented by shifting each rank's *inclusive* prefix of its left
    neighbourhood: rank r sends its inclusive scan to r+1.

    Uses its own op id (``_OP_EXSCAN``), not ``_OP_SCAN``: a mismatched
    program where one rank calls ``scan`` while another calls ``exscan``
    must deadlock loudly (caught by the watchdog), not silently pair a
    scan round with an exscan round and return wrong prefixes.
    """
    seq = self._next_coll_tag(_OP_EXSCAN)
    combine = get_reduce_op(op)
    size = self.size
    # Round budget check *before any send*: the algorithm needs the
    # inclusive-scan rounds plus one shift round, and raising after some
    # sends have gone out would leave peers hung mid-collective.
    rounds = 0
    while (1 << rounds) < size:
        rounds += 1
    if rounds + 1 > _MAX_ROUNDS:
        raise CommunicationError(
            f"exscan needs {rounds + 1} rounds for size {size}, "
            f"exceeding the {_MAX_ROUNDS}-round tag budget"
        )
    # Inclusive scan first (same algorithm as scan(), local tags).
    acc = value
    dist = 1
    round_ = 0
    while dist < size:
        tag = seq + round_
        if self.rank + dist < size:
            self.send(acc, self.rank + dist, tag, _internal=True)
        if self.rank - dist >= 0:
            left = self.recv(source=self.rank - dist, tag=tag, _internal=True)
            acc = combine(left, acc)
        dist <<= 1
        round_ += 1
    shift_tag = seq + round_
    if self.rank + 1 < size:
        self.send(acc, self.rank + 1, shift_tag, _internal=True)
    if self.rank > 0:
        return self.recv(source=self.rank - 1, tag=shift_tag, _internal=True)
    return None


def reduce_scatter(self: "SimComm", values: list[Any], op: Any = "sum") -> Any:
    """Combine ``values[r]`` across ranks; rank r gets the combined r-th slot.

    Implemented as reduce-to-root + scatter (the simple algorithm; fine
    for the control-plane sizes this framework uses it for).
    """
    if len(values) != self.size:
        raise CommunicationError(
            f"reduce_scatter needs exactly {self.size} values, got {len(values)}"
        )
    seq = self._next_coll_tag(_OP_REDUCE_SCATTER)
    del seq  # tag space reserved; the inner collectives draw their own
    combine = get_reduce_op(op)
    combined = reduce(self, values, op=lambda a, b: [combine(x, y) for x, y in zip(a, b)], root=0)
    return scatter(self, combined, root=0)
