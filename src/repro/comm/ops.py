"""Reduction operators for collectives.

An operator is any callable ``combine(a, b) -> result`` that is commutative
and associative; the registry maps the conventional MPI names to NumPy
elementwise implementations that work on arrays and scalars alike.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.util.errors import ValidationError

ReduceOp = Callable[[Any, Any], Any]


def _sum(a: Any, b: Any) -> Any:
    return np.add(a, b)


def _prod(a: Any, b: Any) -> Any:
    return np.multiply(a, b)


def _min(a: Any, b: Any) -> Any:
    return np.minimum(a, b)


def _max(a: Any, b: Any) -> Any:
    return np.maximum(a, b)


_REGISTRY: dict[str, ReduceOp] = {
    "sum": _sum,
    "prod": _prod,
    "min": _min,
    "max": _max,
}


def get_reduce_op(op: str | ReduceOp) -> ReduceOp:
    """Resolve an operator name or pass a callable through.

    >>> get_reduce_op("sum")(2, 3)
    5
    """
    if callable(op):
        return op
    try:
        return _REGISTRY[op]
    except KeyError:
        raise ValidationError(
            f"unknown reduce op {op!r}; known: {sorted(_REGISTRY)} or any callable"
        ) from None
