"""Message payload normalization.

Payloads are either NumPy arrays (the fast path, measured by ``nbytes``) or
arbitrary picklable Python objects (control messages, measured by pickled
size).  Both are snapshotted at send time so that — as with MPI's buffered
eager protocol — the sender may immediately reuse or mutate its buffer.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass(frozen=True)
class Payload:
    """An immutable snapshot of data in flight."""

    data: Any
    nbytes: int
    is_array: bool

    def deliver(self, out: np.ndarray | None = None) -> Any:
        """Materialize the payload at the receiver.

        If ``out`` is given (array payloads only), the data is copied into
        it — the mpi4py ``Recv([buf, ...])`` idiom — and ``out`` is
        returned.  Otherwise a fresh object is returned; arrays are copied
        so receivers can never alias in-flight state.
        """
        if out is not None:
            if not self.is_array:
                raise TypeError("cannot receive an object payload into an array buffer")
            flat_out = out.reshape(-1)
            flat_src = np.asarray(self.data).reshape(-1)
            if flat_out.shape != flat_src.shape:
                raise ValueError(
                    f"receive buffer has {flat_out.size} elements, message has {flat_src.size}"
                )
            flat_out[:] = flat_src
            return out
        if self.is_array:
            return np.array(self.data, copy=True)
        return copy.deepcopy(self.data)


def make_payload(obj: Any) -> Payload:
    """Snapshot ``obj`` into a :class:`Payload`, computing its wire size."""
    if isinstance(obj, np.ndarray):
        snapshot = np.array(obj, copy=True)
        snapshot.setflags(write=False)
        return Payload(data=snapshot, nbytes=int(snapshot.nbytes), is_array=True)
    if np.isscalar(obj) and not isinstance(obj, (str, bytes)):
        return Payload(data=obj, nbytes=int(np.asarray(obj).nbytes), is_array=False)
    # Generic object: deep-copy for isolation, pickle only to price the wire.
    snapshot = copy.deepcopy(obj)
    try:
        nbytes = len(pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable but copyable: charge a nominal size
        nbytes = 64
    return Payload(data=snapshot, nbytes=nbytes, is_array=False)
