"""Message payload normalization (zero-copy fast paths).

Payloads are either NumPy arrays (the fast path, measured by ``nbytes``) or
arbitrary Python objects (control messages, measured by a recursive size
estimator).  Semantics match MPI's buffered eager protocol — the payload is
an immutable snapshot taken at send time — but the implementation copies as
little as possible:

- **Arrays** are snapshotted with at most one copy, and none at all when
  the buffer is already immutable (``writeable=False``, e.g. a previously
  delivered payload being forwarded by a collective) or when the sender
  declares ``owned=True`` (framework-internal sends of freshly built
  buffers that the sender promises not to mutate while in flight).
- **Delivery** never copies: receivers get a read-only view of the
  snapshot, or the data is written straight into their ``out=`` buffer
  (``np.copyto``, so non-contiguous destination views work — this is what
  lets the stencil runtime receive directly into halo slabs).
- **Objects** are snapshotted structurally: containers are rebuilt,
  writeable arrays inside them are snapshotted read-only, immutable leaves
  (scalars, strings, read-only arrays) are shared, and only opaque mutable
  objects fall back to ``copy.deepcopy``.  Wire size comes from
  :func:`estimate_nbytes` instead of a full ``pickle.dumps`` of the data.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

import numpy as np

#: Immutable leaf types that can be shared between sender and receiver.
_IMMUTABLE_LEAVES = (bool, int, float, complex, str, bytes, np.generic)

#: Wire size charged for ``None`` control tokens (the pickled size, kept so
#: barrier/handshake costs match the original pickle-priced model exactly).
_NONE_NBYTES = 4

#: Per-element overhead charged for container structure (pointers/headers).
_CONTAINER_SLOT_NBYTES = 8

#: Nominal size for opaque objects the estimator cannot see into.
_OPAQUE_NBYTES = 64


@dataclass(frozen=True, slots=True)
class Payload:
    """An immutable snapshot of data in flight."""

    data: Any
    nbytes: int
    is_array: bool

    def deliver(self, out: np.ndarray | None = None) -> Any:
        """Materialize the payload at the receiver.

        If ``out`` is given (array payloads only), the data is copied into
        it — the mpi4py ``Recv([buf, ...])`` idiom — and ``out`` is
        returned; ``out`` may be any same-size array, including a
        non-contiguous view (e.g. a halo slab).  Otherwise the snapshot is
        returned directly: arrays arrive as read-only views, so receivers
        can never corrupt in-flight state, and no copy is ever made on the
        receive side.
        """
        if out is not None:
            if not self.is_array:
                raise TypeError("cannot receive an object payload into an array buffer")
            if out.size != self.data.size:
                raise ValueError(
                    f"receive buffer has {out.size} elements, message has {self.data.size}"
                )
            np.copyto(out, self.data.reshape(out.shape))
            return out
        return self.data


def _readonly_view(arr: np.ndarray) -> np.ndarray:
    """A read-only view of ``arr`` (the caller's own flags are untouched)."""
    view = arr.view()
    view.setflags(write=False)
    return view


def _snapshot(obj: Any) -> Any:
    """Structurally snapshot an object payload.

    Containers are rebuilt so later mutation of the sender's container is
    invisible; immutable leaves are shared; writeable arrays are copied
    exactly once (read-only); anything opaque is deep-copied.
    """
    if obj is None or isinstance(obj, _IMMUTABLE_LEAVES):
        return obj
    if isinstance(obj, np.ndarray):
        if not obj.flags.writeable:
            return obj
        snap = np.array(obj, copy=True)
        snap.setflags(write=False)
        return snap
    if isinstance(obj, tuple):
        return tuple(_snapshot(v) for v in obj)
    if isinstance(obj, list):
        return [_snapshot(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _snapshot(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return type(obj)(_snapshot(v) for v in obj)
    return copy.deepcopy(obj)


def estimate_nbytes(obj: Any) -> int:
    """Cheap recursive wire-size estimate for object payloads.

    Replaces the old ``len(pickle.dumps(obj))`` pricing: arrays count their
    buffer, scalars their itemsize, strings their length, and containers a
    small per-slot overhead — no serialization work is ever done.
    """
    if obj is None:
        return _NONE_NBYTES
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, complex):
        return 16
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, dict):
        return sum(
            _CONTAINER_SLOT_NBYTES + estimate_nbytes(k) + estimate_nbytes(v)
            for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(_CONTAINER_SLOT_NBYTES + estimate_nbytes(v) for v in obj)
    return _OPAQUE_NBYTES


def make_payload(obj: Any, owned: bool = False) -> Payload:
    """Snapshot ``obj`` into a :class:`Payload`, computing its wire size.

    ``owned=True`` is the framework-internal zero-copy fast path: the
    caller transfers ownership of ``obj`` — it promises not to mutate the
    buffer (or anything reachable from it) until the receiver has consumed
    the message — so no copy is made at all.  User-facing sends leave it
    ``False`` and get full buffered-eager snapshot semantics.
    """
    if obj is None:
        # Control tokens (barrier rounds, acks, handshakes) dominate the
        # message count at many-rank scale; they all share one payload.
        return _NONE_PAYLOAD
    if isinstance(obj, np.ndarray):
        if owned or not obj.flags.writeable:
            snapshot = obj if not obj.flags.writeable else _readonly_view(obj)
        else:
            snapshot = np.array(obj, copy=True)
            snapshot.setflags(write=False)
        return Payload(data=snapshot, nbytes=int(obj.nbytes), is_array=True)
    if np.isscalar(obj) and not isinstance(obj, (str, bytes)):
        nbytes = getattr(obj, "nbytes", None)
        return Payload(
            data=obj,
            nbytes=int(nbytes) if nbytes is not None else int(np.asarray(obj).nbytes),
            is_array=False,
        )
    data = obj if owned else _snapshot(obj)
    return Payload(data=data, nbytes=estimate_nbytes(obj), is_array=False)


#: The shared snapshot of ``None`` (see :func:`make_payload`).
_NONE_PAYLOAD = Payload(data=None, nbytes=_NONE_NBYTES, is_array=False)


def none_payload() -> Payload:
    """The process-wide shared ``None`` payload singleton.

    Exposed so other serialization layers (the cross-process wire protocol
    in :mod:`repro.comm.wire`) can restore the singleton on decode instead
    of materializing a fresh ``Payload`` per control token.
    """
    return _NONE_PAYLOAD
