"""Cross-process payload wire protocol (shared memory + pickle).

The process-parallel SPMD backend ships in-flight messages between worker
processes.  Virtual-time metadata (send/arrival times, wire duration,
charged bytes) travels as plain picklable fields; this module handles the
*payload* so PR 1's zero-copy discipline survives the process boundary:

- **Large array payloads** are carried in
  :class:`multiprocessing.shared_memory.SharedMemory` segments.  The
  sender copies the (contiguous view of the) array into a fresh segment
  exactly once and closes its handle; the receiver maps the segment and
  wraps a **read-only zero-copy view** of it in a
  :class:`~repro.comm.payload.Payload` — delivery on the receive side
  (`deliver()` views, ``out=`` fills) never copies the buffer again.
  Segment lifetime is owned by the *receiving* worker's
  :class:`ShmRegistry`: segments stay mapped until the run finishes (a
  received view may be forwarded or held by the rank program), then are
  closed and unlinked in one sweep.
- **Small array payloads** (below :func:`shm_threshold` bytes) travel
  inline as raw bytes — a shared-memory segment costs two syscalls plus a
  name exchange, which dwarfs a memcpy of a halo face.  The decoded array
  is a zero-copy read-only view over the received bytes object.
- **Object payloads** (control tokens, tuples, dicts) fall back to
  pickle.  Arrays inside the unpickled object graph are re-frozen
  read-only so receivers keep the thread backend's can't-corrupt-in-flight
  guarantee.  The shared ``None`` payload singleton is encoded as a
  one-byte kind tag and decoded back to the singleton.

Every encoding preserves the payload's *charged* ``nbytes`` verbatim (it
may differ from the buffer size when a send overrode ``wire_bytes``), so
trace counters and virtual costs are bit-identical across backends.
"""

from __future__ import annotations

import pickle
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.comm.payload import Payload, none_payload
from repro.util.errors import ValidationError

#: Array payloads at or above this many bytes ride in shared memory;
#: smaller ones are inlined.  Module-level so tests can drive both paths.
SHM_MIN_BYTES_DEFAULT = 1 << 16

_shm_min_bytes = SHM_MIN_BYTES_DEFAULT


def shm_threshold() -> int:
    """Current inline-vs-shared-memory cutover in bytes."""
    return _shm_min_bytes


def set_shm_threshold(nbytes: int) -> int:
    """Set the cutover (test hook); returns the previous value."""
    global _shm_min_bytes
    if nbytes < 0:
        raise ValidationError(f"shm threshold must be >= 0, got {nbytes}")
    prev = _shm_min_bytes
    _shm_min_bytes = nbytes
    return prev


# Wire-record kind tags (first element of every encoded payload tuple).
KIND_NONE = "none"
KIND_INLINE = "arr"
KIND_SHM = "shm"
KIND_OBJECT = "obj"


def _freeze_arrays(obj: Any) -> None:
    """Flip every ndarray reachable in a fresh container graph read-only.

    Pickle does not preserve the ``writeable=False`` flag, so arrays inside
    decoded object payloads come back mutable; receivers of the thread
    backend get the sender's read-only snapshot, and the wire must match.
    Only containers the snapshotter builds are walked (tuple/list/dict/
    set/frozenset) — the graph is freshly unpickled, so mutating flags in
    place is safe.
    """
    if isinstance(obj, np.ndarray):
        obj.setflags(write=False)
        return
    if isinstance(obj, (tuple, list, set, frozenset)):
        for v in obj:
            _freeze_arrays(v)
        return
    if isinstance(obj, dict):
        for k, v in obj.items():
            _freeze_arrays(k)
            _freeze_arrays(v)


def encode_payload(payload: Payload) -> tuple:
    """Encode a payload into a picklable wire record.

    Array payloads choose shared memory vs inline bytes by size; the
    original dtype and shape travel alongside so the receive side rebuilds
    an identical-looking (read-only) array.  Non-contiguous views are
    compacted once on the send side — receivers always map a contiguous
    buffer.
    """
    data = payload.data
    if data is None and not payload.is_array:
        return (KIND_NONE,)
    if payload.is_array:
        arr = np.ascontiguousarray(data)
        if arr.nbytes >= _shm_min_bytes and arr.nbytes > 0:
            shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
            try:
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                np.copyto(view, arr)
                del view
            finally:
                name = shm.name
                shm.close()
            # Ownership transfers to the receiving worker's ShmRegistry:
            # unregister here so this process's resource tracker does not
            # complain (or double-unlink) at exit for a segment another
            # process will unlink.
            _untrack_shm(name)
            return (KIND_SHM, name, arr.dtype, arr.shape, payload.nbytes)
        return (KIND_INLINE, arr.dtype, arr.shape, payload.nbytes, arr.tobytes())
    try:
        blob = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        import cloudpickle

        blob = cloudpickle.dumps(data)
    return (KIND_OBJECT, blob, payload.nbytes)


def decode_payload(record: tuple, registry: "ShmRegistry | None" = None) -> Payload:
    """Decode a wire record back into a frozen :class:`Payload`.

    Shared-memory records require a ``registry`` that takes ownership of
    the mapped segment (keeping the zero-copy view's buffer alive until
    the run's cleanup sweep).
    """
    kind = record[0]
    if kind == KIND_NONE:
        return none_payload()
    if kind == KIND_INLINE:
        _, dtype, shape, nbytes, raw = record
        # np.frombuffer over an immutable bytes object is already read-only.
        view = np.frombuffer(raw, dtype=dtype).reshape(shape)
        return Payload(data=view, nbytes=nbytes, is_array=True)
    if kind == KIND_SHM:
        _, name, dtype, shape, nbytes = record
        if registry is None:
            raise ValidationError("shared-memory payload needs a ShmRegistry")
        shm = registry.adopt(name)
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        view.setflags(write=False)
        return Payload(data=view, nbytes=nbytes, is_array=True)
    if kind == KIND_OBJECT:
        _, blob, nbytes = record
        data = pickle.loads(blob)
        _freeze_arrays(data)
        return Payload(data=data, nbytes=nbytes, is_array=False)
    raise ValidationError(f"unknown payload wire kind {kind!r}")


def discard_record(record: tuple) -> None:
    """Release resources named by an undecoded record (dropped post-abort).

    A record that never reaches :func:`decode_payload` — e.g. it arrived
    for a run that already aborted — may still own a shared-memory
    segment; unlink it so aborted runs cannot leak ``/dev/shm`` entries.
    """
    if record and record[0] == KIND_SHM:
        try:
            shm = shared_memory.SharedMemory(name=record[1])
        except FileNotFoundError:
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - lost the unlink race
            pass


def _untrack_shm(name: str) -> None:
    """Drop a segment from this process's resource tracker (best effort)."""
    try:  # pragma: no cover - tracker internals vary across 3.x
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class ShmRegistry:
    """Per-run ownership of received shared-memory segments.

    The receiving worker adopts every mapped segment here; zero-copy views
    handed to rank programs stay valid for the whole run, and the run's
    ``finish``/abort cleanup closes and unlinks everything in one sweep.
    Thread-safe: peer router threads adopt while the run executes.
    """

    def __init__(self) -> None:
        import threading

        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def adopt(self, name: str) -> shared_memory.SharedMemory:
        with self._lock:
            shm = self._segments.get(name)
            if shm is None:
                # Attaching does not register with the resource tracker
                # (only create=True does), so no unregister dance is needed
                # here; this registry unlinks explicitly in release_all().
                shm = shared_memory.SharedMemory(name=name)
                self._segments[name] = shm
        return shm

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    def release_all(self) -> int:
        """Close + unlink every adopted segment; returns how many."""
        with self._lock:
            segments, self._segments = self._segments, {}
        released = 0
        for shm in segments.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still exported
                # A rank program kept a view alive past the run; leave the
                # mapping (the OS reclaims it at process exit) but still
                # unlink the name so the segment cannot accumulate.
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            released += 1
        return released
