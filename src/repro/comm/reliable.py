"""Reliable delivery over a lossy fabric: the stop-and-wait protocol layer.

:class:`ReliableComm` wraps a :class:`~repro.comm.communicator.SimComm`
and presents the same interface (point-to-point + collectives), but makes
message delivery survive a lossy :class:`~repro.faults.plan.FaultPlan`
with *bit-identical* results:

- **Sequence numbers.**  Every (peer, tag) pair is a stream; each message
  carries its stream sequence number encoded in a dedicated reliable tag
  space (:data:`~repro.comm.constants.RELIABLE_DATA_BASE`), so the payload
  itself is untouched — array sends keep their zero-copy ``owned=`` and
  ``out=`` delivery paths.
- **Virtual-time retransmission.**  The fault plan's verdict for each
  transmission is observable at the sender (the simulator's equivalent of
  a retransmission timer expiring with no ACK): on a drop, the sender's
  virtual clock advances by the current timeout, the timeout doubles
  (exponential backoff), and the message is retransmitted — so lost
  messages cost exactly the retry latency they would in a real protocol,
  and that cost lands in the virtual makespan.
- **Acknowledgements.**  The receiver acks every accepted message with a
  header-only control message on the reverse link
  (:data:`~repro.comm.constants.RELIABLE_ACK_BASE`).  The sender
  synchronizes with all outstanding acks at :meth:`flush`, which charges
  the protocol's round-trip cost to the sender's clock (ack collection is
  deliberately never opportunistic — see :meth:`_collect_acks`).
- **Receive-side dedup.**  A duplicated message carries the same
  (stream, seq) tag as its original; after accepting seq ``s`` the
  receiver drains queued duplicates of recently accepted sequence numbers
  and discards them (their ingress + receive overhead is still charged —
  duplicates are not free in a real network either).

The layer is *stream-ordered*: receives must name a specific source and
tag (``ANY_SOURCE``/``ANY_TAG`` raise), which is how the framework's halo
exchanges and tree collectives already communicate.  Collectives are the
standard algorithms from :mod:`repro.comm.collectives` bound over the
reliable point-to-point, so a whole application completes correctly under
a drop/duplicate/delay plan simply by wrapping its communicator.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.comm import collectives as _coll
from repro.comm.communicator import Request, SendRequest, SimComm
from repro.comm.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    RELIABLE_ACK_BASE,
    RELIABLE_DATA_BASE,
    RELIABLE_SEQ_SLOTS,
)
from repro.util.errors import CommunicationError

#: How many recently accepted sequence numbers per stream are probed for
#: late-arriving duplicates on every receive (older leftovers are swept at
#: :meth:`ReliableComm.flush`).
_DUP_WATCH_WINDOW = 4


def _data_tag(tag: int, seq: int) -> int:
    return RELIABLE_DATA_BASE + tag * RELIABLE_SEQ_SLOTS + (seq % RELIABLE_SEQ_SLOTS)


def _ack_tag(tag: int, seq: int) -> int:
    return RELIABLE_ACK_BASE + tag * RELIABLE_SEQ_SLOTS + (seq % RELIABLE_SEQ_SLOTS)


class ReliableRecvRequest(Request):
    """Handle for a reliable ``irecv``; matching is deferred until wait."""

    __slots__ = ("_comm", "_source", "_tag", "_out", "_done", "_value")

    def __init__(
        self, comm: "ReliableComm", source: int, tag: int, out: np.ndarray | None
    ) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._out = out
        self._done = False
        self._value: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._value = self._comm.recv(source=self._source, tag=self._tag, out=self._out)
            self._done = True
        return self._value

    def test(self) -> bool:
        if self._done:
            return True
        if self._source == PROC_NULL:
            return True
        comm = self._comm
        seq = comm._recv_seq.get((self._source, self._tag), 0)
        return comm.base.fabric.probe(
            comm.rank, self._source, _data_tag(self._tag, seq)
        )


class ReliableComm:
    """Stop-and-wait reliable messaging over a (possibly lossy) ``SimComm``.

    Drop-in for ``SimComm`` wherever receives name specific peers: the
    runtimes (stencil halo exchange, generalized reduction) and all
    collectives run over it unchanged.

    Args:
        base: The underlying communicator (owns clock, fabric, trace).
        rto: Initial virtual-time retransmission timeout in seconds.
        backoff: Multiplier applied to the timeout after each retry.
        max_attempts: Give up (``CommunicationError``) after this many
            transmissions of one message.
    """

    def __init__(
        self,
        base: SimComm,
        *,
        rto: float = 1e-3,
        backoff: float = 2.0,
        max_attempts: int = 30,
    ) -> None:
        if rto <= 0:
            raise CommunicationError(f"rto must be > 0, got {rto}")
        if backoff < 1.0:
            raise CommunicationError(f"backoff must be >= 1, got {backoff}")
        if max_attempts < 1:
            raise CommunicationError(f"max_attempts must be >= 1, got {max_attempts}")
        self.base = base
        self.rto = float(rto)
        self.backoff = float(backoff)
        self.max_attempts = int(max_attempts)
        self._coll_seq = 0
        self._send_seq: dict[tuple[int, int], int] = {}
        self._recv_seq: dict[tuple[int, int], int] = {}
        # Outstanding (tag, seq) acks per destination, in send order.
        self._pending_acks: dict[int, list[tuple[int, int]]] = {}
        # Recently accepted (source, tag) -> [seqs] still watched for dups.
        self._dup_watch: dict[tuple[int, int], list[int]] = {}
        self.retransmits = 0
        self.duplicates_discarded = 0

    # -- SimComm-compatible surface ------------------------------------
    @property
    def rank(self) -> int:
        return self.base.rank

    @property
    def size(self) -> int:
        return self.base.size

    @property
    def node_index(self) -> int:
        return self.base.node_index

    @property
    def clock(self):
        return self.base.clock

    @property
    def fabric(self):
        return self.base.fabric

    @property
    def trace(self):
        return self.base.trace

    @property
    def recv_timeout(self) -> float:
        return self.base.recv_timeout

    # -- point-to-point -------------------------------------------------
    def send(
        self,
        obj: Any,
        dest: int,
        tag: int = 0,
        _internal: bool = False,
        wire_bytes: float | None = None,
        owned: bool = False,
    ) -> None:
        """Reliable send: retransmit with exponential backoff until delivered.

        The payload path is the base communicator's (zero-copy rules
        included); only the tag is rewritten into the reliable DATA space.
        """
        self.base._check_peer(dest, "destination")
        if not _internal:
            self.base._check_tag(tag, allow_any=False)
        if dest == PROC_NULL:
            return
        key = (dest, tag)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        plan = self.base.fabric.fault_plan
        timeout = self.rto
        wire_tag = _data_tag(tag, seq)
        attempt = 0
        while True:
            attempt += 1
            if attempt > self.max_attempts:
                raise CommunicationError(
                    f"reliable send to {dest} (tag {tag}, seq {seq}) gave up "
                    f"after {self.max_attempts} attempts"
                )
            self.base.send(
                obj, dest, wire_tag, _internal=True, wire_bytes=wire_bytes, owned=owned
            )
            if plan is None or not plan.last_decision(self.rank).drop:
                break
            # The simulator's retransmission timer: the plan's drop verdict
            # stands in for "timeout expired with no ACK", charged in
            # virtual time instead of awaited on the wall clock.
            t0 = self.clock.now
            self.clock.advance(timeout)
            tr = self.trace
            if tr is not None and tr.enabled:
                tr.record(
                    "fault",
                    f"retransmit->{dest}",
                    t0,
                    self.clock.now,
                    {"tag": tag, "seq": seq, "attempt": attempt},
                )
                tr.count("comm.retransmits")
            self.retransmits += 1
            timeout *= self.backoff
        self._pending_acks.setdefault(dest, []).append((tag, seq))

    def isend(
        self,
        obj: Any,
        dest: int,
        tag: int = 0,
        wire_bytes: float | None = None,
        owned: bool = False,
    ) -> SendRequest:
        """Non-blocking reliable send (buffered eager, like the base)."""
        self.send(obj, dest, tag, wire_bytes=wire_bytes, owned=owned)
        return SendRequest()

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        out: np.ndarray | None = None,
        _internal: bool = False,
    ) -> Any:
        """Reliable receive: accept the stream's next sequence number.

        Wildcards are unsupported — reliable streams are per (peer, tag),
        so the receive must name both.
        """
        if source == PROC_NULL:
            return None
        if source == ANY_SOURCE or tag == ANY_TAG:
            raise CommunicationError(
                "ReliableComm requires a specific source and tag "
                "(wildcard receives cannot be sequence-checked)"
            )
        self.base._check_peer(source, "source")
        if not _internal:
            self.base._check_tag(tag, allow_any=False)
        key = (source, tag)
        seq = self._recv_seq.get(key, 0)
        value = self.base.recv(source=source, tag=_data_tag(tag, seq), out=out, _internal=True)
        self._recv_seq[key] = seq + 1
        # Ack eagerly (header-only, fault-exempt) so the sender's flush
        # can always complete once our receive has happened.
        self.base.send(None, source, _ack_tag(tag, seq), _internal=True)
        tr = self.trace
        if tr is not None and tr.enabled:
            tr.count("comm.acks_sent")
        # Watch this seq for a late duplicate, then drain any duplicates
        # of recently accepted seqs that are already queued.  Duplicates
        # only ever come from an installed fault plan, so a fault-free
        # reliable run skips the dup bookkeeping and probes outright
        # (probes never touch the clock, so this cannot move a makespan).
        if self.base.fabric.fault_plan is not None:
            watch = self._dup_watch.setdefault(key, [])
            watch.append(seq)
            if len(watch) > _DUP_WATCH_WINDOW:
                del watch[: len(watch) - _DUP_WATCH_WINDOW]
            self._drain_duplicates(source, tag)
        return value

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, out: np.ndarray | None = None
    ) -> ReliableRecvRequest:
        """Non-blocking reliable receive; completion happens at wait."""
        if source != PROC_NULL:
            if source == ANY_SOURCE or tag == ANY_TAG:
                raise CommunicationError(
                    "ReliableComm requires a specific source and tag "
                    "(wildcard receives cannot be sequence-checked)"
                )
            self.base._check_peer(source, "source")
            self.base._check_tag(tag, allow_any=True)
        return ReliableRecvRequest(self, source, tag, out)

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        out: np.ndarray | None = None,
        _internal: bool = False,
    ) -> Any:
        """Combined reliable send + receive."""
        self.send(obj, dest, sendtag, _internal=_internal)
        return self.recv(source=source, tag=recvtag, out=out, _internal=_internal)

    @staticmethod
    def waitall(requests: list[Request]) -> list[Any]:
        """Wait on every request, returning their values in order."""
        return [req.wait() for req in requests]

    # -- protocol bookkeeping ------------------------------------------
    def _drain_duplicates(self, source: int, tag: int) -> None:
        """Consume queued duplicates of recently accepted sequence numbers.

        Duplicates carry the same (stream, seq) tag as their original, so
        anything still matching a watched seq is a network-duplicated copy:
        receive it (charging its ingress and receive overhead — duplicated
        bytes are not free) and discard the value.  Each probe is an O(1)
        indexed lookup on the sharded fabric (this loop used to rescan the
        whole destination queue per watched seq).
        """
        fabric = self.base.fabric
        watch = self._dup_watch.get((source, tag))
        if not watch:
            return
        for s in list(watch):
            dtag = _data_tag(tag, s)
            while fabric.probe(self.rank, source, dtag):
                self.base.recv(source=source, tag=dtag, _internal=True)
                self.duplicates_discarded += 1
                tr = self.trace
                if tr is not None and tr.enabled:
                    now = self.clock.now
                    tr.record(
                        "fault", f"dup-discard<-{source}", now, now, {"tag": tag, "seq": s}
                    )
                    tr.count("comm.dup_discards")

    def _collect_acks(self, dest: int) -> None:
        """Blocking-collect every outstanding ack from ``dest``.

        Deliberately *only* blocking, and only called from :meth:`flush`:
        an opportunistic (non-blocking probe) collection would make the
        sender's virtual clock depend on whether the receiver's ack had
        been posted yet on the *wall* clock — a thread-scheduling race.  A
        blocking receive waits for the ack regardless of scheduling, so
        the clock synchronization it charges is a function of virtual
        arrival times only.
        """
        pending = self._pending_acks.pop(dest, None)
        if not pending:
            return
        for tag, seq in pending:
            self.base.recv(source=dest, tag=_ack_tag(tag, seq), _internal=True)

    def flush(self) -> None:
        """Synchronize with all outstanding acks and sweep duplicate leftovers.

        Call at the end of the rank program (after all matching receives
        have been posted by the peers — the natural SPMD shutdown point).
        """
        for dest in sorted(self._pending_acks):
            self._collect_acks(dest)
        for (source, tag) in sorted(self._dup_watch):
            self._drain_duplicates(source, tag)

    # -- collectives ----------------------------------------------------
    def _next_coll_tag(self, op_id: int) -> int:
        """Fresh internal tag per collective invocation (same rule as base)."""
        tag = _coll.collective_tag(self._coll_seq, op_id)
        self._coll_seq += 1
        return tag

    barrier = _coll.barrier
    bcast = _coll.bcast
    reduce = _coll.reduce
    allreduce = _coll.allreduce
    gather = _coll.gather
    allgather = _coll.allgather
    scatter = _coll.scatter
    alltoall = _coll.alltoall
    scan = _coll.scan
    exscan = _coll.exscan
    reduce_scatter = _coll.reduce_scatter

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReliableComm(rank={self.rank}, size={self.size}, "
            f"retransmits={self.retransmits})"
        )
