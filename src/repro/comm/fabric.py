"""The shared in-process message fabric.

One :class:`Fabric` is shared by all rank threads of an SPMD run.  It owns
the mailboxes (one ordered queue per destination rank), performs tag/source
matching with per-(source, tag) FIFO ordering, and knows which
:class:`~repro.cluster.specs.InterconnectSpec` connects any two ranks
(intra-node vs. network) given the rank→node mapping.

Thread-safety: a single lock guards all queues; each destination rank has a
condition variable so a blocked receiver wakes only for its own mail (or an
abort).  Specific-source matching happens in *post order*, which yields
MPI's non-overtaking guarantee between any (source, tag) pair; wildcard
(``ANY_SOURCE``) receives pick the per-source FIFO head with the minimum
``(arrival_time, src)``, so matching among the queued candidates depends
only on virtual time, never on which sender's thread won the wall-clock
race to post (programs that need *full* wildcard determinism must also
ensure the candidates are all posted, e.g. fan-in after a barrier).

Fault injection: an installed :class:`~repro.faults.plan.FaultPlan` is
consulted by :meth:`Fabric.transmit` for every message — dropped messages
are charged to the sender but never enqueued, duplicates are enqueued
twice (the copy trailing by one wire time), delays and link degradation
push the arrival time out.  ``post()`` is the raw test-level enqueue and
bypasses the plan.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.specs import ClusterSpec, InterconnectSpec
from repro.comm.constants import ANY_SOURCE, ANY_TAG
from repro.comm.payload import Payload
from repro.sim.timeline import Timeline
from repro.util.errors import CommunicationError, DeadlockError, ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class Message:
    """One message in flight (or delivered)."""

    src: int
    dst: int
    tag: int
    payload: Payload
    send_time: float
    arrival_time: float
    wire_duration: float = 0.0
    seq: int = field(compare=False, default=0)

    @property
    def nbytes(self) -> int:
        return self.payload.nbytes


class Fabric:
    """Mailboxes + link model shared by every rank of one SPMD run."""

    def __init__(self, cluster: ClusterSpec, ranks_per_node: int = 1) -> None:
        if ranks_per_node <= 0:
            raise ValidationError(f"ranks_per_node must be > 0, got {ranks_per_node}")
        self.cluster = cluster
        self.ranks_per_node = ranks_per_node
        self.size = cluster.num_nodes * ranks_per_node
        self._lock = threading.Lock()
        self._cv = [threading.Condition(self._lock) for _ in range(self.size)]
        self._queues: list[list[Message]] = [[] for _ in range(self.size)]
        self._seq = itertools.count()
        self._abort_exc: BaseException | None = None
        # Per-rank NIC occupancy: a rank injects (egress) and absorbs
        # (ingress) at most one message's bytes at a time, so fan-in/fan-out
        # traffic serializes at the endpoints (LogGP's per-byte gap G).
        self._egress = [Timeline(f"nic{r}.egress") for r in range(self.size)]
        self._ingress = [Timeline(f"nic{r}.ingress") for r in range(self.size)]
        self._link_cache: dict[tuple[int, int], InterconnectSpec] = {}
        self.fault_plan: FaultPlan | None = None

    def install_faults(self, plan: "FaultPlan | None") -> None:
        """Install (or clear, with ``None``) the fault plan for this run."""
        with self._lock:
            self.fault_plan = plan

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` (ranks are packed node-major)."""
        if not 0 <= rank < self.size:
            raise ValidationError(f"rank {rank} out of range for size {self.size}")
        return rank // self.ranks_per_node

    def link(self, src: int, dst: int) -> InterconnectSpec:
        """The link class between two ranks (cached; called per message)."""
        key = (src, dst)
        spec = self._link_cache.get(key)
        if spec is None:
            spec = self.cluster.link_between(self.node_of(src), self.node_of(dst))
            self._link_cache[key] = spec
        return spec

    def inject(self, src: int, ready: float, nbytes: float, link: InterconnectSpec) -> tuple[float, float]:
        """Occupy the sender's egress NIC; returns (wire_start, wire_duration).

        Called from the sender's own thread (its sends are program-ordered,
        so egress scheduling stays deterministic).
        """
        wire = nbytes / link.bandwidth
        with self._lock:
            iv = self._egress[src].schedule(ready, wire, "msg")
        return iv.start, wire

    def post(self, msg: Message) -> None:
        """Enqueue a message for its destination and wake its receiver."""
        with self._lock:
            if self._abort_exc is not None:
                raise CommunicationError("fabric aborted") from self._abort_exc
            object.__setattr__(msg, "seq", next(self._seq))
            self._queues[msg.dst].append(msg)
            self._cv[msg.dst].notify_all()

    def transmit(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: Payload,
        *,
        send_time: float,
        charged: float,
        link: InterconnectSpec,
    ) -> float:
        """Inject + post in one critical section; returns the arrival time.

        The hot path of :meth:`SimComm.send`: equivalent to
        :meth:`inject` followed by :meth:`post`, but takes the fabric lock
        once per message instead of twice.

        With a fault plan installed, the plan is consulted here: link
        degradation stretches the wire time, extra delay pushes the
        arrival out, a duplicate enqueues a second copy trailing by one
        wire time (network-side duplication — the sender's NIC is charged
        once), and a dropped message is charged to the sender's egress but
        never enqueued.  The sender-side return value is always the
        arrival the message *would* have had, so sender traces stay
        comparable across plans.
        """
        wire = charged / link.bandwidth
        with self._lock:
            if self._abort_exc is not None:
                raise CommunicationError("fabric aborted") from self._abort_exc
            decision = None
            if self.fault_plan is not None:
                decision = self.fault_plan.decide(src, dst, tag, send_time)
                if decision.bandwidth_factor != 1.0:
                    wire = wire / decision.bandwidth_factor
            iv = self._egress[src].schedule(send_time, wire, "msg")
            arrival = iv.start + link.latency + wire
            if decision is not None:
                arrival += decision.extra_latency + decision.extra_delay
                if decision.drop:
                    return arrival
            msg = Message(
                src=src,
                dst=dst,
                tag=tag,
                payload=payload,
                send_time=send_time,
                arrival_time=arrival,
                wire_duration=wire,
                seq=next(self._seq),
            )
            self._queues[dst].append(msg)
            if decision is not None and decision.duplicate:
                dup = Message(
                    src=src,
                    dst=dst,
                    tag=tag,
                    payload=payload,
                    send_time=send_time,
                    arrival_time=arrival + wire,
                    wire_duration=wire,
                    seq=next(self._seq),
                )
                self._queues[dst].append(dup)
            self._cv[dst].notify_all()
        return arrival

    def match(
        self,
        dst: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Message:
        """Block until a message for ``dst`` matching (source, tag) arrives.

        Specific-source matching scans the destination queue in post
        order, so two messages from the same source with the same tag are
        received in the order they were sent (MPI non-overtaking).  A
        wildcard (``ANY_SOURCE``) receive considers the per-source FIFO
        head of each candidate source and takes the one with the minimum
        ``(arrival_time, src)`` — a function of virtual time only, so the
        choice among queued messages is identical run-to-run no matter how
        the OS schedules sender threads (post order for wildcards would
        expose wall-clock racing between different sources even when every
        candidate is already queued).  ``timeout`` is a
        *wall-clock* watchdog: exceeding it means the simulated program is
        deadlocked.
        """
        cv = self._cv[dst]
        with self._lock:
            while True:
                if self._abort_exc is not None:
                    raise CommunicationError("fabric aborted") from self._abort_exc
                queue = self._queues[dst]
                found = -1
                if source != ANY_SOURCE:
                    for i, msg in enumerate(queue):
                        if msg.src != source:
                            continue
                        if tag != ANY_TAG and msg.tag != tag:
                            continue
                        found = i
                        break
                else:
                    # Per-source FIFO heads (first post-order match per
                    # source), then the head with the earliest arrival.
                    heads: dict[int, int] = {}
                    for i, msg in enumerate(queue):
                        if tag != ANY_TAG and msg.tag != tag:
                            continue
                        if msg.src not in heads:
                            heads[msg.src] = i
                    if heads:
                        found = min(
                            heads.values(),
                            key=lambda i: (queue[i].arrival_time, queue[i].src),
                        )
                if found >= 0:
                    msg = queue[found]
                    del queue[found]
                    # Absorb the bytes through the receiver's ingress NIC:
                    # concurrent inbound streams serialize here.  Matching
                    # order is the receiver's program order, so this stays
                    # deterministic for specific-source receives.
                    if msg.wire_duration > 0:
                        iv = self._ingress[dst].schedule(
                            msg.arrival_time - msg.wire_duration, msg.wire_duration, "msg"
                        )
                        object.__setattr__(msg, "arrival_time", iv.end)
                    return msg
                if not cv.wait(timeout=timeout):
                    raise DeadlockError(
                        f"rank {dst} waited {timeout}s (wall clock) for a message "
                        f"from source={source} tag={tag}; simulated program is deadlocked"
                    )

    def probe(self, dst: int, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check whether a matching message is queued.

        Raises :class:`CommunicationError` once the fabric is aborted, so
        a ``Request.test()`` polling loop fails fast after a sibling rank
        dies instead of spinning forever on ``False``.
        """
        with self._lock:
            if self._abort_exc is not None:
                raise CommunicationError("fabric aborted") from self._abort_exc
            return any(
                (source == ANY_SOURCE or m.src == source)
                and (tag == ANY_TAG or m.tag == tag)
                for m in self._queues[dst]
            )

    def pending_count(self, dst: int) -> int:
        """Number of undelivered messages queued for ``dst`` (test hook)."""
        with self._lock:
            return len(self._queues[dst])

    def abort(self, exc: BaseException) -> None:
        """Poison the fabric: wake every blocked receiver with an error.

        Called by the SPMD engine when one rank raises, so sibling ranks
        blocked in ``recv`` fail fast instead of hanging until the watchdog.
        """
        with self._lock:
            if self._abort_exc is None:
                self._abort_exc = exc
            for cv in self._cv:
                cv.notify_all()
