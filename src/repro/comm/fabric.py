"""The shared in-process message fabric (sharded per destination rank).

One :class:`Fabric` is shared by all rank threads of an SPMD run.  It owns
the mailboxes (one indexed mailbox per destination rank), performs
tag/source matching with per-(source, tag) FIFO ordering, and knows which
:class:`~repro.cluster.specs.InterconnectSpec` connects any two ranks
(intra-node vs. network) given the rank→node mapping.

Thread-safety: fabric state is *sharded per rank* — each rank owns a
mailbox lock + condition variable plus its two NIC timelines.  Egress
scheduling happens under the **sender's** shard lock and mailbox
enqueue/match under the **receiver's**, so sends between disjoint rank
pairs never contend on a common lock (the previous design funnelled every
message through one global lock, which serialized the whole simulator at
many-rank scale).  Wakeups are *targeted*: a blocked receiver registers
its wait predicate (source, tag) on its shard, and a sender notifies only
when the newly enqueued message can actually match it — fan-in patterns
(collectives, ack collection) no longer thundering-herd every arrival.

Matching is indexed: each mailbox keeps one FIFO deque per (source, tag)
pair, so a specific-source ``match()``/``probe()`` is O(1) and a wildcard
(``ANY_SOURCE``) match is O(#active (source, tag) pairs) instead of
O(queue length).  Specific-source matching consumes each (source, tag)
deque in *post order*, which yields MPI's non-overtaking guarantee
between any (source, tag) pair; wildcard receives pick the per-source
FIFO head with the minimum ``(arrival_time, src)``, so matching among the
queued candidates depends only on virtual time, never on which sender's
thread won the wall-clock race to post (programs that need *full*
wildcard determinism must also ensure the candidates are all posted,
e.g. fan-in after a barrier).

Fault injection: an installed :class:`~repro.faults.plan.FaultPlan` is
consulted by :meth:`Fabric.transmit` for every message — dropped messages
are charged to the sender but never enqueued, duplicates are enqueued
twice (the copy trailing by one wire time), delays and link degradation
push the arrival time out.  ``post()`` is the raw test-level enqueue and
bypasses the plan.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.specs import ClusterSpec, InterconnectSpec
from repro.comm.constants import ANY_SOURCE, ANY_TAG
from repro.comm.payload import Payload
from repro.sim.timeline import Timeline
from repro.util.errors import CommunicationError, DeadlockError, ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan


@dataclass(frozen=True, slots=True)
class Message:
    """One message in flight (or delivered)."""

    src: int
    dst: int
    tag: int
    payload: Payload
    send_time: float
    arrival_time: float
    wire_duration: float = 0.0
    seq: int = field(compare=False, default=0)

    @property
    def nbytes(self) -> int:
        return self.payload.nbytes


class _Shard:
    """Per-rank fabric state: mailbox + NIC timelines + wait predicate.

    The mailbox is a dict of per-(source, tag) FIFO deques.  Every path
    that consumes a message pops the head of exactly one deque, so no
    tombstones or lazy deletion are needed; a deque emptied by its last
    pop has its key removed to keep wildcard scans proportional to the
    number of *active* (source, tag) pairs.
    """

    __slots__ = (
        "lock",
        "cv",
        "queues",
        "pending",
        "seq",
        "waiting_src",
        "waiting_tag",
        "egress",
        "ingress",
    )

    def __init__(self, rank: int) -> None:
        self.lock = threading.Lock()
        self.cv = threading.Condition(self.lock)
        self.queues: dict[tuple[int, int], deque[Message]] = {}
        self.pending = 0
        # Mailbox post order; assigned under this shard's lock, so it is a
        # total order over everything enqueued for this rank.
        self.seq = 0
        # Wait predicate of the (single) blocked receiver, if any.  Only
        # rank ``rank``'s own thread ever waits on this shard's cv.
        self.waiting_src: int | None = None
        self.waiting_tag: int | None = None
        # Per-rank NIC occupancy: a rank injects (egress) and absorbs
        # (ingress) at most one message's bytes at a time, so fan-in/out
        # traffic serializes at the endpoints (LogGP's per-byte gap G).
        # Egress is touched only under this shard's lock from the sender's
        # own thread; ingress only from the receiver's thread in match().
        self.egress = Timeline(f"nic{rank}.egress")
        self.ingress = Timeline(f"nic{rank}.ingress")


class Fabric:
    """Mailboxes + link model shared by every rank of one SPMD run."""

    def __init__(self, cluster: ClusterSpec, ranks_per_node: int = 1) -> None:
        if ranks_per_node <= 0:
            raise ValidationError(f"ranks_per_node must be > 0, got {ranks_per_node}")
        self.cluster = cluster
        self.ranks_per_node = ranks_per_node
        self.size = cluster.num_nodes * ranks_per_node
        self._shards = [_Shard(r) for r in range(self.size)]
        self._abort_exc: BaseException | None = None
        # Precomputed link lookup: rank→node array + node-pair table.  The
        # previous per-(src, dst) dict grew O(size²) entries and was
        # mutated without a lock from concurrent sender threads; these are
        # immutable after construction and O(num_nodes²) total.
        self._rank_node = [r // ranks_per_node for r in range(self.size)]
        self._node_links = [
            [cluster.link_between(a, b) for b in range(cluster.num_nodes)]
            for a in range(cluster.num_nodes)
        ]
        self.fault_plan: FaultPlan | None = None

    def install_faults(self, plan: "FaultPlan | None") -> None:
        """Install (or clear, with ``None``) the fault plan for this run."""
        self.fault_plan = plan

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` (ranks are packed node-major)."""
        if not 0 <= rank < self.size:
            raise ValidationError(f"rank {rank} out of range for size {self.size}")
        return rank // self.ranks_per_node

    def link(self, src: int, dst: int) -> InterconnectSpec:
        """The link class between two ranks (precomputed; called per message)."""
        return self._node_links[self._rank_node[src]][self._rank_node[dst]]

    def egress_timeline(self, rank: int) -> Timeline:
        """The rank's NIC injection timeline (observability hook)."""
        return self._shards[rank].egress

    def ingress_timeline(self, rank: int) -> Timeline:
        """The rank's NIC absorption timeline (observability hook)."""
        return self._shards[rank].ingress

    # ------------------------------------------------------------------
    # Mailbox internals (all called with the destination shard's lock held)
    # ------------------------------------------------------------------
    @staticmethod
    def _enqueue(shard: _Shard, msg: Message) -> None:
        """Append to the (src, tag) FIFO and wake a matching waiter."""
        object.__setattr__(msg, "seq", shard.seq)
        shard.seq += 1
        key = (msg.src, msg.tag)
        q = shard.queues.get(key)
        if q is None:
            q = deque()
            shard.queues[key] = q
        q.append(msg)
        shard.pending += 1
        wsrc = shard.waiting_src
        if wsrc is not None and (wsrc == ANY_SOURCE or wsrc == msg.src):
            wtag = shard.waiting_tag
            if wtag == ANY_TAG or wtag == msg.tag:
                shard.cv.notify()

    @staticmethod
    def _find(shard: _Shard, source: int, tag: int) -> tuple[int, int] | None:
        """Key of the deque whose head matches (source, tag), else ``None``.

        Specific (source, tag) is a single dict probe; a wildcard scans
        the active (source, tag) keys: per source the candidate is that
        source's earliest post (minimum mailbox seq among its matching
        heads), and among sources the winner has the minimum
        ``(arrival_time, src)`` — virtual time only, so the pick is
        independent of sender-thread interleaving.
        """
        queues = shard.queues
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (source, tag)
            return key if key in queues else None
        best_key: tuple[int, int] | None = None
        best_head: Message | None = None
        # Per-source FIFO head first (min seq), then earliest arrival.
        per_src: dict[int, Message] = {}
        per_src_key: dict[int, tuple[int, int]] = {}
        for key, q in queues.items():
            if source != ANY_SOURCE and key[0] != source:
                continue
            if tag != ANY_TAG and key[1] != tag:
                continue
            head = q[0]
            prev = per_src.get(key[0])
            if prev is None or head.seq < prev.seq:
                per_src[key[0]] = head
                per_src_key[key[0]] = key
        for src, head in per_src.items():
            if best_head is None or (head.arrival_time, src) < (
                best_head.arrival_time,
                best_head.src,
            ):
                best_head = head
                best_key = per_src_key[src]
        return best_key

    @staticmethod
    def _pop(shard: _Shard, key: tuple[int, int]) -> Message:
        """Consume the head of one (src, tag) FIFO (drop emptied keys)."""
        q = shard.queues[key]
        msg = q.popleft()
        if not q:
            del shard.queues[key]
        shard.pending -= 1
        return msg

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------
    def inject(self, src: int, ready: float, nbytes: float, link: InterconnectSpec) -> tuple[float, float]:
        """Occupy the sender's egress NIC; returns (wire_start, wire_duration).

        Called from the sender's own thread (its sends are program-ordered,
        so egress scheduling stays deterministic).
        """
        wire = nbytes / link.bandwidth
        shard = self._shards[src]
        with shard.lock:
            iv = shard.egress.schedule(ready, wire, "msg")
        return iv.start, wire

    def post(self, msg: Message) -> None:
        """Enqueue a message for its destination and wake its receiver."""
        shard = self._shards[msg.dst]
        with shard.lock:
            if self._abort_exc is not None:
                raise CommunicationError("fabric aborted") from self._abort_exc
            self._enqueue(shard, msg)

    def transmit(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: Payload,
        *,
        send_time: float,
        charged: float,
        link: InterconnectSpec,
    ) -> float:
        """Inject + enqueue for the hot path of :meth:`SimComm.send`.

        Egress scheduling runs under the sender's shard lock and the
        mailbox append under the receiver's, so two sends between disjoint
        rank pairs share no lock at all.

        With a fault plan installed, the plan is consulted here: link
        degradation stretches the wire time, extra delay pushes the
        arrival out, a duplicate enqueues a second copy trailing by one
        wire time (network-side duplication — the sender's NIC is charged
        once), and a dropped message is charged to the sender's egress but
        never enqueued.  The sender-side return value is always the
        arrival the message *would* have had, so sender traces stay
        comparable across plans.
        """
        if self._abort_exc is not None:
            raise CommunicationError("fabric aborted") from self._abort_exc
        wire = charged / link.bandwidth
        decision = None
        plan = self.fault_plan
        if plan is not None:
            # The plan keeps its own lock; its per-(src, dst) counters
            # advance in the sender's program order either way.
            decision = plan.decide(src, dst, tag, send_time)
            if decision.bandwidth_factor != 1.0:
                wire = wire / decision.bandwidth_factor
        src_shard = self._shards[src]
        with src_shard.lock:
            iv = src_shard.egress.schedule(send_time, wire, "msg")
        arrival = iv.start + link.latency + wire
        if decision is not None:
            arrival += decision.extra_latency + decision.extra_delay
            if decision.drop:
                return arrival
        self._deliver(
            src,
            dst,
            tag,
            payload,
            send_time=send_time,
            arrival=arrival,
            wire=wire,
            duplicate=decision is not None and decision.duplicate,
        )
        return arrival

    def _deliver(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: Payload,
        *,
        send_time: float,
        arrival: float,
        wire: float,
        duplicate: bool,
    ) -> None:
        """Enqueue one transmitted message (plus its optional duplicate).

        All virtual-time decisions (egress scheduling, fault verdicts, the
        arrival time itself) are made by the caller; this hook only appends
        to the destination mailbox.  The process backend's
        :class:`~repro.sim.procworker._BridgedFabric` overrides it to ship
        remote-rank messages across the worker boundary — both backends
        then funnel through :meth:`deliver_local` on the destination side,
        so the (src, tag) FIFO order and duplicate adjacency are identical.
        """
        self.deliver_local(
            src, dst, tag, payload, send_time=send_time, arrival=arrival,
            wire=wire, duplicate=duplicate,
        )

    def deliver_local(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: Payload,
        *,
        send_time: float,
        arrival: float,
        wire: float,
        duplicate: bool,
    ) -> None:
        """Append a message (and its duplicate) to a mailbox owned here.

        A duplicate is enqueued immediately after its original under one
        lock hold, so the pair's mailbox sequence numbers are adjacent —
        the dedup probing order the reliable layer relies on.
        """
        msg = Message(
            src=src,
            dst=dst,
            tag=tag,
            payload=payload,
            send_time=send_time,
            arrival_time=arrival,
            wire_duration=wire,
        )
        dst_shard = self._shards[dst]
        with dst_shard.lock:
            if self._abort_exc is not None:
                raise CommunicationError("fabric aborted") from self._abort_exc
            self._enqueue(dst_shard, msg)
            if duplicate:
                dup = Message(
                    src=src,
                    dst=dst,
                    tag=tag,
                    payload=payload,
                    send_time=send_time,
                    arrival_time=arrival + wire,
                    wire_duration=wire,
                )
                self._enqueue(dst_shard, dup)

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def match(
        self,
        dst: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Message:
        """Block until a message for ``dst`` matching (source, tag) arrives.

        Specific-source matching consumes the (source, tag) FIFO in post
        order, so two messages from the same source with the same tag are
        received in the order they were sent (MPI non-overtaking).  A
        wildcard (``ANY_SOURCE``) receive considers the per-source FIFO
        head of each candidate source and takes the one with the minimum
        ``(arrival_time, src)`` — a function of virtual time only, so the
        choice among queued messages is identical run-to-run no matter how
        the OS schedules sender threads.  ``timeout`` is a *wall-clock*
        watchdog (``None`` waits forever): exceeding it means the
        simulated program is deadlocked.

        While blocked, the receiver's (source, tag) predicate is
        registered on its shard so senders wake it only for messages that
        can actually match.
        """
        shard = self._shards[dst]
        with shard.lock:
            while True:
                if self._abort_exc is not None:
                    raise CommunicationError("fabric aborted") from self._abort_exc
                key = self._find(shard, source, tag)
                if key is not None:
                    msg = self._pop(shard, key)
                    # Absorb the bytes through the receiver's ingress NIC:
                    # concurrent inbound streams serialize here.  Matching
                    # order is the receiver's program order, so this stays
                    # deterministic for specific-source receives.
                    if msg.wire_duration > 0:
                        iv = shard.ingress.schedule(
                            msg.arrival_time - msg.wire_duration, msg.wire_duration, "msg"
                        )
                        object.__setattr__(msg, "arrival_time", iv.end)
                    return msg
                shard.waiting_src = source
                shard.waiting_tag = tag
                try:
                    notified = shard.cv.wait(timeout=timeout)
                finally:
                    shard.waiting_src = None
                    shard.waiting_tag = None
                if not notified:
                    src_desc = "ANY_SOURCE" if source == ANY_SOURCE else str(source)
                    tag_desc = "ANY_TAG" if tag == ANY_TAG else str(tag)
                    raise DeadlockError(
                        f"rank {dst} waited {timeout:g}s (wall clock) for a message "
                        f"from source={src_desc} tag={tag_desc}; "
                        f"{shard.pending} unmatched message(s) queued for this rank; "
                        f"simulated program is deadlocked"
                    )

    def probe(self, dst: int, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check whether a matching message is queued.

        O(1) for a specific (source, tag).  Raises
        :class:`CommunicationError` once the fabric is aborted, so a
        ``Request.test()`` polling loop fails fast after a sibling rank
        dies instead of spinning forever on ``False``.
        """
        shard = self._shards[dst]
        with shard.lock:
            if self._abort_exc is not None:
                raise CommunicationError("fabric aborted") from self._abort_exc
            return self._find(shard, source, tag) is not None

    def pending_count(self, dst: int) -> int:
        """Number of undelivered messages queued for ``dst`` (test hook)."""
        shard = self._shards[dst]
        with shard.lock:
            return shard.pending

    def abort(self, exc: BaseException) -> None:
        """Poison the fabric: wake every blocked receiver with an error.

        Called by the SPMD engine when one rank raises, so sibling ranks
        blocked in ``recv`` fail fast instead of hanging until the
        watchdog.  Wakeups here are deliberately untargeted — every shard
        is notified regardless of its wait predicate.
        """
        if self._abort_exc is None:
            self._abort_exc = exc
        for shard in self._shards:
            with shard.lock:
                shard.cv.notify_all()
