"""Wildcard and sentinel rank/tag values (MPI-compatible meanings)."""

ANY_SOURCE = -1
"""Match a message from any source rank."""

ANY_TAG = -1
"""Match a message with any tag."""

PROC_NULL = -2
"""A null peer: sends/recvs involving it complete immediately as no-ops.

Returned by :meth:`repro.comm.cart.CartComm.shift` at non-periodic grid
borders, exactly like ``MPI_PROC_NULL``.
"""

COLLECTIVE_TAG_BASE = 1 << 24
"""Tags at or above this value are reserved for internal collectives."""

MAX_USER_TAG = COLLECTIVE_TAG_BASE - 1
"""Largest tag a user message may carry."""

RELIABLE_SEQ_SLOTS = 4096
"""Sequence-number slots per reliable stream (seq is encoded mod this)."""

RELIABLE_DATA_BASE = 1 << 44
"""Reliable-layer DATA tags: ``base + orig_tag * SLOTS + seq % SLOTS``.

Any original tag (user or collective) times the slot count stays far below
``RELIABLE_ACK_BASE``, so the three tag spaces never collide.
"""

RELIABLE_ACK_BASE = 1 << 45
"""Reliable-layer ACK tags (same encoding as DATA, different base).

Tags at or above this value are header-only protocol control messages;
:meth:`repro.faults.plan.FaultPlan.decide` exempts them from message-fault
rules (a dropped ack in a real stop-and-wait protocol just causes a
retransmit that the receiver dedups — behaviour the duplicate fault
already exercises — so modelling ack loss separately would only double
the protocol's state machine, not its observable behaviour).
"""
