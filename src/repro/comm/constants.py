"""Wildcard and sentinel rank/tag values (MPI-compatible meanings)."""

ANY_SOURCE = -1
"""Match a message from any source rank."""

ANY_TAG = -1
"""Match a message with any tag."""

PROC_NULL = -2
"""A null peer: sends/recvs involving it complete immediately as no-ops.

Returned by :meth:`repro.comm.cart.CartComm.shift` at non-periodic grid
borders, exactly like ``MPI_PROC_NULL``.
"""

COLLECTIVE_TAG_BASE = 1 << 24
"""Tags at or above this value are reserved for internal collectives."""

MAX_USER_TAG = COLLECTIVE_TAG_BASE - 1
"""Largest tag a user message may carry."""
