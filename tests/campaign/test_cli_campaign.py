"""`repro campaign ...` and `repro submit --batch` end to end."""

import json

import pytest

from repro.cli import main
from repro.serve import JobServer

CAMPAIGN_DOC = {
    "name": "cli",
    "axes": {
        "app": ["heat3d"],
        "preset": "laptop",
        "mix": "cpu",
        "nodes": [1, 2],
        "seed": [0],
    },
    "app_params": {"heat3d": {"functional_shape": [8, 8, 8], "simulated_steps": 2}},
    "backend": None,
}


@pytest.fixture
def campaign_file(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(CAMPAIGN_DOC), encoding="utf-8")
    return path


def test_campaign_run_status_report(capsys, tmp_path, campaign_file):
    store = tmp_path / "store"
    out_doc = tmp_path / "run.json"

    assert main(["campaign", "status", str(campaign_file), "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "2 point(s), 0 stored, 2 to run" in out

    args = ["campaign", "run", str(campaign_file), "--store", str(store),
            "--out", str(out_doc)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "executed=2" in out and "| app" in out

    doc = json.loads(out_doc.read_text())
    assert doc["campaign"] == "cli" and len(doc["rows"]) == 2
    assert all(r["state"] == "done" for r in doc["rows"])

    # warm re-run: the store answers everything
    assert main(args) == 0
    assert "executed=0" in capsys.readouterr().out

    assert main(["campaign", "status", str(campaign_file), "--store", str(store)]) == 0
    assert "0 to run" in capsys.readouterr().out

    assert main(["campaign", "report", str(out_doc)]) == 0
    out = capsys.readouterr().out
    assert "mean speedup" in out and "campaign 'cli'" in out


def test_campaign_run_store_none(capsys, tmp_path, campaign_file):
    assert main(["campaign", "run", str(campaign_file), "--store", "none"]) == 0
    assert "executed=2" in capsys.readouterr().out


def test_campaign_rejects_bad_spec(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"name": "x", "axes": {"nope": [1]}}), encoding="utf-8")
    with pytest.raises(SystemExit, match="invalid campaign"):
        main(["campaign", "run", str(bad), "--store", "none"])


def test_submit_batch_cli(capsys, tmp_path, monkeypatch):
    batch = tmp_path / "jobs.json"
    spec = {"app": "heat3d", "nodes": 2, "mix": "cpu", "preset": "laptop",
            "params": {"functional_shape": [8, 8, 8], "simulated_steps": 2}}
    batch.write_text(json.dumps([spec, {"app": "bogus"}]), encoding="utf-8")
    with JobServer(port=0, rank_budget=8) as server:
        monkeypatch.setenv("REPRO_SERVE_URL", server.url)
        assert main(["submit", "--batch", str(batch)]) == 0
    out = capsys.readouterr().out
    assert "1 accepted, 1 rejected" in out
    assert "bad job spec" in out and "1 done" in out


def test_submit_batch_flag_conflicts(tmp_path):
    with pytest.raises(SystemExit, match="not both"):
        main(["submit", "heat3d", "--batch", str(tmp_path / "x.json")])
    with pytest.raises(SystemExit, match="needs an app"):
        main(["submit"])
