"""Campaign spec expansion: deterministic, canonical, validated up front."""

import json

import pytest

from repro.campaign import AXES, CampaignSpec, resolve_campaign_backend
from repro.util.errors import ValidationError


def _doc(**over):
    doc = {
        "name": "t",
        "axes": {
            "app": ["heat3d", "kmeans"],
            "preset": ["laptop"],
            "mix": ["cpu"],
            "nodes": [1, 2],
            "seed": [0, 1],
        },
        "backend": None,
    }
    doc.update(over)
    return doc


def test_product_expansion_counts_and_order():
    spec = CampaignSpec.from_dict(_doc())
    points = spec.expand()
    assert len(points) == spec.n_points() == 2 * 2 * 2
    # AXES order: app is the outermost axis, seed the innermost
    assert [p.app for p in points] == ["heat3d"] * 4 + ["kmeans"] * 4
    assert [p.params["seed"] for p in points] == [0, 1] * 4
    assert [p.nodes for p in points] == [1, 1, 2, 2] * 2


def test_expansion_is_deterministic():
    a = CampaignSpec.from_dict(_doc()).expand()
    b = CampaignSpec.from_dict(json.loads(json.dumps(_doc()))).expand()
    assert [p.content_hash() for p in a] == [p.content_hash() for p in b]


def test_scalar_axis_values_are_single_points():
    spec = CampaignSpec.from_dict(_doc(axes={"app": "heat3d", "preset": "laptop", "mix": "cpu"}))
    points = spec.expand()
    assert len(points) == 1 and points[0].app == "heat3d"


def test_per_app_overrides_layer_over_globals():
    spec = CampaignSpec.from_dict(
        _doc(
            params={"seed": 9},
            app_params={"kmeans": {"iterations": 3}, "heat3d": {"simulated_steps": 2}},
            options={"reliable": True},
            app_options={"heat3d": {"overlap": False}},
        )
    )
    by_app = {}
    for p in spec.expand():
        by_app.setdefault(p.app, p)
    assert by_app["heat3d"].params["simulated_steps"] == 2
    assert "iterations" not in by_app["heat3d"].params
    assert by_app["kmeans"].params["iterations"] == 3
    assert by_app["kmeans"].params["seed"] == 0  # the seed axis wins over globals
    assert by_app["heat3d"].options["overlap"] is False
    assert by_app["heat3d"].options["reliable"] is True
    assert by_app["kmeans"].options == {"reliable": True}


def test_fault_plan_axis_and_explicit_points():
    plan = {"seed": 7}
    extra = {"app": "heat3d", "nodes": 4, "preset": "laptop", "mix": "cpu"}
    spec = CampaignSpec.from_dict(
        _doc(axes={"app": ["heat3d"], "preset": "laptop", "mix": "cpu",
                   "fault_plan": [None, plan]},
             points=[extra])
    )
    points = spec.expand()
    assert len(points) == 3
    assert points[0].fault_plan is None and points[1].fault_plan is not None
    assert points[2].nodes == 4  # the explicit point rides along


def test_seed_axis_writes_params_without_clobbering_none():
    spec = CampaignSpec.from_dict(
        _doc(axes={"app": ["heat3d"], "preset": "laptop", "mix": "cpu"},
             params={"seed": 42})
    )
    # no seed axis -> the global param stays
    assert spec.expand()[0].params["seed"] == 42


def test_validation_errors():
    with pytest.raises(ValidationError, match="unknown campaign axes"):
        CampaignSpec.from_dict(_doc(axes={"app": ["heat3d"], "bogus": [1]}))
    with pytest.raises(ValidationError, match="'app' axis"):
        CampaignSpec.from_dict(_doc(axes={"nodes": [1]}))
    with pytest.raises(ValidationError, match="duplicate"):
        CampaignSpec.from_dict(_doc(axes={"app": ["heat3d", "heat3d"]}))
    with pytest.raises(ValidationError, match="must not be empty"):
        CampaignSpec.from_dict(_doc(axes={"app": ["heat3d"], "nodes": []}))
    with pytest.raises(ValidationError, match="unknown campaign fields"):
        CampaignSpec.from_dict(_doc(zap=1))
    with pytest.raises(ValidationError, match="outside the 'app' axis"):
        CampaignSpec.from_dict(_doc(app_params={"sobel": {}}))
    with pytest.raises(ValidationError, match="requires 'name'"):
        CampaignSpec.from_dict({"axes": {"app": ["heat3d"]}})


def test_invalid_point_names_its_coordinates():
    doc = _doc(axes={"app": ["heat3d"], "preset": "laptop", "mix": "cpu"},
               params={"bogus_param": 1})
    with pytest.raises(ValidationError, match=r"app=heat3d.*mix=cpu.*bogus_param"):
        CampaignSpec.from_dict(doc).expand()


def test_roundtrip_and_load(tmp_path):
    spec = CampaignSpec.from_dict(_doc())
    again = CampaignSpec.from_dict(spec.to_dict())
    assert [p.content_hash() for p in again.expand()] == [
        p.content_hash() for p in spec.expand()
    ]
    path = tmp_path / "c.json"
    path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
    assert CampaignSpec.load(path).name == spec.name
    with pytest.raises(ValidationError, match="not valid JSON"):
        (tmp_path / "bad.json").write_text("{", encoding="utf-8")
        CampaignSpec.load(tmp_path / "bad.json")
    with pytest.raises(ValidationError, match="cannot read"):
        CampaignSpec.load(tmp_path / "missing.json")


def test_auto_backend_resolution(monkeypatch):
    import repro.campaign.spec as cspec

    monkeypatch.setattr(cspec.os, "cpu_count", lambda: 8)
    assert resolve_campaign_backend("auto") == "processes"
    monkeypatch.setattr(cspec.os, "cpu_count", lambda: 1)
    assert resolve_campaign_backend("auto") is None
    assert resolve_campaign_backend("threads") == "threads"
    assert resolve_campaign_backend(None) is None


def test_backend_never_enters_content_hash():
    base = _doc()
    threads = CampaignSpec.from_dict({**base, "backend": "threads"}).expand()
    none = CampaignSpec.from_dict({**base, "backend": None}).expand()
    assert [p.content_hash() for p in threads] == [p.content_hash() for p in none]


def test_axes_constant_matches_defaults():
    # every non-app axis must have a default, or omitting it would KeyError
    from repro.campaign.spec import _AXIS_DEFAULTS

    assert set(AXES) - {"app"} == set(_AXIS_DEFAULTS)
