"""Campaign execution: throughput plumbing, persistence, and reports.

The acceptance spine: a campaign's makespans are bit-identical to direct
``execute_job`` runs, and an immediately repeated campaign over the same
store completes with **zero** executions.
"""

import threading

import pytest

from repro.campaign import CampaignSpec, CampaignRunner, render_report
from repro.campaign.runner import RUN_TABLE_COLUMNS, prewarm_datasets, throughput_order
from repro.serve import JobServer, JobSpec, ServeClient, execute_job
from repro.util.errors import ValidationError


def _campaign(**over):
    doc = {
        "name": "t",
        "axes": {
            "app": ["heat3d", "kmeans"],
            "preset": "laptop",
            "mix": "cpu",
            "nodes": [1, 2],
            "seed": [0],
        },
        "app_params": {
            "heat3d": {"functional_shape": [8, 8, 8], "simulated_steps": 2},
            "kmeans": {"functional_points": 64, "n_points": 2000, "iterations": 2},
        },
        "backend": None,
    }
    doc.update(over)
    return CampaignSpec.from_dict(doc)


class CountingExecutor:
    """Real execution, counted (and optionally delayed) per call."""

    def __init__(self) -> None:
        self.calls: list[str] = []
        self._lock = threading.Lock()

    def __call__(self, spec: JobSpec) -> dict:
        with self._lock:
            self.calls.append(spec.content_hash())
        return execute_job(spec)


def test_local_run_table_schema_and_exactness(tmp_path):
    campaign = _campaign()
    executor = CountingExecutor()
    result = CampaignRunner(
        campaign, store=tmp_path, executor=executor, rank_budget=8
    ).run()
    assert result.ok and len(result.rows) == 4
    for row in result.rows:
        for col in RUN_TABLE_COLUMNS:
            assert col in row, f"run-table row missing {col!r}"
    # bit-identical to direct execution, point by point
    for spec, row in zip(campaign.expand(), result.rows):
        direct = execute_job(spec)
        assert repr(row["makespan"]) == repr(direct["makespan"])
        assert repr(row["speedup"]) == repr(direct["speedup"])
    stats = result.stats
    assert stats["executed"] == 4 and stats["points"] == 4
    assert stats["mode"] == "local" and stats["wall_s"] > 0


def test_warm_rerun_executes_nothing(tmp_path):
    campaign = _campaign()
    first = CountingExecutor()
    CampaignRunner(campaign, store=tmp_path, executor=first).run()
    assert len(first.calls) == 4
    second = CountingExecutor()
    warm = CampaignRunner(campaign, store=tmp_path, executor=second).run()
    assert warm.ok
    assert second.calls == []  # the whole sweep answered from disk
    assert warm.stats["executed"] == 0
    assert warm.stats["store_hits"] == 4
    assert all(row["cached"] for row in warm.rows)


def test_extended_campaign_executes_only_new_points(tmp_path):
    CampaignRunner(_campaign(), store=tmp_path, executor=CountingExecutor()).run()
    bigger = _campaign()
    bigger = CampaignSpec.from_dict({**bigger.to_dict(), "axes": {
        **{k: list(v) for k, v in bigger.axes.items()}, "nodes": [1, 2, 4]}})
    executor = CountingExecutor()
    result = CampaignRunner(bigger, store=tmp_path, executor=executor).run()
    assert result.ok and len(result.rows) == 6
    assert len(executor.calls) == 2  # only the nodes=4 points are new


def test_duplicate_points_execute_once(tmp_path):
    campaign = _campaign()
    dup = campaign.expand()[0].to_dict()
    campaign = CampaignSpec.from_dict({**campaign.to_dict(), "points": [dup]})
    executor = CountingExecutor()
    result = CampaignRunner(campaign, executor=executor).run()
    assert len(result.rows) == 5 and result.ok
    assert len(executor.calls) == 4  # the duplicate rode the first execution
    assert result.stats["deduplicated"] == 1
    a, b = result.rows[0], result.rows[4]
    assert a["spec_hash"] == b["spec_hash"]
    assert repr(a["makespan"]) == repr(b["makespan"])


def test_throughput_order_widest_first():
    specs = _campaign().expand()
    order = throughput_order(specs)
    ranks = [specs[i].ranks for i in order]
    assert ranks == sorted(ranks, reverse=True)
    # ties keep expansion order (stable)
    ties = [i for i in order if specs[i].ranks == ranks[-1]]
    assert ties == sorted(ties)


def test_prewarm_counts_distinct_kmeans_datasets():
    specs = _campaign().expand()
    assert prewarm_datasets(specs) == 1  # one (points, k, dims, seed) combo
    assert prewarm_datasets([s for s in specs if s.app == "heat3d"]) == 0


def test_failed_points_reported_not_fatal(tmp_path):
    def executor(spec):
        if spec.app == "kmeans":
            raise RuntimeError("boom")
        return execute_job(spec)

    result = CampaignRunner(_campaign(), store=tmp_path, executor=executor).run()
    assert not result.ok
    failed = result.failures()
    assert {r["app"] for r in failed} == {"kmeans"}
    assert all("boom" in r["error"] for r in failed)
    done = [r for r in result.rows if r["state"] == "done"]
    assert {r["app"] for r in done} == {"heat3d"}


def test_empty_campaign_rejected():
    campaign = _campaign()
    with pytest.raises(ValidationError, match="expands to no points"):
        # n_points >= 1 by construction, so fake an empty expansion
        runner = CampaignRunner(campaign)
        runner.campaign = CampaignSpec.from_dict(campaign.to_dict())
        object.__setattr__(runner.campaign, "axes", {"app": ()})
        runner.run()


def test_remote_run_via_batch_endpoint(tmp_path):
    campaign = _campaign()
    executor = CountingExecutor()
    with JobServer(port=0, executor=executor, store_dir=tmp_path) as server:
        result = CampaignRunner(campaign, client=ServeClient(server.url)).run()
    assert result.ok and result.stats["mode"] == "remote"
    assert result.stats["executed"] == 4 == len(executor.calls)
    # a second server over the same store: cold LRU, zero executions
    second = CountingExecutor()
    with JobServer(port=0, executor=second, store_dir=tmp_path) as server:
        warm = CampaignRunner(campaign, client=ServeClient(server.url)).run()
    assert warm.ok and second.calls == []
    assert warm.stats["executed"] == 0 and warm.stats["store_hits"] == 4
    # remote and local agree bit-for-bit
    for spec, row in zip(campaign.expand(), warm.rows):
        assert repr(row["makespan"]) == repr(execute_job(spec)["makespan"])


def test_status_probes_store_without_executing(tmp_path):
    campaign = _campaign()
    runner = CampaignRunner(campaign, store=tmp_path, executor=CountingExecutor())
    before = runner.status()
    assert before["points"] == 4 and before["stored"] == 0
    runner.run()
    after = runner.status()
    assert after["stored"] == 4 and after["missing"] == 0


def test_render_report_shapes(tmp_path):
    campaign = _campaign()
    result = CampaignRunner(campaign, store=tmp_path, executor=CountingExecutor()).run()
    text = render_report(result.to_dict())
    assert "campaign 't'" in text
    assert "mean speedup" in text
    assert "speedup vs nodes" in text  # two node counts -> scaling curves
    assert "| app" in text  # the run table itself
