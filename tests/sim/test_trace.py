"""Event tracing."""

from repro.sim.trace import Trace, TraceEvent, merge_traces, overlap_seconds


def test_record_and_iterate():
    tr = Trace(rank=1)
    tr.record("compute", "k1", 0.0, 2.0, {"elems": 10})
    tr.record("comm", "send->2", 1.0, 1.5)
    assert len(tr) == 2
    assert tr.events[0].meta["elems"] == 10
    assert tr.events[0].duration == 2.0


def test_disabled_trace_records_nothing():
    tr = Trace(rank=0, enabled=False)
    tr.record("compute", "x", 0, 1)
    tr.count("n")
    tr.gauge("g", 1.0)
    assert len(tr) == 0
    assert tr.counters == {}
    assert tr.gauges == {}


def test_disabled_record_is_allocation_free():
    # The disabled hot path must not build a kwargs dict per call: record
    # takes meta as a positional-or-keyword dict, never **kwargs.
    import inspect

    spec = inspect.getfullargspec(Trace.record)
    assert spec.varkw is None
    assert "meta" in spec.args
    # meta defaults to None so callers pass nothing on the common path.
    assert spec.defaults == (None,)


def test_default_meta_is_shared_and_empty():
    tr = Trace(0)
    tr.record("compute", "a", 0, 1)
    tr.record("compute", "b", 1, 2)
    assert tr.events[0].meta == {}
    # A single shared sentinel dict, not one allocation per event.
    assert tr.events[0].meta is tr.events[1].meta


def test_counters_and_gauges():
    tr = Trace(0)
    tr.count("msgs")
    tr.count("msgs")
    tr.count("bytes", 128.0)
    tr.gauge("imbalance", 0.5)
    tr.gauge("imbalance", 0.25)  # latest wins
    assert tr.counters == {"msgs": 2.0, "bytes": 128.0}
    assert tr.gauges == {"imbalance": 0.25}


def test_by_category_sums_durations():
    tr = Trace(0)
    tr.record("compute", "k", 0.0, 2.0)
    tr.record("compute", "k2", 2.0, 2.5)
    tr.record("comm", "send->1", 0.0, 1.0)
    assert tr.by_category() == {"compute": 2.5, "comm": 1.0}
    assert Trace(1).by_category() == {}


def test_filter_by_category_and_prefix():
    tr = Trace(0)
    tr.record("compute", "IR:local", 0, 1)
    tr.record("compute", "IR:cross", 1, 2)
    tr.record("comm", "IR:exchange", 0, 1)
    assert len(tr.filter(category="compute")) == 2
    assert len(tr.filter(label_prefix="IR:local")) == 1
    assert len(tr.filter(category="comm", label_prefix="IR:")) == 1


def test_span_and_total():
    tr = Trace(0)
    assert tr.span() == (0.0, 0.0)
    tr.record("a", "x", 1.0, 2.0)
    tr.record("b", "y", 0.5, 3.0)
    assert tr.span() == (0.5, 3.0)
    assert tr.total("a") == 1.0
    assert tr.total("b") == 2.5
    assert tr.total("nothing") == 0.0


def test_overlap_seconds():
    a = TraceEvent(0, "c", "a", 0.0, 2.0)
    b = TraceEvent(0, "c", "b", 1.0, 3.0)
    c = TraceEvent(0, "c", "c", 5.0, 6.0)
    assert overlap_seconds(a, b) == 1.0
    assert overlap_seconds(a, c) == 0.0
    assert overlap_seconds(a, a) == 2.0


def test_merge_traces_sorted():
    t0, t1 = Trace(0), Trace(1)
    t0.record("c", "later", 5, 6)
    t1.record("c", "earlier", 1, 2)
    merged = merge_traces([t0, t1])
    assert [e.label for e in merged] == ["earlier", "later"]
