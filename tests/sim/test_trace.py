"""Event tracing."""

from repro.sim.trace import Trace, TraceEvent, merge_traces, overlap_seconds


def test_record_and_iterate():
    tr = Trace(rank=1)
    tr.record("compute", "k1", 0.0, 2.0, elems=10)
    tr.record("comm", "send->2", 1.0, 1.5)
    assert len(tr) == 2
    assert tr.events[0].meta["elems"] == 10
    assert tr.events[0].duration == 2.0


def test_disabled_trace_records_nothing():
    tr = Trace(rank=0, enabled=False)
    tr.record("compute", "x", 0, 1)
    assert len(tr) == 0


def test_filter_by_category_and_prefix():
    tr = Trace(0)
    tr.record("compute", "IR:local", 0, 1)
    tr.record("compute", "IR:cross", 1, 2)
    tr.record("comm", "IR:exchange", 0, 1)
    assert len(tr.filter(category="compute")) == 2
    assert len(tr.filter(label_prefix="IR:local")) == 1
    assert len(tr.filter(category="comm", label_prefix="IR:")) == 1


def test_span_and_total():
    tr = Trace(0)
    assert tr.span() == (0.0, 0.0)
    tr.record("a", "x", 1.0, 2.0)
    tr.record("b", "y", 0.5, 3.0)
    assert tr.span() == (0.5, 3.0)
    assert tr.total("a") == 1.0
    assert tr.total("b") == 2.5
    assert tr.total("nothing") == 0.0


def test_overlap_seconds():
    a = TraceEvent(0, "c", "a", 0.0, 2.0)
    b = TraceEvent(0, "c", "b", 1.0, 3.0)
    c = TraceEvent(0, "c", "c", 5.0, 6.0)
    assert overlap_seconds(a, b) == 1.0
    assert overlap_seconds(a, c) == 0.0
    assert overlap_seconds(a, a) == 2.0


def test_merge_traces_sorted():
    t0, t1 = Trace(0), Trace(1)
    t0.record("c", "later", 5, 6)
    t1.record("c", "earlier", 1, 2)
    merged = merge_traces([t0, t1])
    assert [e.label for e in merged] == ["earlier", "later"]
