"""The process-wide rank-thread pool behind :func:`spmd_run`.

Covers the lifecycle guarantees the engine relies on: workers are reused
across runs (no per-run spawn storm), a worker stuck inside a task is
never recycled (wedged ranks get abandoned, not reused), idle workers can
be drained, and the deadlock watchdog leaves the pool healthy for the
next run.
"""

import threading
import time

import pytest

from repro.cluster.presets import laptop_cluster
from repro.sim.engine import _RankThreadPool, rank_pool_stats, spmd_run
from repro.util.errors import DeadlockError


def _wait_until(pred, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not pred():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.001)


def test_workers_are_reused_across_runs():
    cluster = laptop_cluster(num_nodes=2)

    def prog(ctx):
        ctx.comm.barrier()
        return ctx.rank

    spmd_run(prog, cluster, ranks_per_node=2)  # warm the pool
    spawned_before = rank_pool_stats()["spawned"]
    for _ in range(3):
        res = spmd_run(prog, cluster, ranks_per_node=2)
    assert res.values == [0, 1, 2, 3]
    stats = rank_pool_stats()
    assert stats["spawned"] == spawned_before  # warm runs spawn nothing new
    assert stats["idle"] >= 1


def test_busy_worker_is_not_recycled_until_task_returns():
    pool = _RankThreadPool()
    release = threading.Event()
    pool.submit(release.wait)
    _wait_until(lambda: pool.stats()["spawned"] == 1)
    assert pool.stats()["idle"] == 0
    # A second task while the first is wedged must spawn a new worker.
    done = threading.Event()
    pool.submit(done.set)
    assert done.wait(5.0)
    assert pool.stats()["spawned"] == 2
    release.set()
    _wait_until(lambda: pool.stats()["idle"] == 2)
    pool.drain()


def test_drain_shuts_down_idle_workers():
    pool = _RankThreadPool()
    done = threading.Event()
    pool.submit(done.set)
    assert done.wait(5.0)
    _wait_until(lambda: pool.stats()["idle"] == 1)
    pool.drain()
    assert pool.stats() == {"spawned": 1, "idle": 0}
    # The pool still works after a drain: it simply spawns fresh workers.
    again = threading.Event()
    pool.submit(again.set)
    assert again.wait(5.0)
    _wait_until(lambda: pool.stats()["idle"] == 1)
    pool.drain()


def test_watchdog_abandons_wedged_rank_and_pool_recovers():
    cluster = laptop_cluster(num_nodes=2)
    release = threading.Event()

    def wedged(ctx):
        if ctx.rank == 0:
            release.wait()  # ignores the fabric abort: stays wedged
        return ctx.rank

    with pytest.raises(DeadlockError):
        spmd_run(wedged, cluster, ranks_per_node=1, wall_timeout=0.3)

    # The abandoned worker must not be handed the next run's rank.
    def prog(ctx):
        ctx.comm.barrier()
        return ctx.rank

    res = spmd_run(prog, cluster, ranks_per_node=2)
    assert res.values == [0, 1, 2, 3]
    release.set()  # let the abandoned daemon thread finish quietly
