"""Busy-interval timeline (list scheduling substrate)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.timeline import Timeline
from repro.util.errors import ValidationError


def test_schedule_at_ready_time_when_free():
    tl = Timeline("t")
    iv = tl.schedule(2.0, 1.0, "a")
    assert (iv.start, iv.end) == (2.0, 3.0)
    assert tl.available_at == 3.0


def test_schedule_queues_when_busy():
    tl = Timeline("t")
    tl.schedule(0.0, 5.0)
    iv = tl.schedule(1.0, 1.0)  # ready at 1 but resource busy until 5
    assert iv.start == 5.0
    assert iv.end == 6.0


def test_busy_and_idle_accounting():
    tl = Timeline("t")
    tl.schedule(0.0, 2.0)
    tl.schedule(5.0, 1.0)  # 3s idle gap
    assert tl.busy_time == pytest.approx(3.0)
    assert tl.idle_time() == pytest.approx(3.0)
    assert tl.utilization() == pytest.approx(0.5)


def test_utilization_empty():
    assert Timeline("t").utilization() == 0.0


def test_start_offset():
    tl = Timeline("t", start=10.0)
    iv = tl.schedule(0.0, 1.0)
    assert iv.start == 10.0


def test_validation():
    tl = Timeline("t")
    with pytest.raises(ValidationError):
        tl.schedule(0.0, -1.0)
    with pytest.raises(ValidationError):
        tl.schedule(-1.0, 1.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=10, allow_nan=False),
        ),
        max_size=40,
    )
)
def test_intervals_never_overlap(items):
    tl = Timeline("t")
    for ready, dur in items:
        tl.schedule(ready, dur)
    intervals = tl.intervals
    for a, b in zip(intervals, intervals[1:]):
        assert b.start >= a.end
    assert tl.busy_time == pytest.approx(sum(iv.duration for iv in intervals))
