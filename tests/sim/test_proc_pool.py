"""Unit tests for SPMD backend selection and the worker-pool surface."""

import pytest

from repro.sim import BACKENDS, process_pool_stats, rank_pool_stats, resolve_backend
from repro.util.errors import ValidationError


def test_backends_tuple():
    assert BACKENDS == ("threads", "processes")


def test_resolve_backend_default_is_threads(monkeypatch):
    monkeypatch.delenv("REPRO_SPMD_BACKEND", raising=False)
    assert resolve_backend(None) == "threads"


def test_resolve_backend_env(monkeypatch):
    monkeypatch.setenv("REPRO_SPMD_BACKEND", "processes")
    assert resolve_backend(None) == "processes"
    # An explicit argument beats the environment.
    assert resolve_backend("threads") == "threads"


def test_resolve_backend_rejects_unknown(monkeypatch):
    with pytest.raises(ValidationError, match="unknown SPMD backend"):
        resolve_backend("fibers")
    monkeypatch.setenv("REPRO_SPMD_BACKEND", "bogus")
    with pytest.raises(ValidationError, match="unknown SPMD backend"):
        resolve_backend(None)


def test_pool_stats_shapes():
    rp = rank_pool_stats()
    assert set(rp) == {"spawned", "idle"}
    pp = process_pool_stats()
    assert set(pp) == {"workers", "spawned", "abandoned", "runs"}
    assert all(isinstance(v, int) for v in pp.values())
