"""Virtual clock semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.clock import VirtualClock
from repro.util.errors import ValidationError


def test_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_custom_start():
    assert VirtualClock(5.0).now == 5.0
    with pytest.raises(ValidationError):
        VirtualClock(-1.0)


def test_advance_accumulates():
    clock = VirtualClock()
    assert clock.advance(1.5) == 1.5
    assert clock.advance(0.5) == 2.0
    assert clock.now == 2.0


def test_advance_rejects_negative():
    with pytest.raises(ValidationError):
        VirtualClock().advance(-1e-9)


def test_advance_to_only_moves_forward():
    clock = VirtualClock()
    clock.advance_to(3.0)
    assert clock.now == 3.0
    clock.advance_to(1.0)  # in the past: no-op
    assert clock.now == 3.0


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50))
def test_monotonicity_under_mixed_operations(durations):
    clock = VirtualClock()
    last = 0.0
    for i, d in enumerate(durations):
        if i % 2 == 0:
            clock.advance(d)
        else:
            clock.advance_to(d)
        assert clock.now >= last
        last = clock.now
