"""Concurrent ``spmd_run`` invocations from one process.

The job server runs many sims at once off the shared warm pools, so the
engine must be re-entrant: interleaved runs get independent fabrics and
clocks, produce makespans bit-identical to sequential execution, and the
active-run accounting returns to zero.
"""

import threading

import numpy as np

from repro.cluster.presets import laptop_cluster
from repro.sim.engine import active_run_stats, spmd_run

_gate = threading.Event()


def _ring(ctx, seed):
    data = np.full(256, float(ctx.rank + seed))
    ctx.comm.send(data, (ctx.rank + 1) % ctx.size, tag=3)
    got = ctx.comm.recv(source=(ctx.rank - 1) % ctx.size, tag=3)
    return float(np.asarray(got).sum()) + seed


def _gated_ring(ctx, seed):
    assert _gate.wait(10.0)
    return _ring(ctx, seed)


def _run(seed, backend, results, idx):
    cluster = laptop_cluster(num_nodes=2)
    kwargs = {"workers": 2} if backend == "processes" else {}
    results[idx] = spmd_run(
        _ring, cluster, ranks_per_node=2, args=(seed,), backend=backend, **kwargs
    )


def _assert_interleaved_matches_sequential(backends):
    sequential = {}
    for seed, backend in zip((3, 11), backends):
        holder = [None]
        _run(seed, backend, holder, 0)
        sequential[seed] = holder[0]

    results = [None, None]
    threads = [
        threading.Thread(target=_run, args=(seed, backend, results, idx))
        for idx, (seed, backend) in enumerate(zip((3, 11), backends))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60.0)
        assert not t.is_alive()

    for idx, seed in enumerate((3, 11)):
        expected = sequential[seed]
        assert results[idx].values == expected.values
        assert results[idx].times == expected.times
        assert repr(results[idx].makespan) == repr(expected.makespan)
    assert active_run_stats() == {"active_runs": 0, "active_ranks": 0}


def test_interleaved_thread_backend_runs_are_bit_identical():
    _assert_interleaved_matches_sequential(("threads", "threads"))


def test_interleaved_process_backend_runs_are_bit_identical():
    # The worker pool serializes process-backend runs under its lock; both
    # callers must still complete correctly, just one after the other.
    _assert_interleaved_matches_sequential(("processes", "processes"))


def test_mixed_backends_interleave():
    _assert_interleaved_matches_sequential(("threads", "processes"))


def test_active_run_accounting_tracks_overlap():
    _gate.clear()
    cluster = laptop_cluster(num_nodes=2)
    results = [None, None]

    def run(idx):
        results[idx] = spmd_run(_gated_ring, cluster, args=(idx,))

    threads = [threading.Thread(target=run, args=(idx,)) for idx in range(2)]
    try:
        for t in threads:
            t.start()
        deadline = threading.Event()
        for _ in range(1000):
            if active_run_stats()["active_runs"] == 2:
                break
            deadline.wait(0.005)
        stats = active_run_stats()
        assert stats["active_runs"] == 2
        assert stats["active_ranks"] == 4  # two 2-rank jobs in flight
    finally:
        _gate.set()
        for t in threads:
            t.join(30.0)
    assert all(r is not None for r in results)
    assert active_run_stats() == {"active_runs": 0, "active_ranks": 0}
