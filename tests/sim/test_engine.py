"""SPMD engine behaviour."""

import numpy as np
import pytest

from repro.cluster.presets import laptop_cluster
from repro.sim.engine import spmd_run
from repro.util.errors import DeadlockError, ValidationError


def test_single_rank_runs_inline():
    res = spmd_run(lambda ctx: ctx.rank * 10, laptop_cluster(num_nodes=1))
    assert res.values == [0]
    assert res.nranks == 1


def test_values_collected_per_rank():
    res = spmd_run(lambda ctx: (ctx.rank, ctx.size), laptop_cluster(num_nodes=3))
    assert res.values == [(0, 3), (1, 3), (2, 3)]


def test_ranks_per_node_mapping():
    def prog(ctx):
        return ctx.node_index

    res = spmd_run(prog, laptop_cluster(num_nodes=2), ranks_per_node=3)
    assert res.values == [0, 0, 0, 1, 1, 1]
    assert res.nranks == 6


def test_args_kwargs_forwarded():
    def prog(ctx, a, b=0):
        return a + b + ctx.rank

    res = spmd_run(prog, laptop_cluster(num_nodes=2), args=(10,), kwargs={"b": 5})
    assert res.values == [15, 16]


def test_exception_propagates_with_rank():
    def prog(ctx):
        if ctx.rank == 1:
            raise RuntimeError("boom on rank 1")
        # Other ranks block on a message that never comes; the abort must
        # wake them rather than hanging the suite.
        ctx.comm.recv(source=(ctx.rank + 1) % ctx.size, tag=5)

    with pytest.raises(RuntimeError, match="boom"):
        spmd_run(prog, laptop_cluster(num_nodes=3))


def test_deadlock_watchdog():
    def prog(ctx):
        ctx.comm.recv(source=ctx.rank and 0 or 1, tag=9)  # nobody sends

    with pytest.raises(DeadlockError):
        spmd_run(prog, laptop_cluster(num_nodes=2), recv_timeout=0.2, wall_timeout=5.0)


def test_makespan_is_max_of_rank_times():
    def prog(ctx):
        ctx.clock.advance(float(ctx.rank))
        return None

    res = spmd_run(prog, laptop_cluster(num_nodes=4))
    assert res.makespan == pytest.approx(3.0)
    assert res.times == pytest.approx([0.0, 1.0, 2.0, 3.0])


def test_virtual_time_deterministic_across_runs():
    def prog(ctx):
        data = np.full(1000, ctx.rank, dtype=np.float64)
        total = ctx.comm.allreduce(data, "sum")
        ctx.comm.barrier()
        return float(total[0])

    cluster = laptop_cluster(num_nodes=4)
    t1 = spmd_run(prog, cluster).times
    t2 = spmd_run(prog, cluster).times
    assert t1 == t2


def test_traces_disabled_by_default_enabled_on_request():
    def prog(ctx):
        ctx.comm.barrier()

    res = spmd_run(prog, laptop_cluster(num_nodes=2))
    assert all(len(t) == 0 for t in res.traces)
    res = spmd_run(prog, laptop_cluster(num_nodes=2), trace=True)
    assert any(len(t) > 0 for t in res.traces)


def test_device_factory_runs_per_rank():
    def factory(ctx):
        return [f"dev-{ctx.rank}"]

    res = spmd_run(lambda ctx: ctx.devices, laptop_cluster(num_nodes=2), device_factory=factory)
    assert res.values == [["dev-0"], ["dev-1"]]


def test_rejects_zero_ranks():
    cluster = laptop_cluster(num_nodes=1)
    with pytest.raises(ValidationError):
        spmd_run(lambda ctx: None, cluster, ranks_per_node=0)


def test_wall_timeout_is_a_shared_budget_not_per_rank():
    """Regression: the watchdog must use one monotonic deadline across all
    joins.  With a fresh ``wall_timeout`` per join, early ranks that exit
    slowly eat no budget and a hung last rank stalls the run for up to
    ``nranks * wall_timeout`` before the DeadlockError fires."""
    import time as _time

    def prog(ctx):
        if ctx.rank < 3:
            # Staggered wall-clock work: each rank alone finishes within
            # the timeout, but their cumulative join time exceeds it.
            _time.sleep(0.3 * (ctx.rank + 1))
            return ctx.rank
        # The last rank blocks forever (abort-wakeable).
        ctx.comm.recv(source=0, tag=99)
        return None

    t0 = _time.monotonic()
    with pytest.raises(DeadlockError):
        spmd_run(prog, laptop_cluster(num_nodes=4), wall_timeout=0.8)
    elapsed = _time.monotonic() - t0
    # Shared budget: trip at ~0.8s (plus sleeping threads draining, <=0.9s).
    # The old per-join budget would not raise until ~0.9 + 0.8 = 1.7s.
    assert elapsed < 1.4, f"watchdog took {elapsed:.2f}s; per-join budget bug?"
