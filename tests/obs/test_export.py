"""Chrome-trace export and schema validation."""

import json

import pytest

from repro.obs.export import (
    _assign_lanes,
    export_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.recorder import Recorder
from repro.sim.trace import Trace


def _sample_traces():
    tr = Trace(0)
    tr.record("compute", "k", 0.0, 2.0, {"elems": 10})
    tr.record("comm", "send->1", 0.5, 1.0, {"tag": 3, "nbytes": 64})
    tr.record("comm", "send->1", 0.6, 1.2)  # overlaps -> overflow lane
    tr.record("fault", "dup-discard<-1", 1.5, 1.5)  # instant
    return [tr]


def test_export_is_schema_valid_and_json_round_trips():
    obj = export_chrome_trace(_sample_traces(), makespan=2.0)
    validate_chrome_trace(obj)  # raises on any violation
    blob = json.dumps(obj)
    assert json.loads(blob)["otherData"]["makespan_s"] == 2.0


def test_overlapping_spans_get_overflow_lanes():
    obj = export_chrome_trace(_sample_traces())
    names = {
        ev["args"]["name"]
        for ev in obj["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    assert "comm" in names and "comm+1" in names


def test_zero_duration_events_become_instants():
    obj = export_chrome_trace(_sample_traces())
    instants = [ev for ev in obj["traceEvents"] if ev["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["name"] == "dup-discard<-1"


def test_recorder_timelines_become_tracks():
    from repro.sim.timeline import Timeline

    rec = Recorder(0)
    tl = Timeline("gpu0.compute")
    rec._attach(tl)
    tl.schedule(0.0, 1.0, "k[0]")
    obj = export_chrome_trace([rec])
    validate_chrome_trace(obj)
    tracks = {
        ev["args"]["name"]
        for ev in obj["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    assert "gpu0.compute" in tracks
    resource = [ev for ev in obj["traceEvents"] if ev.get("cat") == "resource"]
    assert len(resource) == 1
    assert resource[0]["dur"] == pytest.approx(1e6)  # 1 virtual s -> us


def test_numpy_meta_values_are_coerced():
    import numpy as np

    tr = Trace(0)
    tr.record("compute", "k", 0.0, 1.0, {"n": np.int64(5), "f": np.float64(0.5)})
    obj = export_chrome_trace([tr])
    validate_chrome_trace(obj)
    (span,) = [ev for ev in obj["traceEvents"] if ev["ph"] == "X"]
    assert span["args"] == {"n": 5, "f": 0.5}


def test_validate_rejects_malformed_traces():
    with pytest.raises(ValueError):
        validate_chrome_trace([])  # not an object
    with pytest.raises(ValueError):
        validate_chrome_trace({})  # no traceEvents
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "Q", "name": "x"}]})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": -1.0}]}
        )
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0.0}
                ]  # missing dur
            }
        )


def test_write_chrome_trace(tmp_path):
    path = tmp_path / "trace.json"
    obj = write_chrome_trace(str(path), _sample_traces(), makespan=2.0)
    on_disk = json.loads(path.read_text())
    assert on_disk == obj


def test_assign_lanes_greedy_colouring():
    events = [(0.0, 2.0, "a"), (1.0, 3.0, "b"), (2.5, 4.0, "c"), (0.5, 0.9, "d")]
    lanes = _assign_lanes(events)
    # No two overlapping events may share a lane.
    for i in range(len(events)):
        for j in range(i + 1, len(events)):
            overlap = min(events[i][1], events[j][1]) - max(events[i][0], events[j][0])
            if overlap > 0:
                assert lanes[i] != lanes[j], (i, j)
    # Greedy reuse: c fits back into a's lane; d slots after nothing -> lane 1.
    assert lanes == [0, 1, 0, 1]
