"""Post-run analysis: phase attribution, utilization, critical path.

These encode the subsystem's acceptance bar: attribution reconciles to the
makespan within 1e-9 relative, the critical path is a contiguous chain
ending at the makespan, and instrumentation never perturbs timing
(bit-identical makespans with observability on or off — including under
fault injection with retransmits).
"""

import pytest

from repro.cluster.presets import laptop_cluster, ohio_cluster
from repro.faults.plan import FaultPlan
from repro.obs import (
    Recorder,
    aggregate_counters,
    analyze,
    match_messages,
    profile_app,
)
from repro.obs.profile import PROFILE_APPS
from repro.util.errors import ConfigurationError


@pytest.mark.parametrize("app", sorted(PROFILE_APPS))
def test_profile_reconciles_for_every_app(app):
    apprun, report = profile_app(app, nodes=2)
    report.verify(rel_tol=1e-9)  # raises on any reconciliation failure
    assert report.makespan == apprun.spmd.makespan
    # Every rank's phases tile [0, makespan] exactly.
    for ph in report.phases:
        assert ph.total == pytest.approx(report.makespan, rel=1e-9)
    # The critical path is chronological, contiguous, and ends at the
    # makespan (verify() checks gaps; check the endpoints here too).
    path = report.critical_path
    assert path, "critical path must not be empty"
    assert path[0].start == pytest.approx(0.0, abs=1e-12)
    assert path[-1].end == pytest.approx(report.makespan, rel=1e-9)
    for prev, link in zip(path, path[1:]):
        assert link.start <= prev.end + 1e-9 * report.makespan  # contiguous
    # Utilization is a sane fraction for every timeline.
    for tl in report.timelines:
        assert 0.0 <= tl.utilization <= 1.0 + 1e-9
        assert tl.idle >= -1e-12


def test_unknown_app_and_scale_rejected():
    with pytest.raises(ConfigurationError):
        profile_app("nbody")
    with pytest.raises(ConfigurationError):
        profile_app("kmeans", scale="huge")


@pytest.mark.parametrize("app", ["heat3d", "kmeans"])
def test_makespan_bit_identical_with_obs_on_and_off(app):
    cluster = ohio_cluster(2)
    entry = PROFILE_APPS[app]
    cfg = entry.quick_config()
    plain = entry.run(cluster, cfg, "cpu+2gpu")
    observed = entry.run(cluster, cfg, "cpu+2gpu", recorder_factory=Recorder)
    assert observed.makespan == plain.makespan  # bit-identical, not approx


def test_bit_identical_under_fault_injection_with_retransmits():
    cluster = ohio_cluster(2)
    entry = PROFILE_APPS["heat3d"]
    cfg = entry.quick_config()
    plain = entry.run(
        cluster, cfg, "cpu+2gpu", reliable=True, fault_plan=FaultPlan.lossy(7, drop=0.3)
    )
    observed = entry.run(
        cluster,
        cfg,
        "cpu+2gpu",
        reliable=True,
        fault_plan=FaultPlan.lossy(7, drop=0.3),
        recorder_factory=Recorder,
    )
    assert observed.makespan == plain.makespan
    report = analyze(observed.spmd)
    report.verify()
    assert report.counters.get("comm.retransmits", 0) > 0
    assert report.counters.get("comm.acks_sent", 0) > 0
    # Retransmit spans land in the fault category and get attributed.
    assert any(
        tr.filter(category="fault", label_prefix="retransmit")
        for tr in observed.spmd.traces
    )


def test_match_messages_pairs_sends_with_recvs():
    def prog(ctx):
        if ctx.rank == 0:
            for i in range(3):
                ctx.comm.send(b"x" * 256, dest=1, tag=5)
        else:
            for i in range(3):
                ctx.comm.recv(source=0, tag=5)

    from repro.sim.engine import spmd_run

    res = spmd_run(prog, laptop_cluster(num_nodes=2), recorder_factory=Recorder)
    edges = match_messages(res.traces)
    recvs = res.traces[1].filter(category="comm", label_prefix="recv")
    assert len(edges) == 3
    sends = res.traces[0].filter(category="comm", label_prefix="send")
    # FIFO pairing: the n-th recv matches the n-th send of the stream.
    for i, rv in enumerate(recvs):
        src_rank, send_ev = edges[id(rv)]
        assert src_rank == 0
        assert send_ev is sends[i]


def test_aggregate_counters_sums_ranks():
    from repro.sim.trace import Trace

    t0, t1 = Trace(0), Trace(1)
    t0.count("msgs", 2)
    t1.count("msgs", 3)
    t1.count("bytes", 100)
    assert aggregate_counters([t0, t1]) == {"msgs": 5.0, "bytes": 100.0}


def test_report_to_dict_is_json_serializable():
    import json

    _, report = profile_app("sobel", nodes=2)
    blob = json.dumps(report.to_dict())
    assert "critical_path" in blob and "phases" in blob


def test_phase_attribution_accounts_for_waits():
    """A rank stalled on a late sender must show the stall as wait time."""

    def prog(ctx):
        if ctx.rank == 0:
            ctx.clock.advance(1.0)  # rank 1 blocks on this for ~1s
            ctx.comm.send(b"x" * 64, dest=1, tag=1)
        else:
            ctx.comm.recv(source=0, tag=1)

    from repro.sim.engine import spmd_run

    res = spmd_run(prog, laptop_cluster(num_nodes=2), recorder_factory=Recorder)
    report = analyze(res)
    report.verify()
    r1 = report.phases[1]
    assert r1.wait == pytest.approx(1.0, rel=0.1)
    # The critical path should cross the message edge back to rank 0.
    ranks_on_path = {link.rank for link in report.critical_path}
    assert ranks_on_path == {0, 1}
    assert any(link.phase == "wire" for link in report.critical_path)
