"""Plain-text report rendering."""

from repro.obs import profile_app, render_text_report


def test_text_report_sections():
    _, report = profile_app("heat3d", nodes=2)
    text = render_text_report(report)
    assert f"{report.makespan:.9g}" in text
    assert "Phase attribution" in text
    assert "Timeline utilization" in text
    assert "Critical path" in text
    assert "Counters" in text
    assert f"events recorded: {report.n_events}" in text
    # Utilization renders through the shared ascii bar helper.
    assert "|#" in text
    # One bar per timeline, labelled rank:name.
    assert "r0:nic0.egress" in text
    assert "r0:gpu0.compute" in text


def test_text_report_notes_extrapolated_makespan():
    apprun, report = profile_app("heat3d", nodes=2)
    text = render_text_report(report)
    if apprun.makespan != report.makespan:
        assert "extrapolated" in text


def test_top_links_truncation():
    _, report = profile_app("moldyn", nodes=2)
    text = render_text_report(report, top_links=3)
    if len(report.critical_path) > 3:
        assert f"longest 3 of {len(report.critical_path)} links" in text
