"""Recorder: span + counter capture and full-run timeline histories."""

import pytest

from repro.obs.recorder import IntervalRecord, Recorder
from repro.sim.timeline import Timeline


def test_recorder_is_a_trace():
    rec = Recorder(0)
    rec.record("compute", "k", 0.0, 1.0, {"elems": 4})
    rec.count("n", 2.0)
    assert rec.enabled
    assert len(rec) == 1
    assert rec.counters == {"n": 2.0}


def test_recorder_captures_timeline_intervals():
    rec = Recorder(0)
    tl = Timeline("gpu0.compute")
    rec._attach(tl)
    tl.schedule(0.0, 1.0, "k[0]")
    tl.schedule(2.0, 0.5, "k[1]")
    assert rec.timeline_names == ("gpu0.compute",)
    ivs = rec.intervals
    assert [iv.timeline for iv in ivs] == ["gpu0.compute", "gpu0.compute"]
    assert ivs[0].label == "k[0]"
    assert ivs[1].start == 2.0 and ivs[1].end == 2.5
    assert ivs[1].duration == pytest.approx(0.5)


def test_intervals_survive_timeline_reset():
    # Devices reset their engines every step; the recorded history must not
    # be lost with them.
    rec = Recorder(0)
    tl = Timeline("cpu0.core0")
    rec._attach(tl)
    tl.schedule(0.0, 1.0, "a")
    tl.reset(start=5.0)
    tl.schedule(5.0, 1.0, "b")
    assert [iv.label for iv in rec.intervals] == ["a", "b"]
    assert rec.intervals_by_timeline() == {
        "cpu0.core0": [
            IntervalRecord("cpu0.core0", 0.0, 1.0, "a"),
            IntervalRecord("cpu0.core0", 5.0, 6.0, "b"),
        ]
    }


def test_bind_device_attaches_all_engines():
    from repro.cluster.presets import laptop_cluster
    from repro.device.gpu import GPUDevice

    node = laptop_cluster(num_nodes=1, gpus_per_node=1).node
    dev = GPUDevice(node.gpus[0], 0)
    rec = Recorder(0)
    rec.bind_device(dev)
    assert set(rec.timeline_names) == {"gpu0.copy", "gpu0.compute"}


def test_plain_trace_bind_hooks_are_noops():
    from repro.sim.trace import Trace

    tr = Trace(0)
    tr.bind_device(object())
    tr.bind_fabric(object())
    assert len(tr) == 0


def test_spmd_run_with_recorder_factory_attaches_nics():
    from repro.cluster.presets import laptop_cluster
    from repro.sim.engine import spmd_run

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"x" * 1024, dest=1, tag=7)
        else:
            ctx.comm.recv(source=0, tag=7)

    res = spmd_run(prog, laptop_cluster(num_nodes=2), recorder_factory=Recorder)
    r0, r1 = res.traces
    assert isinstance(r0, Recorder)
    assert "nic0.egress" in r0.timeline_names
    assert "nic1.ingress" in r1.timeline_names
    assert any(iv.timeline == "nic0.egress" for iv in r0.intervals)
    assert any(iv.timeline == "nic1.ingress" for iv in r1.intervals)
    # The spans themselves recorded too.
    assert r0.filter(category="comm", label_prefix="send->1")
    assert r0.counters["comm.bytes_sent"] == 1024.0
