"""ASCII chart rendering."""

import pytest

from repro.metrics.ascii_chart import fig5_chart, render_bars, render_chart
from repro.util.errors import ValidationError


def test_basic_chart_contains_markers_and_legend():
    text = render_chart(
        {"cpu": [(1, 10), (32, 300)], "gpu": [(1, 30), (32, 900)]},
        title="T", xlabel="nodes", ylabel="speedup",
    )
    assert "T" in text
    assert "o=cpu" in text and "x=gpu" in text
    assert "o" in text and "x" in text
    assert "x: nodes" in text


def test_axis_extremes_labeled():
    text = render_chart({"s": [(1, 10), (32, 1000)]})
    assert "1e+03" in text or "1000" in text
    assert "10" in text
    assert "32" in text


def test_monotone_series_rises_left_to_right():
    text = render_chart({"s": [(1, 1), (2, 10), (4, 100)]}, width=30, height=10)
    lines = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
    first_col = min(i for line in lines for i, c in enumerate(line) if c == "o")
    top_row = min(r for r, line in enumerate(lines) if "o" in line)
    bottom_row = max(r for r, line in enumerate(lines) if "o" in line)
    assert top_row < bottom_row  # spans vertically
    assert lines[top_row].index("o") > first_col  # higher values further right


def test_validation():
    with pytest.raises(ValidationError):
        render_chart({})
    with pytest.raises(ValidationError):
        render_chart({"s": [(0, 1)]}, logx=True)
    with pytest.raises(ValidationError):
        render_chart({"s": [(1, -1)]}, logy=True)
    with pytest.raises(ValidationError):
        render_chart({"s": [(1, 1)]}, width=5)


def test_linear_axes():
    text = render_chart({"s": [(0, 0), (10, 5)]}, logx=False, logy=False)
    assert "o" in text


def test_render_bars_basic():
    text = render_bars(
        [("gpu0.compute", 0.75), ("cpu0.core0", 0.5)],
        width=8,
        max_value=1.0,
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1] == "gpu0.compute  75.0% |######  |"
    assert lines[2] == "cpu0.core0    50.0% |####    |"


def test_render_bars_autoscale_and_clamping():
    # Without max_value the largest value spans the full width.
    text = render_bars([("a", 2.0), ("b", 1.0)], width=10, fmt="{:.1f}")
    lines = text.splitlines()
    assert "|##########|" in lines[0]
    assert "|#####     |" in lines[1]
    # Values outside [0, max] clamp rather than overflow the bar.
    text = render_bars([("a", 5.0), ("b", -1.0)], width=4, max_value=1.0, fmt="{:.0f}")
    assert "|####|" in text.splitlines()[0]
    assert "|    |" in text.splitlines()[1]


def test_render_bars_all_zero_values():
    text = render_bars([("a", 0.0)], width=6)
    assert "|      |" in text


def test_render_bars_validation():
    with pytest.raises(ValidationError):
        render_bars([])
    with pytest.raises(ValidationError):
        render_bars([("a", 1.0)], width=2)
    with pytest.raises(ValidationError):
        render_bars([("a", 1.0)], max_value=0.0)


def test_fig5_chart_from_rows():
    rows = [
        {"app": "kmeans", "nodes": 1, "mix": "cpu", "speedup": 11.0},
        {"app": "kmeans", "nodes": 4, "mix": "cpu", "speedup": 44.0},
        {"app": "kmeans", "nodes": 1, "mix": "cpu+2gpu", "speedup": 69.0},
        {"app": "kmeans", "nodes": 4, "mix": "cpu+2gpu", "speedup": 270.0},
        {"app": "other", "nodes": 1, "mix": "cpu", "speedup": 5.0},
    ]
    text = fig5_chart(rows, "kmeans")
    assert "kmeans" in text
    assert "cpu+2gpu" in text
    with pytest.raises(ValidationError):
        fig5_chart(rows, "nonexistent")
