"""Table formatting."""

from repro.metrics.reporting import format_table


def test_basic_table():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}]
    text = format_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "| a " in lines[1] and "| b" in lines[1]
    assert len(lines) == 5  # title + header + rule + 2 rows


def test_column_selection_and_missing_values():
    rows = [{"a": 1}, {"a": 2, "extra": 9}]
    text = format_table(rows, columns=["a", "missing"])
    assert "missing" in text
    assert "9" not in text


def test_empty_rows():
    assert "(empty)" in format_table([], title="x")


def test_float_formats():
    text = format_table([{"v": 12345.6}, {"v": 0.0001}, {"v": 0.0}])
    assert "1.23e+04" in text
    assert "0.0001" in text
