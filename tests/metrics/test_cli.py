"""Command-line interface."""

import pytest

from repro.cli import build_parser, cmd_info, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Xeon 5650" in out
    assert "M2070" in out
    assert "64 GPUs" in out or "64" in out


def test_info_contents():
    text = cmd_info()
    assert "32" in text and "384" in text


def test_run_app(capsys):
    assert main(["run", "heat3d", "--nodes", "2", "--mix", "cpu"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "heat3d on 2 node(s), cpu" in out


def test_run_no_overlap(capsys):
    assert main(["run", "heat3d", "--nodes", "1", "--mix", "cpu", "--no-overlap"]) == 0
    assert "speedup" in capsys.readouterr().out


def test_codesize(capsys):
    assert main(["codesize"]) == 0
    out = capsys.readouterr().out
    assert "kmeans" in out and "ratio" in out


def test_figure_fig6(capsys):
    assert main(["figure", "fig6"]) == 0
    assert "mpi_loc" in capsys.readouterr().out


def test_info_devices(capsys):
    assert main(["info", "--devices"]) == 0
    out = capsys.readouterr().out
    assert "roofline" in out
    assert "kernel launch" in out
    assert "Timeline inventory" in out
    assert "gpu0.copy" in out and "nic{rank}.egress" in out


def test_profile_text(capsys):
    assert main(["profile", "kmeans", "--nodes", "2", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "Phase attribution" in out
    assert "Critical path" in out
    assert "kmeans on 2 node(s)" in out


def test_profile_json(capsys):
    import json

    assert main(["profile", "sobel", "--nodes", "2", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["nranks"] == 2
    assert report["phases"] and report["critical_path"]


def test_profile_trace_out(capsys, tmp_path):
    import json

    path = tmp_path / "trace.json"
    assert main(["profile", "heat3d", "--nodes", "2", "--trace-out", str(path)]) == 0
    assert "trace written to" in capsys.readouterr().out
    from repro.obs import validate_chrome_trace

    validate_chrome_trace(json.loads(path.read_text()))


def test_run_trace_out(capsys, tmp_path):
    import json

    path = tmp_path / "run.json"
    assert main(
        ["run", "heat3d", "--nodes", "2", "--mix", "cpu", "--trace-out", str(path)]
    ) == 0
    out = capsys.readouterr().out
    assert "speedup" in out and "trace" in out
    from repro.obs import validate_chrome_trace

    validate_chrome_trace(json.loads(path.read_text()))


def test_parser_rejects_unknown():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "nbody"])
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "fig9"])
    with pytest.raises(SystemExit):
        parser.parse_args([])
