"""Command-line interface."""

import pytest

from repro.cli import build_parser, cmd_info, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Xeon 5650" in out
    assert "M2070" in out
    assert "64 GPUs" in out or "64" in out


def test_info_contents():
    text = cmd_info()
    assert "32" in text and "384" in text


def test_run_app(capsys):
    assert main(["run", "heat3d", "--nodes", "2", "--mix", "cpu"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "heat3d on 2 node(s), cpu" in out


def test_run_no_overlap(capsys):
    assert main(["run", "heat3d", "--nodes", "1", "--mix", "cpu", "--no-overlap"]) == 0
    assert "speedup" in capsys.readouterr().out


def test_codesize(capsys):
    assert main(["codesize"]) == 0
    out = capsys.readouterr().out
    assert "kmeans" in out and "ratio" in out


def test_figure_fig6(capsys):
    assert main(["figure", "fig6"]) == 0
    assert "mpi_loc" in capsys.readouterr().out


def test_parser_rejects_unknown():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "nbody"])
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "fig9"])
    with pytest.raises(SystemExit):
        parser.parse_args([])
