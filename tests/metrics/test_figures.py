"""Experiment drivers (smoke + invariants at quick scale)."""

import pytest

from repro.metrics import figures
from repro.util.errors import ValidationError


def test_table2_rows_have_all_apps():
    rows = figures.table2_intranode("quick", apps=["kmeans", "heat3d"])
    assert [r["app"] for r in rows] == ["kmeans", "heat3d"]
    for r in rows:
        assert r["actual_1gpu"] <= r["perfect_1gpu"] * 1.02
        assert r["perfect_2gpu"] == pytest.approx(1 + 2 * r["gpu_vs_cpu"], rel=1e-9)


def test_fig5_rows_structure():
    rows = figures.fig5_scalability("quick", apps=["heat3d"])
    mixes = {r["mix"] for r in rows}
    assert mixes == set(figures.FIG5_MIXES) | {"mpi-handwritten"}
    nodes = sorted({r["nodes"] for r in rows})
    assert nodes == [1, 4]
    summary = figures.fig5_summary(rows)
    assert summary[0]["app"] == "heat3d"
    assert summary[0]["cpu_scaling"] > 2.0


def test_fig5_moldyn_has_no_mpi_row():
    """The paper found no comparable hand-written MPI Moldyn."""
    rows = figures.fig5_scalability("quick", apps=["moldyn"])
    assert not any(r["mix"] == "mpi-handwritten" for r in rows)


def test_fig8_ratios_in_paper_direction():
    rows = figures.fig8_gpu_baselines("quick")
    for r in rows:
        assert r["fw_over_cuda"] >= 1.0


def test_invalid_scale_rejected():
    with pytest.raises(ValidationError):
        figures.fig5_scalability("huge")


def test_paper_reference_values_present():
    assert figures.PAPER["gpu_cpu_ratio"]["kmeans"] == 2.69
    assert figures.PAPER["table2_actual"]["sobel"] == (2.94, 4.68)
    assert figures.PAPER["overall_speedup_range"] == (562, 1760)
