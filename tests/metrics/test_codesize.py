"""Logical line counting."""

import pytest

from repro.metrics.codesize import code_size_table, count_logical_lines
from repro.util.errors import ValidationError

SAMPLE = '''"""Module docstring
spanning lines."""

# a comment
import os


def f(x):
    """Function docstring."""
    # another comment
    y = (x +
         1)
    return y
'''


def test_count_skips_docstrings_comments_blanks(tmp_path):
    path = tmp_path / "sample.py"
    path.write_text(SAMPLE)
    # import os; def f(x):; y = (x +; 1); return y  -> 5 lines
    assert count_logical_lines(path) == 5


def test_count_missing_file():
    with pytest.raises(ValidationError):
        count_logical_lines("/nonexistent/file.py")


def test_code_size_table(tmp_path):
    small = tmp_path / "small.py"
    small.write_text("x = 1\n")
    big = tmp_path / "big.py"
    big.write_text("a = 1\nb = 2\nc = 3\nd = 4\n")
    rows = code_size_table({"app": (small, big)})
    assert rows[0]["framework_loc"] == 1
    assert rows[0]["mpi_loc"] == 4
    assert rows[0]["ratio"] == pytest.approx(0.25)


def test_real_examples_are_smaller_than_baselines():
    from repro.metrics.figures import fig6_code_sizes

    rows = fig6_code_sizes()
    assert {r["app"] for r in rows} == {"kmeans", "minimd", "sobel", "heat3d"}
    for row in rows:
        assert 0 < row["ratio"] < 1.0, row
