"""FaultPlan determinism, rule matching, and crash bookkeeping."""

import math

import pytest

from repro.comm.constants import RELIABLE_ACK_BASE
from repro.faults.plan import (
    CLEAN_DECISION,
    FaultPlan,
    LinkDegradation,
    MessageFaultRule,
    RankCrash,
)
from repro.util.errors import ValidationError


def _verdicts(plan, n=200, src=0, dst=1, tag=5, t=0.0):
    return [plan.decide(src, dst, tag, t) for _ in range(n)]


def test_empty_plan_is_clean_and_allocation_free():
    plan = FaultPlan(seed=1)
    d = plan.decide(0, 1, 5, 0.0)
    assert d is CLEAN_DECISION
    assert d.clean


def test_decisions_deterministic_across_plan_instances():
    mk = lambda: FaultPlan.lossy(seed=42, drop=0.3, dup=0.2, delay=0.2, max_delay=1e-3)
    a = _verdicts(mk())
    b = _verdicts(mk())
    assert a == b
    assert any(d.drop for d in a)
    assert any(d.duplicate for d in a)
    assert any(d.extra_delay > 0 for d in a)


def test_decisions_independent_of_interleaving():
    """The (src, dst) pair index drives the RNG: interleaving traffic from
    other pairs between two sends must not change the pair's verdicts."""
    solo = FaultPlan.lossy(seed=7, drop=0.5)
    solo_verdicts = [solo.decide(0, 1, 5, 0.0) for _ in range(50)]

    mixed = FaultPlan.lossy(seed=7, drop=0.5)
    mixed_verdicts = []
    for i in range(50):
        mixed.decide(2, 3, 5, 0.0)  # unrelated pair interleaved
        mixed_verdicts.append(mixed.decide(0, 1, 5, 0.0))
        mixed.decide(1, 0, 5, 0.0)
    assert solo_verdicts == mixed_verdicts


def test_different_seeds_differ():
    a = _verdicts(FaultPlan.lossy(seed=1, drop=0.5))
    b = _verdicts(FaultPlan.lossy(seed=2, drop=0.5))
    assert a != b


def test_rule_src_dst_and_window_matching():
    rule = MessageFaultRule(drop_prob=1.0, src=0, dst=1, t_start=1.0, t_end=2.0)
    plan = FaultPlan(seed=3, rules=[rule])
    assert plan.decide(0, 1, 5, 1.5).drop
    assert not plan.decide(0, 1, 5, 0.5).drop  # before window
    assert not plan.decide(0, 1, 5, 2.0).drop  # t_end is exclusive
    assert not plan.decide(0, 2, 5, 1.5).drop  # wrong dst
    assert not plan.decide(2, 1, 5, 1.5).drop  # wrong src


def test_drop_preempts_duplicate_and_delay():
    plan = FaultPlan.lossy(seed=5, drop=1.0, dup=1.0, delay=1.0, max_delay=1.0)
    for d in _verdicts(plan, n=20):
        assert d.drop and not d.duplicate and d.extra_delay == 0.0


def test_ack_tags_exempt_from_message_rules_but_not_degradation():
    plan = FaultPlan(
        seed=9,
        rules=[MessageFaultRule(drop_prob=1.0)],
        degradations=[LinkDegradation(bandwidth_factor=0.5, extra_latency=1e-6)],
    )
    ack = plan.decide(0, 1, RELIABLE_ACK_BASE + 17, 0.0)
    assert not ack.drop
    assert ack.bandwidth_factor == 0.5
    assert ack.extra_latency == 1e-6
    assert plan.decide(0, 1, 5, 0.0).drop  # data tag still dropped


def test_degradations_compose_multiplicatively():
    plan = FaultPlan(
        seed=1,
        degradations=[
            LinkDegradation(bandwidth_factor=0.5),
            LinkDegradation(bandwidth_factor=0.5, extra_latency=2e-6),
        ],
    )
    d = plan.decide(0, 1, 5, 0.0)
    assert d.bandwidth_factor == 0.25
    assert d.extra_latency == 2e-6
    assert plan.stats.degraded == 1


def test_degradation_window():
    plan = FaultPlan(
        seed=1,
        degradations=[LinkDegradation(bandwidth_factor=0.5, t_start=1.0, t_end=2.0)],
    )
    assert plan.decide(0, 1, 5, 0.0).bandwidth_factor == 1.0
    assert plan.decide(0, 1, 5, 1.0).bandwidth_factor == 0.5
    assert plan.decide(0, 1, 5, 2.0).bandwidth_factor == 1.0


def test_last_decision_tracks_per_sender():
    plan = FaultPlan.lossy(seed=11, drop=0.5)
    assert plan.last_decision(0) is CLEAN_DECISION  # nothing sent yet
    for _ in range(20):
        d = plan.decide(0, 1, 5, 0.0)
        assert plan.last_decision(0) == d


def test_crash_pending_and_consume_one_shot():
    crash = RankCrash(rank=2, at_time=1.0, restart_cost=0.5)
    plan = FaultPlan(seed=1, crashes=[crash])
    assert plan.crash_pending(2, 0.5) is None  # not due yet
    assert plan.crash_pending(1, 2.0) is None  # wrong rank
    got = plan.crash_pending(2, 1.0)
    assert got is crash
    plan.consume_crash(got)
    plan.consume_crash(got)  # idempotent
    assert plan.stats.crashes_consumed == 1
    assert plan.crash_pending(2, 2.0) is None  # one-shot


def test_stats_counters():
    plan = FaultPlan.lossy(seed=42, drop=0.3, dup=0.2, delay=0.2, max_delay=1e-3)
    _verdicts(plan, n=100)
    s = plan.stats
    assert s.decisions == 100
    assert s.drops > 0 and s.duplicates > 0 and s.delays > 0
    assert s.drops + s.duplicates <= 100


@pytest.mark.parametrize(
    "bad",
    [
        dict(drop_prob=1.5),
        dict(drop_prob=-0.1),
        dict(delay_prob=0.5),  # delay without max_delay
        dict(max_delay=-1.0),
        dict(t_start=2.0, t_end=1.0),
    ],
)
def test_rule_validation(bad):
    with pytest.raises(ValidationError):
        MessageFaultRule(**bad)


@pytest.mark.parametrize(
    "bad",
    [
        dict(bandwidth_factor=0.0),
        dict(bandwidth_factor=1.5),
        dict(extra_latency=-1e-6),
        dict(t_start=math.inf, t_end=1.0),
    ],
)
def test_degradation_validation(bad):
    with pytest.raises(ValidationError):
        LinkDegradation(**bad)


@pytest.mark.parametrize(
    "bad",
    [
        dict(rank=-1, at_time=0.0),
        dict(rank=0, at_time=-1.0),
        dict(rank=0, at_time=0.0, restart_cost=-1.0),
    ],
)
def test_crash_validation(bad):
    with pytest.raises(ValidationError):
        RankCrash(**bad)
