"""Shared application plumbing."""

import pytest

from repro.apps.common import (
    AppRun,
    check_functional_scale,
    extrapolate_steps,
    sequential_elem_time,
    sequential_time,
    single_core_spec,
)
from repro.cluster.presets import ohio_cluster, xeon_5650
from repro.device.work import WorkModel
from repro.util.errors import ValidationError

WORK = WorkModel(name="w", flops_per_elem=100, bytes_per_elem=8, cpu_efficiency=0.5)


def test_single_core_spec_shares_resources():
    full = xeon_5650()
    one = single_core_spec(full)
    assert one.cores == 1
    assert one.core_flops == full.core_flops
    assert one.mem_bandwidth == pytest.approx(full.mem_bandwidth / 12)
    assert one.cache_bytes == pytest.approx(full.cache_bytes / 12)


def test_sequential_time_scales_linearly():
    node = ohio_cluster(1).node
    t1 = sequential_time(WORK, 1000, node)
    t2 = sequential_time(WORK, 2000, node)
    t3 = sequential_time(WORK, 1000, node, iterations=2)
    assert t2 == pytest.approx(2 * t1)
    assert t3 == pytest.approx(2 * t1)
    with pytest.raises(ValidationError):
        sequential_time(WORK, 0, node)


def test_sequential_elem_time_excludes_framework_overhead():
    node = ohio_cluster(1).node
    w = WORK.replace(runtime_overhead_flops=100)
    assert sequential_elem_time(w, node) == pytest.approx(
        sequential_elem_time(WORK, node)
    )
    assert sequential_elem_time(w, node, framework=True) > sequential_elem_time(w, node)


def test_extrapolate_steps():
    assert extrapolate_steps([2.0], 5) == pytest.approx(10.0)
    assert extrapolate_steps([3.0, 1.0], 10) == pytest.approx(3 + 1 + 8 * 1.0)
    assert extrapolate_steps([3.0, 2.0, 1.0], 3) == pytest.approx(6.0)
    with pytest.raises(ValidationError):
        extrapolate_steps([], 5)
    with pytest.raises(ValidationError):
        extrapolate_steps([1.0, 1.0], 1)


def test_apprun_speedup():
    run = AppRun(app="a", mix="cpu", nodes=1, makespan=2.0, seq_time=10.0)
    assert run.speedup == 5.0
    bad = AppRun(app="a", mix="cpu", nodes=1, makespan=0.0, seq_time=10.0)
    with pytest.raises(ValidationError):
        _ = bad.speedup


def test_check_functional_scale():
    check_functional_scale(10, 10, "x")
    check_functional_scale(5, 10, "x")
    with pytest.raises(ValidationError, match="x"):
        check_functional_scale(11, 10, "x")
