"""Every application's framework execution matches its NumPy oracle."""

import numpy as np
import pytest

from repro.apps import heat3d, kmeans, minimd, moldyn, sobel
from repro.cluster.presets import ohio_cluster

KCFG = kmeans.KmeansConfig(functional_points=12_000, iterations=2)
MCFG = moldyn.MoldynConfig(functional_nodes=2_500, functional_degree=10, simulated_steps=3)
ICFG = minimd.MiniMDConfig(functional_cells=6, simulated_steps=3)
SCFG = sobel.SobelConfig(functional_shape=(128, 128), simulated_steps=2)
HCFG = heat3d.Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=3)


@pytest.mark.parametrize("nodes", [1, 2, 4])
@pytest.mark.parametrize("mix", ["cpu", "cpu+2gpu"])
def test_kmeans_matches_reference(nodes, mix):
    run = kmeans.run(ohio_cluster(nodes), KCFG, mix=mix)
    np.testing.assert_allclose(run.result, kmeans.sequential_reference(KCFG), rtol=1e-9)


@pytest.mark.parametrize("nodes", [1, 3])
def test_moldyn_matches_reference(nodes):
    ref = moldyn.sequential_reference(MCFG)
    run = moldyn.run(ohio_cluster(nodes), MCFG, mix="cpu+2gpu")
    got = np.zeros_like(ref["nodes"])
    for v in run.result:
        lo, hi = v["range"]
        got[lo:hi] = v["nodes"]
    np.testing.assert_allclose(got, ref["nodes"], rtol=1e-9)
    assert run.result[0]["ke"] == pytest.approx(ref["ke"], rel=1e-9)
    np.testing.assert_allclose(run.result[0]["av"], ref["av"], atol=1e-12)


@pytest.mark.parametrize("nodes", [1, 2])
def test_minimd_matches_reference(nodes):
    ref = minimd.sequential_reference(ICFG)
    run = minimd.run(ohio_cluster(nodes), ICFG, mix="cpu+1gpu")
    got = np.zeros_like(ref["nodes"])
    for v in run.result:
        lo, hi = v["range"]
        got[lo:hi] = v["nodes"]
    np.testing.assert_allclose(got, ref["nodes"], rtol=1e-9)
    assert run.result[0]["ke"] == pytest.approx(ref["ke"], rel=1e-9)


def test_minimd_reneighboring_path():
    cfg = minimd.MiniMDConfig(functional_cells=5, simulated_steps=5, reneighbor_every=2)
    ref = minimd.sequential_reference(cfg)
    run = minimd.run(ohio_cluster(2), cfg, mix="cpu")
    got = np.zeros_like(ref["nodes"])
    for v in run.result:
        lo, hi = v["range"]
        got[lo:hi] = v["nodes"]
    np.testing.assert_allclose(got, ref["nodes"], rtol=1e-9)
    assert all(len(v["rebuilds"]) == 2 for v in run.result)


@pytest.mark.parametrize("nodes", [1, 4])
def test_sobel_matches_reference(nodes):
    run = sobel.run(ohio_cluster(nodes), SCFG, mix="cpu+2gpu")
    np.testing.assert_allclose(run.result, sobel.sequential_reference(SCFG), rtol=1e-5)


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_heat3d_matches_reference(nodes):
    run = heat3d.run(ohio_cluster(nodes), HCFG, mix="cpu+2gpu")
    np.testing.assert_allclose(run.result, heat3d.sequential_reference(HCFG), rtol=1e-12)


def test_speedup_is_seq_over_makespan():
    run = kmeans.run(ohio_cluster(1), KCFG, mix="cpu")
    assert run.speedup == pytest.approx(run.seq_time / run.makespan)


def test_app_runs_deterministic():
    a = kmeans.run(ohio_cluster(2), KCFG, mix="cpu+2gpu")
    b = kmeans.run(ohio_cluster(2), KCFG, mix="cpu+2gpu")
    assert a.makespan == b.makespan
    np.testing.assert_array_equal(a.result, b.result)


def test_config_validation():
    with pytest.raises(Exception):
        kmeans.KmeansConfig(functional_points=10, n_points=5)
    with pytest.raises(Exception):
        heat3d.Heat3DConfig(simulated_steps=0)
    with pytest.raises(Exception):
        minimd.MiniMDConfig(functional_cells=1)
    with pytest.raises(Exception):
        sobel.SobelConfig(functional_shape=(10, 10), shape=(5, 5))
    with pytest.raises(Exception):
        moldyn.MoldynConfig(functional_nodes=10, n_nodes=5)
