"""Calibration: the simulated device ratios must hit the paper's numbers."""

import pytest

from repro.apps import heat3d, kmeans, minimd, moldyn, sobel
from repro.apps.calibrate import calibrate_gpu_ratio, device_ratio, gpu_effective_elem_time
from repro.cluster.presets import ohio_cluster
from repro.device.gpu import GPUDevice
from repro.device.work import WorkModel
from repro.util.errors import ConfigurationError, ValidationError

NODE = ohio_cluster(1).node


def test_kmeans_ratio_calibrated():
    w = kmeans.make_work(kmeans.KmeansConfig(), NODE)
    assert device_ratio(w, NODE, streaming=True) == pytest.approx(2.69, rel=1e-3)


def test_heat3d_ratio_calibrated():
    assert device_ratio(heat3d.make_work(NODE), NODE) == pytest.approx(2.4, rel=1e-3)


def test_sobel_ratio_calibrated():
    assert device_ratio(sobel.make_work(NODE), NODE) == pytest.approx(2.24, rel=1e-3)


def test_moldyn_ratio_includes_upload_overhead():
    cfg = moldyn.MoldynConfig()
    w = moldyn.make_cf_work(NODE, cfg)
    upload = moldyn.DEVICE_NODE_BYTES * cfg.n_nodes / (cfg.n_edges * NODE.gpus[0].pcie_bandwidth)
    gpu = GPUDevice(NODE.gpus[0])
    from repro.device.cpu import CPUDevice

    cpu_t = CPUDevice(NODE.cpu).elem_time(w)
    gpu_t = gpu.elem_time(w) + upload
    assert cpu_t / gpu_t == pytest.approx(1.5, rel=1e-3)


def test_minimd_ratio_includes_upload_overhead():
    cfg = minimd.MiniMDConfig()
    w = minimd.make_force_work(NODE, cfg)
    upload = minimd.DEVICE_NODE_BYTES * cfg.n_atoms / (cfg.n_edges * NODE.gpus[0].pcie_bandwidth)
    gpu = GPUDevice(NODE.gpus[0])
    from repro.device.cpu import CPUDevice

    cpu_t = CPUDevice(NODE.cpu).elem_time(w)
    assert cpu_t / (gpu.elem_time(w) + upload) == pytest.approx(1.7, rel=1e-3)


def test_cpu_only_node_returns_base_work():
    bare = ohio_cluster(1, gpus_per_node=0).node
    w = kmeans.make_work(kmeans.KmeansConfig(), bare)
    assert w.gpu_efficiency == kmeans.base_work(kmeans.KmeansConfig()).gpu_efficiency


def test_unreachable_ratio_raises():
    w = WorkModel(name="t", flops_per_elem=10, bytes_per_elem=8, cpu_efficiency=0.9)
    with pytest.raises(ConfigurationError):
        calibrate_gpu_ratio(w, NODE, 1e6)  # would need efficiency >> 1


def test_pcie_floor_detected():
    w = WorkModel(
        name="t", flops_per_elem=10, bytes_per_elem=8, cpu_efficiency=0.9,
        transfer_bytes_per_elem=1e6,
    )
    with pytest.raises(ConfigurationError, match="PCIe"):
        calibrate_gpu_ratio(w, NODE, 100.0, streaming=True)


def test_bad_target_ratio():
    w = WorkModel(name="t", flops_per_elem=10, bytes_per_elem=8)
    with pytest.raises(ValidationError):
        calibrate_gpu_ratio(w, NODE, 0)


def test_streaming_effective_time_branches():
    gpu = GPUDevice(NODE.gpus[0])
    # Kernel-dominant: effective = kernel + transfer/2.
    w = WorkModel(
        name="k", flops_per_elem=5150, bytes_per_elem=1, gpu_efficiency=1.0,
        transfer_bytes_per_elem=8.0,
    )
    kernel = gpu.elem_time(w)
    transfer = 8.0 / gpu.spec.pcie_bandwidth
    assert gpu_effective_elem_time(w, gpu, streaming=True) == pytest.approx(
        kernel + transfer / 2
    )
    # Copy-dominant: effective = transfer + kernel/2.
    w2 = w.replace(flops_per_elem=51.5)
    kernel2 = gpu.elem_time(w2)
    assert gpu_effective_elem_time(w2, gpu, streaming=True) == pytest.approx(
        transfer + kernel2 / 2
    )
    # Non-streaming ignores transfers entirely.
    assert gpu_effective_elem_time(w, gpu, streaming=False) == pytest.approx(kernel)
