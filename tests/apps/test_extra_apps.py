"""Extra applications: PageRank, SSSP, SRAD (Rodinia-coverage claim)."""

import numpy as np
import pytest

from repro.apps.extra import pagerank, srad, sssp
from repro.cluster.presets import ohio_cluster
from repro.sim.engine import spmd_run

PR_CFG = pagerank.PageRankConfig(n_nodes=250, n_edges=1800, max_iterations=80)
SSSP_CFG = sssp.SsspConfig(n_nodes=220, degree=9.0)
SRAD_CFG = srad.SradConfig(shape=(48, 48), iterations=3)


def _collect(values, n, key):
    out = np.zeros(n)
    for v in values:
        lo, hi = v["range"]
        out[lo:hi] = v[key]
    return out


# ------------------------------------------------------------------ pagerank
@pytest.mark.parametrize("nodes", [1, 3])
def test_pagerank_matches_numpy_reference(nodes):
    res = spmd_run(pagerank.rank_program, ohio_cluster(nodes), args=(PR_CFG, "cpu"))
    got = _collect(res.values, PR_CFG.n_nodes, "ranks")
    ref = pagerank.sequential_reference(PR_CFG)
    np.testing.assert_allclose(got, ref, rtol=1e-8)


def test_pagerank_matches_networkx():
    import networkx as nx

    edges = pagerank.generate_graph(PR_CFG)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(PR_CFG.n_nodes))
    graph.add_edges_from(map(tuple, edges))
    nx_rank = nx.pagerank(graph, alpha=pagerank.DAMPING, tol=1e-12, max_iter=200)
    res = spmd_run(pagerank.rank_program, ohio_cluster(2), args=(PR_CFG, "cpu"))
    got = _collect(res.values, PR_CFG.n_nodes, "ranks")
    ref = np.array([nx_rank[i] for i in range(PR_CFG.n_nodes)])
    np.testing.assert_allclose(got, ref, atol=1e-6)


def test_pagerank_ranks_form_distribution():
    res = spmd_run(pagerank.rank_program, ohio_cluster(2), args=(PR_CFG, "cpu"))
    got = _collect(res.values, PR_CFG.n_nodes, "ranks")
    assert got.sum() == pytest.approx(1.0, rel=1e-6)
    assert (got > 0).all()


def test_pagerank_converges_before_cap():
    res = spmd_run(pagerank.rank_program, ohio_cluster(1), args=(PR_CFG, "cpu"))
    assert res.values[0]["iterations"] < PR_CFG.max_iterations


# ------------------------------------------------------------------ sssp
@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_sssp_matches_dijkstra(nodes):
    res = spmd_run(sssp.rank_program, ohio_cluster(nodes), args=(SSSP_CFG, "cpu"))
    got = _collect(res.values, SSSP_CFG.n_nodes, "dist")
    ref = sssp.sequential_reference(SSSP_CFG)
    finite = np.isfinite(ref)
    np.testing.assert_allclose(got[finite], ref[finite], rtol=1e-9)
    # Bellman-Ford leaves unreachable nodes at +inf; zero-fill from _collect
    # means we compare reachability through the reference mask only.
    assert np.isinf(_collect_inf(res.values, SSSP_CFG.n_nodes)[~finite]).all()


def _collect_inf(values, n):
    out = np.full(n, np.nan)
    for v in values:
        lo, hi = v["range"]
        out[lo:hi] = v["dist"]
    return out


def test_sssp_source_distance_zero():
    res = spmd_run(sssp.rank_program, ohio_cluster(2), args=(SSSP_CFG, "cpu"))
    dist = _collect_inf(res.values, SSSP_CFG.n_nodes)
    assert dist[SSSP_CFG.source] == 0.0


def test_sssp_terminates_early():
    res = spmd_run(sssp.rank_program, ohio_cluster(1), args=(SSSP_CFG, "cpu"))
    assert res.values[0]["rounds"] < SSSP_CFG.n_nodes - 1


def test_sssp_uses_min_reduction_heterogeneous():
    res = spmd_run(sssp.rank_program, ohio_cluster(2), args=(SSSP_CFG, "cpu+2gpu"))
    got = _collect_inf(res.values, SSSP_CFG.n_nodes)
    ref = sssp.sequential_reference(SSSP_CFG)
    finite = np.isfinite(ref)
    np.testing.assert_allclose(got[finite], ref[finite], rtol=1e-9)


# ------------------------------------------------------------------ srad
@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_srad_matches_sequential(nodes):
    res = spmd_run(srad.rank_program, ohio_cluster(nodes), args=(SRAD_CFG, "cpu"))
    ref = srad.sequential_reference(SRAD_CFG)
    np.testing.assert_allclose(res.values[0], ref, rtol=1e-7)


def test_srad_smooths_speckle():
    res = spmd_run(srad.rank_program, ohio_cluster(1), args=(SRAD_CFG, "cpu"))
    out = res.values[0]
    from repro.data.grids import synthetic_image

    original = synthetic_image(SRAD_CFG.shape, seed=SRAD_CFG.seed).astype(np.float64) + 0.05
    inner = (slice(4, -4), slice(4, -4))
    # Diffusion must reduce local variation away from the zero border.
    assert np.abs(np.diff(out[inner], axis=1)).mean() < np.abs(
        np.diff(original[inner], axis=1)
    ).mean()


def test_srad_config_validation():
    with pytest.raises(Exception):
        srad.SradConfig(shape=(4, 64))
    with pytest.raises(Exception):
        srad.SradConfig(lam=0)
    with pytest.raises(Exception):
        sssp.SsspConfig(n_nodes=10, source=10)
    with pytest.raises(Exception):
        pagerank.PageRankConfig(n_nodes=1)


# ------------------------------------------------------------------ hotspot
from repro.apps.extra import hotspot

HS_CFG = hotspot.HotspotConfig(shape=(48, 48), iterations=10)


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_hotspot_matches_sequential(nodes):
    res = spmd_run(hotspot.rank_program, ohio_cluster(nodes), args=(HS_CFG, "cpu"))
    ref = hotspot.sequential_reference(HS_CFG)
    np.testing.assert_allclose(res.values[0], ref, rtol=1e-12)


def test_hotspot_heats_up_under_power_blocks():
    res = spmd_run(hotspot.rank_program, ohio_cluster(1), args=(HS_CFG, "cpu"))
    temp = res.values[0]
    power = hotspot.generate_power_map(HS_CFG)
    inner = (slice(2, -2), slice(2, -2))
    hot = temp[inner][power[inner] > 1.0]
    cool = temp[inner][power[inner] <= 0.05]
    assert hot.mean() > cool.mean() + 0.05
    assert (temp[inner] >= hotspot.T_AMBIENT - 45).all()


def test_hotspot_heterogeneous_matches():
    res = spmd_run(hotspot.rank_program, ohio_cluster(2), args=(HS_CFG, "cpu+2gpu"))
    ref = hotspot.sequential_reference(HS_CFG)
    np.testing.assert_allclose(res.values[0], ref, rtol=1e-12)


def test_hotspot_config_validation():
    with pytest.raises(Exception):
        hotspot.HotspotConfig(shape=(8, 64))
    with pytest.raises(Exception):
        hotspot.HotspotConfig(iterations=0)


# ------------------------------------------------------------------ jacobi2d
from repro.apps.extra import jacobi2d

J2D_CFG = jacobi2d.Jacobi2DConfig(shape=(24, 24), tol=1e-3, max_iters=120)


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_jacobi2d_matches_sequential(nodes):
    """Same iteration count and (to roundoff) the same converged grid —
    the fused residual must drive the same stopping decision the plain
    step-then-norm loop makes."""
    res = spmd_run(jacobi2d.rank_program, ohio_cluster(nodes), args=(J2D_CFG, "cpu"))
    ref_grid, ref_iters, ref_residuals = jacobi2d.sequential_reference(J2D_CFG)
    v = res.values[0]
    assert v["converged"]
    assert v["iterations"] == ref_iters
    assert len(v["residuals"]) == ref_iters
    np.testing.assert_allclose(v["residuals"], ref_residuals, rtol=1e-7)
    np.testing.assert_allclose(v["grid"], ref_grid, rtol=1e-7)


def test_jacobi2d_converges_before_cap():
    res = spmd_run(jacobi2d.rank_program, ohio_cluster(1), args=(J2D_CFG, "cpu"))
    v = res.values[0]
    assert v["converged"]
    assert v["iterations"] < J2D_CFG.max_iters
    # Jacobi residuals decay monotonically for this smooth problem.
    assert v["residuals"][-1] <= J2D_CFG.tol < v["residuals"][0]


def test_jacobi2d_heterogeneous_matches():
    res = spmd_run(jacobi2d.rank_program, ohio_cluster(2), args=(J2D_CFG, "cpu+2gpu"))
    ref_grid, ref_iters, _ = jacobi2d.sequential_reference(J2D_CFG)
    assert res.values[0]["iterations"] == ref_iters
    np.testing.assert_allclose(res.values[0]["grid"], ref_grid, rtol=1e-7)


def test_jacobi2d_run_reports_actual_iterations():
    run = jacobi2d.run(ohio_cluster(2), J2D_CFG)
    assert run.app == "jacobi2d"
    assert run.makespan > 0
    assert run.seq_time > 0
    assert run.spmd.values[0]["converged"]


def test_jacobi2d_config_validation():
    with pytest.raises(Exception):
        jacobi2d.Jacobi2DConfig(shape=(4, 24))
    with pytest.raises(Exception):
        jacobi2d.Jacobi2DConfig(tol=0.0)
    with pytest.raises(Exception):
        jacobi2d.Jacobi2DConfig(max_iters=0)
