"""Hand-written baselines: independent correctness and comparison sanity."""

import numpy as np
import pytest

from repro.apps import heat3d, kmeans, minimd, sobel
from repro.apps.baselines import (
    cuda_kmeans,
    cuda_sobel,
    mpi_heat3d,
    mpi_kmeans,
    mpi_minimd,
    mpi_sobel,
)
from repro.cluster.presets import ohio_cluster

KCFG = kmeans.KmeansConfig(functional_points=12_000, iterations=2)
ICFG = minimd.MiniMDConfig(functional_cells=6, simulated_steps=3)
SCFG = sobel.SobelConfig(functional_shape=(96, 96), simulated_steps=2)
HCFG = heat3d.Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=2)


def test_mpi_kmeans_matches_reference():
    run = mpi_kmeans.run(ohio_cluster(2), KCFG)
    np.testing.assert_allclose(run.result, kmeans.sequential_reference(KCFG), rtol=1e-9)


def test_mpi_heat3d_matches_reference():
    run = mpi_heat3d.run(ohio_cluster(2), HCFG)
    got = mpi_heat3d.assemble(run.result, HCFG.functional_shape)
    np.testing.assert_allclose(got, heat3d.sequential_reference(HCFG), rtol=1e-12)


def test_mpi_sobel_matches_reference():
    run = mpi_sobel.run(ohio_cluster(2), SCFG)
    got = mpi_sobel.assemble(run.result, SCFG.functional_shape)
    np.testing.assert_allclose(got, sobel.sequential_reference(SCFG), rtol=1e-5)


def test_mpi_minimd_matches_reference():
    run = mpi_minimd.run(ohio_cluster(3), ICFG)
    ref = minimd.sequential_reference(ICFG)
    got = np.zeros_like(ref["nodes"])
    for v in run.result:
        lo, hi = v["range"]
        got[lo:hi] = v["nodes"]
    np.testing.assert_allclose(got, ref["nodes"], rtol=1e-9)


def test_cuda_kmeans_matches_framework_result():
    cfg = kmeans.KmeansConfig(n_points=10_000_000, functional_points=12_000)
    fw = kmeans.run(ohio_cluster(1), cfg, mix="1gpu")
    cu = cuda_kmeans.run(ohio_cluster(1), cfg)
    np.testing.assert_allclose(fw.result, cu.result, rtol=1e-9)
    # Fig. 8: the framework is modestly slower than hand-tuned CUDA.
    assert 1.0 <= fw.makespan / cu.makespan < 1.25


def test_cuda_sobel_matches_framework_result():
    cfg = sobel.SobelConfig(shape=(8192, 8192), functional_shape=(96, 96), simulated_steps=2)
    fw = sobel.run(ohio_cluster(1), cfg, mix="1gpu")
    cu = cuda_sobel.run(ohio_cluster(1), cfg)
    np.testing.assert_allclose(fw.result, cu.result, rtol=1e-5)
    assert 1.05 <= fw.makespan / cu.makespan < 1.3


def test_mpi_uses_one_rank_per_core():
    run = mpi_kmeans.run(ohio_cluster(2), KCFG)
    assert run.mix == "mpi-12ppn"


def test_mpi_minimd_uses_one_rank_per_node():
    run = mpi_minimd.run(ohio_cluster(2), ICFG)
    assert run.mix == "mpi+openmp"


@pytest.mark.parametrize(
    "fw_mod,bl_mod,cfg,paper",
    [
        (kmeans, mpi_kmeans, KCFG, 1.05),
        (heat3d, mpi_heat3d, HCFG, 1.08),
        (minimd, mpi_minimd, ICFG, 1.17),
    ],
)
def test_framework_not_slower_than_baseline_for_winners(fw_mod, bl_mod, cfg, paper):
    """For the apps the paper reports framework wins, ours should at least
    not lose badly (within 15% of parity)."""
    fw = fw_mod.run(ohio_cluster(2), cfg, mix="cpu")
    bl = bl_mod.run(ohio_cluster(2), cfg)
    assert bl.makespan / fw.makespan > 0.85


def test_sobel_framework_slower_than_mpi_as_paper_reports():
    fw = sobel.run(ohio_cluster(2), SCFG, mix="cpu")
    bl = mpi_sobel.run(ohio_cluster(2), SCFG)
    ratio = bl.makespan / fw.makespan
    assert 0.80 < ratio < 1.0  # paper: 0.89
