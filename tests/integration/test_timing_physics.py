"""Virtual-time physics: costs must follow the declared models exactly."""

import numpy as np
import pytest

from repro.cluster.presets import ohio_cluster
from repro.core.api import IRKernel, StencilKernel, shifted
from repro.core.env import RuntimeEnv
from repro.device.work import WorkModel
from repro.sim.engine import spmd_run


def test_network_message_cost_matches_loggp():
    cluster = ohio_cluster(2)
    nbytes = 3_200_000  # exactly 1 ms of QDR wire

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(np.zeros(nbytes // 8), 1, tag=0)
        else:
            ctx.comm.recv(source=0, tag=0)
            return ctx.clock.now

    res = spmd_run(prog, cluster)
    link = cluster.network
    expected = link.send_overhead + link.latency + nbytes / link.bandwidth + link.recv_overhead
    assert res.values[1] == pytest.approx(expected, rel=1e-9)


def test_intra_node_messages_cheaper_than_network():
    cluster = ohio_cluster(2)

    def prog(ctx, peer):
        if ctx.rank == 0:
            ctx.comm.send(np.zeros(125_000), peer, tag=0)
        elif ctx.rank == peer:
            ctx.comm.recv(source=0, tag=0)
            return ctx.clock.now

    intra = spmd_run(prog, cluster, ranks_per_node=2, kwargs={"peer": 1}).values[1]
    inter = spmd_run(prog, cluster, ranks_per_node=2, kwargs={"peer": 2}).values[2]
    assert intra < inter


def test_ir_gpu_node_upload_gates_compute():
    """Per-step node re-upload must appear in the GPU step time."""
    rng = np.random.default_rng(0)
    edges = np.unique(rng.integers(0, 200, size=(1200, 2)), axis=0)
    edges = edges[edges[:, 0] != edges[:, 1]]
    nodes = rng.random((200, 3))
    work = WorkModel(
        name="w", flops_per_elem=10, bytes_per_elem=40,
        atomics_per_elem=2, num_reduction_keys=200,
    )

    def kern(obj, e, ed, nv, p):
        obj.insert_many(e[:, 0], nv[e[:, 1], 0])

    def prog(ctx, node_bytes):
        env = RuntimeEnv(ctx, "1gpu")
        ir = env.get_IR()
        ir.set_kernel(IRKernel(kern, "sum", 1, work))
        ir.set_mesh(edges, nodes, model_nodes=200 * 50_000, device_node_bytes=node_bytes)
        times = []
        for _ in range(3):
            t0 = ctx.clock.now
            ir.start()
            ir.update_nodedata(ir.get_local_nodes())
            times.append(ctx.clock.now - t0)
        return times[-1]

    small = spmd_run(prog, ohio_cluster(1), kwargs={"node_bytes": 8.0}).values[0]
    large = spmd_run(prog, ohio_cluster(1), kwargs={"node_bytes": 80.0}).values[0]
    # 10x the uploaded bytes -> measurably longer steady-state step.
    assert large > small * 1.5


def test_stencil_halo_wire_scales_with_face_not_volume():
    """Doubling only the non-face axis must not change per-face wire cost
    noticeably more than the compute grows."""
    work = WorkModel(name="s", flops_per_elem=8, bytes_per_elem=16)

    def avg(src, dst, region, p):
        dst[region] = shifted(src, region, (1, 0)) + shifted(src, region, (0, 1))

    def prog(ctx, shape, model):
        env = RuntimeEnv(ctx, "cpu")
        st = env.get_stencil(overlap=False)
        st.configure(StencilKernel(avg, 1, work), shape, dims=(2, 1), model_shape=model)
        st.set_global_grid(np.ones(shape))
        st.step()
        t0 = ctx.clock.now
        st.step()
        return ctx.clock.now - t0

    base = spmd_run(
        prog, ohio_cluster(2), kwargs={"shape": (32, 32), "model": (3200, 3200)}
    ).makespan
    wide_model = spmd_run(
        prog, ohio_cluster(2), kwargs={"shape": (32, 32), "model": (6400, 3200)}
    ).makespan
    # Face (axis-0 split -> face spans axis 1) unchanged; compute doubles.
    assert wide_model < 2.4 * base
    assert wide_model > 1.5 * base


def test_gr_localization_off_costs_scale_with_key_count():
    """Fewer keys => worse contention on the unlocalized path."""
    from repro.core.api import GRKernel

    data = np.random.default_rng(1).random((4000, 1))

    def run_with(num_keys):
        work = WorkModel(
            name="w", flops_per_elem=20, bytes_per_elem=8,
            atomics_per_elem=1, num_reduction_keys=num_keys,
        )

        def emit(obj, chunk, start, p):
            obj.insert_many(
                (chunk[:, 0] * num_keys).astype(int) % num_keys, np.ones(len(chunk))
            )

        def prog(ctx):
            env = RuntimeEnv(ctx, "1gpu")
            gr = env.get_GR(localized=False)
            gr.set_kernel(GRKernel(emit, "sum", num_keys, 1, work))
            gr.set_input(data, model_local_elems=len(data) * 1000)
            gr.start()
            return None

        return spmd_run(prog, ohio_cluster(1)).makespan

    assert run_with(2) > run_with(64) * 1.5
