"""Behavioural verification through event traces.

Timing claims are easy to fake with constants; these tests check the
*structure* of execution instead: that overlap genuinely interleaves
compute with communication spans, and that the tree combine has
logarithmic depth.
"""

import math

import numpy as np

from repro.cluster.presets import laptop_cluster, ohio_cluster
from repro.apps import moldyn
from repro.sim.engine import spmd_run
from repro.sim.trace import overlap_seconds


def test_ir_local_compute_overlaps_node_exchange():
    cfg = moldyn.MoldynConfig(
        functional_nodes=4_000, functional_degree=12, simulated_steps=2
    )
    res = spmd_run(
        moldyn.rank_program,
        ohio_cluster(4),
        args=(cfg, "cpu"),
        kwargs={"overlap": True},
        trace=True,
    )
    found_overlap = False
    for tr in res.traces:
        locals_ = tr.filter(category="compute", label_prefix="IR:local")
        recvs = tr.filter(category="comm", label_prefix="recv")
        for ev in locals_:
            for rv in recvs:
                if overlap_seconds(ev, rv) > 0:
                    found_overlap = True
    assert found_overlap, "local-edge compute never overlapped the exchange"


def test_reduce_message_rounds_logarithmic():
    """Binomial-tree reduce: rank 0 receives exactly its child count, and
    the total message count is size-1."""

    def prog(ctx):
        ctx.comm.reduce(np.zeros(10), "sum", root=0)
        return None

    for size in (2, 4, 8, 7):
        res = spmd_run(prog, laptop_cluster(num_nodes=size), trace=True)
        sends = sum(len(tr.filter(category="comm", label_prefix="send")) for tr in res.traces)
        assert sends == size - 1
        root_recvs = len(res.traces[0].filter(category="comm", label_prefix="recv"))
        assert root_recvs <= math.ceil(math.log2(size))


def test_barrier_message_complexity():
    """Dissemination barrier: size * ceil(log2 size) messages."""

    def prog(ctx):
        ctx.comm.barrier()

    for size in (2, 4, 8):
        res = spmd_run(prog, laptop_cluster(num_nodes=size), trace=True)
        sends = sum(len(tr.filter(category="comm", label_prefix="send")) for tr in res.traces)
        assert sends == size * math.ceil(math.log2(size))


def test_stencil_records_phases():
    from repro.apps import heat3d

    cfg = heat3d.Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=2)
    res = spmd_run(
        heat3d.rank_program, ohio_cluster(2), args=(cfg, "cpu+1gpu"), trace=True
    )
    tr = res.traces[0]
    assert tr.filter(category="compute", label_prefix="ST:inner")
    assert tr.filter(category="compute", label_prefix="ST:boundary")
    assert tr.filter(category="compute", label_prefix="ST:step")
    by_cat = tr.by_category()
    assert by_cat["compute"] == tr.total("compute") > 0
    assert set(by_cat) == {ev.category for ev in tr.events}


def test_gr_compute_span_recorded():
    from repro.apps import kmeans

    cfg = kmeans.KmeansConfig(functional_points=8_000)
    res = spmd_run(kmeans.rank_program, ohio_cluster(1), args=(cfg, "cpu"), trace=True)
    spans = res.traces[0].filter(category="compute", label_prefix="GR:")
    assert spans and spans[0].duration > 0
    assert res.traces[0].total("compute") >= spans[0].duration


def test_ir_records_shared_memory_partition_counts():
    """SIII-E: num_parts = num_nodes / (shared_mem / elem_size), per GPU."""
    cfg = moldyn.MoldynConfig(
        functional_nodes=3_000, functional_degree=10, simulated_steps=1
    )
    res = spmd_run(
        moldyn.rank_program, ohio_cluster(1), args=(cfg, "cpu+2gpu"), trace=True
    )
    events = res.traces[0].filter(category="partition", label_prefix="IR:shared-parts")
    assert len(events) >= 2  # one per GPU per step
    for ev in events:
        assert ev.meta["num_parts"] >= 1
