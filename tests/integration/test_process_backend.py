"""The process-parallel SPMD backend: bit-identical, fault-correct, robust.

Every test forces ``workers`` > 1 so the cross-worker bridge (shared-memory
payloads, per-pair record sockets, abort relay, fault-plan merge-back) is
genuinely exercised even on single-core hosts — worker count affects only
wall-clock parallelism, never virtual time, so the pinned thread-backend
makespans from ``test_many_ranks`` double as the equivalence oracle here.
"""

import time

import numpy as np
import pytest

from repro.apps import heat3d, kmeans
from repro.apps.baselines import mpi_kmeans
from repro.apps.heat3d import Heat3DConfig
from repro.apps.heat3d import rank_program as heat3d_program
from repro.cluster.presets import laptop_cluster, ohio_cluster
from repro.faults.plan import FaultPlan, RankCrash
from repro.sim.engine import spmd_run
from repro.sim.procpool import partition_ranks, process_pool_stats, resolve_workers
from repro.util.errors import DeadlockError, ValidationError

# Pinned thread-backend makespans (see tests/integration/test_many_ranks.py);
# the process backend must reproduce them bit-for-bit.
SEED_384_RANK_MAKESPAN = "0.11349894073290369"
SEED_FAULTY_RELIABLE_MAKESPAN = "0.27536852547664836"


def _ring(ctx):
    n = ctx.size
    data = np.full(9000, float(ctx.rank))  # 72 KB: rides shared memory
    ctx.comm.send(data, (ctx.rank + 1) % n, tag=7)
    got = ctx.comm.recv(source=(ctx.rank - 1) % n, tag=7)
    ctx.comm.send("token", (ctx.rank + 1) % n, tag=8)  # pickle path
    tok = ctx.comm.recv(source=(ctx.rank - 1) % n, tag=8)
    assert tok == "token"
    return float(np.asarray(got).sum())


# -- equivalence oracle -------------------------------------------------------

def test_results_match_thread_backend_exactly():
    cluster = laptop_cluster(num_nodes=6)
    threads = spmd_run(_ring, cluster, ranks_per_node=2, backend="threads")
    procs = spmd_run(_ring, cluster, ranks_per_node=2, backend="processes", workers=3)
    assert procs.values == threads.values
    assert procs.times == threads.times
    assert repr(procs.makespan) == repr(threads.makespan)


def test_384_rank_kmeans_is_bit_identical_on_process_backend():
    run = mpi_kmeans.run(
        ohio_cluster(32),
        kmeans.KmeansConfig(functional_points=96_000, iterations=2),
        backend="processes",
        workers=4,
    )
    assert repr(run.makespan) == SEED_384_RANK_MAKESPAN


def test_faulty_reliable_run_is_bit_identical_on_process_backend():
    plan = FaultPlan.lossy(seed=7, drop=0.08, dup=0.05, delay=0.1, max_delay=5e-4)
    run = heat3d.run(
        ohio_cluster(4),
        heat3d.Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=4),
        reliable=True,
        fault_plan=plan,
        backend="processes",
        workers=2,
    )
    assert repr(run.makespan) == SEED_FAULTY_RELIABLE_MAKESPAN
    # Fault activity on worker replicas is merged back to the caller's plan.
    assert plan.stats.decisions > 0
    assert plan.stats.drops > 0


def test_backend_env_variable_selects_processes(monkeypatch):
    monkeypatch.setenv("REPRO_SPMD_BACKEND", "processes")
    monkeypatch.setenv("REPRO_SPMD_WORKERS", "2")
    cluster = laptop_cluster(num_nodes=4)
    res = spmd_run(_ring, cluster)
    baseline = spmd_run(_ring, cluster, backend="threads")
    assert res.times == baseline.times


def test_unknown_backend_rejected():
    with pytest.raises(ValidationError, match="unknown SPMD backend"):
        spmd_run(_ring, laptop_cluster(num_nodes=2), backend="gpu")


# -- faults cross-process -----------------------------------------------------

HEAT_CFG = Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=6)
LOSSY = dict(drop=0.15, dup=0.1, delay=0.1, max_delay=3e-4)


def _heat(plan=None, backend="threads", workers=None, **kw):
    return spmd_run(
        heat3d_program,
        laptop_cluster(num_nodes=4),
        args=(HEAT_CFG, "cpu"),
        kwargs=kw,
        fault_plan=plan,
        backend=backend,
        workers=workers,
    )


def test_crash_recovery_spans_workers_and_merges_stats():
    clean = _heat()
    crash_at = clean.makespan * 0.5
    plan = FaultPlan.lossy(
        seed=11, **LOSSY, crashes=[RankCrash(rank=1, at_time=crash_at, restart_cost=0.005)]
    )
    res = _heat(plan, backend="processes", workers=2, reliable=True, checkpoint_every=2)
    oracle_plan = FaultPlan.lossy(
        seed=11, **LOSSY, crashes=[RankCrash(rank=1, at_time=crash_at, restart_cost=0.005)]
    )
    oracle = _heat(oracle_plan, reliable=True, checkpoint_every=2)
    assert res.times == oracle.times
    np.testing.assert_array_equal(res.values[0]["grid"], oracle.values[0]["grid"])
    assert res.values[1]["recoveries"] == 1
    # The crash was consumed inside a worker process, yet the caller's
    # plan object reflects it (consumed flag + stats merge-back).
    assert plan.stats.crashes_consumed == 1
    assert plan.crashes[0].consumed
    assert plan.stats.drops == oracle_plan.stats.drops
    assert plan.stats.duplicates == oracle_plan.stats.duplicates


# -- failure and watchdog semantics ------------------------------------------

def test_remote_rank_exception_propagates():
    def prog(ctx):
        if ctx.rank == 3:
            raise ValueError("injected in worker")
        ctx.comm.recv(source=3, tag=0)

    with pytest.raises(ValueError, match="injected in worker"):
        spmd_run(
            prog,
            laptop_cluster(num_nodes=8),
            backend="processes",
            workers=2,
            recv_timeout=20,
            wall_timeout=30,
        )


def test_cross_worker_deadlock_detected():
    def prog(ctx):
        if ctx.rank == 0:
            return None  # never enters the barrier
        ctx.comm.barrier()

    with pytest.raises(DeadlockError):
        spmd_run(
            prog,
            laptop_cluster(num_nodes=2),
            backend="processes",
            workers=2,
            recv_timeout=0.3,
            wall_timeout=10,
        )


def test_wedged_worker_is_abandoned_and_pool_recovers():
    def prog(ctx):
        if ctx.rank == 1:
            time.sleep(60)  # wall-clock wedge: ignores the fabric abort
        else:
            ctx.comm.barrier()

    before = process_pool_stats()
    with pytest.raises(DeadlockError, match="wall timeout"):
        spmd_run(
            prog,
            laptop_cluster(num_nodes=2),
            backend="processes",
            workers=2,
            recv_timeout=30,
            wall_timeout=2,
        )
    after = process_pool_stats()
    assert after["abandoned"] > before["abandoned"]
    # The next run spawns replacement workers and completes normally.
    res = spmd_run(_ring, laptop_cluster(num_nodes=2), backend="processes", workers=2)
    baseline = spmd_run(_ring, laptop_cluster(num_nodes=2), backend="threads")
    assert res.times == baseline.times


# -- observability ------------------------------------------------------------

def test_pool_gauges_exposed_on_trace():
    res = spmd_run(
        _ring,
        laptop_cluster(num_nodes=4),
        backend="processes",
        workers=2,
        trace=True,
    )
    gauges = res.traces[0].gauges
    assert gauges["proc_pool.workers"] == 2
    assert gauges["rank_pool.spawned"] >= 1
    thread_res = spmd_run(_ring, laptop_cluster(num_nodes=4), backend="threads", trace=True)
    assert thread_res.traces[0].gauges["rank_pool.spawned"] >= 1


# -- packing and worker resolution -------------------------------------------

def test_partition_ranks_contiguous_and_balanced():
    blocks = partition_ranks(10, 3)
    assert [list(b) for b in blocks] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
    assert partition_ranks(4, 4) == [range(0, 1), range(1, 2), range(2, 3), range(3, 4)]


def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SPMD_WORKERS", raising=False)
    assert resolve_workers(3, 100) == 3
    assert resolve_workers(8, 4) == 4  # capped at rank count
    monkeypatch.setenv("REPRO_SPMD_WORKERS", "5")
    assert resolve_workers(None, 100) == 5
    with pytest.raises(ValidationError):
        resolve_workers(0, 4)


def test_single_worker_falls_back_to_threads():
    """workers=1 routes through the thread backend (identical results,
    no bridge overhead) — the default on single-core hosts."""
    res = spmd_run(_ring, laptop_cluster(num_nodes=2), backend="processes", workers=1)
    baseline = spmd_run(_ring, laptop_cluster(num_nodes=2), backend="threads")
    assert res.times == baseline.times
    assert repr(res.makespan) == repr(baseline.makespan)
