"""Headline paper claims, verified end-to-end on small workloads.

These pin the *shape* of the paper's results: who wins, in which direction,
by roughly what factor.  Exact magnitudes live in EXPERIMENTS.md.
"""

import pytest

from repro.apps import heat3d, kmeans, minimd, moldyn, sobel
from repro.apps.baselines import mpi_sobel
from repro.cluster.presets import ohio_cluster

KCFG = kmeans.KmeansConfig(functional_points=48_000)
MCFG = moldyn.MoldynConfig(functional_nodes=6_000, functional_degree=14, simulated_steps=3)
ICFG = minimd.MiniMDConfig(functional_cells=8, simulated_steps=3)
SCFG = sobel.SobelConfig(functional_shape=(384, 384), simulated_steps=3)
HCFG = heat3d.Heat3DConfig(functional_shape=(36, 36, 36), simulated_steps=3)

APPS = {
    "kmeans": (kmeans, KCFG, 2.69),
    "moldyn": (moldyn, MCFG, 1.5),
    "minimd": (minimd, ICFG, 1.7),
    "sobel": (sobel, SCFG, 2.24),
    "heat3d": (heat3d, HCFG, 2.4),
}


@pytest.mark.parametrize("name", list(APPS))
def test_single_node_gpu_cpu_ratio_matches_paper(name):
    """SIV-C: per-app GPU vs 12-core-CPU ratios (2.69/1.5/1.7/2.24/2.4)."""
    mod, cfg, target = APPS[name]
    cpu = mod.run(ohio_cluster(1), cfg, mix="cpu")
    gpu = mod.run(ohio_cluster(1), cfg, mix="1gpu")
    assert cpu.makespan / gpu.makespan == pytest.approx(target, rel=0.12)


@pytest.mark.parametrize("name", list(APPS))
def test_heterogeneous_actual_below_perfect(name):
    """Table II: actual CPU+2GPU speedup is below 'perfect' but above CPU."""
    mod, cfg, _ = APPS[name]
    cpu = mod.run(ohio_cluster(1), cfg, mix="cpu")
    gpu = mod.run(ohio_cluster(1), cfg, mix="1gpu")
    both = mod.run(ohio_cluster(1), cfg, mix="cpu+2gpu")
    ratio = cpu.makespan / gpu.makespan
    perfect = 1 + 2 * ratio
    actual = cpu.makespan / both.makespan
    assert 1.0 < actual <= perfect * 1.02
    assert actual > 0.55 * perfect  # well above half of perfect


@pytest.mark.parametrize("name", ["kmeans", "heat3d", "sobel"])
def test_internode_scaling(name):
    """Fig. 5: speedups grow substantially with node count."""
    mod, cfg, _ = APPS[name]
    one = mod.run(ohio_cluster(1), cfg, mix="cpu")
    four = mod.run(ohio_cluster(4), cfg, mix="cpu")
    assert 2.5 < four.speedup / one.speedup <= 4.05


def test_moldyn_overlap_gain_significant():
    """Fig. 7: overlapped execution clearly helps Moldyn (paper avg 37%)."""
    on = moldyn.run(ohio_cluster(4), MCFG, mix="cpu+2gpu", overlap=True)
    off = moldyn.run(ohio_cluster(4), MCFG, mix="cpu+2gpu", overlap=False)
    assert off.makespan / on.makespan > 1.10


def test_sobel_tiling_gain():
    """Fig. 7: tiling improves Sobel (paper: up to 20%)."""
    on = sobel.run(ohio_cluster(1), SCFG, mix="cpu+2gpu", tiling=True)
    off = sobel.run(ohio_cluster(1), SCFG, mix="cpu+2gpu", tiling=False)
    assert 1.05 < off.makespan / on.makespan < 1.35


def test_sobel_overlap_never_hurts():
    on = sobel.run(ohio_cluster(4), SCFG, mix="cpu+2gpu", overlap=True)
    off = sobel.run(ohio_cluster(4), SCFG, mix="cpu+2gpu", overlap=False)
    assert off.makespan >= on.makespan * 0.999


def test_sobel_framework_slower_than_handwritten_mpi():
    """SIV-C: Sobel is the one app where hand-written MPI wins (~11%)."""
    fw = sobel.run(ohio_cluster(2), SCFG, mix="cpu")
    bl = mpi_sobel.run(ohio_cluster(2), SCFG)
    assert bl.makespan < fw.makespan


def test_kmeans_has_largest_gpu_advantage():
    """SIV-C attributes Kmeans' top speedup to shared-memory reductions."""
    ratios = {}
    for name, (mod, cfg, _) in APPS.items():
        cpu = mod.run(ohio_cluster(1), cfg, mix="cpu")
        gpu = mod.run(ohio_cluster(1), cfg, mix="1gpu")
        ratios[name] = cpu.makespan / gpu.makespan
    assert max(ratios, key=ratios.get) == "kmeans"


def test_localization_is_why_kmeans_wins():
    """Disabling reduction localization must erase much of the GPU edge."""
    from repro.core.env import RuntimeEnv
    from repro.core.partition import block_partition
    from repro.data.points import clustered_points
    from repro.sim.engine import spmd_run

    def prog(ctx, localized):
        pts, _ = clustered_points(KCFG.functional_points, KCFG.k, seed=0)
        env = RuntimeEnv(ctx, "1gpu")
        gr = env.get_GR(localized=localized)
        gr.set_kernel(kmeans.make_kernel(KCFG, ctx.node))
        offs = block_partition(len(pts), ctx.size)
        gr.set_input(pts, model_local_elems=KCFG.n_points, parameter=pts[: KCFG.k].astype(float))
        gr.start()
        return None

    with_loc = spmd_run(prog, ohio_cluster(1), kwargs={"localized": True}).makespan
    without = spmd_run(prog, ohio_cluster(1), kwargs={"localized": False}).makespan
    assert without > 1.4 * with_loc
