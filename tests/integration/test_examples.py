"""The shipped examples must actually run (they are the documentation)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "kmeans_clustering.py",
    "heat_diffusion.py",
    "minimd_atoms.py",
    "graph_analytics.py",
    "variable_coefficient_heat.py",
    "xeon_phi_extension.py",
    "serve_smoke.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_to_completion(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"


def test_example_scripts_all_have_docstrings_and_main_guard():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.lstrip().startswith('"""'), f"{script.name} lacks a docstring"
        if script.name != "generate_experiments_md.py":
            assert 'if __name__ == "__main__":' in text, script.name


# The EXPERIMENTS.md generator itself is exercised through the benchmark
# suite (every figure driver it calls runs there at quick scale); running
# it here at full scale would take minutes per test session.
