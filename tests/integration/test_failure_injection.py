"""Failure injection: the engine must fail fast, loudly, and accurately."""

import numpy as np
import pytest

from repro.cluster.presets import laptop_cluster
from repro.core.api import GRKernel
from repro.core.env import RuntimeEnv
from repro.device.work import WorkModel
from repro.sim.engine import spmd_run
from repro.util.errors import DeadlockError

WORK = WorkModel(name="w", flops_per_elem=4, bytes_per_elem=8)


def test_kernel_exception_propagates_from_runtime():
    """A user emit function that raises must surface, not hang the fleet."""

    def bad_emit(obj, data, start, param):
        raise ZeroDivisionError("user bug in emit")

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        gr = env.get_GR()
        gr.set_kernel(GRKernel(bad_emit, "sum", 4, 1, WORK))
        gr.set_input(np.ones((100, 1)))
        gr.start()
        return gr.get_global_reduction()  # blocks siblings without the abort

    with pytest.raises(ZeroDivisionError, match="user bug"):
        spmd_run(prog, laptop_cluster(num_nodes=3), recv_timeout=10, wall_timeout=30)


def test_one_sided_collective_deadlocks_cleanly():
    """Only some ranks entering a collective is a deadlock, not a hang."""

    def prog(ctx):
        if ctx.rank == 0:
            return None  # skips the barrier
        ctx.comm.barrier()

    with pytest.raises(DeadlockError):
        spmd_run(prog, laptop_cluster(num_nodes=2), recv_timeout=0.3, wall_timeout=10)


def test_mismatched_collective_order_deadlocks():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.bcast(1, root=0)
            ctx.comm.barrier()
        else:
            ctx.comm.barrier()
            ctx.comm.bcast(None, root=0)

    with pytest.raises(DeadlockError):
        spmd_run(prog, laptop_cluster(num_nodes=2), recv_timeout=0.3, wall_timeout=10)


def test_partial_send_recv_pairing_detected():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.recv(source=1, tag=1)  # rank 1 never sends tag 1
        else:
            ctx.comm.send("x", 0, tag=2)

    with pytest.raises(DeadlockError):
        spmd_run(prog, laptop_cluster(num_nodes=2), recv_timeout=0.3, wall_timeout=10)


def test_abort_drains_all_ranks_quickly():
    """After one rank dies, the other 7 blocked ranks must all be released."""

    def prog(ctx):
        if ctx.rank == 3:
            raise ValueError("injected")
        ctx.comm.recv(source=3, tag=0)

    with pytest.raises(ValueError, match="injected"):
        spmd_run(prog, laptop_cluster(num_nodes=8), recv_timeout=20, wall_timeout=30)


def test_exception_in_device_factory():
    def factory(ctx):
        raise OSError("factory failed")

    with pytest.raises(OSError, match="factory failed"):
        spmd_run(lambda ctx: None, laptop_cluster(num_nodes=2), device_factory=factory)


def test_results_of_completed_ranks_are_not_mixed_with_failures():
    """The engine must not return partial SpmdResult on failure."""

    def prog(ctx):
        if ctx.rank == 1:
            raise RuntimeError("late failure")
        return "done"

    with pytest.raises(RuntimeError):
        spmd_run(prog, laptop_cluster(num_nodes=2))


# ---------------------------------------------------------------------------
# Fault injection + resilience: apps complete bit-identically under lossy
# plans, and injected crashes recover from checkpoints with the cost
# visible in the virtual makespan.
# ---------------------------------------------------------------------------

from repro.apps.heat3d import Heat3DConfig
from repro.apps.heat3d import rank_program as heat3d_program
from repro.apps.kmeans import KmeansConfig
from repro.apps.kmeans import rank_program as kmeans_program
from repro.core.checkpoint import FAULT_CATEGORY
from repro.faults.plan import FaultPlan, RankCrash

HEAT_CFG = Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=6)
KM_CFG = KmeansConfig(functional_points=4000, n_points=400_000, iterations=6)
LOSSY = dict(drop=0.15, dup=0.1, delay=0.1, max_delay=3e-4)


def _heat(plan=None, **kw):
    return spmd_run(
        heat3d_program,
        laptop_cluster(num_nodes=4),
        args=(HEAT_CFG, "cpu"),
        kwargs=kw,
        fault_plan=plan,
        trace=plan is not None,
    )


def _kmeans(plan=None, **kw):
    return spmd_run(
        kmeans_program,
        laptop_cluster(num_nodes=4),
        args=(KM_CFG, "cpu"),
        kwargs=kw,
        fault_plan=plan,
        trace=plan is not None,
    )


def test_heat3d_bit_identical_under_lossy_plan():
    clean = _heat()
    lossy = _heat(FaultPlan.lossy(seed=11, **LOSSY), reliable=True)
    np.testing.assert_array_equal(clean.values[0]["grid"], lossy.values[0]["grid"])
    assert lossy.makespan > clean.makespan  # retries/dups cost virtual time


def test_kmeans_bit_identical_under_lossy_plan():
    clean = _kmeans()
    lossy = _kmeans(FaultPlan.lossy(seed=5, **LOSSY), reliable=True)
    np.testing.assert_array_equal(clean.values[0], lossy.values[0])
    assert lossy.makespan > clean.makespan


def test_heat3d_crash_recovers_from_checkpoint():
    clean = _heat()
    crash_at = clean.makespan * 0.5
    plan = FaultPlan.lossy(
        seed=11, **LOSSY, crashes=[RankCrash(rank=1, at_time=crash_at, restart_cost=0.005)]
    )
    res = _heat(plan, reliable=True, checkpoint_every=2)
    np.testing.assert_array_equal(clean.values[0]["grid"], res.values[0]["grid"])
    assert res.values[1]["recoveries"] == 1
    assert plan.stats.crashes_consumed == 1
    assert res.makespan > clean.makespan + 0.005  # recovery charged
    fault_labels = [
        e.label for t in res.traces for e in t if e.category == FAULT_CATEGORY
    ]
    assert "crash" in fault_labels
    assert "recovery" in fault_labels
    assert "checkpoint" in fault_labels


def test_kmeans_crash_recovers_from_checkpoint():
    clean = _kmeans()
    plan = FaultPlan(
        seed=5, crashes=[RankCrash(rank=3, at_time=clean.makespan * 0.4, restart_cost=0.003)]
    )
    res = _kmeans(plan, reliable=True, checkpoint_every=2)
    np.testing.assert_array_equal(clean.values[0], res.values[0])
    assert plan.stats.crashes_consumed == 1
    assert res.makespan > clean.makespan


def test_fault_runs_are_reproducible():
    def make_plan():
        return FaultPlan.lossy(
            seed=11, **LOSSY, crashes=[RankCrash(rank=1, at_time=0.09, restart_cost=0.005)]
        )

    a = _heat(make_plan(), reliable=True, checkpoint_every=2)
    b = _heat(make_plan(), reliable=True, checkpoint_every=2)
    assert a.times == b.times
    np.testing.assert_array_equal(a.values[0]["grid"], b.values[0]["grid"])


def test_makespan_monotone_in_fault_severity():
    spans = []
    for drop in (0.0, 0.15, 0.4):
        plan = FaultPlan.lossy(seed=13, drop=drop) if drop else None
        spans.append(_heat(plan, reliable=True).makespan)
    assert spans[0] < spans[1] < spans[2]


# ---------------------------------------------------------------------------
# Adaptive-split state across restart: a crash-restarted rank that rebuilds
# its runtime (fresh, unprofiled partitioner) must restore the observed
# device profile from the checkpoint, or every post-recovery charge — hence
# the makespan — diverges from an uninterrupted run.
# ---------------------------------------------------------------------------

from repro.core.api import StencilKernel, shifted
from repro.core.checkpoint import CheckpointManager
from repro.core.env import RuntimeEnv

ST_WORK = WorkModel(name="st", flops_per_elem=8, bytes_per_elem=32)
ST_GRID = np.random.default_rng(3).random((28, 24))


def _avg2d(src, dst, region, param):
    dst[region] = 0.25 * (
        shifted(src, region, (1, 0)) + shifted(src, region, (-1, 0))
        + shifted(src, region, (0, 1)) + shifted(src, region, (0, -1))
    )


def _adaptive_ckpt_prog(ctx, rebuild=False, iterations=8):
    """Checkpointed adaptive stencil; ``rebuild=True`` models a real
    restart that reconstructs the runtime object before restoring."""
    env = RuntimeEnv(ctx, "cpu+1gpu")

    def build():
        st = env.get_stencil(adaptive=True)
        st.configure(StencilKernel(_avg2d, 1, ST_WORK), ST_GRID.shape)
        return st

    holder = {"st": build()}
    holder["st"].set_global_grid(ST_GRID)
    mgr = CheckpointManager(ctx, every=2)

    def restore(state):
        if rebuild:
            holder["st"] = build()  # fresh runtime: unprofiled partitioner
        holder["st"].restore_state(state)

    mgr.run_iterations(
        iterations,
        lambda _it: holder["st"].step(),
        lambda: holder["st"].snapshot_state(),
        restore,
    )
    grid = holder["st"].gather_global()
    env.finalize()
    return {"grid": grid, "recoveries": mgr.recoveries}


def test_adaptive_split_survives_runtime_rebuild_on_restart():
    clean = spmd_run(_adaptive_ckpt_prog, laptop_cluster(num_nodes=2))

    def crashed(rebuild):
        plan = FaultPlan(
            seed=1,
            crashes=[
                RankCrash(
                    rank=1, at_time=clean.makespan * 0.6, restart_cost=0.004
                )
            ],
        )
        res = spmd_run(
            _adaptive_ckpt_prog,
            laptop_cluster(num_nodes=2),
            kwargs={"rebuild": rebuild},
            fault_plan=plan,
        )
        assert plan.stats.crashes_consumed == 1
        assert all(v["recoveries"] == 1 for v in res.values)
        return res

    in_place = crashed(rebuild=False)
    rebuilt = crashed(rebuild=True)
    # The headline pin: restoring into a rebuilt runtime charges exactly
    # what restoring in place does — bit for bit, not just approximately.
    assert repr(rebuilt.makespan) == repr(in_place.makespan)
    assert rebuilt.times == in_place.times
    np.testing.assert_array_equal(rebuilt.values[0]["grid"], in_place.values[0]["grid"])
    np.testing.assert_array_equal(rebuilt.values[0]["grid"], clean.values[0]["grid"])
