"""Failure injection: the engine must fail fast, loudly, and accurately."""

import numpy as np
import pytest

from repro.cluster.presets import laptop_cluster
from repro.core.api import GRKernel
from repro.core.env import RuntimeEnv
from repro.device.work import WorkModel
from repro.sim.engine import spmd_run
from repro.util.errors import DeadlockError

WORK = WorkModel(name="w", flops_per_elem=4, bytes_per_elem=8)


def test_kernel_exception_propagates_from_runtime():
    """A user emit function that raises must surface, not hang the fleet."""

    def bad_emit(obj, data, start, param):
        raise ZeroDivisionError("user bug in emit")

    def prog(ctx):
        env = RuntimeEnv(ctx, "cpu")
        gr = env.get_GR()
        gr.set_kernel(GRKernel(bad_emit, "sum", 4, 1, WORK))
        gr.set_input(np.ones((100, 1)))
        gr.start()
        return gr.get_global_reduction()  # blocks siblings without the abort

    with pytest.raises(ZeroDivisionError, match="user bug"):
        spmd_run(prog, laptop_cluster(num_nodes=3), recv_timeout=10, wall_timeout=30)


def test_one_sided_collective_deadlocks_cleanly():
    """Only some ranks entering a collective is a deadlock, not a hang."""

    def prog(ctx):
        if ctx.rank == 0:
            return None  # skips the barrier
        ctx.comm.barrier()

    with pytest.raises(DeadlockError):
        spmd_run(prog, laptop_cluster(num_nodes=2), recv_timeout=0.3, wall_timeout=10)


def test_mismatched_collective_order_deadlocks():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.bcast(1, root=0)
            ctx.comm.barrier()
        else:
            ctx.comm.barrier()
            ctx.comm.bcast(None, root=0)

    with pytest.raises(DeadlockError):
        spmd_run(prog, laptop_cluster(num_nodes=2), recv_timeout=0.3, wall_timeout=10)


def test_partial_send_recv_pairing_detected():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.recv(source=1, tag=1)  # rank 1 never sends tag 1
        else:
            ctx.comm.send("x", 0, tag=2)

    with pytest.raises(DeadlockError):
        spmd_run(prog, laptop_cluster(num_nodes=2), recv_timeout=0.3, wall_timeout=10)


def test_abort_drains_all_ranks_quickly():
    """After one rank dies, the other 7 blocked ranks must all be released."""

    def prog(ctx):
        if ctx.rank == 3:
            raise ValueError("injected")
        ctx.comm.recv(source=3, tag=0)

    with pytest.raises(ValueError, match="injected"):
        spmd_run(prog, laptop_cluster(num_nodes=8), recv_timeout=20, wall_timeout=30)


def test_exception_in_device_factory():
    def factory(ctx):
        raise OSError("factory failed")

    with pytest.raises(OSError, match="factory failed"):
        spmd_run(lambda ctx: None, laptop_cluster(num_nodes=2), device_factory=factory)


def test_results_of_completed_ranks_are_not_mixed_with_failures():
    """The engine must not return partial SpmdResult on failure."""

    def prog(ctx):
        if ctx.rank == 1:
            raise RuntimeError("late failure")
        return "done"

    with pytest.raises(RuntimeError):
        spmd_run(prog, laptop_cluster(num_nodes=2))
