"""Many-rank stress: the paper-scale 384-thread run, bit-identical and fast.

The sharded fabric + rank-thread pool exist so the paper's per-core MPI
baselines (32 nodes x 12 ranks per node = 384 rank threads) run inside
CI's patience.  These tests pin:

- the 384-rank Kmeans baseline completes well inside the tier-1 watchdog
  and its virtual makespan is bit-for-bit the value the pre-shard global
  lock fabric produced (``repr`` string captured at the seed commit);
- a fault-injected reliable run (drops, duplicates, delays — the
  retransmission machinery) is equally bit-identical, so the sharded
  enqueue/dup paths charge exactly the same virtual costs.
"""

import time

from repro.apps import heat3d, kmeans
from repro.apps.baselines import mpi_kmeans
from repro.cluster.presets import ohio_cluster
from repro.faults.plan import FaultPlan

#: repr() of the makespans at the last global-lock commit (the seed for
#: this optimization); any drift means sharding changed simulated physics.
SEED_384_RANK_MAKESPAN = "0.11349894073290369"
SEED_FAULTY_RELIABLE_MAKESPAN = "0.27536852547664836"

#: Wall budget for the 384-rank run.  The global-lock fabric needed ~4.5 s
#: on the CI box; the sharded fabric ~1 s.  The bound only exists to catch
#: a catastrophic scalability regression, hence the slack.
WALL_BUDGET_S = 60.0


def test_384_rank_kmeans_baseline_is_bit_identical_and_fast():
    cluster = ohio_cluster(32)
    cfg = kmeans.KmeansConfig(functional_points=96_000, iterations=2)
    t0 = time.perf_counter()
    run = mpi_kmeans.run(cluster, cfg)
    wall = time.perf_counter() - t0
    assert run.nodes == 32
    assert repr(run.makespan) == SEED_384_RANK_MAKESPAN
    assert wall < WALL_BUDGET_S, f"384-rank run took {wall:.1f}s"


def test_fault_injected_reliable_run_is_bit_identical():
    run = heat3d.run(
        ohio_cluster(4),
        heat3d.Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=4),
        reliable=True,
        fault_plan=FaultPlan.lossy(seed=7, drop=0.08, dup=0.05, delay=0.1, max_delay=5e-4),
    )
    assert repr(run.makespan) == SEED_FAULTY_RELIABLE_MAKESPAN


def test_many_rank_run_is_repeatable_across_pool_reuse():
    """Two back-to-back runs reuse pooled threads yet agree bit-for-bit."""
    cluster = ohio_cluster(32)
    cfg = kmeans.KmeansConfig(functional_points=96_000, iterations=1)
    first = mpi_kmeans.run(cluster, cfg)
    second = mpi_kmeans.run(cluster, cfg)
    assert repr(first.makespan) == repr(second.makespan)
