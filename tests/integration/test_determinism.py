"""Determinism: virtual times must not depend on wall-clock thread timing.

The whole point of virtual-clock simulation is that reported numbers are
reproducible; these tests run the same programs repeatedly (real threads,
different OS interleavings each time) and require bit-identical results
and times.
"""

import numpy as np
import pytest

from repro.apps import heat3d, kmeans, moldyn
from repro.apps.extra import sssp
from repro.cluster.presets import ohio_cluster
from repro.sim.engine import spmd_run

REPEATS = 3


def _times_and_result(run_fn):
    outs = [run_fn() for _ in range(REPEATS)]
    return outs


def test_kmeans_cluster_run_deterministic():
    cfg = kmeans.KmeansConfig(functional_points=20_000)

    def once():
        run = kmeans.run(ohio_cluster(4), cfg, mix="cpu+2gpu")
        return run.makespan, run.result

    outs = _times_and_result(once)
    for makespan, result in outs[1:]:
        assert makespan == outs[0][0]
        np.testing.assert_array_equal(result, outs[0][1])


def test_moldyn_cluster_run_deterministic():
    cfg = moldyn.MoldynConfig(functional_nodes=3_000, functional_degree=10, simulated_steps=2)

    def once():
        run = moldyn.run(ohio_cluster(3), cfg, mix="cpu+1gpu")
        return run.makespan, run.result[0]["nodes"]

    outs = _times_and_result(once)
    for makespan, nodes in outs[1:]:
        assert makespan == outs[0][0]
        np.testing.assert_array_equal(nodes, outs[0][1])


def test_heat3d_per_rank_times_deterministic():
    cfg = heat3d.Heat3DConfig(functional_shape=(24, 24, 24), simulated_steps=2)

    def once():
        res = spmd_run(heat3d.rank_program, ohio_cluster(4), args=(cfg, "cpu+2gpu"))
        return tuple(tuple(v["steps"]) for v in res.values)

    outs = _times_and_result(once)
    assert outs[0] == outs[1] == outs[2]


def test_iterative_graph_algorithm_deterministic():
    cfg = sssp.SsspConfig(n_nodes=150, degree=8.0)

    def once():
        res = spmd_run(sssp.rank_program, ohio_cluster(3), args=(cfg, "cpu"))
        return res.makespan, tuple(v["rounds"] for v in res.values)

    outs = _times_and_result(once)
    assert outs[0] == outs[1] == outs[2]


def test_per_core_mpi_baseline_deterministic():
    from repro.apps.baselines import mpi_kmeans

    cfg = kmeans.KmeansConfig(functional_points=12_000)

    def once():
        return mpi_kmeans.run(ohio_cluster(2), cfg).makespan

    times = {_ for _ in (once() for _ in range(REPEATS))}
    assert len(times) == 1


def test_different_seeds_differ():
    a = kmeans.run(ohio_cluster(1), kmeans.KmeansConfig(functional_points=10_000, seed=1), mix="cpu")
    b = kmeans.run(ohio_cluster(1), kmeans.KmeansConfig(functional_points=10_000, seed=2), mix="cpu")
    assert not np.array_equal(a.result, b.result)
