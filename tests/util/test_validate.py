"""Argument validation helpers."""

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.util.validate import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_shape,
    check_type,
)


def test_check_positive_accepts():
    check_positive("x", 1e-9)


@pytest.mark.parametrize("bad", [0, -1, -0.5])
def test_check_positive_rejects(bad):
    with pytest.raises(ValidationError, match="x"):
        check_positive("x", bad)


def test_check_non_negative():
    check_non_negative("y", 0)
    with pytest.raises(ValidationError, match="y"):
        check_non_negative("y", -1e-12)


def test_check_in_range_inclusive():
    check_in_range("z", 0.0, 0.0, 1.0)
    check_in_range("z", 1.0, 0.0, 1.0)
    with pytest.raises(ValidationError):
        check_in_range("z", 1.0001, 0.0, 1.0)


def test_check_type_single_and_tuple():
    check_type("n", 3, int)
    check_type("n", 3, (int, float))
    with pytest.raises(ValidationError, match="int"):
        check_type("n", "3", int)


def test_check_shape_exact_and_wildcard():
    check_shape("edges", np.zeros((5, 2)), (None, 2))
    check_shape("grid", np.zeros((3, 4)), (3, 4))
    with pytest.raises(ValidationError, match="axis 1"):
        check_shape("edges", np.zeros((5, 3)), (None, 2))
    with pytest.raises(ValidationError, match="2-D"):
        check_shape("edges", np.zeros(5), (None, 2))
