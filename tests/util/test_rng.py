"""Deterministic RNG helpers."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import derive_seed, seeded_rng


def test_seeded_rng_reproducible():
    a = seeded_rng(42).random(10)
    b = seeded_rng(42).random(10)
    np.testing.assert_array_equal(a, b)


def test_seeded_rng_differs_by_seed():
    assert not np.array_equal(seeded_rng(1).random(10), seeded_rng(2).random(10))


def test_derive_seed_stable():
    assert derive_seed(7, "kmeans", "points") == derive_seed(7, "kmeans", "points")


def test_derive_seed_varies_with_labels():
    seeds = {
        derive_seed(7),
        derive_seed(7, "a"),
        derive_seed(7, "b"),
        derive_seed(7, "a", "b"),
        derive_seed(8, "a"),
    }
    assert len(seeds) == 5


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_derive_seed_in_uint64_range(base, label):
    seed = derive_seed(base, label)
    assert 0 <= seed < 2**64


def test_derive_seed_label_types():
    # Labels are stringified, so equivalent renderings collide intentionally.
    assert derive_seed(1, 5) == derive_seed(1, "5")
