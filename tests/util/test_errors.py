"""Exception hierarchy contracts."""

import pytest

from repro.util.errors import (
    CommunicationError,
    ConfigurationError,
    DeadlockError,
    ReproError,
    SchedulingError,
    ValidationError,
)


@pytest.mark.parametrize(
    "exc",
    [ConfigurationError, CommunicationError, SchedulingError, ValidationError, DeadlockError],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_deadlock_is_communication_error():
    assert issubclass(DeadlockError, CommunicationError)


def test_catchable_as_base():
    with pytest.raises(ReproError):
        raise ValidationError("nope")
