"""Unit constants and formatters."""

import pytest

from repro.util.units import GB, GFLOPS, KB, MB, MS, US, fmt_bytes, fmt_count, fmt_seconds


def test_size_constants_are_powers_of_ten():
    assert KB == 1_000
    assert MB == 1_000_000
    assert GB == 1_000_000_000


def test_time_constants():
    assert US == pytest.approx(1e-6)
    assert MS == pytest.approx(1e-3)
    assert GFLOPS == pytest.approx(1e9)


@pytest.mark.parametrize(
    "value,expected",
    [
        (0, "0 B"),
        (512, "512 B"),
        (2_048, "2.05 KB"),
        (3_500_000, "3.50 MB"),
        (2_300_000_000, "2.30 GB"),
    ],
)
def test_fmt_bytes(value, expected):
    assert fmt_bytes(value) == expected


@pytest.mark.parametrize(
    "value,expected",
    [
        (2.0, "2.000 s"),
        (0.0123, "12.300 ms"),
        (4.5e-6, "4.500 us"),
    ],
)
def test_fmt_seconds(value, expected):
    assert fmt_seconds(value) == expected


@pytest.mark.parametrize(
    "value,expected",
    [
        (42, "42"),
        (1_300, "1.3K"),
        (130_000_000, "130.0M"),
        (2_000_000_000, "2.0B"),
    ],
)
def test_fmt_count(value, expected):
    assert fmt_count(value) == expected


def test_fmt_bytes_negative():
    assert fmt_bytes(-2_000_000) == "-2.00 MB"
