"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.presets import laptop_cluster, ohio_cluster
from repro.sim.engine import spmd_run


@pytest.fixture
def cluster2():
    """A small 2-node test cluster (4 cores + 1 GPU per node)."""
    return laptop_cluster(num_nodes=2)


@pytest.fixture
def cluster4():
    """A 4-node test cluster with 2 GPUs per node."""
    return laptop_cluster(num_nodes=4, gpus_per_node=2)


@pytest.fixture
def ohio1():
    """One node of the paper's cluster."""
    return ohio_cluster(1)


def run_spmd(fn, nodes=2, gpus_per_node=1, cores=4, **kwargs):
    """Run ``fn`` over a small laptop cluster and return the SpmdResult."""
    cluster = laptop_cluster(num_nodes=nodes, cores=cores, gpus_per_node=gpus_per_node)
    return spmd_run(fn, cluster, **kwargs)


def assert_allclose(a, b, **kw):
    np.testing.assert_allclose(a, b, **kw)
