"""WorkModel validation and helpers."""

import pytest

from repro.device.work import WorkModel, scaled
from repro.util.errors import ValidationError


def _work(**kw):
    base = dict(name="w", flops_per_elem=10, bytes_per_elem=8)
    base.update(kw)
    return WorkModel(**base)


def test_defaults():
    w = _work()
    assert w.cpu_efficiency == 0.5
    assert w.atomics_per_elem == 0.0
    assert w.gpu_overhead_flops == 0.0


def test_gpu_overhead_falls_back_to_cpu():
    assert _work(runtime_overhead_flops=3.0).gpu_overhead_flops == 3.0
    assert _work(runtime_overhead_flops=3.0, runtime_overhead_flops_gpu=7.0).gpu_overhead_flops == 7.0
    assert _work(runtime_overhead_flops_gpu=0.0, runtime_overhead_flops=3.0).gpu_overhead_flops == 0.0


def test_replace_returns_modified_copy():
    w = _work()
    w2 = w.replace(gpu_efficiency=0.9)
    assert w2.gpu_efficiency == 0.9
    assert w.gpu_efficiency == 0.5


@pytest.mark.parametrize(
    "kw",
    [
        dict(flops_per_elem=-1),
        dict(flops_per_elem=0, bytes_per_elem=0),
        dict(cpu_efficiency=0),
        dict(gpu_efficiency=1.2),
        dict(cpu_mem_efficiency=-0.1),
        dict(atomics_per_elem=-1),
        dict(atomics_per_elem=1),  # missing num_reduction_keys
        dict(transfer_bytes_per_elem=-1),
        dict(runtime_overhead_flops=-1),
        dict(runtime_overhead_flops_gpu=-1),
    ],
)
def test_validation_rejects(kw):
    with pytest.raises(ValidationError):
        _work(**kw)


def test_atomics_with_keys_ok():
    w = _work(atomics_per_elem=2, num_reduction_keys=40)
    assert w.num_reduction_keys == 40


def test_scaled():
    assert scaled(1000, 100_000) == 100.0
    assert scaled(1000, None) == 1.0
    with pytest.raises(ValidationError):
        scaled(0, 10)
    with pytest.raises(ValidationError):
        scaled(100, 10)
