"""CPU device cost arithmetic."""

import pytest

from repro.cluster.presets import xeon_5650
from repro.device.cpu import CPUDevice
from repro.device.work import WorkModel
from repro.util.errors import ValidationError


@pytest.fixture
def cpu():
    return CPUDevice(xeon_5650())


def test_compute_bound_core_time(cpu):
    w = WorkModel(name="c", flops_per_elem=1064, bytes_per_elem=1, cpu_efficiency=1.0)
    # 1064 flops at 10.64 GF/core = 100 ns; memory term tiny.
    assert cpu.core_elem_time(w) == pytest.approx(100e-9, rel=1e-6)


def test_memory_bound_core_time(cpu):
    w = WorkModel(name="m", flops_per_elem=1, bytes_per_elem=64, cpu_efficiency=1.0)
    # 64 B over a 1/12 share of 64 GB/s = 12 ns.
    assert cpu.core_elem_time(w) == pytest.approx(12e-9, rel=1e-6)


def test_mem_efficiency_derates_bandwidth(cpu):
    w = WorkModel(name="m", flops_per_elem=1, bytes_per_elem=64, cpu_mem_efficiency=0.5)
    w_full = w.replace(cpu_mem_efficiency=1.0)
    assert cpu.core_elem_time(w) == pytest.approx(2 * cpu.core_elem_time(w_full))


def test_framework_overhead_charged_only_when_framework(cpu):
    w = WorkModel(
        name="f", flops_per_elem=100, bytes_per_elem=1, cpu_efficiency=1.0,
        runtime_overhead_flops=50,
    )
    assert cpu.core_elem_time(w, framework=True) == pytest.approx(
        1.5 * cpu.core_elem_time(w, framework=False)
    )


def test_device_time_divides_by_cores(cpu):
    w = WorkModel(name="c", flops_per_elem=1064, bytes_per_elem=1, cpu_efficiency=1.0)
    assert cpu.elem_time(w) == pytest.approx(cpu.core_elem_time(w) / 12)
    assert cpu.partition_time(w, 1200) == pytest.approx(1200 * cpu.elem_time(w))


def test_atomics_added(cpu):
    w = WorkModel(
        name="a", flops_per_elem=1, bytes_per_elem=1, atomics_per_elem=2, num_reduction_keys=100
    )
    base = w.replace(atomics_per_elem=0)
    assert cpu.core_elem_time(w) > cpu.core_elem_time(base)


def test_memcpy_time_counts_read_and_write(cpu):
    assert cpu.memcpy_time(64e9) == pytest.approx(2.0)
    with pytest.raises(ValidationError):
        cpu.memcpy_time(-1)


def test_workers_and_reset(cpu):
    assert len(cpu.workers) == 12
    cpu.workers[0].schedule(0, 1.0)
    cpu.reset(start=5.0)
    assert all(w.available_at == 5.0 for w in cpu.workers)


def test_partition_time_rejects_negative(cpu):
    w = WorkModel(name="c", flops_per_elem=1, bytes_per_elem=1)
    with pytest.raises(ValidationError):
        cpu.partition_time(w, -1)
